// Reproduces Fig. 3: convergence of the policy decision for the big-core
// frequency toward the Oracle, while a sequence of applications from Cortex
// and PARSEC runs after offline training on MiBench.
//
// Paper: online-IL reaches ~100% accuracy within ~6 s (about 4% of the
// sequence); RL does not converge over the whole 150 s sequence.
// Accuracy here counts a decision as correct when the chosen big-cluster
// OPP is within one 100 MHz step of the Oracle's.
//
// The IL and RL arms are independent ExperimentEngine scenarios sharing the
// same trace and offline dataset; each arm trains its own policy copy and
// the RL arm pre-trains through the Scenario warmup trace.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "common/table.h"
#include "core/experiment.h"
#include "core/online_il.h"
#include "core/results_io.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

std::vector<workloads::AppSpec> online_sequence_apps() {
  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  return apps;
}

}  // namespace

int main(int argc, char** argv) {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);

  // Both arms evaluate the same trace, so the exhaustive Oracle search runs
  // once per snippet instead of once per arm.
  auto cache = std::make_shared<OracleCache>();
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = std::make_shared<OfflineData>(
      collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng, cache.get()));

  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_sequence_apps(), seq_rng);
  std::printf("Online sequence: %zu snippets (Cortex + PARSEC), offline training: MiBench\n",
              seq.size());

  auto il_updates = std::make_shared<std::size_t>(0);

  Scenario il;
  il.id = "fig3/il";
  il.trace = seq;
  il.oracle_cache = cache;
  il.make_controller = online_il_factory(off, /*train_seed=*/5);
  il.on_complete = [il_updates](DrmController& ctl, const RunResult&) {
    *il_updates = dynamic_cast<OnlineIlController&>(ctl).policy_updates();
  };

  Scenario rl;
  rl.id = "fig3/rl";
  rl.trace = seq;
  rl.oracle_cache = cache;
  {
    common::Rng pre_rng(11);
    rl.warmup = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
  }
  rl.make_controller = [](ScenarioContext& ctx) {
    return ControllerInstance{std::make_unique<QLearningController>(ctx.platform.space()),
                              nullptr};
  };

  ExperimentEngine engine;
  JsonlWriter json(json_path_arg(argc, argv));
  std::map<std::string, RunResult> res;
  for (auto& r : engine.run_batch({il, rl})) {
    json.write_metrics("fig3_convergence", r.id, drm_metrics(r.run));
    res.emplace(r.id, std::move(r.run));
  }
  const RunResult& res_il = res.at("fig3/il");
  const RunResult& res_rl = res.at("fig3/rl");

  std::puts("\n=== Fig. 3: accuracy w.r.t. Oracle (big-core frequency, +/-1 OPP) ===");
  common::Table t({"Time (s)", "Online-IL accuracy (%)", "RL accuracy (%)"});
  const std::size_t window = 100;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    const double time_s = res_il.records[w0].start_time_s;
    const double acc_il = 100.0 * res_il.big_freq_accuracy(w0, w0 + window, 1);
    const double acc_rl = 100.0 * res_rl.big_freq_accuracy(w0, w0 + window, 1);
    t.add_row(common::Table::fmt(time_s, 1), {acc_il, acc_rl}, 1);
  }
  t.print(std::cout);

  // Convergence summary: first window where IL stays >= 90%.
  double conv_time = -1.0;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    if (res_il.big_freq_accuracy(w0, w0 + window, 1) >= 0.9) {
      conv_time = res_il.records[w0 + window - 1].start_time_s;
      break;
    }
  }
  const double total = res_il.records.back().start_time_s;
  std::printf("\nOnline-IL converged (>=90%% window) at t = %.1f s (%.1f%% of %.1f s)\n",
              conv_time, 100.0 * conv_time / total, total);
  std::printf("Paper: ~6 s, about 4%% of the sequence; RL never converges.\n");
  std::printf("Policy updates: %zu (buffer of 100 decisions per update, <20 KB storage)\n",
              *il_updates);
  return 0;
}
