// Reproduces Fig. 3: convergence of the policy decision for the big-core
// frequency toward the Oracle, while a sequence of applications from Cortex
// and PARSEC runs after offline training on MiBench.
//
// Paper: online-IL reaches ~100% accuracy within ~6 s (about 4% of the
// sequence); RL does not converge over the whole 150 s sequence.
// Accuracy here counts a decision as correct when the chosen big-cluster
// OPP is within one 100 MHz step of the Oracle's.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

std::vector<workloads::AppSpec> online_sequence_apps() {
  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  return apps;
}

}  // namespace

int main() {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);

  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng);

  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_sequence_apps(), seq_rng);
  std::printf("Online sequence: %zu snippets (Cortex + PARSEC), offline training: MiBench\n",
              seq.size());

  DrmRunner runner(plat);
  const soc::SocConfig init{4, 4, 8, 10};

  // --- Online-IL arm ---------------------------------------------------------
  common::Rng il_rng(5);
  IlPolicy policy(plat.space());
  policy.train_offline(off.policy, il_rng);
  OnlineSocModels models(plat.space());
  models.bootstrap(off.model_samples);
  OnlineIlController il(plat.space(), policy, models);
  const auto res_il = runner.run(seq, il, init);

  // --- RL arm (pre-trained offline on MiBench, adapting online) --------------
  QLearningController rl(plat.space());
  {
    common::Rng pre_rng(11);
    const auto pre = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
    RunnerOptions fast;
    fast.compute_oracle = false;
    DrmRunner pre_runner(plat, fast);
    (void)pre_runner.run(pre, rl, init);
  }
  const auto res_rl = runner.run(seq, rl, init);

  std::puts("\n=== Fig. 3: accuracy w.r.t. Oracle (big-core frequency, +/-1 OPP) ===");
  common::Table t({"Time (s)", "Online-IL accuracy (%)", "RL accuracy (%)"});
  const std::size_t window = 100;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    const double time_s = res_il.records[w0].start_time_s;
    const double acc_il = 100.0 * res_il.big_freq_accuracy(w0, w0 + window, 1);
    const double acc_rl = 100.0 * res_rl.big_freq_accuracy(w0, w0 + window, 1);
    t.add_row(common::Table::fmt(time_s, 1), {acc_il, acc_rl}, 1);
  }
  t.print(std::cout);

  // Convergence summary: first window where IL stays >= 90%.
  double conv_time = -1.0;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    if (res_il.big_freq_accuracy(w0, w0 + window, 1) >= 0.9) {
      conv_time = res_il.records[w0 + window - 1].start_time_s;
      break;
    }
  }
  const double total = res_il.records.back().start_time_s;
  std::printf("\nOnline-IL converged (>=90%% window) at t = %.1f s (%.1f%% of the %.1f s sequence)\n",
              conv_time, 100.0 * conv_time / total, total);
  std::printf("Paper: ~6 s, about 4%% of the sequence; RL never converges.\n");
  std::printf("Policy updates: %zu (buffer of 100 decisions per update, <20 KB storage)\n",
              il.policy_updates());
  return 0;
}
