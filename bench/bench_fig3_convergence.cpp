// Reproduces Fig. 3: convergence of the policy decision for the big-core
// frequency toward the Oracle, while a sequence of applications from Cortex
// and PARSEC runs after offline training on MiBench.
//
// Paper: online-IL reaches ~100% accuracy within ~6 s (about 4% of the
// sequence); RL does not converge over the whole 150 s sequence.
// Accuracy here counts a decision as correct when the chosen big-cluster
// OPP is within one 100 MHz step of the Oracle's.
//
// The IL and RL arms are ScenarioRegistry entries ("fig3/il", "fig3/rl")
// sharing the same trace and offline dataset; each arm trains its own
// policy copy and the RL arm pre-trains through the Scenario warmup trace.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "common/table.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

std::vector<workloads::AppSpec> online_sequence_apps() {
  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  return apps;
}

/// Shared read-only artifacts, filled after the --list fast path (builders
/// run at select() time, strictly later).
struct SharedArtifacts {
  std::shared_ptr<OracleCache> cache;
  std::shared_ptr<const OfflineData> off;
};

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("fig3_convergence");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  auto shared = std::make_shared<SharedArtifacts>();

  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_sequence_apps(), seq_rng);

  auto il_updates = std::make_shared<std::size_t>(0);

  ScenarioRegistry registry;
  registry.add("fig3/il", [shared, seq, il_updates] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = shared->cache;
    s.make_controller = online_il_factory(shared->off, /*train_seed=*/5);
    s.on_complete = [il_updates](DrmController& ctl, const RunResult&) {
      *il_updates = dynamic_cast<OnlineIlController&>(ctl).policy_updates();
    };
    // Training-cost telemetry for the JSONL record (regression-gated final
    // loss; wall-time is reported but never gated — it is machine-dependent).
    s.extra_metrics = [](const DrmController& ctl, const RunResult&) {
      const auto& il = dynamic_cast<const OnlineIlController&>(ctl);
      return Metrics{{"train_time_s", il.policy_train_time_s()},
                     {"final_loss", il.policy_train_loss()}};
    };
    return s;
  });
  registry.add("fig3/rl", [shared, seq, mibench] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = shared->cache;
    common::Rng pre_rng(11);
    s.warmup = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
    s.make_controller = [](ScenarioContext& ctx) {
      return ControllerInstance{std::make_unique<QLearningController>(ctx.platform.space()),
                                nullptr};
    };
    return s;
  });

  if (driver.listing()) return driver.list(registry);

  // Both arms evaluate the same trace, so the exhaustive Oracle search runs
  // once per snippet instead of once per arm.  The engine's pool shards each
  // cold search and labels the collection trace in parallel; --store makes
  // the searches persistent across invocations.  The offline dataset is only
  // collected when the IL arm actually runs.
  ExperimentEngine engine;
  const auto selected = driver.selection(registry);
  shared->cache = std::make_shared<OracleCache>(driver.store(), &engine.pool());
  for (const std::string& name : selected) {
    if (name != "fig3/il") continue;
    soc::BigLittlePlatform plat;
    // The dataset is a pure function of what offline_data_key hashes, so a
    // warm store restores it bitwise instead of re-executing the platform
    // model over every (snippet, config) observation.  Restoring is
    // unconditionally safe here: the collect rng is scoped to this block and
    // nothing after it draws from the stream.
    const std::uint64_t data_key =
        offline_data_key(plat.params(), Objective::kEnergy, /*snippets_per_app=*/40,
                         /*configs_per_snippet=*/6, /*collect_seed=*/7, /*thermal_aware=*/false);
    auto off = std::make_shared<OfflineData>();
    bool restored = false;
    if (driver.store()) {
      if (const auto blob = driver.store()->get_blob("offline-dataset", data_key))
        restored = import_offline_data(*blob, *off);
    }
    if (!restored) {
      common::Rng rng(7);
      *off = collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng,
                                  shared->cache.get(), /*thermal_aware=*/false, &engine.pool());
      if (driver.store()) {
        std::vector<double> blob;
        export_offline_data(*off, blob);
        driver.store()->put_blob("offline-dataset", data_key, blob);
      }
    }
    shared->off = off;
  }
  std::printf("Online sequence: %zu snippets (Cortex + PARSEC), offline training: MiBench\n",
              seq.size());

  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  write_decision_latency(driver, results);
  write_oracle_stats(
      driver, *shared->cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());
  const bench::ResultIndex index(results);
  const AnyResult* any_il = index.find("fig3/il");
  const AnyResult* any_rl = index.find("fig3/rl");
  if (!any_il || !any_rl) return 0;  // subset run: the tables need both arms

  const RunResult& res_il = any_il->as<RunResult>();
  const RunResult& res_rl = any_rl->as<RunResult>();

  std::puts("\n=== Fig. 3: accuracy w.r.t. Oracle (big-core frequency, +/-1 OPP) ===");
  common::Table t({"Time (s)", "Online-IL accuracy (%)", "RL accuracy (%)"});
  const std::size_t window = 100;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    const double time_s = res_il.records[w0].start_time_s;
    const double acc_il = 100.0 * res_il.big_freq_accuracy(w0, w0 + window, 1);
    const double acc_rl = 100.0 * res_rl.big_freq_accuracy(w0, w0 + window, 1);
    t.add_row(common::Table::fmt(time_s, 1), {acc_il, acc_rl}, 1);
  }
  t.print(std::cout);

  // Convergence summary: first window where IL stays >= 90%.
  double conv_time = -1.0;
  for (std::size_t w0 = 0; w0 + window <= res_il.records.size(); w0 += window) {
    if (res_il.big_freq_accuracy(w0, w0 + window, 1) >= 0.9) {
      conv_time = res_il.records[w0 + window - 1].start_time_s;
      break;
    }
  }
  const double total = res_il.records.back().start_time_s;
  driver.json().write_metrics(driver.bench_name(), "fig3/summary",
                              {{"convergence_t_s", conv_time},
                               {"policy_updates", static_cast<double>(*il_updates)}});
  std::printf("\nOnline-IL converged (>=90%% window) at t = %.1f s (%.1f%% of %.1f s)\n",
              conv_time, 100.0 * conv_time / total, total);
  std::printf("Paper: ~6 s, about 4%% of the sequence; RL never converges.\n");
  std::printf("Policy updates: %zu (buffer of 100 decisions per update, <20 KB storage)\n",
              *il_updates);
  return 0;
}
