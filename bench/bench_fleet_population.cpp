// Fleet-scale population sweep: thousands of simulated devices through the
// streaming ExperimentEngine (ROADMAP "millions of users" arc).
//
// A seeded fleet::DevicePopulation perturbs the SoC platform into quantized
// silicon corners x OPP voltage bins, draws a continuous ambient spread, and
// stitches per-device workload mixes from canonical app traces; every device
// runs an "ondemand"-governed DRM trace under the fleet thermal limits
// (soc::ThermalSocAdapter clamping each decision) with E/Oracle computed
// through one shared OracleCache.  Quantized corners mean the whole fleet
// shares a bounded set of Oracle searches — cost is independent of the
// device count, and a --store warm pass skips all of it.
//
// Devices stream through ExperimentEngine::run_any_streaming in fixed-size
// shards (peak result memory = one shard, never the population) into a
// fleet::PopulationAggregator; per-shard id-order delivery makes the
// aggregate bitwise identical serial vs N-thread.  Per-cohort JSONL records
// gate the exact metrics (device / clamp / violation counts) and tolerance
// the energy ratios; wall time never reaches stdout.
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "common/table.h"
#include "core/oracle.h"
#include "core/scenario_registry.h"
#include "fleet/aggregator.h"
#include "fleet/device_population.h"

using namespace oal;

namespace {

core::Metrics cohort_metrics(const fleet::CohortStats& c) {
  core::Metrics m;
  m.emplace_back("devices", static_cast<double>(c.devices));
  m.emplace_back("snippets", static_cast<double>(c.snippets));
  m.emplace_back("clamped", static_cast<double>(c.clamped));
  m.emplace_back("skin_violations", static_cast<double>(c.skin_violations));
  m.emplace_back("energy_ratio_mean", c.energy_ratio.stats().mean());
  m.emplace_back("energy_ratio_p50", c.energy_ratio.percentile(50.0));
  m.emplace_back("energy_ratio_p99", c.energy_ratio.percentile(99.0));
  m.emplace_back("clamp_rate_mean", c.clamp_rate.stats().mean());
  m.emplace_back("clamp_rate_p99", c.clamp_rate.percentile(99.0));
  m.emplace_back("peak_skin_p99", c.peak_skin_c.percentile(99.0));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("fleet_population");
  std::size_t devices = 200;
  std::size_t shard_size = 64;
  std::size_t threads = 0;
  driver.add_size_option("--devices", &devices, "simulated devices in the population");
  driver.add_size_option("--shard-size", &shard_size,
                         "scenarios materialized per streaming shard");
  driver.add_size_option("--threads", &threads, "engine worker threads");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  core::ExperimentEngine engine(core::ExperimentOptions{threads});
  auto cache = std::make_shared<core::OracleCache>(driver.store(), &engine.pool());

  fleet::PopulationConfig cfg;
  cfg.devices = devices;
  const fleet::DevicePopulation population(cfg, cache);

  // Every device is a registry arm, so --list and '/'-segment cohort
  // prefixes ("fleet/typ", "fleet/fast/vhigh/hot") work exactly as on every
  // other bench.  Builders are lazy: cataloging never builds a scenario.
  core::ScenarioRegistry registry;
  for (std::size_t i = 0; i < population.size(); ++i)
    registry.add_any(population.spec(i).id, [population, i] { return population.scenario(i); });

  if (driver.listing()) return driver.list(registry);

  // Stream the selection: the generator builds one scenario at a time in
  // name order, the engine runs fixed-size shards, and the aggregator folds
  // each result as it is delivered — no result vector ever exists.
  const std::vector<std::string> names = driver.selection(registry);
  fleet::PopulationAggregator aggregate(cfg.t_max_skin_c);
  std::size_t cursor = 0;
  const std::size_t ran = engine.run_any_streaming(
      [&]() -> std::optional<core::AnyScenario> {
        if (cursor >= names.size()) return std::nullopt;
        return registry.build_any(names[cursor++]);
      },
      [&](core::AnyResult&& r) { aggregate.add(r); }, core::StreamOptions{shard_size});

  // ---- JSONL: population + per-cohort records -----------------------------
  driver.json().write_metrics(driver.bench_name(), driver.bench_name() + "/population",
                              cohort_metrics(aggregate.population()));
  for (const auto& [cohort, stats] : aggregate.cohorts())
    driver.json().write_metrics(driver.bench_name(), driver.bench_name() + "/cohort/" + cohort,
                                cohort_metrics(stats));
  write_oracle_stats(
      driver, *cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());

  // ---- Report (deterministic values only — never wall time) ---------------
  const fleet::CohortStats& pop = aggregate.population();
  std::printf("=== Fleet population sweep: %zu devices, shard size %zu ===\n", ran, shard_size);
  std::printf("E/Oracle mean %.4f  p50 %.4f  p99 %.4f\n", pop.energy_ratio.stats().mean(),
              pop.energy_ratio.percentile(50.0), pop.energy_ratio.percentile(99.0));
  std::printf("Clamp rate mean %.4f  p99 %.4f   skin violations %zu/%zu devices\n",
              pop.clamp_rate.stats().mean(), pop.clamp_rate.percentile(99.0),
              pop.skin_violations, pop.devices);

  common::Table cohorts({"Cohort", "Devices", "E/Oracle p50", "E/Oracle p99", "Clamp rate",
                         "Skin viol"});
  for (const auto& [cohort, stats] : aggregate.cohorts())
    cohorts.add_row({cohort, std::to_string(stats.devices),
                     common::Table::fmt(stats.energy_ratio.percentile(50.0), 4),
                     common::Table::fmt(stats.energy_ratio.percentile(99.0), 4),
                     common::Table::fmt(stats.clamp_rate.stats().mean(), 4),
                     std::to_string(stats.skin_violations)});
  std::puts("");
  std::puts(cohorts.to_string().c_str());

  if (!aggregate.worst().empty()) {
    common::Table tail({"Tail device", "E/Oracle", "Clamp rate", "Peak skin (C)"});
    for (const fleet::TailDevice& d : aggregate.worst())
      tail.add_row({d.id, common::Table::fmt(d.energy_ratio, 4),
                    common::Table::fmt(d.clamp_rate, 4), common::Table::fmt(d.peak_skin_c, 2)});
    std::puts(tail.to_string().c_str());
  }
  return 0;
}
