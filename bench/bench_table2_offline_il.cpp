// Reproduces Table II: energy (normalized w.r.t. the Oracle) of an IL policy
// trained ONLY on MiBench applications, evaluated on applications from
// MiBench, Cortex and PARSEC.  Also prints Table I (the collected counters)
// for completeness.
//
// Paper values: ~1.00-1.01 on MiBench, 1.09-1.76 on Cortex, 1.47-1.86 on
// PARSEC — the offline policy fails to generalize across suites.
//
// The nine per-app evaluations are ScenarioRegistry arms
// ("table2/<benchmark>") executed in parallel; the offline policy is
// trained once — after the --list fast path — and shared read-only across
// scenarios (OfflineIlController never mutates it).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "common/table.h"
#include "core/online_il.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

/// Shared read-only artifacts, filled after the --list fast path (builders
/// run at select() time, strictly later).
struct SharedArtifacts {
  std::shared_ptr<OracleCache> cache;
  std::shared_ptr<const IlPolicy> policy;
};

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("table2_offline_il");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  struct Row {
    const char* name;
    const char* paper;
  };
  const Row rows[] = {{"BML", "1.00"},       {"Dijkstra", "1.01"}, {"FFT", "1.00"},
                      {"Qsort", "1.00"},     {"MotionEst", "1.13"}, {"Spectral", "1.09"},
                      {"Kmeans", "1.76"},    {"Blkschls-2T", "1.86"}, {"Blkschls-4T", "1.47"}};

  auto shared = std::make_shared<SharedArtifacts>();
  ScenarioRegistry registry;
  for (const Row& row : rows) {
    const auto& app = workloads::CpuBenchmarks::by_name(row.name);
    registry.add(std::string("table2/") + row.name, [shared, app] {
      Scenario s;
      common::Rng trace_rng(300 + app.app_id);
      s.trace = workloads::CpuBenchmarks::trace(app, 80, trace_rng);
      s.oracle_cache = shared->cache;
      s.make_controller = offline_il_factory(shared->policy);
      return s;
    });
  }
  if (driver.listing()) return driver.list(registry);

  std::puts("=== Table I: data collected in each snippet ===");
  common::Table t1({"Counter", "Counter"});
  t1.add_row({"Instructions Retired", "Noncache External Memory Requests"});
  t1.add_row({"CPU Cycles Total", "Little Cluster Utilization"});
  t1.add_row({"Branch Miss Prediction Per Core", "Big Cluster Utilization"});
  t1.add_row({"Level 2 Cache Misses Total", "Chip Power Consumption"});
  t1.add_row({"Data Memory Access", "Avg Runnable Threads (OS)"});
  t1.print(std::cout);

  // Offline phase: Oracle construction + IL training on MiBench only.  The
  // engine pool shards the cold Oracle searches; --store persists them (and
  // the trained policy) so a warm invocation recomputes neither.
  soc::BigLittlePlatform plat;
  ExperimentEngine engine;
  shared->cache = std::make_shared<OracleCache>(driver.store(), &engine.pool());
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  {
    // Content address of the trained policy: platform + objective + collect
    // geometry/seed.  The training rng continues the collect stream, so the
    // collect seed pins it too; skipping train_offline on a warm hit is safe
    // because nothing after this block draws from `rng`.
    std::uint64_t il_key = platform_fingerprint(plat.params());
    fnv1a_mix(il_key, static_cast<std::uint64_t>(Objective::kEnergy));
    for (std::uint64_t v : {std::uint64_t{40}, std::uint64_t{6}, std::uint64_t{7}})
      fnv1a_mix(il_key, v);
    auto policy = std::make_shared<IlPolicy>(plat.space());
    bool restored = false;
    if (driver.store()) {
      if (const auto blob = driver.store()->get_blob("table2-il-policy", il_key))
        restored = policy->import_artifact(*blob);
    }
    if (!restored) {
      // Cold path only: the dataset cannot substitute for running collect
      // here, because training continues the collect rng stream — a
      // restored dataset would leave `rng` at the wrong position.  Collect
      // runs, and the result is exported so the *other* collection benches
      // (same content address) can skip their platform-model re-execution.
      common::Rng rng(7);
      const auto off =
          collect_offline_data(plat, mibench, Objective::kEnergy,
                               /*snippets_per_app=*/40, /*configs_per_snippet=*/6, rng,
                               shared->cache.get(), /*thermal_aware=*/false, &engine.pool());
      if (driver.store()) {
        const std::uint64_t data_key =
            offline_data_key(plat.params(), Objective::kEnergy, /*snippets_per_app=*/40,
                             /*configs_per_snippet=*/6, /*collect_seed=*/7,
                             /*thermal_aware=*/false);
        std::vector<double> blob;
        export_offline_data(off, blob);
        driver.store()->put_blob("offline-dataset", data_key, blob);
      }
      policy->train_offline(off.policy, rng);
      if (driver.store())
        driver.store()->put_blob("table2-il-policy", il_key, policy->export_artifact());
    }
    driver.json().write_metrics(driver.bench_name(), "table2/offline_policy_training",
                                {{"train_time_s", policy->train_time_s()},
                                 {"final_loss", policy->last_train_loss()}});
    shared->policy = policy;
  }
  std::printf("\nOffline IL policy: %zu params, %zu bytes (paper budget: <20 KB)\n",
              shared->policy->num_params(), shared->policy->storage_bytes());
  // Wall-time goes to the JSONL record only: stdout must stay byte-identical
  // across runs (the repo-wide determinism probe diffs two invocations).
  std::printf("Offline training final-epoch loss: %.4f\n",
              shared->policy->last_train_loss());

  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  write_decision_latency(driver, results);
  write_oracle_stats(
      driver, *shared->cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());
  const bench::ResultIndex index(results);

  std::puts("\n=== Table II: normalized energy of the offline-only IL policy ===");
  common::Table t2({"Suite", "Benchmark", "Normalized energy (this repro)", "Paper"});
  for (const Row& row : rows) {
    const AnyResult* r = index.find(std::string("table2/") + row.name);
    if (!r) continue;  // arm deselected by prefix
    const auto& app = workloads::CpuBenchmarks::by_name(row.name);
    t2.add_row({workloads::suite_name(app.suite), row.name,
                common::Table::fmt(r->as<RunResult>().energy_ratio(), 2), row.paper});
  }
  t2.print(std::cout);
  std::puts("\nShape check: MiBench ~1.0 (training suite); Cortex and PARSEC");
  std::puts("substantially above 1.0 (distribution shift) — matching the paper's");
  std::puts("argument that offline IL policies do not generalize to unseen suites.");
  return 0;
}
