// Reproduces Table II: energy (normalized w.r.t. the Oracle) of an IL policy
// trained ONLY on MiBench applications, evaluated on applications from
// MiBench, Cortex and PARSEC.  Also prints Table I (the collected counters)
// for completeness.
//
// Paper values: ~1.00-1.01 on MiBench, 1.09-1.76 on Cortex, 1.47-1.86 on
// PARSEC — the offline policy fails to generalize across suites.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/online_il.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  std::puts("=== Table I: data collected in each snippet ===");
  common::Table t1({"Counter", "Counter"});
  t1.add_row({"Instructions Retired", "Noncache External Memory Requests"});
  t1.add_row({"CPU Cycles Total", "Little Cluster Utilization"});
  t1.add_row({"Branch Miss Prediction Per Core", "Big Cluster Utilization"});
  t1.add_row({"Level 2 Cache Misses Total", "Chip Power Consumption"});
  t1.add_row({"Data Memory Access", "Avg Runnable Threads (OS)"});
  t1.print(std::cout);

  soc::BigLittlePlatform plat;
  common::Rng rng(7);

  // Offline phase: Oracle construction + IL training on MiBench only.
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy,
                                        /*snippets_per_app=*/40, /*configs_per_snippet=*/6, rng);
  IlPolicy policy(plat.space());
  policy.train_offline(off.policy, rng);
  std::printf("\nOffline IL policy: %zu params, %zu bytes (paper budget: <20 KB)\n",
              policy.num_params(), policy.storage_bytes());

  std::puts("\n=== Table II: normalized energy of the offline-only IL policy ===");
  common::Table t2({"Suite", "Benchmark", "Normalized energy (this repro)", "Paper"});
  struct Row {
    const char* name;
    const char* paper;
  };
  const Row rows[] = {{"BML", "1.00"},       {"Dijkstra", "1.01"}, {"FFT", "1.00"},
                      {"Qsort", "1.00"},     {"MotionEst", "1.13"}, {"Spectral", "1.09"},
                      {"Kmeans", "1.76"},    {"Blkschls-2T", "1.86"}, {"Blkschls-4T", "1.47"}};
  DrmRunner runner(plat);
  const soc::SocConfig init{4, 4, 8, 10};
  for (const auto& row : rows) {
    const auto& app = workloads::CpuBenchmarks::by_name(row.name);
    const auto trace = workloads::CpuBenchmarks::trace(app, 80, rng);
    OfflineIlController ctl(plat.space(), policy);
    const auto res = runner.run(trace, ctl, init);
    t2.add_row({workloads::suite_name(app.suite), row.name,
                common::Table::fmt(res.energy_ratio(), 2), row.paper});
  }
  t2.print(std::cout);
  std::puts("\nShape check: MiBench ~1.0 (training suite); Cortex and PARSEC");
  std::puts("substantially above 1.0 (distribution shift) — matching the paper's");
  std::puts("argument that offline IL policies do not generalize to unseen suites.");
  return 0;
}
