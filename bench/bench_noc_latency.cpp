// Section III-C artifacts: queueing-theoretic NoC latency model accuracy vs
// the packet-level simulator, SVR correction (Qian-style), and the online
// residual adaptation the survey calls for.
#include <cstdio>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "noc/svr_model.h"

using namespace oal;
using namespace oal::noc;

namespace {

std::vector<TrafficMatrix> make_traffics(const Mesh& mesh, const std::vector<double>& rates) {
  std::vector<TrafficMatrix> out;
  for (double r : rates) {
    out.push_back(TrafficMatrix::uniform(mesh.num_nodes(), r));
    out.push_back(TrafficMatrix::transpose(mesh.cols(), mesh.rows(), r * 0.8));
    out.push_back(TrafficMatrix::hotspot(mesh.num_nodes(), mesh.num_nodes() / 2, r * 0.7));
    out.push_back(TrafficMatrix::bit_complement(mesh.cols(), mesh.rows(), r * 0.8));
  }
  return out;
}

}  // namespace

int main() {
  const Mesh mesh(8, 8);
  const NocParams params;
  const AnalyticalNocModel analytical(mesh, params);
  const NocSimulator sim(mesh, params);

  std::puts("=== NoC latency: analytical model vs packet-level simulation ===");
  common::Table t({"Traffic", "Rate/node", "Sim (cycles)", "Analytical", "Err (%)", "Max rho"});
  std::vector<double> ana_err;
  for (double rate : {0.005, 0.010, 0.015, 0.020, 0.025}) {
    struct Case {
      const char* name;
      TrafficMatrix tm;
    };
    const Case cases[] = {
        {"uniform", TrafficMatrix::uniform(mesh.num_nodes(), rate)},
        {"transpose", TrafficMatrix::transpose(mesh.cols(), mesh.rows(), rate)},
        {"hotspot", TrafficMatrix::hotspot(mesh.num_nodes(), 27, rate)},
        {"bit-compl", TrafficMatrix::bit_complement(mesh.cols(), mesh.rows(), rate)},
    };
    for (const auto& c : cases) {
      SimConfig sc;
      sc.seed = 17 + static_cast<std::uint64_t>(rate * 1e4);
      const auto s = sim.simulate(c.tm, sc);
      const auto a = analytical.evaluate(c.tm);
      const double err = 100.0 * std::abs(a.avg_latency_cycles - s.avg_latency_cycles) /
                         s.avg_latency_cycles;
      ana_err.push_back(err);
      t.add_row({c.name, common::Table::fmt(rate, 3), common::Table::fmt(s.avg_latency_cycles, 1),
                 common::Table::fmt(a.avg_latency_cycles, 1), common::Table::fmt(err, 1),
                 common::Table::fmt(a.max_link_utilization, 2)});
    }
  }
  t.print(std::cout);
  std::printf("Analytical model mean error: %.1f%%\n\n", common::mean(ana_err));

  // ---- SVR correction --------------------------------------------------------
  std::puts("=== SVR-corrected model (Qian et al. construction) ===");
  const auto train_traffics = make_traffics(mesh, {0.004, 0.008, 0.012, 0.016, 0.020, 0.024});
  std::vector<double> train_lat;
  for (std::size_t i = 0; i < train_traffics.size(); ++i) {
    SimConfig sc;
    sc.seed = 100 + i;
    train_lat.push_back(sim.simulate(train_traffics[i], sc).avg_latency_cycles);
  }
  SvrNocModel svr(mesh, params);
  svr.fit(train_traffics, train_lat);

  const auto test_traffics = make_traffics(mesh, {0.006, 0.012, 0.018});
  std::vector<double> sim_lat, svr_pred, ana_pred;
  for (std::size_t i = 0; i < test_traffics.size(); ++i) {
    SimConfig sc;
    sc.seed = 500 + i;
    sim_lat.push_back(sim.simulate(test_traffics[i], sc).avg_latency_cycles);
    svr_pred.push_back(svr.predict(test_traffics[i]));
    ana_pred.push_back(svr.analytical(test_traffics[i]));
  }
  std::printf("Held-out MAPE: analytical %.1f%%, SVR-corrected %.1f%%\n",
              common::mape(sim_lat, svr_pred.size() ? ana_pred : ana_pred),
              common::mape(sim_lat, svr_pred));

  // ---- Online adaptation (survey Section III-C closing point) ---------------
  // The simulator's service time drifts at "runtime" (e.g. DVFS of the NoC);
  // the offline SVR goes stale, the online residual recovers.
  NocParams drifted = params;
  drifted.packet_service_cycles = 5.0;  // 25% slower links
  const NocSimulator sim2(mesh, drifted);
  SvrNocModel adaptive(mesh, params);
  adaptive.fit(train_traffics, train_lat);
  // A runtime monitor sees the *same* workloads repeatedly: measure the
  // stale model once, adapt on a few epochs of measurements, re-measure.
  std::vector<double> stale_err, adapted_err;
  for (std::size_t i = 0; i < test_traffics.size(); ++i) {
    SimConfig sc;
    sc.seed = 900 + i;
    const double measured = sim2.simulate(test_traffics[i], sc).avg_latency_cycles;
    stale_err.push_back(std::abs(adaptive.predict(test_traffics[i]) - measured) / measured * 100.0);
  }
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (std::size_t i = 0; i < test_traffics.size(); ++i) {
      SimConfig sc;
      sc.seed = 1200 + 37 * epoch + i;
      adaptive.update(test_traffics[i], sim2.simulate(test_traffics[i], sc).avg_latency_cycles);
    }
  }
  for (std::size_t i = 0; i < test_traffics.size(); ++i) {
    SimConfig sc;
    sc.seed = 2100 + i;
    const double measured = sim2.simulate(test_traffics[i], sc).avg_latency_cycles;
    adapted_err.push_back(std::abs(adaptive.predict(test_traffics[i]) - measured) / measured *
                          100.0);
  }
  std::printf("After a 25%% link-speed drift: stale model error %.1f%%, online-adapted %.1f%%\n",
              common::mean(stale_err), common::mean(adapted_err));
  std::puts("(The RLS residual on top of the offline SVR recovers accuracy after the");
  std::puts("platform drifts — the adaptive NoC modeling the survey calls for.)");
  return 0;
}
