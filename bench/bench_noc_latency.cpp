// Section III-C artifacts: queueing-theoretic NoC latency model accuracy vs
// the packet-level simulator, SVR correction (Qian-style), and the online
// residual adaptation the survey calls for.
//
// Every simulator run is a NocScenario cataloged in a ScenarioRegistry
// ("model/...", "svr/...", "drift/..."); the shared bench driver selects
// arms by prefix and one ExperimentEngine batch executes them in parallel,
// then the fits and adaptation run over the gathered results.  Sections
// whose arms were deselected are skipped.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/driver.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/domain.h"
#include "core/scenario_registry.h"
#include "noc/svr_model.h"

using namespace oal;
using namespace oal::core;
using namespace oal::noc;

namespace {

std::vector<TrafficMatrix> make_traffics(const Mesh& mesh, const std::vector<double>& rates) {
  std::vector<TrafficMatrix> out;
  for (double r : rates) {
    out.push_back(TrafficMatrix::uniform(mesh.num_nodes(), r));
    out.push_back(TrafficMatrix::transpose(mesh.cols(), mesh.rows(), r * 0.8));
    out.push_back(TrafficMatrix::hotspot(mesh.num_nodes(), mesh.num_nodes() / 2, r * 0.7));
    out.push_back(TrafficMatrix::bit_complement(mesh.cols(), mesh.rows(), r * 0.8));
  }
  return out;
}

NocScenario sim_point(const TrafficMatrix& tm, std::uint64_t seed, const NocParams& params,
                      bool run_analytical) {
  NocScenario s;
  s.params = params;
  s.traffic = tm;
  s.sim.seed = seed;
  s.run_analytical = run_analytical;
  return s;
}

std::string key3(const char* group, std::size_t a, std::size_t b) {
  return std::string(group) + "/" + std::to_string(a) + "/" + std::to_string(b);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("noc_latency");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  const Mesh mesh(8, 8);
  const NocParams params;
  NocParams drifted = params;
  drifted.packet_service_cycles = 5.0;  // 25% slower links

  const auto train_traffics = make_traffics(mesh, {0.004, 0.008, 0.012, 0.016, 0.020, 0.024});
  const auto test_traffics = make_traffics(mesh, {0.006, 0.012, 0.018});
  const double rates[] = {0.005, 0.010, 0.015, 0.020, 0.025};
  const char* pattern_names[] = {"uniform", "transpose", "hotspot", "bit-compl"};

  // ---- The catalog: every simulator run in this bench ----------------------
  ScenarioRegistry registry;
  const auto add_point = [&registry](const std::string& name, const TrafficMatrix& tm,
                                     std::uint64_t seed, const NocParams& p, bool analytical) {
    registry.add_any(name,
                     [tm, seed, p, analytical] { return sim_point(tm, seed, p, analytical); });
  };
  for (std::size_t ri = 0; ri < 5; ++ri) {
    const double rate = rates[ri];
    const TrafficMatrix tms[] = {
        TrafficMatrix::uniform(mesh.num_nodes(), rate),
        TrafficMatrix::transpose(mesh.cols(), mesh.rows(), rate),
        TrafficMatrix::hotspot(mesh.num_nodes(), 27, rate),
        TrafficMatrix::bit_complement(mesh.cols(), mesh.rows(), rate),
    };
    for (std::size_t p = 0; p < 4; ++p)
      add_point(key3("model", ri, p), tms[p], 17 + static_cast<std::uint64_t>(rate * 1e4), params,
                true);
  }
  for (std::size_t i = 0; i < train_traffics.size(); ++i)
    add_point(key3("svr/train", i, 0), train_traffics[i], 100 + i, params, false);
  for (std::size_t i = 0; i < test_traffics.size(); ++i)
    add_point(key3("svr/test", i, 0), test_traffics[i], 500 + i, params, false);
  for (std::size_t i = 0; i < test_traffics.size(); ++i)
    add_point(key3("drift/stale", i, 0), test_traffics[i], 900 + i, drifted, false);
  for (std::size_t epoch = 0; epoch < 3; ++epoch)
    for (std::size_t i = 0; i < test_traffics.size(); ++i)
      add_point(key3("drift/adapt", epoch, i), test_traffics[i], 1200 + 37 * epoch + i, drifted,
                false);
  for (std::size_t i = 0; i < test_traffics.size(); ++i)
    add_point(key3("drift/final", i, 0), test_traffics[i], 2100 + i, drifted, false);

  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  const bench::ResultIndex index(results);
  const auto sim_latency = [&](const std::string& id) {
    return index.find(id)->metric("sim_avg_latency_cycles");
  };

  // ---- Accuracy sweep ------------------------------------------------------
  bool model_family = false;
  for (std::size_t ri = 0; ri < 5 && !model_family; ++ri)
    for (std::size_t p = 0; p < 4 && !model_family; ++p)
      model_family = index.has(key3("model", ri, p));
  if (model_family) {
    std::puts("=== NoC latency: analytical model vs packet-level simulation ===");
    common::Table t({"Traffic", "Rate/node", "Sim (cycles)", "Analytical", "Err (%)", "Max rho"});
    std::vector<double> ana_err;
    for (std::size_t ri = 0; ri < 5; ++ri) {
      for (std::size_t p = 0; p < 4; ++p) {
        const AnyResult* r = index.find(key3("model", ri, p));
        if (!r) continue;  // arm deselected by prefix
        const double sim_lat = r->metric("sim_avg_latency_cycles");
        const double ana_lat = r->metric("ana_avg_latency_cycles");
        const double err = 100.0 * std::abs(ana_lat - sim_lat) / sim_lat;
        ana_err.push_back(err);
        t.add_row({pattern_names[p], common::Table::fmt(rates[ri], 3),
                   common::Table::fmt(sim_lat, 1), common::Table::fmt(ana_lat, 1),
                   common::Table::fmt(err, 1),
                   common::Table::fmt(r->metric("ana_max_link_utilization"), 2)});
      }
    }
    t.print(std::cout);
    std::printf("Analytical model mean error: %.1f%%\n\n", common::mean(ana_err));
  }

  // ---- SVR correction ------------------------------------------------------
  std::vector<std::string> svr_ids;
  for (std::size_t i = 0; i < train_traffics.size(); ++i)
    svr_ids.push_back(key3("svr/train", i, 0));
  std::vector<std::string> test_ids;
  for (std::size_t i = 0; i < test_traffics.size(); ++i) test_ids.push_back(key3("svr/test", i, 0));
  const bool have_train = index.has_all(svr_ids);
  std::vector<double> train_lat;
  if (have_train)
    for (std::size_t i = 0; i < train_traffics.size(); ++i)
      train_lat.push_back(sim_latency(key3("svr/train", i, 0)));
  if (have_train && index.has_all(test_ids)) {
    std::puts("=== SVR-corrected model (Qian et al. construction) ===");
    SvrNocModel svr(mesh, params);
    svr.fit(train_traffics, train_lat);

    std::vector<double> sim_lat, svr_pred, ana_pred;
    for (std::size_t i = 0; i < test_traffics.size(); ++i) {
      sim_lat.push_back(sim_latency(key3("svr/test", i, 0)));
      svr_pred.push_back(svr.predict(test_traffics[i]));
      ana_pred.push_back(svr.analytical(test_traffics[i]));
    }
    std::printf("Held-out MAPE: analytical %.1f%%, SVR-corrected %.1f%%\n",
                common::mape(sim_lat, ana_pred), common::mape(sim_lat, svr_pred));
  }

  // ---- Online adaptation (survey Section III-C closing point) --------------
  // The simulator's service time drifts at "runtime" (e.g. DVFS of the NoC);
  // the offline SVR goes stale, the online residual recovers.  A runtime
  // monitor sees the *same* workloads repeatedly: measure the stale model
  // once, adapt on a few epochs of measurements, re-measure.
  std::vector<std::string> drift_ids;
  for (std::size_t i = 0; i < test_traffics.size(); ++i) {
    drift_ids.push_back(key3("drift/stale", i, 0));
    drift_ids.push_back(key3("drift/final", i, 0));
  }
  for (std::size_t epoch = 0; epoch < 3; ++epoch)
    for (std::size_t i = 0; i < test_traffics.size(); ++i)
      drift_ids.push_back(key3("drift/adapt", epoch, i));
  if (have_train && index.has_all(drift_ids)) {
    SvrNocModel adaptive(mesh, params);
    adaptive.fit(train_traffics, train_lat);
    std::vector<double> stale_err, adapted_err;
    for (std::size_t i = 0; i < test_traffics.size(); ++i) {
      const double measured = sim_latency(key3("drift/stale", i, 0));
      stale_err.push_back(std::abs(adaptive.predict(test_traffics[i]) - measured) / measured *
                          100.0);
    }
    for (std::size_t epoch = 0; epoch < 3; ++epoch)
      for (std::size_t i = 0; i < test_traffics.size(); ++i)
        adaptive.update(test_traffics[i], sim_latency(key3("drift/adapt", epoch, i)));
    for (std::size_t i = 0; i < test_traffics.size(); ++i) {
      const double measured = sim_latency(key3("drift/final", i, 0));
      adapted_err.push_back(std::abs(adaptive.predict(test_traffics[i]) - measured) / measured *
                            100.0);
    }
    std::printf("After a 25%% link-speed drift: stale model error %.1f%%, online-adapted %.1f%%\n",
                common::mean(stale_err), common::mean(adapted_err));
    std::puts("(The RLS residual on top of the offline SVR recovers accuracy after the");
    std::puts("platform drifts — the adaptive NoC modeling the survey calls for.)");
  }
  return 0;
}
