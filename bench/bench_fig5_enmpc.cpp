// Reproduces Fig. 5: energy savings of the explicit NMPC algorithm compared
// to the baseline (busy-threshold, all-slices-on) GPU power management, for
// the GPU alone, for the system package (PKG), and for package plus memory
// (PKG+DRAM), across ten graphics workloads.
//
// The twenty arms (10 workloads x {baseline, ENMPC}) plus the thermal
// sweeps are one ScenarioRegistry catalog executed as one parallel batch
// through the shared bench driver; each scenario owns its platform instance
// and the ENMPC arms bootstrap + fit their explicit law on the worker:
//   fig5/<workload>/<baseline|enmpc>             the paper's Fig. 5 arms
//   fig5_thermal/<wl>/skin<limit>/<blind|aware>  steady-state skin budget,
//                                                blind vs budget-constrained
//                                                (thermal-aware) ENMPC
//   fig5_transient/<wl>/h<horizon>/<blind|aware> preheated device, transient
//                                                headroom budget recomputed
//                                                every frame
//
// Paper: GPU savings range from 5% (AngryBirds) to 58% (SharkDash), average
// ~25%; PKG and PKG+DRAM save ~15%; performance overhead is ~0.4%.
#include <cstdio>
#include <iostream>

#include "bench/driver.h"
#include "common/table.h"
#include "core/domain.h"
#include "core/scenario_registry.h"
#include "core/scenario_factories.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  const double fps = 30.0;
  std::size_t frames = 1800;  // 60 s at 30 FPS per workload
  bench::BenchDriver driver("fig5_enmpc");
  driver.add_size_option("--frames", &frames, "frames per workload trace");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  NmpcConfig cfg;
  cfg.fps_target = fps;

  ScenarioRegistry registry;
  for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
    for (const char* arm : {"baseline", "enmpc"}) {
      const bool baseline = arm == std::string("baseline");
      registry.add_any("fig5/" + spec.name + "/" + arm, [spec, frames, fps, cfg, baseline] {
        common::Rng trng(1000 + spec.id);
        GpuScenario s;
        s.fps_target = fps;
        s.trace = workloads::GpuBenchmarks::trace(spec, frames, trng);
        s.initial = gpu::GpuConfig{9, s.platform.max_slices};
        s.make_controller = baseline ? gpu_baseline_factory() : gpu_enmpc_factory(cfg, 1500);
        return AnyScenario(std::move(s));
      });
    }
  }

  // ---- GPU budget sweep: ENMPC under a skin-temperature budget -------------
  // ThermalGpuScenario couples the frame loop into the RC network's (hitherto
  // unused) GPU node: frame energies heat the die, the skin limit sets a
  // power budget, and soc::ThermalGpuAdapter throttles decisions (frequency
  // first, then slice gating).  Each point runs twice: thermally *blind*
  // ENMPC (throttled after the fact) and *budget-constrained* ENMPC
  // (NmpcConfig::thermal_aware — the budget is a feasibility predicate of
  // the solve, fed by the runner's telemetry channel), so the sweep shows
  // how much of the firmware correction the controller can anticipate away.
  const auto thermal_spec = workloads::GpuBenchmarks::by_name("AngryBirds");
  NmpcConfig aware_cfg = cfg;
  aware_cfg.thermal_aware = true;
  const auto add_thermal_arm = [&registry, thermal_spec, frames, fps](
                                   const std::string& id, NmpcConfig arm_cfg,
                                   soc::ThermalGpuConstraintParams thermal) {
    registry.add_any(id, [thermal_spec, frames, fps, arm_cfg, thermal] {
      common::Rng trng(1000 + thermal_spec.id);
      GpuScenario s;
      s.fps_target = fps;
      s.trace = workloads::GpuBenchmarks::trace(thermal_spec, frames, trng);
      s.initial = gpu::GpuConfig{9, s.platform.max_slices};
      s.make_controller = gpu_enmpc_factory(arm_cfg, 1500);
      return AnyScenario(ThermalGpuScenario{std::move(s), thermal});
    });
  };
  const std::vector<double> skin_limits{45.0, 41.0, 39.0, 37.5};
  for (double limit : skin_limits) {
    soc::ThermalGpuConstraintParams thermal;
    thermal.ambient_c = 35.0;
    thermal.limits.t_max_skin_c = limit;
    thermal.limits.t_max_junction_c = 75.0;
    thermal.horizon_s = 0.0;  // steady-state budget
    const std::string base =
        "fig5_thermal/" + thermal_spec.name + "/skin" + common::Table::fmt(limit, 1);
    add_thermal_arm(base + "/blind", cfg, thermal);
    add_thermal_arm(base + "/aware", aware_cfg, thermal);
  }

  // ---- Transient-budget sweep: preheated device, budget moving every frame --
  // A device already hot from prior load (non-default initial temperatures)
  // under a transient_power_headroom budget recomputed every frame period:
  // short horizons grant bursts the thermal capacitance can absorb, long
  // horizons converge on the sustainable level; meanwhile the budget relaxes
  // as throttling lets the RC network cool.  The telemetry channel is what
  // lets the aware controller track this moving target.
  const std::vector<double> headroom_horizons{10.0, 120.0, 240.0};
  for (double horizon : headroom_horizons) {
    soc::ThermalGpuConstraintParams thermal;
    thermal.ambient_c = 35.0;
    thermal.limits.t_max_skin_c = 40.0;
    thermal.limits.t_max_junction_c = 75.0;
    thermal.horizon_s = horizon;
    thermal.budget_interval_s = 1.0 / fps;  // refresh the budget every frame
    // Preheated: die nodes well above ambient, skin 0.5 C under its limit
    // (node order: big, little, gpu, pcb, skin).
    thermal.initial_temperature_c = {48.0, 46.0, 58.0, 45.0, 39.5};
    const std::string base =
        "fig5_transient/" + thermal_spec.name + "/h" + common::Table::fmt(horizon, 0);
    add_thermal_arm(base + "/blind", cfg, thermal);
    add_thermal_arm(base + "/aware", aware_cfg, thermal);
  }

  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  const bench::ResultIndex index(results);

  bool printed_fig5 = false;
  {
    common::Table t({"Workload", "GPU (%)", "PKG (%)", "PKG+DRAM (%)", "Miss base",
                     "Miss ENMPC"});
    double sum_gpu = 0.0, sum_pkg = 0.0, sum_dram = 0.0;
    double miss_base_total = 0.0, miss_enmpc_total = 0.0;
    int n = 0;
    for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
      const AnyResult* b = index.find("fig5/" + spec.name + "/baseline");
      const AnyResult* e = index.find("fig5/" + spec.name + "/enmpc");
      if (!b || !e) continue;  // arm deselected by prefix
      const GpuRunResult& rb = b->as<GpuRunResult>();
      const GpuRunResult& re = e->as<GpuRunResult>();
      const double g = 100.0 * (1.0 - re.gpu_energy_j / rb.gpu_energy_j);
      const double p = 100.0 * (1.0 - re.pkg_energy_j / rb.pkg_energy_j);
      const double d = 100.0 * (1.0 - re.pkg_dram_energy_j / rb.pkg_dram_energy_j);
      sum_gpu += g;
      sum_pkg += p;
      sum_dram += d;
      miss_base_total += rb.miss_rate();
      miss_enmpc_total += re.miss_rate();
      ++n;
      t.add_row({spec.name, common::Table::fmt(g, 1), common::Table::fmt(p, 1),
                 common::Table::fmt(d, 1), common::Table::fmt(100.0 * rb.miss_rate(), 2) + "%",
                 common::Table::fmt(100.0 * re.miss_rate(), 2) + "%"});
    }
    if (n > 0) {
      printed_fig5 = true;
      std::puts("=== Fig. 5: energy savings of explicit NMPC vs baseline governor ===");
      t.add_row({"Average", common::Table::fmt(sum_gpu / n, 1),
                 common::Table::fmt(sum_pkg / n, 1), common::Table::fmt(sum_dram / n, 1),
                 common::Table::fmt(100.0 * miss_base_total / n, 2) + "%",
                 common::Table::fmt(100.0 * miss_enmpc_total / n, 2) + "%"});
      t.print(std::cout);
      std::puts("\nPaper: GPU 5%..58% (avg ~25%), PKG ~15%, PKG+DRAM ~15%, perf overhead ~0.4%.");
      std::printf("Performance overhead here: %.2f%% extra deadline misses on average.\n",
                  100.0 * (miss_enmpc_total - miss_base_total) / n);
    }
  }

  const auto clamp_pct = [](const AnyResult& r) {
    return 100.0 * r.metric("clamped_frames") / r.metric("frames");
  };
  {
    common::Table tt({"Skin limit (C)", "Budget (W)", "Clamp blind", "Clamp aware", "GPU E blind",
                      "GPU E aware", "Miss blind", "Miss aware"});
    int n = 0;
    for (double limit : skin_limits) {
      const std::string base =
          "fig5_thermal/" + thermal_spec.name + "/skin" + common::Table::fmt(limit, 1);
      const AnyResult* blind = index.find(base + "/blind");
      const AnyResult* aware = index.find(base + "/aware");
      if (!blind || !aware) continue;
      ++n;
      tt.add_row({common::Table::fmt(limit, 1),
                  common::Table::fmt(blind->metric("final_budget_w"), 2),
                  common::Table::fmt(clamp_pct(*blind), 0) + "%",
                  common::Table::fmt(clamp_pct(*aware), 0) + "%",
                  common::Table::fmt(blind->metric("gpu_energy_j"), 2),
                  common::Table::fmt(aware->metric("gpu_energy_j"), 2),
                  common::Table::fmt(100.0 * blind->metric("miss_rate"), 2) + "%",
                  common::Table::fmt(100.0 * aware->metric("miss_rate"), 2) + "%"});
    }
    if (n > 0) {
      std::printf("%s=== ENMPC under a skin-temperature budget (hot enclosure, 35 C ambient) "
                  "===\n",
                  printed_fig5 ? "\n" : "");
      tt.print(std::cout);
      std::puts("Tighter skin limits shrink the sustainable budget.  Blind ENMPC fights the");
      std::puts("budgeter (it is throttled after the fact); budget-constrained ENMPC folds the");
      std::puts("telemetry budget into its feasibility set and proposes what firmware would");
      std::puts("grant, collapsing the clamp rate.");
    }
  }

  {
    common::Table tt({"Horizon (s)", "Final budget (W)", "Clamp blind", "Clamp aware",
                      "GPU E blind", "GPU E aware", "Peak skin aware (C)"});
    int n = 0;
    for (double horizon : headroom_horizons) {
      const std::string base =
          "fig5_transient/" + thermal_spec.name + "/h" + common::Table::fmt(horizon, 0);
      const AnyResult* blind = index.find(base + "/blind");
      const AnyResult* aware = index.find(base + "/aware");
      if (!blind || !aware) continue;
      ++n;
      tt.add_row({common::Table::fmt(horizon, 0),
                  common::Table::fmt(aware->metric("final_budget_w"), 2),
                  common::Table::fmt(clamp_pct(*blind), 0) + "%",
                  common::Table::fmt(clamp_pct(*aware), 0) + "%",
                  common::Table::fmt(blind->metric("gpu_energy_j"), 2),
                  common::Table::fmt(aware->metric("gpu_energy_j"), 2),
                  common::Table::fmt(aware->metric("peak_skin_c"), 1)});
    }
    if (n > 0) {
      std::puts("\n=== Transient budgets: preheated device, budget recomputed every frame ===");
      tt.print(std::cout);
      std::puts("Short transient_power_headroom horizons grant bursts the thermal capacitance");
      std::puts("absorbs; long horizons converge on the sustainable budget.  The budget moves");
      std::puts("every frame as the preheated device cools — the telemetry channel is what");
      std::puts("lets the aware controller track it.");
    }
  }
  return 0;
}
