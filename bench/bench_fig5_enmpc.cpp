// Reproduces Fig. 5: energy savings of the explicit NMPC algorithm compared
// to the baseline (busy-threshold, all-slices-on) GPU power management, for
// the GPU alone, for the system package (PKG), and for package plus memory
// (PKG+DRAM), across ten graphics workloads.
//
// The twenty arms (10 workloads x {baseline, ENMPC}) are GpuScenarios in one
// parallel ExperimentEngine batch; each scenario owns its platform instance
// and the ENMPC arms bootstrap + fit their explicit law on the worker.
//
// Paper: GPU savings range from 5% (AngryBirds) to 58% (SharkDash), average
// ~25%; PKG and PKG+DRAM save ~15%; performance overhead is ~0.4%.
#include <cstdio>
#include <iostream>
#include <map>

#include "common/table.h"
#include "core/domain.h"
#include "core/results_io.h"
#include "core/scenario_factories.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  const double fps = 30.0;
  const std::size_t frames = 1800;  // 60 s at 30 FPS per workload
  NmpcConfig cfg;
  cfg.fps_target = fps;

  std::vector<AnyScenario> batch;
  for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
    common::Rng trng(1000 + spec.id);
    const auto trace = workloads::GpuBenchmarks::trace(spec, frames, trng);
    for (const char* arm : {"baseline", "enmpc"}) {
      GpuScenario s;
      s.id = "fig5/" + spec.name + "/" + arm;
      s.fps_target = fps;
      s.trace = trace;
      s.initial = gpu::GpuConfig{9, s.platform.max_slices};
      s.make_controller = arm == std::string("baseline") ? gpu_baseline_factory()
                                                         : gpu_enmpc_factory(cfg, 1500);
      batch.push_back(std::move(s));
    }
  }

  ExperimentEngine engine;
  const auto results = engine.run_any(batch);
  JsonlWriter json(json_path_arg(argc, argv));
  json.write("fig5_enmpc", results);

  std::map<std::string, const GpuRunResult*> by_id;
  for (const auto& r : results) by_id.emplace(r.id(), &r.as<GpuRunResult>());

  std::puts("=== Fig. 5: energy savings of explicit NMPC vs baseline governor ===");
  common::Table t({"Workload", "GPU (%)", "PKG (%)", "PKG+DRAM (%)", "Miss base", "Miss ENMPC"});
  double sum_gpu = 0.0, sum_pkg = 0.0, sum_dram = 0.0;
  double miss_base_total = 0.0, miss_enmpc_total = 0.0;
  int n = 0;
  for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
    const GpuRunResult& rb = *by_id.at("fig5/" + spec.name + "/baseline");
    const GpuRunResult& re = *by_id.at("fig5/" + spec.name + "/enmpc");
    const double g = 100.0 * (1.0 - re.gpu_energy_j / rb.gpu_energy_j);
    const double p = 100.0 * (1.0 - re.pkg_energy_j / rb.pkg_energy_j);
    const double d = 100.0 * (1.0 - re.pkg_dram_energy_j / rb.pkg_dram_energy_j);
    sum_gpu += g;
    sum_pkg += p;
    sum_dram += d;
    miss_base_total += rb.miss_rate();
    miss_enmpc_total += re.miss_rate();
    ++n;
    t.add_row({spec.name, common::Table::fmt(g, 1), common::Table::fmt(p, 1),
               common::Table::fmt(d, 1), common::Table::fmt(100.0 * rb.miss_rate(), 2) + "%",
               common::Table::fmt(100.0 * re.miss_rate(), 2) + "%"});
  }
  t.add_row({"Average", common::Table::fmt(sum_gpu / n, 1), common::Table::fmt(sum_pkg / n, 1),
             common::Table::fmt(sum_dram / n, 1),
             common::Table::fmt(100.0 * miss_base_total / n, 2) + "%",
             common::Table::fmt(100.0 * miss_enmpc_total / n, 2) + "%"});
  t.print(std::cout);
  std::puts("\nPaper: GPU 5%..58% (avg ~25%), PKG ~15%, PKG+DRAM ~15%, perf overhead ~0.4%.");
  std::printf("Performance overhead here: %.2f%% extra deadline misses on average.\n",
              100.0 * (miss_enmpc_total - miss_base_total) / n);
  return 0;
}
