// Reproduces Fig. 5: energy savings of the explicit NMPC algorithm compared
// to the baseline (busy-threshold, all-slices-on) GPU power management, for
// the GPU alone, for the system package (PKG), and for package plus memory
// (PKG+DRAM), across ten graphics workloads.
//
// Paper: GPU savings range from 5% (AngryBirds) to 58% (SharkDash), average
// ~25%; PKG and PKG+DRAM save ~15%; performance overhead is ~0.4%.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/nmpc.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  gpu::GpuPlatform plat;
  const double fps = 30.0;
  GpuRunner runner(plat, fps);
  const gpu::GpuConfig init{9, plat.params().max_slices};
  const std::size_t frames = 1800;  // 60 s at 30 FPS per workload

  std::puts("=== Fig. 5: energy savings of explicit NMPC vs baseline governor ===");
  common::Table t({"Workload", "GPU (%)", "PKG (%)", "PKG+DRAM (%)", "Miss base", "Miss ENMPC"});
  double sum_gpu = 0.0, sum_pkg = 0.0, sum_dram = 0.0;
  double miss_base_total = 0.0, miss_enmpc_total = 0.0;
  int n = 0;
  for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
    common::Rng trng(1000 + spec.id);
    const auto trace = workloads::GpuBenchmarks::trace(spec, frames, trng);

    BaselineGpuGovernor baseline(plat);
    const auto rb = runner.run(trace, baseline, init);

    GpuOnlineModels models(plat);
    common::Rng boot_rng(7);
    bootstrap_gpu_models(plat, models, 1.0 / fps, 400, boot_rng);
    NmpcConfig cfg;
    cfg.fps_target = fps;
    ExplicitNmpcGpuController enmpc(plat, models, cfg, 1500);
    const auto re = runner.run(trace, enmpc, init);

    const double g = 100.0 * (1.0 - re.gpu_energy_j / rb.gpu_energy_j);
    const double p = 100.0 * (1.0 - re.pkg_energy_j / rb.pkg_energy_j);
    const double d = 100.0 * (1.0 - re.pkg_dram_energy_j / rb.pkg_dram_energy_j);
    sum_gpu += g;
    sum_pkg += p;
    sum_dram += d;
    miss_base_total += rb.miss_rate();
    miss_enmpc_total += re.miss_rate();
    ++n;
    t.add_row({spec.name, common::Table::fmt(g, 1), common::Table::fmt(p, 1),
               common::Table::fmt(d, 1), common::Table::fmt(100.0 * rb.miss_rate(), 2) + "%",
               common::Table::fmt(100.0 * re.miss_rate(), 2) + "%"});
  }
  t.add_row({"Average", common::Table::fmt(sum_gpu / n, 1), common::Table::fmt(sum_pkg / n, 1),
             common::Table::fmt(sum_dram / n, 1), common::Table::fmt(100.0 * miss_base_total / n, 2) + "%",
             common::Table::fmt(100.0 * miss_enmpc_total / n, 2) + "%"});
  t.print(std::cout);
  std::puts("\nPaper: GPU 5%..58% (avg ~25%), PKG ~15%, PKG+DRAM ~15%, perf overhead ~0.4%.");
  std::printf("Performance overhead here: %.2f%% extra deadline misses on average.\n",
              100.0 * (miss_enmpc_total - miss_base_total) / n);
  return 0;
}
