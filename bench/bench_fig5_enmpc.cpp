// Reproduces Fig. 5: energy savings of the explicit NMPC algorithm compared
// to the baseline (busy-threshold, all-slices-on) GPU power management, for
// the GPU alone, for the system package (PKG), and for package plus memory
// (PKG+DRAM), across ten graphics workloads.
//
// The twenty arms (10 workloads x {baseline, ENMPC}) plus the
// skin-temperature budget sweep are one ScenarioRegistry catalog
// ("fig5/<workload>/<arm>", "fig5_thermal/<workload>/skin<limit>") executed
// as one parallel batch through the shared bench driver; each scenario owns
// its platform instance and the ENMPC arms bootstrap + fit their explicit
// law on the worker.
//
// Paper: GPU savings range from 5% (AngryBirds) to 58% (SharkDash), average
// ~25%; PKG and PKG+DRAM save ~15%; performance overhead is ~0.4%.
#include <cstdio>
#include <iostream>

#include "bench/driver.h"
#include "common/table.h"
#include "core/domain.h"
#include "core/scenario_registry.h"
#include "core/scenario_factories.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  const double fps = 30.0;
  std::size_t frames = 1800;  // 60 s at 30 FPS per workload
  bench::BenchDriver driver("fig5_enmpc");
  driver.add_size_option("--frames", &frames, "frames per workload trace");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  NmpcConfig cfg;
  cfg.fps_target = fps;

  ScenarioRegistry registry;
  for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
    for (const char* arm : {"baseline", "enmpc"}) {
      const bool baseline = arm == std::string("baseline");
      registry.add_any("fig5/" + spec.name + "/" + arm, [spec, frames, fps, cfg, baseline] {
        common::Rng trng(1000 + spec.id);
        GpuScenario s;
        s.fps_target = fps;
        s.trace = workloads::GpuBenchmarks::trace(spec, frames, trng);
        s.initial = gpu::GpuConfig{9, s.platform.max_slices};
        s.make_controller = baseline ? gpu_baseline_factory() : gpu_enmpc_factory(cfg, 1500);
        return AnyScenario(std::move(s));
      });
    }
  }

  // ---- GPU budget sweep: ENMPC under a skin-temperature budget -------------
  // ThermalGpuScenario couples the frame loop into the RC network's (hitherto
  // unused) GPU node: frame energies heat the die, the skin limit sets a
  // power budget, and soc::ThermalGpuAdapter throttles ENMPC's decisions
  // (frequency first, then slice gating).  Sweeping the skin limit in a hot
  // enclosure shows the budget progressively binding: clamp rate and
  // deadline misses rise as the allowed skin temperature drops.
  const auto thermal_spec = workloads::GpuBenchmarks::by_name("AngryBirds");
  const std::vector<double> skin_limits{45.0, 41.0, 39.0, 37.5};
  for (double limit : skin_limits) {
    registry.add_any("fig5_thermal/" + thermal_spec.name + "/skin" + common::Table::fmt(limit, 1),
                     [thermal_spec, frames, fps, cfg, limit] {
                       common::Rng trng(1000 + thermal_spec.id);
                       GpuScenario s;
                       s.fps_target = fps;
                       s.trace = workloads::GpuBenchmarks::trace(thermal_spec, frames, trng);
                       s.initial = gpu::GpuConfig{9, s.platform.max_slices};
                       s.make_controller = gpu_enmpc_factory(cfg, 1500);
                       soc::ThermalGpuConstraintParams thermal;
                       thermal.ambient_c = 35.0;
                       thermal.limits.t_max_skin_c = limit;
                       thermal.limits.t_max_junction_c = 75.0;
                       thermal.horizon_s = 0.0;  // steady-state budget
                       return AnyScenario(ThermalGpuScenario{std::move(s), thermal});
                     });
  }

  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  const bench::ResultIndex index(results);

  bool printed_fig5 = false;
  {
    common::Table t({"Workload", "GPU (%)", "PKG (%)", "PKG+DRAM (%)", "Miss base",
                     "Miss ENMPC"});
    double sum_gpu = 0.0, sum_pkg = 0.0, sum_dram = 0.0;
    double miss_base_total = 0.0, miss_enmpc_total = 0.0;
    int n = 0;
    for (const auto& spec : workloads::GpuBenchmarks::fig5_suite()) {
      const AnyResult* b = index.find("fig5/" + spec.name + "/baseline");
      const AnyResult* e = index.find("fig5/" + spec.name + "/enmpc");
      if (!b || !e) continue;  // arm deselected by prefix
      const GpuRunResult& rb = b->as<GpuRunResult>();
      const GpuRunResult& re = e->as<GpuRunResult>();
      const double g = 100.0 * (1.0 - re.gpu_energy_j / rb.gpu_energy_j);
      const double p = 100.0 * (1.0 - re.pkg_energy_j / rb.pkg_energy_j);
      const double d = 100.0 * (1.0 - re.pkg_dram_energy_j / rb.pkg_dram_energy_j);
      sum_gpu += g;
      sum_pkg += p;
      sum_dram += d;
      miss_base_total += rb.miss_rate();
      miss_enmpc_total += re.miss_rate();
      ++n;
      t.add_row({spec.name, common::Table::fmt(g, 1), common::Table::fmt(p, 1),
                 common::Table::fmt(d, 1), common::Table::fmt(100.0 * rb.miss_rate(), 2) + "%",
                 common::Table::fmt(100.0 * re.miss_rate(), 2) + "%"});
    }
    if (n > 0) {
      printed_fig5 = true;
      std::puts("=== Fig. 5: energy savings of explicit NMPC vs baseline governor ===");
      t.add_row({"Average", common::Table::fmt(sum_gpu / n, 1),
                 common::Table::fmt(sum_pkg / n, 1), common::Table::fmt(sum_dram / n, 1),
                 common::Table::fmt(100.0 * miss_base_total / n, 2) + "%",
                 common::Table::fmt(100.0 * miss_enmpc_total / n, 2) + "%"});
      t.print(std::cout);
      std::puts("\nPaper: GPU 5%..58% (avg ~25%), PKG ~15%, PKG+DRAM ~15%, perf overhead ~0.4%.");
      std::printf("Performance overhead here: %.2f%% extra deadline misses on average.\n",
                  100.0 * (miss_enmpc_total - miss_base_total) / n);
    }
  }

  {
    common::Table tt({"Skin limit (C)", "Budget (W)", "Clamped", "Peak skin (C)", "GPU E (J)",
                      "Miss rate"});
    int n = 0;
    for (double limit : skin_limits) {
      const AnyResult* r = index.find("fig5_thermal/" + thermal_spec.name + "/skin" +
                                      common::Table::fmt(limit, 1));
      if (!r) continue;
      ++n;
      const double clamp_pct = 100.0 * r->metric("clamped_frames") / r->metric("frames");
      tt.add_row({common::Table::fmt(limit, 1), common::Table::fmt(r->metric("final_budget_w"), 2),
                  common::Table::fmt(clamp_pct, 0) + "%",
                  common::Table::fmt(r->metric("peak_skin_c"), 1),
                  common::Table::fmt(r->metric("gpu_energy_j"), 2),
                  common::Table::fmt(100.0 * r->metric("miss_rate"), 2) + "%"});
    }
    if (n > 0) {
      std::printf("%s=== ENMPC under a skin-temperature budget (hot enclosure, 35 C ambient) "
                  "===\n",
                  printed_fig5 ? "\n" : "");
      tt.print(std::cout);
      std::puts("Tighter skin limits shrink the sustainable budget; the budgeter trades");
      std::puts("deadline misses for skin safety once ENMPC's preferred configs no longer fit.");
    }
  }
  return 0;
}
