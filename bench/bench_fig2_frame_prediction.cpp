// Reproduces Fig. 2: adaptive frame-time prediction for a Nenamark2-like
// graphics workload across runtime frequency changes, using STAFF-style
// online learning (RLS with stabilized adaptive forgetting factor and
// online feature selection).
//
// Paper: "the estimated frame time closely follows the measured value at
// different operating frequencies with less than 5% error."
#include <cstdio>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/gpu_models.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  gpu::GpuPlatform plat;
  common::Rng rng(5);
  const auto trace = workloads::GpuBenchmarks::nenamark2(1200, rng);
  const double period = 1.0 / 30.0;

  // DVFS schedule: the governor steps through four operating points while
  // the benchmark runs (mirrors the frequency changes visible in Fig. 2).
  auto freq_at = [](std::size_t frame) { return 4 + 4 * static_cast<int>((frame / 200) % 4); };

  StaffFrameTimePredictor staff(plat);
  GpuWorkloadState w;
  std::vector<double> actual_ms, predicted_ms;
  std::vector<double> freq_of_sample;
  const std::size_t warmup = 50;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const gpu::GpuConfig c{freq_at(i), 2};
    const auto r = plat.render(trace[i], c, period);
    if (i >= warmup) {
      predicted_ms.push_back(staff.predict_ms(w, c));
      actual_ms.push_back(r.frame_time_s * 1e3);
      freq_of_sample.push_back(plat.freq_mhz(c.freq_idx));
    }
    staff.update(w, c, r);
    w.observe(r, 2.0 / (1.0 + plat.params().slice_sync_overhead));
  }

  std::puts("=== Fig. 2: measured vs estimated frame time (Nenamark2-like) ===");
  common::Table series({"Frame", "GPU freq (MHz)", "Measured (ms)", "Estimated (ms)", "Err (%)"});
  for (std::size_t i = 0; i < actual_ms.size(); i += 60) {
    series.add_row(std::to_string(i + warmup),
                   {freq_of_sample[i], actual_ms[i], predicted_ms[i],
                    100.0 * std::abs(predicted_ms[i] - actual_ms[i]) / actual_ms[i]},
                   2);
  }
  series.print(std::cout);

  const double overall_mape = common::mape(actual_ms, predicted_ms);
  std::printf("\nOverall MAPE: %.2f%% over %zu frames (paper: <5%%), corr = %.3f\n", overall_mape,
              actual_ms.size(), common::correlation(actual_ms, predicted_ms));

  // Per-frequency-segment error: adaptation across DVFS changes.
  common::Table seg({"Segment freq (MHz)", "MAPE (%)"});
  for (int fi : {4, 8, 12, 16}) {
    std::vector<double> a, p;
    for (std::size_t i = 0; i < actual_ms.size(); ++i) {
      if (freq_of_sample[i] == plat.freq_mhz(fi)) {
        a.push_back(actual_ms[i]);
        p.push_back(predicted_ms[i]);
      }
    }
    if (!a.empty()) seg.add_row(common::Table::fmt(plat.freq_mhz(fi), 0), {common::mape(a, p)}, 2);
  }
  std::puts("");
  seg.print(std::cout);
  std::printf("\nSTAFF state: lambda = %.4f, active features = %zu of 8\n",
              staff.model().lambda(), staff.model().num_active());
  return overall_mape < 8.0 ? 0 : 1;
}
