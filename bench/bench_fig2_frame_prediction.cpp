// Reproduces Fig. 2: adaptive frame-time prediction for a Nenamark2-like
// graphics workload across runtime frequency changes, using STAFF-style
// online learning (RLS with stabilized adaptive forgetting factor and
// online feature selection).
//
// The frame loop runs through ExperimentEngine as a GpuScenario cataloged
// in a ScenarioRegistry and driven by the shared bench driver: a
// fixed-DVFS-schedule controller carries the STAFF predictor and logs
// (measured, estimated) pairs, which on_complete harvests for the tables.
//
// Paper: "the estimated frame time closely follows the measured value at
// different operating frequencies with less than 5% error."
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/domain.h"
#include "core/gpu_models.h"
#include "core/scenario_registry.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

/// Replays a fixed DVFS schedule (the Fig. 2 frequency staircase) while a
/// STAFF predictor estimates each upcoming frame's time; predictions are
/// made before the frame renders, exactly as the original serial loop did.
class StaffScheduleController : public GpuController {
 public:
  StaffScheduleController(const gpu::GpuPlatform& platform, std::size_t num_frames,
                          std::size_t warmup)
      : platform_(&platform), staff_(platform), num_frames_(num_frames), warmup_(warmup) {}

  static int freq_at(std::size_t frame) { return 4 + 4 * static_cast<int>((frame / 200) % 4); }
  static constexpr int kSlices = 2;

  std::string name() const override { return "staff-schedule"; }

  gpu::GpuConfig step(const gpu::FrameResult& result, const gpu::GpuConfig& current,
                      std::size_t frame_index) override {
    if (frame_index >= warmup_) {
      actual_ms_.push_back(result.frame_time_s * 1e3);
      freq_mhz_.push_back(platform_->freq_mhz(current.freq_idx));
    }
    staff_.update(w_, current, result);
    w_.observe(result, 2.0 / (1.0 + platform_->params().slice_sync_overhead));
    const gpu::GpuConfig next{freq_at(frame_index + 1), kSlices};
    if (frame_index + 1 >= warmup_ && frame_index + 1 < num_frames_)
      predicted_ms_.push_back(staff_.predict_ms(w_, next));
    return next;
  }

  const std::vector<double>& actual_ms() const { return actual_ms_; }
  const std::vector<double>& predicted_ms() const { return predicted_ms_; }
  const std::vector<double>& freq_mhz() const { return freq_mhz_; }
  const StaffFrameTimePredictor& staff() const { return staff_; }

 private:
  const gpu::GpuPlatform* platform_;
  StaffFrameTimePredictor staff_;
  GpuWorkloadState w_;
  std::size_t num_frames_;
  std::size_t warmup_;
  std::vector<double> actual_ms_, predicted_ms_, freq_mhz_;
};

struct Harvest {
  std::vector<double> actual_ms, predicted_ms, freq_mhz;
  double lambda = 0.0;
  std::size_t num_active = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_frames = 1200;
  std::size_t warmup = 50;
  bench::BenchDriver driver("fig2_frame_prediction");
  driver.add_size_option("--frames", &num_frames, "frames in the Nenamark2-like trace");
  driver.add_size_option("--warmup", &warmup, "unrecorded leading frames");
  if (!driver.parse(argc, argv)) return driver.exit_code();
  if (num_frames <= warmup) {
    // Nothing would be recorded and the MAPE over zero frames would throw.
    std::fprintf(stderr, "%s: --frames (%zu) must exceed --warmup (%zu)\n",
                 driver.bench_name().c_str(), num_frames, warmup);
    return 2;
  }

  auto harvest = std::make_shared<Harvest>();
  ScenarioRegistry registry;
  registry.add_any("fig2/nenamark2", [num_frames, warmup, harvest] {
    GpuScenario s;
    {
      common::Rng rng(5);
      s.trace = workloads::GpuBenchmarks::nenamark2(num_frames, rng);
    }
    s.initial = gpu::GpuConfig{StaffScheduleController::freq_at(0),
                               StaffScheduleController::kSlices};
    s.make_controller = [num_frames, warmup](GpuScenarioContext& ctx) {
      return GpuControllerInstance{
          std::make_unique<StaffScheduleController>(ctx.platform, num_frames, warmup), nullptr};
    };
    s.on_complete = [harvest](GpuController& ctl, const GpuRunResult&) {
      auto& sched = dynamic_cast<StaffScheduleController&>(ctl);
      harvest->actual_ms = sched.actual_ms();
      harvest->predicted_ms = sched.predicted_ms();
      harvest->freq_mhz = sched.freq_mhz();
      harvest->lambda = sched.staff().model().lambda();
      harvest->num_active = sched.staff().model().num_active();
    };
    return AnyScenario(std::move(s));
  });
  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  const auto& actual_ms = harvest->actual_ms;
  const auto& predicted_ms = harvest->predicted_ms;
  const gpu::GpuPlatform plat;  // frequency table for the segment report

  std::puts("=== Fig. 2: measured vs estimated frame time (Nenamark2-like) ===");
  common::Table series({"Frame", "GPU freq (MHz)", "Measured (ms)", "Estimated (ms)", "Err (%)"});
  for (std::size_t i = 0; i < actual_ms.size(); i += 60) {
    series.add_row(std::to_string(i + warmup),
                   {harvest->freq_mhz[i], actual_ms[i], predicted_ms[i],
                    100.0 * std::abs(predicted_ms[i] - actual_ms[i]) / actual_ms[i]},
                   2);
  }
  series.print(std::cout);

  const double overall_mape = common::mape(actual_ms, predicted_ms);
  std::printf("\nOverall MAPE: %.2f%% over %zu frames (paper: <5%%), corr = %.3f\n", overall_mape,
              actual_ms.size(), common::correlation(actual_ms, predicted_ms));

  // Per-frequency-segment error: adaptation across DVFS changes.
  common::Table seg({"Segment freq (MHz)", "MAPE (%)"});
  for (int fi : {4, 8, 12, 16}) {
    std::vector<double> a, p;
    for (std::size_t i = 0; i < actual_ms.size(); ++i) {
      if (harvest->freq_mhz[i] == plat.freq_mhz(fi)) {
        a.push_back(actual_ms[i]);
        p.push_back(predicted_ms[i]);
      }
    }
    if (!a.empty()) seg.add_row(common::Table::fmt(plat.freq_mhz(fi), 0), {common::mape(a, p)}, 2);
  }
  std::puts("");
  seg.print(std::cout);
  std::printf("\nSTAFF state: lambda = %.4f, active features = %zu of 8\n", harvest->lambda,
              harvest->num_active);

  if (driver.json().enabled()) {
    Metrics m = results[0].metrics();
    m.emplace_back("mape_pct", overall_mape);
    m.emplace_back("correlation", common::correlation(actual_ms, predicted_ms));
    driver.json().write_metrics(driver.bench_name(), results[0].id(), m);
  }
  return overall_mape < 8.0 ? 0 : 1;
}
