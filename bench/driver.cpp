#include "bench/driver.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <set>

namespace oal::bench {

ResultIndex::ResultIndex(const std::vector<core::AnyResult>& results) {
  for (const core::AnyResult& r : results) by_id_.emplace(r.id(), &r);
}

const core::AnyResult* ResultIndex::find(const std::string& id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

bool ResultIndex::has_all(const std::vector<std::string>& ids) const {
  for (const std::string& id : ids)
    if (!has(id)) return false;
  return true;
}

BenchDriver::BenchDriver(std::string bench_name) : bench_name_(std::move(bench_name)) {}

void BenchDriver::add_size_option(const std::string& flag, std::size_t* value,
                                  const std::string& help) {
  size_options_.push_back(SizeOption{flag, value, help});
}

std::string BenchDriver::usage() const {
  std::string out = "usage: " + bench_name_ + " [prefix...] [--list] [--json <path>] [--store <dir>]";
  for (const SizeOption& opt : size_options_) {
    out += " [" + opt.flag + " <n>]";
  }
  out += "\n  prefix       run only arms selected by the '/'-segment prefix (see --list)";
  out += "\n  --list       print the selected arm names and exit";
  out += "\n  --json       append one JSONL record per arm to <path>";
  out += "\n  --store      persist Oracle searches + pretrained weights in <dir> (warm reuse)";
  for (const SizeOption& opt : size_options_) {
    out += "\n  " + opt.flag + "  " + opt.help + " (default " + std::to_string(*opt.value) + ")";
  }
  return out;
}

bool BenchDriver::fail(const std::string& message) {
  std::fprintf(stderr, "%s: %s\n%s\n", bench_name_.c_str(), message.c_str(), usage().c_str());
  exit_code_ = 2;
  return false;
}

bool BenchDriver::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      std::puts(usage().c_str());
      exit_code_ = 0;
      return false;
    }
    if (arg == "--list") {
      list_ = true;
      continue;
    }
    if (arg == "--json") {
      const char* path = value();
      if (!path) return fail("--json requires a path argument");
      json_path_ = path;
      continue;
    }
    if (arg == "--store") {
      const char* dir = value();
      if (!dir) return fail("--store requires a directory argument");
      store_dir_ = dir;
      continue;
    }
    bool matched = false;
    for (const SizeOption& opt : size_options_) {
      if (arg != opt.flag) continue;
      const char* text = value();
      if (!text) return fail(opt.flag + " requires a count argument");
      char* end = nullptr;
      // strtoull would wrap "-3" into a huge count; reject signs up front.
      errno = 0;
      const unsigned long long parsed = text[0] == '-' ? 0 : std::strtoull(text, &end, 10);
      if (end == text || !end || *end != '\0' || parsed == 0)
        return fail(opt.flag + " expects a positive integer, got '" + text + "'");
      // An overflowing literal ("--devices 99999999999999999999") clamps to
      // ULLONG_MAX with ERANGE; a value past size_t must not silently
      // truncate through the cast either.  Both exit 2 with usage.
      const auto as_size = static_cast<std::size_t>(parsed);
      if (errno == ERANGE || static_cast<unsigned long long>(as_size) != parsed)
        return fail(opt.flag + " value out of range: '" + text + "'");
      *opt.value = as_size;
      matched = true;
      break;
    }
    if (matched) continue;
    if (!arg.empty() && arg[0] == '-') return fail("unknown flag '" + arg + "'");
    prefixes_.push_back(arg);
  }
  if (!json_path_.empty()) {
    try {
      json_ = std::make_unique<core::JsonlWriter>(json_path_);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }
  if (!store_dir_.empty()) {
    try {
      store_ = std::make_shared<core::ArtifactStore>(store_dir_);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }
  return true;
}

bool BenchDriver::selected_names(const core::ScenarioRegistry& registry,
                                 std::vector<std::string>& out) const {
  std::set<std::string> names;
  if (prefixes_.empty()) {
    for (const std::string& name : registry.names()) names.insert(name);
  } else {
    for (const std::string& prefix : prefixes_) {
      const auto matched = registry.names(prefix);
      if (matched.empty()) {
        std::fprintf(stderr, "%s: prefix '%s' selects no arm (try --list)\n",
                     bench_name_.c_str(), prefix.c_str());
        return false;
      }
      names.insert(matched.begin(), matched.end());
    }
  }
  out.assign(names.begin(), names.end());
  return true;
}

int BenchDriver::list(const core::ScenarioRegistry& registry) const {
  std::vector<std::string> names;
  if (!selected_names(registry, names)) return 2;
  for (const std::string& name : names) std::puts(name.c_str());
  return 0;
}

std::vector<std::string> BenchDriver::selection(const core::ScenarioRegistry& registry) const {
  std::vector<std::string> names;
  if (!selected_names(registry, names)) {
    std::fprintf(stderr, "%s\n", usage().c_str());
    std::exit(2);
  }
  return names;
}

std::vector<core::AnyScenario> BenchDriver::select(
    const core::ScenarioRegistry& registry) const {
  const std::vector<std::string> names = selection(registry);
  std::vector<core::AnyScenario> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.push_back(registry.build_any(name));
  return out;
}

core::JsonlWriter& BenchDriver::json() {
  // Benches call this unconditionally; without --json the writer is a
  // disabled sink (empty path), same as the old json_path_arg protocol.
  if (!json_) json_ = std::make_unique<core::JsonlWriter>("");
  return *json_;
}

void write_oracle_stats(BenchDriver& driver, core::OracleCache& cache, double wall_time_s) {
  const double spilled = static_cast<double>(cache.flush());
  driver.json().write_metrics(driver.bench_name(), driver.bench_name() + "/oracle_stats",
                              {{"lookups", static_cast<double>(cache.lookups())},
                               {"searches", static_cast<double>(cache.searches())},
                               {"hits", static_cast<double>(cache.hits())},
                               {"entries", static_cast<double>(cache.size())},
                               {"store_loaded", static_cast<double>(cache.store_loaded())},
                               {"store_spilled", spilled},
                               {"wall_time_s", wall_time_s}});
}

void write_decision_latency(BenchDriver& driver, const std::vector<core::AnyResult>& results) {
  for (const core::AnyResult& r : results) {
    const core::DecisionLatencyStats* s = nullptr;
    if (r.holds<core::RunResult>()) {
      s = &r.as<core::RunResult>().decision_latency;
    } else if (r.holds<core::GpuRunResult>()) {
      s = &r.as<core::GpuRunResult>().decision_latency;
    } else if (r.holds<core::ThermalRunResult>()) {
      s = &r.as<core::ThermalRunResult>().run.decision_latency;
    } else if (r.holds<core::ThermalGpuRunResult>()) {
      s = &r.as<core::ThermalGpuRunResult>().run.decision_latency;
    }
    if (s == nullptr || s->decisions == 0) continue;
    driver.json().write_metrics(driver.bench_name(), r.id() + "/decision_latency",
                                {{"decisions", static_cast<double>(s->decisions)},
                                 {"p50_ns", s->p50_ns},
                                 {"p99_ns", s->p99_ns},
                                 {"max_ns", s->max_ns}});
  }
}

}  // namespace oal::bench
