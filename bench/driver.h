// Shared CLI driver for the engine-driven benches.
//
// Every bench catalogs its arms in a core::ScenarioRegistry and delegates
// argv handling here, so the whole bench suite speaks one language:
//
//   bench_x                         run every arm
//   bench_x fig5/SharkDash fig5_thermal
//                                   run the arms those '/'-segment prefixes
//                                   select (union, name-ordered)
//   bench_x --list [prefix...]      print the selected arm names and exit
//   bench_x --json <path>           append one JSONL record per arm (shared
//                                   paths accumulate across benches)
//   bench_x --frames 300            bench-registered scale-down option
//
// Unknown flags, malformed values, and prefixes that select nothing all
// exit 2 with usage on stderr (the tools/jsonl_compare convention); --help
// exits 0.  Benches keep their own reporting but must tolerate subset
// selection: look results up through ResultIndex and skip absent rows.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/domain.h"
#include "core/oracle.h"
#include "core/results_io.h"
#include "core/scenario_registry.h"

namespace oal::bench {

/// Id-indexed view over ExperimentEngine results for subset-tolerant
/// reporting: a report row whose arm was deselected looks up nullptr and is
/// skipped instead of crashing a .at().
class ResultIndex {
 public:
  explicit ResultIndex(const std::vector<core::AnyResult>& results);

  /// nullptr when the id is not in the result set (arm deselected).
  const core::AnyResult* find(const std::string& id) const;
  bool has(const std::string& id) const { return find(id) != nullptr; }
  bool has_all(const std::vector<std::string>& ids) const;

 private:
  std::map<std::string, const core::AnyResult*> by_id_;
};

class BenchDriver {
 public:
  /// `bench_name` doubles as the usage program name and the default JSONL
  /// "bench" field.
  explicit BenchDriver(std::string bench_name);

  /// Registers a scale-down option (`flag <count>`) before parse(); the
  /// parsed value lands in *value, which also provides the default shown by
  /// --help.  `flag` must include the leading "--".
  void add_size_option(const std::string& flag, std::size_t* value, const std::string& help);

  /// Parses argv.  Returns false when main() should immediately return
  /// exit_code(): --help (0) or a usage error (2, message on stderr).
  [[nodiscard]] bool parse(int argc, char** argv);
  int exit_code() const { return exit_code_; }

  /// True when --list was given; benches should skip expensive setup, build
  /// their (lazy) registry, and return list().
  bool listing() const { return list_; }

  /// Prints the arm names the positional prefixes select, one per line;
  /// returns the process exit code (2 when a prefix selects nothing).
  int list(const core::ScenarioRegistry& registry) const;

  /// The arm names the positional prefixes select (every name when none),
  /// as the name-ordered deduplicated union — what select() will build,
  /// exposed so benches can gate expensive shared setup on what actually
  /// runs.  Exits 2 with usage when a prefix selects nothing.
  std::vector<std::string> selection(const core::ScenarioRegistry& registry) const;

  /// The arms selection() names, built — ready for ExperimentEngine::run_any.
  /// Exits 2 with usage when a prefix selects nothing.
  std::vector<core::AnyScenario> select(const core::ScenarioRegistry& registry) const;

  /// JSONL sink bound to --json (disabled when the flag was absent), opened
  /// in append mode so several benches can share one path.
  core::JsonlWriter& json();

  /// Persistent artifact store bound to --store; nullptr when the flag was
  /// absent.  Benches hand it to OracleCache (cross-process warm searches)
  /// and use its blobs for pretrained weights.
  const std::shared_ptr<core::ArtifactStore>& store() const { return store_; }

  const std::string& bench_name() const { return bench_name_; }
  const std::vector<std::string>& prefixes() const { return prefixes_; }

 private:
  struct SizeOption {
    std::string flag;
    std::size_t* value;
    std::string help;
  };

  std::string usage() const;
  bool fail(const std::string& message);
  /// Names selected by the prefix union; false (with a message on stderr)
  /// when some prefix selects nothing.
  bool selected_names(const core::ScenarioRegistry& registry,
                      std::vector<std::string>& out) const;

  std::string bench_name_;
  std::vector<SizeOption> size_options_;
  std::vector<std::string> prefixes_;
  std::string json_path_;
  std::string store_dir_;
  bool list_ = false;
  int exit_code_ = 0;
  std::unique_ptr<core::JsonlWriter> json_;
  std::shared_ptr<core::ArtifactStore> store_;
};

/// Flushes `cache` to its backing store (if any) and appends the
/// "<bench>/oracle_stats" JSONL record: Oracle-cache telemetry (lookups /
/// searches / hits are deterministic run-to-run, see OracleCache) plus the
/// process wall time.  JSONL only — wall time must never reach stdout, which
/// the repo determinism probe diffs across invocations.  The CI warm-store
/// pass asserts "searches":0 on these records.
void write_oracle_stats(BenchDriver& driver, core::OracleCache& cache, double wall_time_s);

/// Appends one "<id>/decision_latency" JSONL record per result whose payload
/// carries runner-measured decision latencies (DRM, GPU, and their thermal
/// wrappers): per-decide() wall-clock p50/p99/max in nanoseconds plus the
/// exact decision count.  JSONL only — wall-clock values must never reach
/// stdout (the repo determinism probe diffs stdout across invocations), and
/// the CI gates compare only the deterministic `decisions` count, never the
/// nanoseconds.
void write_decision_latency(BenchDriver& driver, const std::vector<core::AnyResult>& results);

}  // namespace oal::bench
