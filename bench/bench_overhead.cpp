// Decision-latency microbenchmarks (google-benchmark): quantifies the
// runtime-overhead argument running through the whole paper — Oracles are
// too expensive to ship, policies and explicit laws are cheap enough for
// governors/firmware.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/thread_pool.h"
#include "core/artifact_store.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "core/oracle.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

struct CpuFixture {
  CpuFixture() {
    common::Rng rng(7);
    const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
    data = collect_offline_data(plat, mibench, Objective::kEnergy, 10, 4, rng);
    policy = std::make_unique<IlPolicy>(plat.space());
    policy->train_offline(data.policy, rng);
    models = std::make_unique<OnlineSocModels>(plat.space());
    models->bootstrap(data.model_samples);
    common::Rng trng(3);
    snippet = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Kmeans"), 1,
                                              trng)[0];
    result = plat.execute(snippet, config);
  }
  soc::BigLittlePlatform plat;
  OfflineData data;
  std::unique_ptr<IlPolicy> policy;
  std::unique_ptr<OnlineSocModels> models;
  soc::SnippetDescriptor snippet;
  soc::SocConfig config{2, 2, 8, 10};
  soc::SnippetResult result;
};

CpuFixture& cpu_fixture() {
  static CpuFixture f;
  return f;
}

}  // namespace

static void BM_OracleExhaustiveSearch(benchmark::State& state) {
  auto& f = cpu_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle_config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleExhaustiveSearch)->Unit(benchmark::kMicrosecond);

// ---- Oracle-search floor: sharded search, memoization, persistence ---------
// The PR-7 levers against the exhaustive-search cost, each isolated: the
// pooled search (same 4940-config sweep, sharded across workers), a warm
// in-memory cache hit (the common case inside one process), a cold miss
// (cache bookkeeping + full search), and reloading memoized searches from
// the on-disk store (the cross-process warm path CI exercises).

static void BM_OracleSearchPooled(benchmark::State& state) {
  auto& f = cpu_fixture();
  static common::ThreadPool pool;  // sized to the hardware, shared across iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle_search(f.plat, f.snippet, Objective::kEnergy, &pool));
  }
}
BENCHMARK(BM_OracleSearchPooled)->Unit(benchmark::kMicrosecond);

static void BM_OracleCacheWarmHit(benchmark::State& state) {
  auto& f = cpu_fixture();
  OracleCache cache;
  (void)cache.config(f.plat, f.snippet, Objective::kEnergy);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleCacheWarmHit)->Unit(benchmark::kNanosecond);

static void BM_OracleCacheColdSearch(benchmark::State& state) {
  auto& f = cpu_fixture();
  for (auto _ : state) {
    OracleCache cache;
    benchmark::DoNotOptimize(cache.config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleCacheColdSearch)->Unit(benchmark::kMicrosecond);

static void BM_ArtifactStoreWarmLoad(benchmark::State& state) {
  auto& f = cpu_fixture();
  const auto dir = std::filesystem::temp_directory_path() / "oal-bench-overhead-store";
  std::filesystem::remove_all(dir);
  {
    // Seed the store with the fixture's collection worth of searches.
    auto store = std::make_shared<ArtifactStore>(dir.string());
    OracleCache cache(store);
    common::Rng trng(3);
    for (const auto& s : workloads::CpuBenchmarks::trace(
             workloads::CpuBenchmarks::by_name("Kmeans"), 32, trng)) {
      (void)cache.config(f.plat, s, Objective::kEnergy);
    }
    cache.flush();
  }
  ArtifactStore store(dir.string());
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.load_oracle_entries());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ArtifactStoreWarmLoad)->Unit(benchmark::kMicrosecond);

static void BM_IlPolicyDecision(benchmark::State& state) {
  auto& f = cpu_fixture();
  const FeatureExtractor fx(f.plat.space());
  const common::Vec s = fx.policy_features(f.result.counters, f.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.policy->decide(s));
  }
}
BENCHMARK(BM_IlPolicyDecision)->Unit(benchmark::kMicrosecond);

static void BM_OnlineIlFullStep(benchmark::State& state) {
  auto& f = cpu_fixture();
  OnlineIlController ctl(f.plat.space(), *f.policy, *f.models);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.step(f.result, f.config));
  }
}
BENCHMARK(BM_OnlineIlFullStep)->Unit(benchmark::kMicrosecond);

static void BM_ModelCandidateEval(benchmark::State& state) {
  auto& f = cpu_fixture();
  const WorkloadFeatures w = workload_features(f.result.counters, f.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models->predict_log_cost(w, f.config));
  }
}
BENCHMARK(BM_ModelCandidateEval)->Unit(benchmark::kNanosecond);

static void BM_NmpcSlowSolve(benchmark::State& state) {
  gpu::GpuPlatform plat;
  GpuOnlineModels models(plat);
  common::Rng rng(7);
  bootstrap_gpu_models(plat, models, 1.0 / 30.0, 200, rng);
  NmpcGpuController nmpc(plat, models);
  GpuWorkloadState w;
  w.work_cycles = 25e6;
  w.mem_bytes = 12e6;
  std::size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmpc.solve_slow(w, {9, 4}, &evals));
  }
}
BENCHMARK(BM_NmpcSlowSolve)->Unit(benchmark::kMicrosecond);

static void BM_ExplicitNmpcLawStep(benchmark::State& state) {
  gpu::GpuPlatform plat;
  GpuOnlineModels models(plat);
  common::Rng rng(7);
  bootstrap_gpu_models(plat, models, 1.0 / 30.0, 200, rng);
  ExplicitNmpcGpuController enmpc(plat, models, {}, 800);
  enmpc.begin_run({9, 4});
  common::Rng trng(3);
  const auto frame =
      workloads::GpuBenchmarks::trace(workloads::GpuBenchmarks::by_name("EpicCitadel"), 1, trng)[0];
  gpu::GpuPlatform sim;
  const auto result = sim.render(frame, {9, 4}, 1.0 / 30.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enmpc.step(result, {9, 4}, i));
    i += 30;  // always hit the slow tick (law evaluation)
  }
}
BENCHMARK(BM_ExplicitNmpcLawStep)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
