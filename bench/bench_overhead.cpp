// Decision-latency microbenchmarks (google-benchmark): quantifies the
// runtime-overhead argument running through the whole paper — Oracles are
// too expensive to ship, policies and explicit laws are cheap enough for
// governors/firmware.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "tests/alloc_guard.h"

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/artifact_store.h"
#include "core/decision_timer.h"
#include "core/governors.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "core/oracle.h"
#include "core/rl_controller.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

struct CpuFixture {
  CpuFixture() {
    common::Rng rng(7);
    const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
    data = collect_offline_data(plat, mibench, Objective::kEnergy, 10, 4, rng);
    policy = std::make_unique<IlPolicy>(plat.space());
    policy->train_offline(data.policy, rng);
    models = std::make_unique<OnlineSocModels>(plat.space());
    models->bootstrap(data.model_samples);
    common::Rng trng(3);
    snippet = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Kmeans"), 1,
                                              trng)[0];
    result = plat.execute(snippet, config);
  }
  soc::BigLittlePlatform plat;
  OfflineData data;
  std::unique_ptr<IlPolicy> policy;
  std::unique_ptr<OnlineSocModels> models;
  soc::SnippetDescriptor snippet;
  soc::SocConfig config{2, 2, 8, 10};
  soc::SnippetResult result;
};

CpuFixture& cpu_fixture() {
  static CpuFixture f;
  return f;
}

}  // namespace

static void BM_OracleExhaustiveSearch(benchmark::State& state) {
  auto& f = cpu_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle_config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleExhaustiveSearch)->Unit(benchmark::kMicrosecond);

// ---- Oracle-search floor: sharded search, memoization, persistence ---------
// The PR-7 levers against the exhaustive-search cost, each isolated: the
// pooled search (same 4940-config sweep, sharded across workers), a warm
// in-memory cache hit (the common case inside one process), a cold miss
// (cache bookkeeping + full search), and reloading memoized searches from
// the on-disk store (the cross-process warm path CI exercises).

static void BM_OracleSearchPooled(benchmark::State& state) {
  auto& f = cpu_fixture();
  static common::ThreadPool pool;  // sized to the hardware, shared across iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle_search(f.plat, f.snippet, Objective::kEnergy, &pool));
  }
}
BENCHMARK(BM_OracleSearchPooled)->Unit(benchmark::kMicrosecond);

static void BM_OracleCacheWarmHit(benchmark::State& state) {
  auto& f = cpu_fixture();
  OracleCache cache;
  (void)cache.config(f.plat, f.snippet, Objective::kEnergy);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleCacheWarmHit)->Unit(benchmark::kNanosecond);

static void BM_OracleCacheColdSearch(benchmark::State& state) {
  auto& f = cpu_fixture();
  for (auto _ : state) {
    OracleCache cache;
    benchmark::DoNotOptimize(cache.config(f.plat, f.snippet, Objective::kEnergy));
  }
}
BENCHMARK(BM_OracleCacheColdSearch)->Unit(benchmark::kMicrosecond);

static void BM_ArtifactStoreWarmLoad(benchmark::State& state) {
  auto& f = cpu_fixture();
  const auto dir = std::filesystem::temp_directory_path() / "oal-bench-overhead-store";
  std::filesystem::remove_all(dir);
  {
    // Seed the store with the fixture's collection worth of searches.
    auto store = std::make_shared<ArtifactStore>(dir.string());
    OracleCache cache(store);
    common::Rng trng(3);
    for (const auto& s : workloads::CpuBenchmarks::trace(
             workloads::CpuBenchmarks::by_name("Kmeans"), 32, trng)) {
      (void)cache.config(f.plat, s, Objective::kEnergy);
    }
    cache.flush();
  }
  ArtifactStore store(dir.string());
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.load_oracle_entries());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ArtifactStoreWarmLoad)->Unit(benchmark::kMicrosecond);

static void BM_IlPolicyDecision(benchmark::State& state) {
  auto& f = cpu_fixture();
  const FeatureExtractor fx(f.plat.space());
  const common::Vec s = fx.policy_features(f.result.counters, f.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.policy->decide(s));
  }
}
BENCHMARK(BM_IlPolicyDecision)->Unit(benchmark::kMicrosecond);

static void BM_OnlineIlFullStep(benchmark::State& state) {
  auto& f = cpu_fixture();
  OnlineIlController ctl(f.plat.space(), *f.policy, *f.models);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.step(f.result, f.config));
  }
}
BENCHMARK(BM_OnlineIlFullStep)->Unit(benchmark::kMicrosecond);

static void BM_ModelCandidateEval(benchmark::State& state) {
  auto& f = cpu_fixture();
  const WorkloadFeatures w = workload_features(f.result.counters, f.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models->predict_log_cost(w, f.config));
  }
}
BENCHMARK(BM_ModelCandidateEval)->Unit(benchmark::kNanosecond);

static void BM_NmpcSlowSolve(benchmark::State& state) {
  gpu::GpuPlatform plat;
  GpuOnlineModels models(plat);
  common::Rng rng(7);
  bootstrap_gpu_models(plat, models, 1.0 / 30.0, 200, rng);
  NmpcGpuController nmpc(plat, models);
  GpuWorkloadState w;
  w.work_cycles = 25e6;
  w.mem_bytes = 12e6;
  std::size_t evals = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmpc.solve_slow(w, {9, 4}, &evals));
  }
}
BENCHMARK(BM_NmpcSlowSolve)->Unit(benchmark::kMicrosecond);

static void BM_ExplicitNmpcLawStep(benchmark::State& state) {
  gpu::GpuPlatform plat;
  GpuOnlineModels models(plat);
  common::Rng rng(7);
  bootstrap_gpu_models(plat, models, 1.0 / 30.0, 200, rng);
  ExplicitNmpcGpuController enmpc(plat, models, {}, 800);
  enmpc.begin_run({9, 4});
  common::Rng trng(3);
  const auto frame =
      workloads::GpuBenchmarks::trace(workloads::GpuBenchmarks::by_name("EpicCitadel"), 1, trng)[0];
  gpu::GpuPlatform sim;
  const auto result = sim.render(frame, {9, 4}, 1.0 / 30.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enmpc.step(result, {9, 4}, i));
    i += 30;  // always hit the slow tick (law evaluation)
  }
}
BENCHMARK(BM_ExplicitNmpcLawStep)->Unit(benchmark::kMicrosecond);

// ---- Per-controller decide(): latency table + heap discipline --------------
// Custom main: before handing over to google-benchmark, measure each
// controller's steady-state decide() with the same DecisionTimer the runners
// use, and assert the loop performs ZERO heap allocations (alloc_guard.h
// defines the counting global operator new for this binary).  This is the
// human-readable companion to the per-bench `decision_latency` JSONL records;
// the BM_ sections above are unchanged.

namespace {

/// Times `step` over a steady-state loop after warming every lazily-sized
/// scratch buffer, adds a p50/p99/max row, and exits nonzero if the loop
/// touched the heap.  The warmup is generous (not two calls) because some
/// controllers have rng-dependent branches — e.g. the DQN's epsilon-greedy
/// explore/greedy split — and every branch must size its buffers before the
/// probe starts.
template <typename Step>
void decide_row(common::Table& table, const char* name, Step&& step) {
  constexpr std::size_t kWarmup = 64;
  constexpr std::size_t kIters = 2000;  // < DecisionTimer::kCapacity: exact percentiles
  for (std::size_t i = 0; i < kWarmup; ++i) step();
  DecisionTimer timer;
  oal::alloc_guard::AllocationProbe probe;
  for (std::size_t i = 0; i < kIters; ++i) {
    const auto t0 = timer.start();
    step();
    timer.stop(t0);
  }
  if (probe.delta() != 0) {
    std::fprintf(stderr,
                 "bench_overhead: '%s' made %zu heap allocations over %zu "
                 "steady-state decisions (expected 0)\n",
                 name, probe.delta(), kIters);
    std::exit(1);
  }
  const DecisionLatencyStats s = timer.stats();
  table.add_row({name, std::to_string(s.decisions), common::Table::fmt(s.p50_ns, 0),
                 common::Table::fmt(s.p99_ns, 0), common::Table::fmt(s.max_ns, 0)});
}

void run_decide_section() {
  auto& f = cpu_fixture();
  const FeatureExtractor fx(f.plat.space());
  const common::Vec state = fx.policy_features(f.result.counters, f.config);
  common::Table table({"Controller decide()", "Decisions", "p50 (ns)", "p99 (ns)", "max (ns)"});

  OndemandGovernor ondemand(f.plat.space());
  decide_row(table, "ondemand governor",
             [&] { benchmark::DoNotOptimize(ondemand.step(f.result, f.config)); });
  InteractiveGovernor interactive(f.plat.space());
  decide_row(table, "interactive governor",
             [&] { benchmark::DoNotOptimize(interactive.step(f.result, f.config)); });
  PerformanceGovernor performance(f.plat.space());
  decide_row(table, "performance governor",
             [&] { benchmark::DoNotOptimize(performance.step(f.result, f.config)); });
  PowersaveGovernor powersave;
  decide_row(table, "powersave governor",
             [&] { benchmark::DoNotOptimize(powersave.step(f.result, f.config)); });

  IlPolicy::Scratch scratch;
  decide_row(table, "offline IL policy (scratch)",
             [&] { benchmark::DoNotOptimize(f.policy->decide(state, scratch)); });

  QLearningController ql(f.plat.space());
  ql.begin_run(f.config);
  decide_row(table, "RL controller (tabular Q)",
             [&] { benchmark::DoNotOptimize(ql.step(f.result, f.config)); });

  // Training is amortized work, not part of the per-decide path: gate the
  // minibatch and target sync past this loop's horizon so the probe isolates
  // features + forward pass + replay-ring insert.
  ml::DqnConfig dcfg;
  dcfg.min_replay = 1u << 20;
  dcfg.target_sync_period = 1u << 20;
  DqnController dqn(f.plat.space(), dcfg);
  dqn.begin_run(f.config);
  decide_row(table, "RL controller (DQN, no train)",
             [&] { benchmark::DoNotOptimize(dqn.step(f.result, f.config)); });

  // GPU firmware fast path: the per-frame frequency trim between slow ticks.
  gpu::GpuPlatform gplat;
  GpuOnlineModels gmodels(gplat);
  common::Rng grng(7);
  bootstrap_gpu_models(gplat, gmodels, 1.0 / 30.0, 200, grng);
  const NmpcGpuController nmpc(gplat, gmodels);
  GpuWorkloadState w;
  w.work_cycles = 25e6;
  w.mem_bytes = 12e6;
  std::size_t evals = 0;
  decide_row(table, "NMPC fast trim (GPU)",
             [&] { benchmark::DoNotOptimize(nmpc.fast_trim(w, {9, 4}, &evals)); });

  // The *full* per-frame step — RLS refit of both online models through the
  // update scratch, workload EWMA, then the fast trim (fixed off-tick frame
  // index keeps the slow solve out of the timed distribution).  The PR-8
  // zero-alloc contract extended from decide() to the whole step.
  NmpcGpuController nmpc_full(gplat, gmodels);
  nmpc_full.begin_run({9, 4});
  common::Rng ftrng(3);
  const auto gframe = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 1, ftrng)[0];
  gpu::GpuPlatform gsim;
  const auto gresult = gsim.render(gframe, {9, 4}, 1.0 / 30.0);
  decide_row(table, "NMPC full step (refit + trim)",
             [&] { benchmark::DoNotOptimize(nmpc_full.step(gresult, {9, 4}, 1)); });

  std::puts("=== Steady-state decide(): per-controller latency, zero-alloc asserted ===");
  table.print(std::cout);
  std::puts("(every row verified heap-silent over its timed loop; ns are machine-dependent)\n");
}

}  // namespace

int main(int argc, char** argv) {
  run_decide_section();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
