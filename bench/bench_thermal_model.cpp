// Section III-A artifacts: power-temperature fixed points (existence,
// stability, runtime iteration), skin-temperature estimation accuracy, the
// value of greedy sensor selection, and thermal power budgets.
#include <cstdio>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "thermal/fixed_point.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"

using namespace oal;
using namespace oal::thermal;

int main() {
  auto net = RcThermalNetwork::mobile_soc();
  LeakageModel leak;
  leak.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
  leak.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};
  leak.t0_c = 25.0;

  std::puts("=== Power-temperature fixed points (Section III-A) ===");
  common::Table fp_table({"Dyn power (big/little/gpu W)", "Loop gain", "Stable?", "T_big (C)",
                          "T_skin (C)", "Iters to converge"});
  const double loads[][3] = {{1.0, 0.3, 0.5}, {2.5, 0.6, 1.5}, {4.0, 0.8, 2.5}, {5.5, 1.0, 3.5}};
  for (const auto& l : loads) {
    const common::Vec dyn{l[0], l[1], l[2], 0.0, 0.0};
    const auto fp = thermal_fixed_point(net, leak, dyn);
    const auto traj = fixed_point_iteration(net, leak, dyn);
    fp_table.add_row({common::Table::fmt(l[0], 1) + "/" + common::Table::fmt(l[1], 1) + "/" +
                          common::Table::fmt(l[2], 1),
                      common::Table::fmt(fp.loop_gain, 3), fp.exists ? "yes" : "RUNAWAY",
                      fp.exists ? common::Table::fmt(fp.temperature_c[0], 1) : "-",
                      fp.exists ? common::Table::fmt(fp.temperature_c[4], 1) : "-",
                      std::to_string(traj.size() - 1)});
  }
  fp_table.print(std::cout);

  // Runaway demonstration: crank leakage sensitivity until gain >= 1.
  LeakageModel hot = leak;
  hot.p0_w = {3.5, 0.8, 2.5, 0.0, 0.0};
  hot.k_per_c = {0.12, 0.1, 0.12, 0.0, 0.0};
  const auto runaway = thermal_fixed_point(net, hot, {3.0, 0.8, 2.0, 0.0, 0.0});
  std::printf("\nHigh-leakage corner: loop gain %.2f -> %s (existence condition of [25])\n",
              runaway.loop_gain, runaway.exists ? "stable" : "thermal runaway");

  // ---- Skin-temperature estimation -----------------------------------------
  std::puts("\n=== Skin-temperature estimation from internal sensors ===");
  common::Rng rng(21);
  SensorArray sensors({0, 1, 2, 3}, 0.2, 33);
  std::vector<common::Vec> readings;
  std::vector<double> skin_truth;
  RcThermalNetwork sim = net;
  common::Vec power(5, 0.0);
  for (int step = 0; step < 1200; ++step) {
    if (step % 60 == 0) {
      power = {rng.uniform(0.2, 4.5), rng.uniform(0.1, 1.0), rng.uniform(0.1, 3.0), 0.0, 0.0};
    }
    sim.step(power, 1.0);
    readings.push_back(sensors.read(sim.temperatures()));
    skin_truth.push_back(sim.temperatures()[4]);
  }
  const std::size_t train_n = 800;
  SkinTemperatureEstimator est(4);
  est.fit({readings.begin(), readings.begin() + train_n},
          {skin_truth.begin(), skin_truth.begin() + train_n});
  std::vector<double> pred, truth;
  for (std::size_t i = train_n; i < readings.size(); ++i) {
    pred.push_back(est.estimate(readings[i]));
    truth.push_back(skin_truth[i]);
  }
  std::printf("Held-out skin-estimation RMSE: %.3f C over %zu samples\n",
              common::rmse(truth, pred), pred.size());

  const auto order = greedy_sensor_selection(readings, skin_truth, 4);
  common::Table sel({"Budget", "Chosen sensors (node ids)", "Training RMSE (C)"});
  for (std::size_t k = 1; k <= order.size(); ++k) {
    std::vector<common::Vec> sub;
    sub.reserve(readings.size());
    for (const auto& r : readings) {
      common::Vec v;
      for (std::size_t j = 0; j < k; ++j) v.push_back(r[order[j]]);
      sub.push_back(v);
    }
    SkinTemperatureEstimator e(k);
    e.fit(sub, skin_truth);
    std::vector<double> p2;
    for (const auto& v : sub) p2.push_back(e.estimate(v));
    std::string chosen;
    for (std::size_t j = 0; j < k; ++j)
      chosen += std::to_string(sensors.nodes()[order[j]]) + (j + 1 < k ? "," : "");
    sel.add_row({std::to_string(k), chosen, common::Table::fmt(common::rmse(skin_truth, p2), 3)});
  }
  std::puts("\nGreedy sensor selection (Zhang et al. style):");
  sel.print(std::cout);

  // ---- Thermal power budget --------------------------------------------------
  std::puts("\n=== Thermal power budgets (throttling input of [24]) ===");
  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};  // big-heavy workload mix
  const auto budget = max_sustainable_power(net, leak, shape);
  std::printf("Max sustainable total power: %.2f W (binding node: %s)\n", budget.total_power_w,
              net.nodes()[budget.binding_node].name.c_str());
  common::Table tr({"Horizon (s)", "Transient headroom (W)"});
  for (double h : {5.0, 20.0, 60.0, 300.0}) {
    RcThermalNetwork fresh = net;
    tr.add_row(common::Table::fmt(h, 0),
               {transient_power_headroom(fresh, leak, shape, h) *
                (shape[0] + shape[1] + shape[2])},
               2);
  }
  tr.print(std::cout);
  std::puts("Transient headroom exceeds the sustainable budget for short horizons");
  std::puts("(thermal capacitance absorbs bursts) and approaches it for long ones.");
  return 0;
}
