// Section III-A artifacts: power-temperature fixed points (existence,
// stability, runtime iteration), skin-temperature estimation accuracy, the
// value of greedy sensor selection, and thermal power budgets — plus the
// coupling of the thermal layer into the DRM hot path: how controller
// rankings shift when a thermal power budget throttles their decisions.
//
// Every arm lives in one ScenarioRegistry: the sweeps (fixed-point loads,
// sensor budgets, transient horizons) are custom AnyScenario closures that
// construct all their state inside the worker, and the DRM comparison is a
// mixed family of unconstrained Scenarios and ThermalDrmScenarios sharing
// one OracleCache.  The shared bench driver selects arms by prefix
// ("thermal", "thermal_drm/budget", "thermal_aware", ...); report sections
// whose arms were deselected are skipped.
#include <array>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <utility>

#include "bench/driver.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "thermal/fixed_point.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::thermal;

namespace {

/// The bench's shared RC network / leakage corner (cheap to construct, so
/// arms rebuild it inside their closures instead of sharing state).
RcThermalNetwork bench_network() { return RcThermalNetwork::mobile_soc(); }

LeakageModel bench_leakage() {
  LeakageModel leak;
  leak.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
  leak.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};
  leak.t0_c = 25.0;
  return leak;
}

struct FpArm {
  FixedPointResult fp;
  std::size_t iters = 0;
};

/// The skin-estimation data set: 1200 s of piecewise-constant random power
/// on the RC network, read through noisy internal sensors.  Deterministic
/// (fixed seed), so every arm that needs it can rebuild it independently.
struct SkinDataset {
  SensorArray sensors{{0, 1, 2, 3}, 0.2, 33};
  std::vector<common::Vec> readings;
  std::vector<double> skin_truth;

  SkinDataset() {
    common::Rng rng(21);
    RcThermalNetwork sim = bench_network();
    common::Vec power(5, 0.0);
    for (int step = 0; step < 1200; ++step) {
      if (step % 60 == 0) {
        power = {rng.uniform(0.2, 4.5), rng.uniform(0.1, 1.0), rng.uniform(0.1, 3.0), 0.0, 0.0};
      }
      sim.step(power, 1.0);
      readings.push_back(sensors.read(sim.temperatures()));
      skin_truth.push_back(sim.temperatures()[4]);
    }
  }
};

/// Sensor-budget arm payload: the chosen node-id list and its training RMSE.
struct SensorArm {
  std::string chosen;
  double rmse_c = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("thermal_model");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  using namespace oal::core;
  const auto net = bench_network();
  const auto leak = bench_leakage();

  ScenarioRegistry registry;

  // ---- Fixed-point sweep ----------------------------------------------------
  const std::vector<std::array<double, 3>> fp_loads = {
      {1.0, 0.3, 0.5}, {2.5, 0.6, 1.5}, {4.0, 0.8, 2.5}, {5.5, 1.0, 3.5}};
  for (std::size_t i = 0; i < fp_loads.size(); ++i) {
    const std::string id = "thermal/fixed_point/" + std::to_string(i);
    registry.add_any(id, [id, l = fp_loads[i]] {
      return AnyScenario(id, [id, l] {
        const auto n = bench_network();
        const auto lk = bench_leakage();
        const common::Vec dyn{l[0], l[1], l[2], 0.0, 0.0};
        FpArm arm;
        arm.fp = thermal_fixed_point(n, lk, dyn);
        arm.iters = fixed_point_iteration(n, lk, dyn).size() - 1;
        Metrics m{{"loop_gain", arm.fp.loop_gain},
                  {"stable", arm.fp.exists ? 1.0 : 0.0},
                  {"iters", static_cast<double>(arm.iters)}};
        if (arm.fp.exists) {
          m.emplace_back("t_big_c", arm.fp.temperature_c[0]);
          m.emplace_back("t_skin_c", arm.fp.temperature_c[4]);
        }
        return AnyResult(id, std::move(arm), std::move(m));
      });
    });
  }

  // ---- Skin-temperature estimation ------------------------------------------
  registry.add_any("thermal/skin/estimator", [] {
    return AnyScenario("thermal/skin/estimator", [] {
      const SkinDataset data;
      const std::size_t train_n = 800;
      SkinTemperatureEstimator est(4);
      est.fit({data.readings.begin(), data.readings.begin() + train_n},
              {data.skin_truth.begin(), data.skin_truth.begin() + train_n});
      std::vector<double> pred, truth;
      for (std::size_t i = train_n; i < data.readings.size(); ++i) {
        pred.push_back(est.estimate(data.readings[i]));
        truth.push_back(data.skin_truth[i]);
      }
      const double rmse = common::rmse(truth, pred);
      return AnyResult("thermal/skin/estimator", rmse,
                       Metrics{{"rmse_c", rmse}, {"samples", static_cast<double>(pred.size())}});
    });
  });
  for (std::size_t k = 1; k <= 4; ++k) {
    const std::string id = "thermal/skin/sensors/" + std::to_string(k);
    registry.add_any(id, [id, k] {
      return AnyScenario(id, [id, k] {
        const SkinDataset data;
        const auto order = greedy_sensor_selection(data.readings, data.skin_truth, 4);
        std::vector<common::Vec> sub;
        sub.reserve(data.readings.size());
        for (const auto& r : data.readings) {
          common::Vec v;
          for (std::size_t j = 0; j < k; ++j) v.push_back(r[order[j]]);
          sub.push_back(v);
        }
        SkinTemperatureEstimator e(k);
        e.fit(sub, data.skin_truth);
        std::vector<double> p2;
        for (const auto& v : sub) p2.push_back(e.estimate(v));
        SensorArm arm;
        for (std::size_t j = 0; j < k; ++j)
          arm.chosen += std::to_string(data.sensors.nodes()[order[j]]) + (j + 1 < k ? "," : "");
        arm.rmse_c = common::rmse(data.skin_truth, p2);
        return AnyResult(id, arm, Metrics{{"rmse_c", arm.rmse_c}});
      });
    });
  }

  // ---- Transient power headroom sweep ---------------------------------------
  const std::vector<double> horizons{5.0, 20.0, 60.0, 300.0};
  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};  // big-heavy workload mix
  for (double h : horizons) {
    const std::string id = "thermal/headroom/" + common::Table::fmt(h, 0);
    registry.add_any(id, [id, h, shape] {
      return AnyScenario(id, [id, h, shape] {
        RcThermalNetwork fresh = bench_network();
        const double w =
            transient_power_headroom(fresh, bench_leakage(), shape, h) *
            (shape[0] + shape[1] + shape[2]);
        return AnyResult(id, w, Metrics{{"headroom_w", w}});
      });
    });
  }

  // ---- Thermally-constrained DRM: do controller rankings survive a budget? --
  // Each controller runs the same trace twice — unconstrained, and on a
  // preheated device with tight junction/skin limits (soc::ThermalSocAdapter
  // clamping every decision).  One OracleCache serves every DRM arm; the
  // engine pool (declared before the cache that borrows it) shards its cold
  // searches, and --store keeps them across invocations.
  ExperimentEngine engine;
  auto cache = std::make_shared<OracleCache>(driver.store(), &engine.pool());
  std::vector<soc::SnippetDescriptor> trace;
  {
    common::Rng trace_rng(414);
    std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("Kmeans"),
                                         workloads::CpuBenchmarks::by_name("MotionEst")};
    trace = workloads::CpuBenchmarks::sequence(apps, trace_rng);
    if (trace.size() > 60) trace.resize(60);
  }

  // Hot-enclosure scenario (40 C ambient, e.g. a dashboard-mounted device):
  // a 3 K skin margin yields a ~1.7 W sustainable budget, well below the
  // platform's top configurations (~2.9 W), so the budgeter binds.
  // horizon_s = 0 selects the steady-state max_sustainable_power budget.
  soc::ThermalConstraintParams tight;
  tight.limits.t_max_junction_c = 55.0;
  tight.limits.t_max_skin_c = 43.0;
  tight.ambient_c = 40.0;
  tight.horizon_s = 0.0;

  const std::vector<workloads::AppSpec> offline_apps{workloads::CpuBenchmarks::by_name("SHA"),
                                                     workloads::CpuBenchmarks::by_name("FFT")};
  const std::map<std::string, ControllerFactory> controllers{
      {"ondemand", governor_factory("ondemand")},
      {"performance", governor_factory("performance")},
      {"powersave", governor_factory("powersave")},
      {"online-il", online_il_collect_factory(offline_apps, /*snippets_per_app=*/10,
                                              /*configs_per_snippet=*/4, /*collect_seed=*/7,
                                              /*train_seed=*/5, {}, cache)},
  };
  for (const auto& [name, factory] : controllers) {
    registry.add("thermal_drm/free/" + name, [trace, factory, cache] {
      Scenario s;
      s.trace = trace;
      s.make_controller = factory;
      s.oracle_cache = cache;
      return s;
    });
    registry.add_any("thermal_drm/budget/" + name, [trace, factory, cache, tight] {
      Scenario s;
      s.trace = trace;
      s.make_controller = factory;
      s.oracle_cache = cache;
      return AnyScenario(ThermalDrmScenario{std::move(s), tight});
    });
  }

  // ---- Blind vs thermal-aware learned policies under the same budget --------
  // The same learned controllers run the budgeted trace twice: blind
  // (telemetry ignored) and thermal-aware (policy state carries temperatures
  // + budget headroom; online-IL additionally restricts its candidate search
  // to budget-feasible configs).  Longer trace than the ranking section: the
  // aware controller's edge comes from its online models learning the true
  // power boundary, which takes a few policy-update periods to show.
  std::vector<soc::SnippetDescriptor> long_trace;
  {
    common::Rng trace_rng(414);
    std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("Kmeans"),
                                         workloads::CpuBenchmarks::by_name("MotionEst")};
    long_trace = workloads::CpuBenchmarks::sequence(apps, trace_rng);
    if (long_trace.size() > 600) long_trace.resize(600);
  }
  const auto il_factory = [&](bool aware) {
    OnlineIlConfig cfg;
    cfg.thermal_aware = aware;
    return online_il_collect_factory(offline_apps, /*snippets_per_app=*/10,
                                     /*configs_per_snippet=*/4, /*collect_seed=*/7,
                                     /*train_seed=*/5, cfg, cache);
  };
  const auto dqn_factory = [](bool aware) {
    return [aware](ScenarioContext& ctx) {
      return ControllerInstance{
          std::make_unique<DqnController>(ctx.platform.space(), ml::DqnConfig{}, RlRewardScale{},
                                          aware),
          nullptr};
    };
  };
  const std::map<std::string, std::pair<ControllerFactory, ControllerFactory>> learned{
      {"online-il", {il_factory(false), il_factory(true)}},
      {"rl-dqn", {dqn_factory(false), dqn_factory(true)}},
  };
  for (const auto& [name, factories] : learned) {
    for (const char* mode : {"blind", "aware"}) {
      const ControllerFactory factory =
          mode == std::string("blind") ? factories.first : factories.second;
      registry.add_any("thermal_aware/" + std::string(mode) + "/" + name,
                       [long_trace, factory, cache, tight] {
                         Scenario s;
                         s.trace = long_trace;
                         s.make_controller = factory;
                         s.oracle_cache = cache;
                         return AnyScenario(ThermalDrmScenario{std::move(s), tight});
                       });
    }
  }

  if (driver.listing()) return driver.list(registry);

  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  write_oracle_stats(
      driver, *cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());
  const bench::ResultIndex index(results);

  // ---- Report: fixed points -------------------------------------------------
  bool have_fp = false;
  for (std::size_t i = 0; i < fp_loads.size(); ++i)
    have_fp |= index.has("thermal/fixed_point/" + std::to_string(i));
  if (have_fp) {
    std::puts("=== Power-temperature fixed points (Section III-A) ===");
    common::Table fp_table({"Dyn power (big/little/gpu W)", "Loop gain", "Stable?", "T_big (C)",
                            "T_skin (C)", "Iters to converge"});
    for (std::size_t i = 0; i < fp_loads.size(); ++i) {
      const AnyResult* r = index.find("thermal/fixed_point/" + std::to_string(i));
      if (!r) continue;
      const auto& l = fp_loads[i];
      const FpArm& arm = r->as<FpArm>();
      const auto& fp = arm.fp;
      fp_table.add_row({common::Table::fmt(l[0], 1) + "/" + common::Table::fmt(l[1], 1) + "/" +
                            common::Table::fmt(l[2], 1),
                        common::Table::fmt(fp.loop_gain, 3), fp.exists ? "yes" : "RUNAWAY",
                        fp.exists ? common::Table::fmt(fp.temperature_c[0], 1) : "-",
                        fp.exists ? common::Table::fmt(fp.temperature_c[4], 1) : "-",
                        std::to_string(arm.iters)});
    }
    fp_table.print(std::cout);

    // Runaway demonstration: crank leakage sensitivity until gain >= 1.
    LeakageModel hot = leak;
    hot.p0_w = {3.5, 0.8, 2.5, 0.0, 0.0};
    hot.k_per_c = {0.12, 0.1, 0.12, 0.0, 0.0};
    const auto runaway = thermal_fixed_point(net, hot, {3.0, 0.8, 2.0, 0.0, 0.0});
    std::printf("\nHigh-leakage corner: loop gain %.2f -> %s (existence condition of [25])\n",
                runaway.loop_gain, runaway.exists ? "stable" : "thermal runaway");
  }

  // ---- Report: skin estimation ----------------------------------------------
  if (const AnyResult* est = index.find("thermal/skin/estimator")) {
    std::puts("\n=== Skin-temperature estimation from internal sensors ===");
    std::printf("Held-out skin-estimation RMSE: %.3f C over %zu samples\n", est->metric("rmse_c"),
                static_cast<std::size_t>(est->metric("samples")));
  }
  bool have_sensors = false;
  for (std::size_t k = 1; k <= 4; ++k)
    have_sensors |= index.has("thermal/skin/sensors/" + std::to_string(k));
  if (have_sensors) {
    common::Table sel({"Budget", "Chosen sensors (node ids)", "Training RMSE (C)"});
    for (std::size_t k = 1; k <= 4; ++k) {
      const AnyResult* r = index.find("thermal/skin/sensors/" + std::to_string(k));
      if (!r) continue;
      const SensorArm& arm = r->as<SensorArm>();
      sel.add_row({std::to_string(k), arm.chosen, common::Table::fmt(arm.rmse_c, 3)});
    }
    std::puts("\nGreedy sensor selection (Zhang et al. style):");
    sel.print(std::cout);
  }

  // ---- Report: thermal power budget ------------------------------------------
  bool have_headroom = false;
  for (double h : horizons)
    have_headroom |= index.has("thermal/headroom/" + common::Table::fmt(h, 0));
  if (have_headroom) {
    std::puts("\n=== Thermal power budgets (throttling input of [24]) ===");
    const auto budget = max_sustainable_power(net, leak, shape);
    std::printf("Max sustainable total power: %.2f W (binding node: %s)\n", budget.total_power_w,
                net.nodes()[budget.binding_node].name.c_str());
    common::Table tr({"Horizon (s)", "Transient headroom (W)"});
    for (double h : horizons) {
      const AnyResult* r = index.find("thermal/headroom/" + common::Table::fmt(h, 0));
      if (!r) continue;
      tr.add_row(common::Table::fmt(h, 0), {r->metric("headroom_w")}, 2);
    }
    tr.print(std::cout);
    std::puts("Transient headroom exceeds the sustainable budget for short horizons");
    std::puts("(thermal capacitance absorbs bursts) and approaches it for long ones.");
  }

  // ---- Report: DRM controllers under a thermal power budget ------------------
  bool have_drm = false;
  for (const auto& [name, factory] : controllers)
    have_drm |= index.has("thermal_drm/free/" + name) && index.has("thermal_drm/budget/" + name);
  if (have_drm) {
    std::puts("\n=== DRM controllers under a thermal power budget ===");
    common::Table drm({"Controller", "E/Oracle free", "E/Oracle budget", "Clamped", "Peak Tj (C)",
                       "Peak Tskin (C)"});
    for (const auto& [name, factory] : controllers) {
      const AnyResult* free = index.find("thermal_drm/free/" + name);
      const AnyResult* con = index.find("thermal_drm/budget/" + name);
      if (!free || !con) continue;
      drm.add_row({name, common::Table::fmt(free->metric("energy_ratio"), 3),
                   common::Table::fmt(con->metric("energy_ratio"), 3),
                   common::Table::fmt(100.0 * con->metric("clamped_snippets") /
                                          con->metric("snippets"),
                                      0) +
                       "%",
                   common::Table::fmt(con->metric("peak_junction_c"), 1),
                   common::Table::fmt(con->metric("peak_skin_c"), 1)});
    }
    drm.print(std::cout);
    std::printf("Oracle cache: %zu entries, %zu/%zu hits\n", cache->size(), cache->hits(),
                cache->lookups());
    std::puts("A binding budget reorders the field: power-hungry policies are clamped");
    std::puts("to the same throttle ceiling, while energy-aware ones keep their edge.");
  }

  // ---- Report: blind vs aware -------------------------------------------------
  bool have_aware = false;
  for (const auto& [name, factories] : learned)
    have_aware |= index.has("thermal_aware/blind/" + name) &&
                  index.has("thermal_aware/aware/" + name);
  if (have_aware) {
    std::puts("\n=== Blind vs thermal-aware controllers under the 1.7 W budget ===");
    common::Table cmp({"Controller", "E/Oracle blind", "E/Oracle aware", "Clamp% blind",
                       "Clamp% aware", "Peak Tskin aware (C)"});
    for (const auto& [name, factories] : learned) {
      const AnyResult* blind = index.find("thermal_aware/blind/" + name);
      const AnyResult* aware = index.find("thermal_aware/aware/" + name);
      if (!blind || !aware) continue;
      const auto clamp_pct = [](const AnyResult& r) {
        return 100.0 * r.metric("clamped_snippets") / r.metric("snippets");
      };
      cmp.add_row({name, common::Table::fmt(blind->metric("energy_ratio"), 3),
                   common::Table::fmt(aware->metric("energy_ratio"), 3),
                   common::Table::fmt(clamp_pct(*blind), 0) + "%",
                   common::Table::fmt(clamp_pct(*aware), 0) + "%",
                   common::Table::fmt(aware->metric("peak_skin_c"), 1)});
    }
    cmp.print(std::cout);
    std::puts("Telemetry closes the loop: an aware policy proposes budget-feasible");
    std::puts("configs instead of being throttled after the fact.");
  }
  return 0;
}
