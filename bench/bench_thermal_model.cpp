// Section III-A artifacts: power-temperature fixed points (existence,
// stability, runtime iteration), skin-temperature estimation accuracy, the
// value of greedy sensor selection, and thermal power budgets — plus the
// coupling of the thermal layer into the DRM hot path: how controller
// rankings shift when a thermal power budget throttles their decisions.
//
// The sweep arms (fixed-point loads, sensor budgets, transient horizons)
// fan out through ExperimentEngine::map; the DRM comparison is a mixed
// batch of unconstrained Scenarios and ThermalDrmScenarios sharing one
// OracleCache.
#include <array>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "core/domain.h"
#include "core/governors.h"
#include "core/results_io.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "thermal/fixed_point.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::thermal;

int main(int argc, char** argv) {
  core::ExperimentEngine engine;
  core::JsonlWriter json(core::json_path_arg(argc, argv));

  auto net = RcThermalNetwork::mobile_soc();
  LeakageModel leak;
  leak.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
  leak.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};
  leak.t0_c = 25.0;

  std::puts("=== Power-temperature fixed points (Section III-A) ===");
  common::Table fp_table({"Dyn power (big/little/gpu W)", "Loop gain", "Stable?", "T_big (C)",
                          "T_skin (C)", "Iters to converge"});
  {
    struct FpArm {
      FixedPointResult fp;
      std::size_t iters = 0;
    };
    const std::vector<std::array<double, 3>> loads = {
        {1.0, 0.3, 0.5}, {2.5, 0.6, 1.5}, {4.0, 0.8, 2.5}, {5.5, 1.0, 3.5}};
    const auto arms = engine.map(loads, [&](const std::array<double, 3>& l, std::size_t) {
      const common::Vec dyn{l[0], l[1], l[2], 0.0, 0.0};
      FpArm arm;
      arm.fp = thermal_fixed_point(net, leak, dyn);
      arm.iters = fixed_point_iteration(net, leak, dyn).size() - 1;
      return arm;
    });
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const auto& l = loads[i];
      const auto& fp = arms[i].fp;
      fp_table.add_row({common::Table::fmt(l[0], 1) + "/" + common::Table::fmt(l[1], 1) + "/" +
                            common::Table::fmt(l[2], 1),
                        common::Table::fmt(fp.loop_gain, 3), fp.exists ? "yes" : "RUNAWAY",
                        fp.exists ? common::Table::fmt(fp.temperature_c[0], 1) : "-",
                        fp.exists ? common::Table::fmt(fp.temperature_c[4], 1) : "-",
                        std::to_string(arms[i].iters)});
    }
  }
  fp_table.print(std::cout);

  // Runaway demonstration: crank leakage sensitivity until gain >= 1.
  LeakageModel hot = leak;
  hot.p0_w = {3.5, 0.8, 2.5, 0.0, 0.0};
  hot.k_per_c = {0.12, 0.1, 0.12, 0.0, 0.0};
  const auto runaway = thermal_fixed_point(net, hot, {3.0, 0.8, 2.0, 0.0, 0.0});
  std::printf("\nHigh-leakage corner: loop gain %.2f -> %s (existence condition of [25])\n",
              runaway.loop_gain, runaway.exists ? "stable" : "thermal runaway");

  // ---- Skin-temperature estimation -----------------------------------------
  std::puts("\n=== Skin-temperature estimation from internal sensors ===");
  common::Rng rng(21);
  SensorArray sensors({0, 1, 2, 3}, 0.2, 33);
  std::vector<common::Vec> readings;
  std::vector<double> skin_truth;
  RcThermalNetwork sim = net;
  common::Vec power(5, 0.0);
  for (int step = 0; step < 1200; ++step) {
    if (step % 60 == 0) {
      power = {rng.uniform(0.2, 4.5), rng.uniform(0.1, 1.0), rng.uniform(0.1, 3.0), 0.0, 0.0};
    }
    sim.step(power, 1.0);
    readings.push_back(sensors.read(sim.temperatures()));
    skin_truth.push_back(sim.temperatures()[4]);
  }
  const std::size_t train_n = 800;
  SkinTemperatureEstimator est(4);
  est.fit({readings.begin(), readings.begin() + train_n},
          {skin_truth.begin(), skin_truth.begin() + train_n});
  std::vector<double> pred, truth;
  for (std::size_t i = train_n; i < readings.size(); ++i) {
    pred.push_back(est.estimate(readings[i]));
    truth.push_back(skin_truth[i]);
  }
  std::printf("Held-out skin-estimation RMSE: %.3f C over %zu samples\n",
              common::rmse(truth, pred), pred.size());

  const auto order = greedy_sensor_selection(readings, skin_truth, 4);
  common::Table sel({"Budget", "Chosen sensors (node ids)", "Training RMSE (C)"});
  {
    const std::vector<std::size_t> budgets{1, 2, 3, 4};
    const auto rows = engine.map(budgets, [&](std::size_t k, std::size_t) {
      std::vector<common::Vec> sub;
      sub.reserve(readings.size());
      for (const auto& r : readings) {
        common::Vec v;
        for (std::size_t j = 0; j < k; ++j) v.push_back(r[order[j]]);
        sub.push_back(v);
      }
      SkinTemperatureEstimator e(k);
      e.fit(sub, skin_truth);
      std::vector<double> p2;
      for (const auto& v : sub) p2.push_back(e.estimate(v));
      std::string chosen;
      for (std::size_t j = 0; j < k; ++j)
        chosen += std::to_string(sensors.nodes()[order[j]]) + (j + 1 < k ? "," : "");
      return std::pair<std::string, double>(chosen, common::rmse(skin_truth, p2));
    });
    for (std::size_t k = 1; k <= budgets.size(); ++k)
      sel.add_row(
          {std::to_string(k), rows[k - 1].first, common::Table::fmt(rows[k - 1].second, 3)});
  }
  std::puts("\nGreedy sensor selection (Zhang et al. style):");
  sel.print(std::cout);

  // ---- Thermal power budget --------------------------------------------------
  std::puts("\n=== Thermal power budgets (throttling input of [24]) ===");
  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};  // big-heavy workload mix
  const auto budget = max_sustainable_power(net, leak, shape);
  std::printf("Max sustainable total power: %.2f W (binding node: %s)\n", budget.total_power_w,
              net.nodes()[budget.binding_node].name.c_str());
  common::Table tr({"Horizon (s)", "Transient headroom (W)"});
  {
    const std::vector<double> horizons{5.0, 20.0, 60.0, 300.0};
    const auto headrooms = engine.map(horizons, [&](double h, std::size_t) {
      RcThermalNetwork fresh = net;
      return transient_power_headroom(fresh, leak, shape, h) * (shape[0] + shape[1] + shape[2]);
    });
    for (std::size_t i = 0; i < horizons.size(); ++i)
      tr.add_row(common::Table::fmt(horizons[i], 0), {headrooms[i]}, 2);
  }
  tr.print(std::cout);
  std::puts("Transient headroom exceeds the sustainable budget for short horizons");
  std::puts("(thermal capacitance absorbs bursts) and approaches it for long ones.");

  // ---- Thermally-constrained DRM: do controller rankings survive a budget? --
  // Each controller runs the same trace twice — unconstrained, and on a
  // preheated device with tight junction/skin limits (soc::ThermalSocAdapter
  // clamping every decision).  One OracleCache serves all eight arms.
  std::puts("\n=== DRM controllers under a thermal power budget ===");
  {
    using namespace oal::core;
    auto cache = std::make_shared<OracleCache>();
    std::vector<soc::SnippetDescriptor> trace;
    {
      common::Rng trace_rng(414);
      std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("Kmeans"),
                                           workloads::CpuBenchmarks::by_name("MotionEst")};
      trace = workloads::CpuBenchmarks::sequence(apps, trace_rng);
      if (trace.size() > 60) trace.resize(60);
    }

    // Hot-enclosure scenario (40 C ambient, e.g. a dashboard-mounted device):
    // a 3 K skin margin yields a ~1.7 W sustainable budget, well below the
    // platform's top configurations (~2.9 W), so the budgeter binds.
    // horizon_s = 0 selects the steady-state max_sustainable_power budget.
    soc::ThermalConstraintParams tight;
    tight.limits.t_max_junction_c = 55.0;
    tight.limits.t_max_skin_c = 43.0;
    tight.ambient_c = 40.0;
    tight.horizon_s = 0.0;

    const std::vector<workloads::AppSpec> offline_apps{workloads::CpuBenchmarks::by_name("SHA"),
                                                       workloads::CpuBenchmarks::by_name("FFT")};
    const std::map<std::string, ControllerFactory> controllers{
        {"ondemand",
         [](ScenarioContext& ctx) {
           return ControllerInstance{std::make_unique<OndemandGovernor>(ctx.platform.space()),
                                     nullptr};
         }},
        {"performance",
         [](ScenarioContext& ctx) {
           return ControllerInstance{std::make_unique<PerformanceGovernor>(ctx.platform.space()),
                                     nullptr};
         }},
        {"powersave",
         [](ScenarioContext&) {
           return ControllerInstance{std::make_unique<PowersaveGovernor>(), nullptr};
         }},
        {"online-il", online_il_collect_factory(offline_apps, /*snippets_per_app=*/10,
                                                /*configs_per_snippet=*/4, /*collect_seed=*/7,
                                                /*train_seed=*/5, {}, cache)},
    };

    std::vector<AnyScenario> batch;
    for (const auto& [name, factory] : controllers) {
      Scenario s;
      s.id = "thermal_drm/free/" + name;
      s.trace = trace;
      s.make_controller = factory;
      s.oracle_cache = cache;
      ThermalDrmScenario constrained{s, tight};
      constrained.base.id = "thermal_drm/budget/" + name;
      batch.emplace_back(std::move(s));
      batch.emplace_back(std::move(constrained));
    }
    const auto results = engine.run_any(batch);
    json.write("thermal_model", results);
    std::map<std::string, const AnyResult*> by_id;
    for (const auto& r : results) by_id.emplace(r.id(), &r);

    common::Table drm({"Controller", "E/Oracle free", "E/Oracle budget", "Clamped", "Peak Tj (C)",
                       "Peak Tskin (C)"});
    for (const auto& [name, factory] : controllers) {
      const AnyResult& free = *by_id.at("thermal_drm/free/" + name);
      const AnyResult& con = *by_id.at("thermal_drm/budget/" + name);
      drm.add_row({name, common::Table::fmt(free.metric("energy_ratio"), 3),
                   common::Table::fmt(con.metric("energy_ratio"), 3),
                   common::Table::fmt(100.0 * con.metric("clamped_snippets") /
                                          con.metric("snippets"),
                                      0) +
                       "%",
                   common::Table::fmt(con.metric("peak_junction_c"), 1),
                   common::Table::fmt(con.metric("peak_skin_c"), 1)});
    }
    drm.print(std::cout);
    std::printf("Oracle cache: %zu entries, %zu/%zu hits\n", cache->size(), cache->hits(),
                cache->lookups());
    std::puts("A binding budget reorders the field: power-hungry policies are clamped");
    std::puts("to the same throttle ceiling, while energy-aware ones keep their edge.");

    // ---- Blind vs thermal-aware learned policies under the same budget ----
    // The same learned controllers run the budgeted trace twice: blind
    // (telemetry ignored — PR 2 behavior, bitwise identical) and
    // thermal-aware (policy state carries temperatures + budget headroom;
    // online-IL additionally restricts its candidate search to
    // budget-feasible configs).  Awareness should cut the clamp rate — the
    // controller proposes what the budgeter would have allowed — and improve
    // E/Oracle, because the model-guided choice inside the budget beats the
    // arbiter's blunt throttle ladder.
    std::puts("\n=== Blind vs thermal-aware controllers under the 1.7 W budget ===");
    {
      // Longer trace than the ranking section: the aware controller's edge
      // comes from its online models learning the true power boundary, which
      // takes a few policy-update periods to show.
      std::vector<soc::SnippetDescriptor> long_trace;
      {
        common::Rng trace_rng(414);
        std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("Kmeans"),
                                             workloads::CpuBenchmarks::by_name("MotionEst")};
        long_trace = workloads::CpuBenchmarks::sequence(apps, trace_rng);
        if (long_trace.size() > 600) long_trace.resize(600);
      }
      const auto il_factory = [&](bool aware) {
        OnlineIlConfig cfg;
        cfg.thermal_aware = aware;
        return online_il_collect_factory(offline_apps, /*snippets_per_app=*/10,
                                         /*configs_per_snippet=*/4, /*collect_seed=*/7,
                                         /*train_seed=*/5, cfg, cache);
      };
      const auto dqn_factory = [](bool aware) {
        return [aware](ScenarioContext& ctx) {
          return ControllerInstance{
              std::make_unique<DqnController>(ctx.platform.space(), ml::DqnConfig{},
                                              RlRewardScale{}, aware),
              nullptr};
        };
      };
      const std::map<std::string, std::pair<ControllerFactory, ControllerFactory>> learned{
          {"online-il", {il_factory(false), il_factory(true)}},
          {"rl-dqn", {dqn_factory(false), dqn_factory(true)}},
      };

      std::vector<AnyScenario> aware_batch;
      for (const auto& [name, factories] : learned) {
        for (const char* mode : {"blind", "aware"}) {
          Scenario s;
          s.id = "thermal_aware/" + std::string(mode) + "/" + name;
          s.trace = long_trace;
          s.make_controller = mode == std::string("blind") ? factories.first : factories.second;
          s.oracle_cache = cache;
          aware_batch.emplace_back(ThermalDrmScenario{std::move(s), tight});
        }
      }
      const auto aware_results = engine.run_any(aware_batch);
      json.write("thermal_model", aware_results);
      std::map<std::string, const AnyResult*> aware_by_id;
      for (const auto& r : aware_results) aware_by_id.emplace(r.id(), &r);

      common::Table cmp({"Controller", "E/Oracle blind", "E/Oracle aware", "Clamp% blind",
                         "Clamp% aware", "Peak Tskin aware (C)"});
      for (const auto& [name, factories] : learned) {
        const AnyResult& blind = *aware_by_id.at("thermal_aware/blind/" + name);
        const AnyResult& aware = *aware_by_id.at("thermal_aware/aware/" + name);
        const auto clamp_pct = [](const AnyResult& r) {
          return 100.0 * r.metric("clamped_snippets") / r.metric("snippets");
        };
        cmp.add_row({name, common::Table::fmt(blind.metric("energy_ratio"), 3),
                     common::Table::fmt(aware.metric("energy_ratio"), 3),
                     common::Table::fmt(clamp_pct(blind), 0) + "%",
                     common::Table::fmt(clamp_pct(aware), 0) + "%",
                     common::Table::fmt(aware.metric("peak_skin_c"), 1)});
      }
      cmp.print(std::cout);
      std::puts("Telemetry closes the loop: an aware policy proposes budget-feasible");
      std::puts("configs instead of being throttled after the fact.");
    }
  }
  return 0;
}
