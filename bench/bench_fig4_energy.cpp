// Reproduces Fig. 4: energy consumption (normalized w.r.t. the Oracle) of
// the online-IL approach and the RL approach across all 16 benchmarks.
// Both are trained offline on MiBench; the MiBench bars therefore evaluate
// the offline policies ("Offline" region of the figure), while the Cortex
// and PARSEC bars are measured during online adaptation over an application
// sequence ("Online" region).
//
// Paper: online-IL stays ~1.0x everywhere; RL reaches up to 1.4x.
//
// All 20 arms (9 offline apps x {IL, RL} + 2 online sequences) are named
// scenarios in a ScenarioRegistry selected through the shared bench driver
// and executed as one parallel batch.  The offline dataset, the frozen IL
// policy, and the pretrained RL table are shared read-only across arms and
// are computed only when at least one arm actually runs (--list stays
// free), through a context the builders dereference lazily.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "common/table.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

/// Shared read-only artifacts, filled after the --list fast path (builders
/// run at select() time, strictly later).
struct SharedArtifacts {
  std::shared_ptr<OracleCache> cache;
  std::shared_ptr<const OfflineData> off;
  std::shared_ptr<const IlPolicy> policy;
  std::shared_ptr<const QLearningController> pretrained_rl;
};

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("fig4_energy");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  soc::BigLittlePlatform plat;  // outlives every batch (RL copies point at its space)
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  auto shared = std::make_shared<SharedArtifacts>();
  const auto make_rl = [shared](ScenarioContext&) {
    return ControllerInstance{std::make_unique<QLearningController>(*shared->pretrained_rl),
                              shared->pretrained_rl};
  };

  ScenarioRegistry registry;

  // ---- Offline region: each MiBench app under the frozen offline policies --
  for (const auto& app : mibench) {
    common::Rng trace_rng(300 + app.app_id);
    const auto trace = workloads::CpuBenchmarks::trace(app, 80, trace_rng);
    registry.add("fig4/offline/" + app.name + "/il", [shared, trace] {
      Scenario s;
      s.trace = trace;
      s.oracle_cache = shared->cache;
      s.make_controller = offline_il_factory(shared->policy);
      return s;
    });
    registry.add("fig4/offline/" + app.name + "/rl", [shared, trace, make_rl] {
      Scenario s;
      s.trace = trace;
      s.oracle_cache = shared->cache;
      s.make_controller = make_rl;
      return s;
    });
  }

  // ---- Online region: Cortex + PARSEC sequence with adaptation -------------
  std::vector<workloads::AppSpec> online_apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    online_apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    online_apps.push_back(a);
  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_apps, seq_rng);

  registry.add("fig4/online/il", [shared, seq] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = shared->cache;
    s.make_controller = online_il_factory(shared->off, /*train_seed=*/5);
    // Training-cost telemetry for the JSONL record (regression-gated final
    // loss; wall-time is reported but never gated — it is machine-dependent).
    s.extra_metrics = [](const DrmController& ctl, const RunResult&) {
      const auto& il = dynamic_cast<const OnlineIlController&>(ctl);
      return Metrics{{"train_time_s", il.policy_train_time_s()},
                     {"final_loss", il.policy_train_loss()}};
    };
    return s;
  });

  auto rl_states = std::make_shared<std::size_t>(0);
  auto rl_bytes = std::make_shared<std::size_t>(0);
  registry.add("fig4/online/rl", [shared, seq, make_rl, rl_states, rl_bytes] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = shared->cache;
    s.make_controller = make_rl;
    s.on_complete = [rl_states, rl_bytes](DrmController& ctl, const RunResult&) {
      auto& rl = dynamic_cast<QLearningController&>(ctl);
      *rl_states = rl.table_states();
      *rl_bytes = rl.storage_bytes();
    };
    return s;
  });

  if (driver.listing()) return driver.list(registry);

  // ---- Heavy shared setup, gated on what the prefixes actually selected ----
  const auto selected = driver.selection(registry);
  bool need_il = false, need_rl = false;
  for (const std::string& name : selected) {
    need_il |= name.size() >= 3 && name.compare(name.size() - 3, 3, "/il") == 0;
    need_rl |= name.size() >= 3 && name.compare(name.size() - 3, 3, "/rl") == 0;
  }
  ExperimentEngine engine;
  shared->cache = std::make_shared<OracleCache>(driver.store(), &engine.pool());
  // Blob keys: the artifacts below are pure functions of the platform, the
  // objective, and the generation seeds/geometry, so that is exactly what
  // the content address hashes.
  std::uint64_t il_key = platform_fingerprint(plat.params());
  fnv1a_mix(il_key, static_cast<std::uint64_t>(Objective::kEnergy));
  for (std::uint64_t v : {std::uint64_t{40}, std::uint64_t{6}, std::uint64_t{7},
                          std::uint64_t{5}})  // collect geometry + collect/train seeds
    fnv1a_mix(il_key, v);
  std::uint64_t rl_key = platform_fingerprint(plat.params());
  fnv1a_mix(rl_key, std::uint64_t{11});  // pretraining-sequence seed
  // Restore the pretrained tabular-Q table up front (not just in the RL
  // block below): whether the warmup run still has to execute decides
  // whether the offline collect may be skipped.  The warmup consumes
  // `plat`'s noise stream exactly where collect_offline_data leaves it, so
  // restoring the dataset while the warmup still runs would shift every RL
  // arm's pretrained table.
  std::shared_ptr<QLearningController> restored_rl;
  if (need_rl && driver.store()) {
    if (const auto blob = driver.store()->get_blob("fig4-pretrained-q", rl_key)) {
      auto rl = std::make_shared<QLearningController>(plat.space());
      if (rl->import_state(*blob)) restored_rl = std::move(rl);
    }
  }
  const bool rl_warmup_runs = need_rl && !restored_rl;
  if (need_il) {
    // Every trace above is evaluated by both an IL and an RL arm; the shared
    // cache runs the exhaustive Oracle search once per snippet, not per arm.
    // A warm store restores the dataset bitwise instead of re-executing the
    // platform model (safe when the RL warmup is skipped too: the collect
    // rng feeds nothing else — training draws from its own il_rng stream),
    // under the same content address the other collection benches use, so
    // they share one blob.
    const std::uint64_t data_key =
        offline_data_key(plat.params(), Objective::kEnergy, /*snippets_per_app=*/40,
                         /*configs_per_snippet=*/6, /*collect_seed=*/7, /*thermal_aware=*/false);
    auto off = std::make_shared<OfflineData>();
    bool data_restored = false;
    if (driver.store() && !rl_warmup_runs) {
      if (const auto blob = driver.store()->get_blob("offline-dataset", data_key))
        data_restored = import_offline_data(*blob, *off);
    }
    if (!data_restored) {
      common::Rng rng(7);
      *off = collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng,
                                  shared->cache.get(), /*thermal_aware=*/false, &engine.pool());
      if (driver.store()) {
        std::vector<double> blob;
        export_offline_data(*off, blob);
        driver.store()->put_blob("offline-dataset", data_key, blob);
      }
    }
    shared->off = off;

    // Frozen offline policy, shared read-only by every Offline-IL scenario.
    // A warm store restores it (weights + training bookkeeping, so the JSONL
    // record below is bitwise identical to the cold run's) instead of
    // retraining.
    auto policy = std::make_shared<IlPolicy>(plat.space());
    bool restored = false;
    if (driver.store()) {
      if (const auto blob = driver.store()->get_blob("fig4-il-policy", il_key))
        restored = policy->import_artifact(*blob);
    }
    if (!restored) {
      common::Rng il_rng(5);
      policy->train_offline(shared->off->policy, il_rng);
      if (driver.store()) driver.store()->put_blob("fig4-il-policy", il_key, policy->export_artifact());
    }
    driver.json().write_metrics(driver.bench_name(), "fig4/offline_policy_training",
                                {{"train_time_s", policy->train_time_s()},
                                 {"final_loss", policy->last_train_loss()}});
    shared->policy = policy;
  }
  if (need_rl) {
    // The tabular-Q baseline pre-trains through the MiBench sequence once
    // (as in the paper); every RL scenario then starts from a copy of the
    // trained table rather than redoing the identical warmup.  A warm store
    // restores the table + exploration state instead — attempted above,
    // before the collect decision (skipping the warmup run is safe: nothing
    // downstream executes `plat`, so its noise stream position no longer
    // matters).
    shared->pretrained_rl = std::make_shared<const QLearningController>([&] {
      if (restored_rl) return *restored_rl;
      QLearningController rl(plat.space());
      common::Rng pre_rng(11);
      const auto pre = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
      RunnerOptions fast;
      fast.compute_oracle = false;
      DrmRunner pre_runner(plat, fast);
      (void)pre_runner.run(pre, rl, {4, 4, 8, 10});
      if (driver.store()) driver.store()->put_blob("fig4-pretrained-q", rl_key, rl.export_state());
      return rl;
    }());
  }

  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  write_decision_latency(driver, results);
  write_oracle_stats(
      driver, *shared->cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());
  const bench::ResultIndex index(results);
  const auto run_of = [&](const std::string& id) -> const RunResult* {
    const AnyResult* r = index.find(id);
    return r ? &r->as<RunResult>() : nullptr;
  };

  // "Steady" restricts online apps to their second half, after the paper's
  // few-second adaptation transient (Fig. 3) has passed.
  common::Table t({"Region", "Benchmark", "Online-IL E/Oracle", "IL steady", "RL E/Oracle"});
  for (const auto& app : mibench) {
    const RunResult* res_il = run_of("fig4/offline/" + app.name + "/il");
    const RunResult* res_rl = run_of("fig4/offline/" + app.name + "/rl");
    if (!res_il || !res_rl) continue;  // arm deselected by prefix
    t.add_row({"Offline", app.name, common::Table::fmt(res_il->energy_ratio(), 2),
               common::Table::fmt(res_il->energy_ratio(), 2),
               common::Table::fmt(res_rl->energy_ratio(), 2)});
  }

  const RunResult* res_seq_il = run_of("fig4/online/il");
  const RunResult* res_seq_rl = run_of("fig4/online/rl");
  if (res_seq_il && res_seq_rl) {
    for (const auto& app : online_apps) {
      // Steady-state ratio: second half of this app's snippets.
      double e = 0.0, oe = 0.0;
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < res_seq_il->records.size(); ++i)
        if (res_seq_il->records[i].app_id == app.app_id) idx.push_back(i);
      for (std::size_t k = idx.size() / 2; k < idx.size(); ++k) {
        e += res_seq_il->records[idx[k]].energy_j;
        oe += res_seq_il->records[idx[k]].oracle_energy_j;
      }
      t.add_row({"Online", app.name,
                 common::Table::fmt(res_seq_il->energy_ratio_for_app(app.app_id), 2),
                 common::Table::fmt(e / oe, 2),
                 common::Table::fmt(res_seq_rl->energy_ratio_for_app(app.app_id), 2)});
    }
  }

  std::puts("=== Fig. 4: energy consumption w.r.t. Oracle (IL vs RL) ===");
  t.print(std::cout);
  if (res_seq_il && res_seq_rl) {
    std::printf("\nSequence totals: online-IL %.3fx, RL %.3fx (paper: IL ~1.0x, RL up to 1.4x)\n",
                res_seq_il->energy_ratio(), res_seq_rl->energy_ratio());
    std::printf("Tabular-RL storage grew to %zu states (%zu bytes) — the storage argument\n",
                *rl_states, *rl_bytes);
    std::puts("against table-based RL in Section IV-A2.");
  }
  return 0;
}
