// Reproduces Fig. 4: energy consumption (normalized w.r.t. the Oracle) of
// the online-IL approach and the RL approach across all 16 benchmarks.
// Both are trained offline on MiBench; the MiBench bars therefore evaluate
// the offline policies ("Offline" region of the figure), while the Cortex
// and PARSEC bars are measured during online adaptation over an application
// sequence ("Online" region).
//
// Paper: online-IL stays ~1.0x everywhere; RL reaches up to 1.4x.
//
// All 20 arms (9 offline apps x {IL, RL} + 2 online sequences) are named
// scenarios in a ScenarioRegistry, executed as one parallel batch.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "common/table.h"
#include "core/online_il.h"
#include "core/results_io.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  // Every trace below is evaluated by both an IL and an RL arm; the shared
  // cache runs the exhaustive Oracle search once per snippet, not per arm.
  auto cache = std::make_shared<OracleCache>();
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = std::make_shared<OfflineData>(
      collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng, cache.get()));

  // Frozen offline policy, shared read-only by every Offline-IL scenario.
  auto policy = std::make_shared<IlPolicy>(plat.space());
  {
    common::Rng il_rng(5);
    policy->train_offline(off->policy, il_rng);
  }

  // The tabular-Q baseline pre-trains through the MiBench sequence once (as
  // in the paper); every RL scenario then starts from a copy of the trained
  // table rather than redoing the identical warmup.  `plat` outlives every
  // batch, so the copies' config-space pointer stays valid.
  auto pretrained_rl = std::make_shared<const QLearningController>([&] {
    QLearningController rl(plat.space());
    common::Rng pre_rng(11);
    const auto pre = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
    RunnerOptions fast;
    fast.compute_oracle = false;
    DrmRunner pre_runner(plat, fast);
    (void)pre_runner.run(pre, rl, {4, 4, 8, 10});
    return rl;
  }());
  const auto make_rl = [pretrained_rl](ScenarioContext&) {
    return ControllerInstance{std::make_unique<QLearningController>(*pretrained_rl),
                              pretrained_rl};
  };

  ScenarioRegistry registry;

  // ---- Offline region: each MiBench app under the frozen offline policies --
  for (const auto& app : mibench) {
    common::Rng trace_rng(300 + app.app_id);
    const auto trace = workloads::CpuBenchmarks::trace(app, 80, trace_rng);
    registry.add("fig4/offline/" + app.name + "/il", [policy, trace, app, cache] {
      Scenario s;
      s.trace = trace;
      s.oracle_cache = cache;
      s.make_controller = offline_il_factory(policy);
      return s;
    });
    registry.add("fig4/offline/" + app.name + "/rl", [trace, app, make_rl, cache] {
      Scenario s;
      s.trace = trace;
      s.oracle_cache = cache;
      s.make_controller = make_rl;
      return s;
    });
  }

  // ---- Online region: Cortex + PARSEC sequence with adaptation -------------
  std::vector<workloads::AppSpec> online_apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    online_apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    online_apps.push_back(a);
  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_apps, seq_rng);

  registry.add("fig4/online/il", [off, seq, cache] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = cache;
    s.make_controller = online_il_factory(off, /*train_seed=*/5);
    return s;
  });

  auto rl_states = std::make_shared<std::size_t>(0);
  auto rl_bytes = std::make_shared<std::size_t>(0);
  registry.add("fig4/online/rl", [seq, make_rl, rl_states, rl_bytes, cache] {
    Scenario s;
    s.trace = seq;
    s.oracle_cache = cache;
    s.make_controller = make_rl;
    s.on_complete = [rl_states, rl_bytes](DrmController& ctl, const RunResult&) {
      auto& rl = dynamic_cast<QLearningController&>(ctl);
      *rl_states = rl.table_states();
      *rl_bytes = rl.storage_bytes();
    };
    return s;
  });

  ExperimentEngine engine;
  JsonlWriter json(json_path_arg(argc, argv));
  std::map<std::string, RunResult> res;
  for (auto& r : engine.run_batch(registry.build_batch("fig4/"))) {
    json.write_metrics("fig4_energy", r.id, drm_metrics(r.run));
    res.emplace(r.id, std::move(r.run));
  }

  // "Steady" restricts online apps to their second half, after the paper's
  // few-second adaptation transient (Fig. 3) has passed.
  common::Table t({"Region", "Benchmark", "Online-IL E/Oracle", "IL steady", "RL E/Oracle"});
  for (const auto& app : mibench) {
    const RunResult& res_il = res.at("fig4/offline/" + app.name + "/il");
    const RunResult& res_rl = res.at("fig4/offline/" + app.name + "/rl");
    t.add_row({"Offline", app.name, common::Table::fmt(res_il.energy_ratio(), 2),
               common::Table::fmt(res_il.energy_ratio(), 2),
               common::Table::fmt(res_rl.energy_ratio(), 2)});
  }

  const RunResult& res_seq_il = res.at("fig4/online/il");
  const RunResult& res_seq_rl = res.at("fig4/online/rl");
  for (const auto& app : online_apps) {
    // Steady-state ratio: second half of this app's snippets.
    double e = 0.0, oe = 0.0;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < res_seq_il.records.size(); ++i)
      if (res_seq_il.records[i].app_id == app.app_id) idx.push_back(i);
    for (std::size_t k = idx.size() / 2; k < idx.size(); ++k) {
      e += res_seq_il.records[idx[k]].energy_j;
      oe += res_seq_il.records[idx[k]].oracle_energy_j;
    }
    t.add_row({"Online", app.name,
               common::Table::fmt(res_seq_il.energy_ratio_for_app(app.app_id), 2),
               common::Table::fmt(e / oe, 2),
               common::Table::fmt(res_seq_rl.energy_ratio_for_app(app.app_id), 2)});
  }

  std::puts("=== Fig. 4: energy consumption w.r.t. Oracle (IL vs RL) ===");
  t.print(std::cout);
  std::printf("\nSequence totals: online-IL %.3fx, RL %.3fx (paper: IL ~1.0x, RL up to 1.4x)\n",
              res_seq_il.energy_ratio(), res_seq_rl.energy_ratio());
  std::printf("Tabular-RL storage grew to %zu states (%zu bytes) — the storage argument\n",
              *rl_states, *rl_bytes);
  std::puts("against table-based RL in Section IV-A2.");
  return 0;
}
