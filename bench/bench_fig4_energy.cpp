// Reproduces Fig. 4: energy consumption (normalized w.r.t. the Oracle) of
// the online-IL approach and the RL approach across all 16 benchmarks.
// Both are trained offline on MiBench; the MiBench bars therefore evaluate
// the offline policies ("Offline" region of the figure), while the Cortex
// and PARSEC bars are measured during online adaptation over an application
// sequence ("Online" region).
//
// Paper: online-IL stays ~1.0x everywhere; RL reaches up to 1.4x.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng);

  DrmRunner runner(plat);
  const soc::SocConfig init{4, 4, 8, 10};

  // ---- Offline region: each MiBench app under the frozen offline policies --
  common::Rng il_rng(5);
  IlPolicy policy(plat.space());
  policy.train_offline(off.policy, il_rng);

  QLearningController rl(plat.space());
  {
    common::Rng pre_rng(11);
    const auto pre = workloads::CpuBenchmarks::sequence(mibench, pre_rng);
    RunnerOptions fast;
    fast.compute_oracle = false;
    DrmRunner pre_runner(plat, fast);
    (void)pre_runner.run(pre, rl, init);
  }

  // "Steady" restricts online apps to their second half, after the paper's
  // few-second adaptation transient (Fig. 3) has passed.
  common::Table t({"Region", "Benchmark", "Online-IL E/Oracle", "IL steady", "RL E/Oracle"});
  for (const auto& app : mibench) {
    common::Rng trace_rng(300 + app.app_id);
    const auto trace = workloads::CpuBenchmarks::trace(app, 80, trace_rng);
    OfflineIlController il_ctl(plat.space(), policy);
    const auto res_il = runner.run(trace, il_ctl, init);
    const auto res_rl = runner.run(trace, rl, init);
    t.add_row({"Offline", app.name, common::Table::fmt(res_il.energy_ratio(), 2),
               common::Table::fmt(res_il.energy_ratio(), 2),
               common::Table::fmt(res_rl.energy_ratio(), 2)});
  }

  // ---- Online region: Cortex + PARSEC sequence with adaptation -------------
  std::vector<workloads::AppSpec> online_apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    online_apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    online_apps.push_back(a);
  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(online_apps, seq_rng);

  OnlineSocModels models(plat.space());
  models.bootstrap(off.model_samples);
  OnlineIlController online_il(plat.space(), policy, models);
  const auto res_seq_il = runner.run(seq, online_il, init);
  const auto res_seq_rl = runner.run(seq, rl, init);

  for (const auto& app : online_apps) {
    // Steady-state ratio: second half of this app's snippets.
    double e = 0.0, oe = 0.0;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < res_seq_il.records.size(); ++i)
      if (res_seq_il.records[i].app_id == app.app_id) idx.push_back(i);
    for (std::size_t k = idx.size() / 2; k < idx.size(); ++k) {
      e += res_seq_il.records[idx[k]].energy_j;
      oe += res_seq_il.records[idx[k]].oracle_energy_j;
    }
    t.add_row({"Online", app.name,
               common::Table::fmt(res_seq_il.energy_ratio_for_app(app.app_id), 2),
               common::Table::fmt(e / oe, 2),
               common::Table::fmt(res_seq_rl.energy_ratio_for_app(app.app_id), 2)});
  }

  std::puts("=== Fig. 4: energy consumption w.r.t. Oracle (IL vs RL) ===");
  t.print(std::cout);
  std::printf("\nSequence totals: online-IL %.3fx, RL %.3fx (paper: IL ~1.0x, RL up to 1.4x)\n",
              res_seq_il.energy_ratio(), res_seq_rl.energy_ratio());
  std::printf("Tabular-RL storage grew to %zu states (%zu bytes) — the storage argument\n",
              rl.table_states(), rl.storage_bytes());
  std::puts("against table-based RL in Section IV-A2.");
  return 0;
}
