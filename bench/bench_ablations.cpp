// Ablation studies for the design choices called out in DESIGN.md:
//  A. Online-IL aggregation-buffer size (paper: 100 samples ~ 100% accuracy,
//     <20 KB storage).
//  B. Candidate-set construction (local neighborhood vs + cluster sweeps vs
//     + exploration) — why each ingredient is needed.
//  C. NMPC vs explicit NMPC: identical-task energy and decision overhead.
//  D. Fixed forgetting factors vs STAFF for the Fig. 2 predictor.
#include <cstdio>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

struct OnlineArmResult {
  double energy_ratio = 0.0;
  double tail_ratio = 0.0;  ///< energy/Oracle over the final quarter
  std::size_t buffer_bytes = 0;
};

OnlineArmResult run_online_arm(const OnlineIlConfig& cfg) {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy, 40, 6, rng);
  common::Rng il_rng(5);
  IlPolicy policy(plat.space());
  policy.train_offline(off.policy, il_rng);
  OnlineSocModels models(plat.space());
  models.bootstrap(off.model_samples);

  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  common::Rng seq_rng(99);
  const auto seq = workloads::CpuBenchmarks::sequence(apps, seq_rng);

  OnlineIlController ctl(plat.space(), policy, models, cfg);
  DrmRunner runner(plat);
  const auto res = runner.run(seq, ctl, {4, 4, 8, 10});

  OnlineArmResult out;
  out.energy_ratio = res.energy_ratio();
  const std::size_t tail = res.records.size() / 4;
  double e = 0.0, oe = 0.0;
  for (std::size_t i = res.records.size() - tail; i < res.records.size(); ++i) {
    e += res.records[i].energy_j;
    oe += res.records[i].oracle_energy_j;
  }
  out.tail_ratio = e / oe;
  // Buffer entry: 12-feature state + 4 labels, 4 bytes each.
  out.buffer_bytes = cfg.buffer_capacity * (12 + 4) * 4;
  return out;
}

}  // namespace

int main() {
  std::puts("=== A. Aggregation-buffer size (paper setting: 100) ===");
  {
    common::Table t({"Buffer", "Energy/Oracle", "Tail E/Oracle", "Buffer bytes"});
    for (std::size_t buf : {50u, 100u, 400u}) {
      OnlineIlConfig cfg;
      cfg.buffer_capacity = buf;
      const auto r = run_online_arm(cfg);
      t.add_row({std::to_string(buf), common::Table::fmt(r.energy_ratio, 3),
                 common::Table::fmt(r.tail_ratio, 3), std::to_string(r.buffer_bytes)});
    }
    t.print(std::cout);
    std::puts("100 labels per update (the paper's setting) adapts as well as larger");
    std::puts("buffers at a fraction of the storage (<20 KB with the policy).\n");
  }

  std::puts("=== B. Candidate-set construction ===");
  {
    common::Table t({"Variant", "Energy/Oracle", "Tail E/Oracle"});
    struct V {
      const char* name;
      bool sweeps;
      double explore;
    };
    for (const V v : {V{"neighborhood only", false, 0.0},
                      V{"+ cluster sweeps", true, 0.0},
                      V{"+ exploration (full)", true, 0.15}}) {
      OnlineIlConfig cfg;
      cfg.include_cluster_sweeps = v.sweeps;
      cfg.explore_init = v.explore;
      if (v.explore == 0.0) {
        cfg.explore_min = 0.0;
        cfg.innovation_reset_threshold = 1e9;  // never re-arm
      }
      const auto r = run_online_arm(cfg);
      t.add_row({v.name, common::Table::fmt(r.energy_ratio, 3),
                 common::Table::fmt(r.tail_ratio, 3)});
    }
    t.print(std::cout);
    std::puts("Single-knob moves cannot cross the cluster-off/on energy valley, and");
    std::puts("without exploration the models lock into self-confirming states.\n");
  }

  std::puts("=== C. Implicit NMPC vs explicit NMPC ===");
  {
    gpu::GpuPlatform plat;
    const double fps = 30.0;
    GpuRunner runner(plat, fps);
    const gpu::GpuConfig init{9, plat.params().max_slices};
    common::Table t({"Workload", "NMPC GPU J", "ENMPC GPU J", "delta (%)", "NMPC evals",
                     "ENMPC evals"});
    for (const char* name : {"EpicCitadel", "SharkDash", "GFXBench-trex"}) {
      const auto& spec = workloads::GpuBenchmarks::by_name(name);
      common::Rng trng(1000 + spec.id);
      const auto trace = workloads::GpuBenchmarks::trace(spec, 1200, trng);

      GpuOnlineModels m1(plat);
      common::Rng b1(7);
      bootstrap_gpu_models(plat, m1, 1.0 / fps, 400, b1);
      NmpcConfig cfg;
      cfg.fps_target = fps;
      NmpcGpuController nmpc(plat, m1, cfg);
      const auto rn = runner.run(trace, nmpc, init);

      GpuOnlineModels m2(plat);
      common::Rng b2(7);
      bootstrap_gpu_models(plat, m2, 1.0 / fps, 400, b2);
      ExplicitNmpcGpuController enmpc(plat, m2, cfg, 1500);
      const auto re = runner.run(trace, enmpc, init);

      t.add_row({name, common::Table::fmt(rn.gpu_energy_j, 2),
                 common::Table::fmt(re.gpu_energy_j, 2),
                 common::Table::fmt(100.0 * (re.gpu_energy_j / rn.gpu_energy_j - 1.0), 1),
                 std::to_string(rn.decision_evals), std::to_string(re.decision_evals)});
    }
    t.print(std::cout);
    std::puts("The explicit law gives up little energy while cutting slow-tick model");
    std::puts("evaluations by ~an order of magnitude (144 per solve -> 2 per lookup).\n");
  }

  std::puts("=== D. Forgetting factor for the Fig. 2 predictor ===");
  {
    gpu::GpuPlatform plat;
    const double period = 1.0 / 30.0;
    common::Table t({"Predictor", "MAPE (%)"});
    auto run_arm = [&](ml::StaffConfig scfg, const std::string& label) {
      common::Rng rng(5);
      const auto trace = workloads::GpuBenchmarks::nenamark2(1000, rng);
      StaffFrameTimePredictor pred(plat, scfg);
      GpuWorkloadState w;
      std::vector<double> a, p;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const gpu::GpuConfig c{4 + 4 * static_cast<int>((i / 200) % 4), 2};
        const auto r = plat.render(trace[i], c, period);
        if (i > 50) {
          p.push_back(pred.predict_ms(w, c));
          a.push_back(r.frame_time_s * 1e3);
        }
        pred.update(w, c, r);
        w.observe(r, 2.0 / (1.0 + plat.params().slice_sync_overhead));
      }
      t.add_row({label, common::Table::fmt(common::mape(a, p), 2)});
    };
    for (double lambda : {0.90, 0.98, 0.999}) {
      ml::StaffConfig s;
      s.lambda_min = s.lambda_max = s.lambda_init = lambda;
      run_arm(s, "fixed lambda = " + common::Table::fmt(lambda, 3));
    }
    run_arm(ml::StaffConfig{}, "STAFF (adaptive)");
    t.print(std::cout);
    std::puts("Adaptive forgetting matches the best hand-tuned fixed factor without tuning.");
  }
  return 0;
}
