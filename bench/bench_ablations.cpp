// Ablation studies for the design choices called out in DESIGN.md:
//  A. Online-IL aggregation-buffer size (paper: 100 samples ~ 100% accuracy,
//     <20 KB storage).
//  B. Candidate-set construction (local neighborhood vs + cluster sweeps vs
//     + exploration) — why each ingredient is needed.
//  C. NMPC vs explicit NMPC: identical-task energy and decision overhead.
//  D. Fixed forgetting factors vs STAFF for the Fig. 2 predictor.
//
// Every arm is a ScenarioRegistry entry: A and B are DRM scenarios (the
// per-arm offline collection + training runs inside each scenario's
// controller factory, i.e. on the pool), C and D are custom AnyScenario
// closures that own all their state.  One parallel batch executes whatever
// the driver's prefixes select.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "bench/driver.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

struct OnlineArmResult {
  double energy_ratio = 0.0;
  double tail_ratio = 0.0;  ///< energy/Oracle over the final quarter
  std::size_t buffer_bytes = 0;
};

/// Builds the online-IL arm scenario for one OnlineIlConfig.  The factory
/// reproduces the per-arm protocol: offline collection on MiBench, policy
/// training, model bootstrap — all per scenario, all on the worker.
Scenario online_arm_scenario(const OnlineIlConfig& cfg, std::shared_ptr<OracleCache> cache) {
  Scenario s;
  common::Rng seq_rng(99);
  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  s.trace = workloads::CpuBenchmarks::sequence(apps, seq_rng);
  s.oracle_cache = cache;
  // Every arm collects over the same collect_seed trace, so the shared cache
  // labels each offline snippet once instead of once per arm.
  s.make_controller = online_il_collect_factory(
      workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench), /*snippets_per_app=*/40,
      /*configs_per_snippet=*/6, /*collect_seed=*/7, /*train_seed=*/5, cfg, std::move(cache));
  s.extra_metrics = [](const DrmController& ctl, const RunResult&) {
    const auto& il = dynamic_cast<const OnlineIlController&>(ctl);
    return Metrics{{"train_time_s", il.policy_train_time_s()},
                   {"final_loss", il.policy_train_loss()}};
  };
  return s;
}

OnlineArmResult summarize_arm(const RunResult& res, const OnlineIlConfig& cfg) {
  OnlineArmResult out;
  out.energy_ratio = res.energy_ratio();
  const std::size_t tail = res.records.size() / 4;
  double e = 0.0, oe = 0.0;
  for (std::size_t i = res.records.size() - tail; i < res.records.size(); ++i) {
    e += res.records[i].energy_j;
    oe += res.records[i].oracle_energy_j;
  }
  out.tail_ratio = e / oe;
  // Buffer entry: 12-feature state + 4 labels, 4 bytes each.
  out.buffer_bytes = cfg.buffer_capacity * (12 + 4) * 4;
  return out;
}

/// Section C payload: one workload under implicit and explicit NMPC.
struct NmpcArm {
  GpuRunResult nmpc, enmpc;
};

/// Runs both NMPC flavors on the named workload; everything (platform,
/// runner, traces, models) is constructed inside the closure — the custom
/// AnyScenario determinism discipline.
AnyScenario nmpc_vs_enmpc_arm(const std::string& id, const std::string& workload, double fps) {
  return AnyScenario(id, [id, workload, fps] {
    gpu::GpuPlatform plat;
    GpuRunner runner(plat, fps);
    const gpu::GpuConfig init{9, plat.params().max_slices};
    const auto& spec = workloads::GpuBenchmarks::by_name(workload);
    common::Rng trng(1000 + spec.id);
    const auto trace = workloads::GpuBenchmarks::trace(spec, 1200, trng);

    GpuOnlineModels m1(plat);
    common::Rng b1(7);
    bootstrap_gpu_models(plat, m1, 1.0 / fps, 400, b1);
    NmpcConfig cfg;
    cfg.fps_target = fps;
    NmpcGpuController nmpc(plat, m1, cfg);
    NmpcArm out;
    out.nmpc = runner.run(trace, nmpc, init);

    GpuOnlineModels m2(plat);
    common::Rng b2(7);
    bootstrap_gpu_models(plat, m2, 1.0 / fps, 400, b2);
    ExplicitNmpcGpuController enmpc(plat, m2, cfg, 1500);
    out.enmpc = runner.run(trace, enmpc, init);
    Metrics m{{"nmpc_gpu_energy_j", out.nmpc.gpu_energy_j},
              {"enmpc_gpu_energy_j", out.enmpc.gpu_energy_j},
              {"nmpc_evals", static_cast<double>(out.nmpc.decision_evals)},
              {"enmpc_evals", static_cast<double>(out.enmpc.decision_evals)}};
    return AnyResult(id, std::move(out), std::move(m));
  });
}

/// Section D: MAPE of one forgetting-factor configuration on the Fig. 2
/// staircase schedule.
AnyScenario staff_arm(const std::string& id, const ml::StaffConfig& cfg) {
  return AnyScenario(id, [id, cfg] {
    const double period = 1.0 / 30.0;
    gpu::GpuPlatform plat;
    common::Rng rng(5);
    const auto trace = workloads::GpuBenchmarks::nenamark2(1000, rng);
    StaffFrameTimePredictor pred(plat, cfg);
    GpuWorkloadState w;
    std::vector<double> a, p;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const gpu::GpuConfig c{4 + 4 * static_cast<int>((i / 200) % 4), 2};
      const auto r = plat.render(trace[i], c, period);
      if (i > 50) {
        p.push_back(pred.predict_ms(w, c));
        a.push_back(r.frame_time_s * 1e3);
      }
      pred.update(w, c, r);
      w.observe(r, 2.0 / (1.0 + plat.params().slice_sync_overhead));
    }
    const double mape = common::mape(a, p);
    return AnyResult(id, mape, Metrics{{"mape_pct", mape}});
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  bench::BenchDriver driver("ablations");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  // The engine outlives the cache that borrows its pool: cold Oracle
  // searches issued from inside arm workers shard across the same pool via
  // its helping-drain path, and --store makes them persistent.
  ExperimentEngine engine;
  auto cache = std::make_shared<OracleCache>(driver.store(), &engine.pool());
  ScenarioRegistry registry;

  // ---- Sections A + B: online-IL configuration ablations -------------------
  struct CandidateVariant {
    const char* name;
    bool sweeps;
    double explore;
  };
  const CandidateVariant variants[] = {{"neighborhood only", false, 0.0},
                                       {"+ cluster sweeps", true, 0.0},
                                       {"+ exploration (full)", true, 0.15}};

  std::map<std::string, OnlineIlConfig> configs;
  for (std::size_t buf : {50u, 100u, 400u}) {
    OnlineIlConfig cfg;
    cfg.buffer_capacity = buf;
    const std::string id = "ablate/buffer/" + std::to_string(buf);
    configs[id] = cfg;
    registry.add(id, [cfg, cache] { return online_arm_scenario(cfg, cache); });
  }
  for (std::size_t v = 0; v < 3; ++v) {
    OnlineIlConfig cfg;
    cfg.include_cluster_sweeps = variants[v].sweeps;
    cfg.explore_init = variants[v].explore;
    if (variants[v].explore == 0.0) {
      cfg.explore_min = 0.0;
      cfg.innovation_reset_threshold = 1e9;  // never re-arm
    }
    const std::string id = "ablate/candidates/" + std::to_string(v);
    configs[id] = cfg;
    registry.add(id, [cfg, cache] { return online_arm_scenario(cfg, cache); });
  }

  // ---- Section E: policy optimizer (ml/optimizer.h) ------------------------
  // Same online-IL pipeline, different parameter-update rule.  Learning
  // rates are per-rule: plain SGD on cross-entropy needs a much larger step
  // than Adam's adaptive one.
  struct OptArm {
    const char* name;
    ml::OptimizerConfig opt;
    double lr;  // 0 = keep the IlPolicyConfig default
  };
  std::vector<OptArm> opt_arms;
  {
    opt_arms.push_back({"Adam (default)", ml::OptimizerConfig{}, 0.0});
    ml::OptimizerConfig sgd;
    sgd.kind = ml::OptimizerConfig::Kind::kSgd;
    opt_arms.push_back({"SGD", sgd, 0.1});
    ml::OptimizerConfig mom = sgd;
    mom.momentum = 0.9;
    opt_arms.push_back({"SGD + momentum 0.9", mom, 0.05});
  }
  for (std::size_t i = 0; i < opt_arms.size(); ++i) {
    OnlineIlConfig cfg;
    cfg.policy.optimizer = opt_arms[i].opt;
    if (opt_arms[i].lr > 0.0) cfg.policy.learning_rate = opt_arms[i].lr;
    const std::string id = "ablate/optimizer/" + std::to_string(i);
    configs[id] = cfg;
    registry.add(id, [cfg, cache] { return online_arm_scenario(cfg, cache); });
  }

  // ---- Section C: implicit vs explicit NMPC --------------------------------
  const double fps = 30.0;
  const std::vector<std::string> nmpc_workloads{"EpicCitadel", "SharkDash", "GFXBench-trex"};
  for (const std::string& name : nmpc_workloads) {
    const std::string id = "ablate/enmpc/" + name;
    registry.add_any(id, [id, name, fps] { return nmpc_vs_enmpc_arm(id, name, fps); });
  }

  // ---- Section D: forgetting factors ---------------------------------------
  struct DArm {
    std::string label;
    ml::StaffConfig cfg;
  };
  std::vector<DArm> staff_arms;
  for (double lambda : {0.90, 0.98, 0.999}) {
    ml::StaffConfig s;
    s.lambda_min = s.lambda_max = s.lambda_init = lambda;
    staff_arms.push_back({"fixed lambda = " + common::Table::fmt(lambda, 3), s});
  }
  staff_arms.push_back({"STAFF (adaptive)", ml::StaffConfig{}});
  for (std::size_t i = 0; i < staff_arms.size(); ++i) {
    const std::string id = "ablate/staff/" + std::to_string(i);
    registry.add_any(id, [id, cfg = staff_arms[i].cfg] { return staff_arm(id, cfg); });
  }

  if (driver.listing()) return driver.list(registry);

  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  write_oracle_stats(
      driver, *cache,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0).count());
  const bench::ResultIndex index(results);

  std::map<std::string, OnlineArmResult> arm;
  for (const auto& [id, cfg] : configs)
    if (const AnyResult* r = index.find(id))
      arm.emplace(id, summarize_arm(r->as<RunResult>(), cfg));

  if (arm.count("ablate/buffer/50") || arm.count("ablate/buffer/100") ||
      arm.count("ablate/buffer/400")) {
    std::puts("=== A. Aggregation-buffer size (paper setting: 100) ===");
    common::Table t({"Buffer", "Energy/Oracle", "Tail E/Oracle", "Buffer bytes"});
    for (std::size_t buf : {50u, 100u, 400u}) {
      const auto it = arm.find("ablate/buffer/" + std::to_string(buf));
      if (it == arm.end()) continue;  // arm deselected by prefix
      t.add_row({std::to_string(buf), common::Table::fmt(it->second.energy_ratio, 3),
                 common::Table::fmt(it->second.tail_ratio, 3),
                 std::to_string(it->second.buffer_bytes)});
    }
    t.print(std::cout);
    std::puts("100 labels per update (the paper's setting) adapts as well as larger");
    std::puts("buffers at a fraction of the storage (<20 KB with the policy).\n");
  }

  if (arm.count("ablate/candidates/0") || arm.count("ablate/candidates/1") ||
      arm.count("ablate/candidates/2")) {
    std::puts("=== B. Candidate-set construction ===");
    common::Table tb({"Variant", "Energy/Oracle", "Tail E/Oracle"});
    for (std::size_t v = 0; v < 3; ++v) {
      const auto it = arm.find("ablate/candidates/" + std::to_string(v));
      if (it == arm.end()) continue;
      tb.add_row({variants[v].name, common::Table::fmt(it->second.energy_ratio, 3),
                  common::Table::fmt(it->second.tail_ratio, 3)});
    }
    tb.print(std::cout);
    std::puts("Single-knob moves cannot cross the cluster-off/on energy valley, and");
    std::puts("without exploration the models lock into self-confirming states.\n");
  }

  bool have_opt = false;
  for (std::size_t i = 0; i < opt_arms.size(); ++i)
    have_opt |= index.has("ablate/optimizer/" + std::to_string(i));
  if (have_opt) {
    std::puts("=== E. Policy optimizer (update rule of the IL network) ===");
    common::Table t({"Optimizer", "Energy/Oracle", "Tail E/Oracle", "Final loss"});
    for (std::size_t i = 0; i < opt_arms.size(); ++i) {
      const std::string id = "ablate/optimizer/" + std::to_string(i);
      const AnyResult* r = index.find(id);
      const auto it = arm.find(id);
      if (!r || it == arm.end()) continue;
      t.add_row({opt_arms[i].name, common::Table::fmt(it->second.energy_ratio, 3),
                 common::Table::fmt(it->second.tail_ratio, 3),
                 common::Table::fmt(r->metric("final_loss"), 3)});
    }
    t.print(std::cout);
    std::puts("With per-rule learning rates all three land within a few percent; Adam");
    std::puts("(the default) needs no per-task rate tuning.  The update rule is a");
    std::puts("per-arm config knob (IlPolicyConfig::optimizer).\n");
  }

  bool have_nmpc = false;
  for (const std::string& name : nmpc_workloads) have_nmpc |= index.has("ablate/enmpc/" + name);
  if (have_nmpc) {
    std::puts("=== C. Implicit NMPC vs explicit NMPC ===");
    common::Table t({"Workload", "NMPC GPU J", "ENMPC GPU J", "delta (%)", "NMPC evals",
                     "ENMPC evals"});
    for (const std::string& name : nmpc_workloads) {
      const AnyResult* r = index.find("ablate/enmpc/" + name);
      if (!r) continue;
      const NmpcArm& a = r->as<NmpcArm>();
      t.add_row({name, common::Table::fmt(a.nmpc.gpu_energy_j, 2),
                 common::Table::fmt(a.enmpc.gpu_energy_j, 2),
                 common::Table::fmt(100.0 * (a.enmpc.gpu_energy_j / a.nmpc.gpu_energy_j - 1.0),
                                    1),
                 std::to_string(a.nmpc.decision_evals), std::to_string(a.enmpc.decision_evals)});
    }
    t.print(std::cout);
    std::puts("The explicit law gives up little energy while cutting slow-tick model");
    std::puts("evaluations by ~an order of magnitude (144 per solve -> 2 per lookup).\n");
  }

  bool have_staff = false;
  for (std::size_t i = 0; i < staff_arms.size(); ++i)
    have_staff |= index.has("ablate/staff/" + std::to_string(i));
  if (have_staff) {
    std::puts("=== D. Forgetting factor for the Fig. 2 predictor ===");
    common::Table t({"Predictor", "MAPE (%)"});
    for (std::size_t i = 0; i < staff_arms.size(); ++i) {
      const AnyResult* r = index.find("ablate/staff/" + std::to_string(i));
      if (!r) continue;
      t.add_row({staff_arms[i].label, common::Table::fmt(r->metric("mape_pct"), 2)});
    }
    t.print(std::cout);
    std::puts("Adaptive forgetting matches the best hand-tuned fixed factor without tuning.");
  }
  return 0;
}
