// Ablation studies for the design choices called out in DESIGN.md:
//  A. Online-IL aggregation-buffer size (paper: 100 samples ~ 100% accuracy,
//     <20 KB storage).
//  B. Candidate-set construction (local neighborhood vs + cluster sweeps vs
//     + exploration) — why each ingredient is needed.
//  C. NMPC vs explicit NMPC: identical-task energy and decision overhead.
//  D. Fixed forgetting factors vs STAFF for the Fig. 2 predictor.
//
// Sections A and B are one parallel ExperimentEngine batch (the per-arm
// offline collection + training runs inside each scenario's controller
// factory, i.e. on the pool).  Sections C and D fan their arms out through
// the engine's generic map().
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "core/results_io.h"
#include "core/scenario_factories.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

struct OnlineArmResult {
  double energy_ratio = 0.0;
  double tail_ratio = 0.0;  ///< energy/Oracle over the final quarter
  std::size_t buffer_bytes = 0;
};

/// Builds the online-IL arm scenario for one OnlineIlConfig.  The factory
/// reproduces the per-arm protocol: offline collection on MiBench, policy
/// training, model bootstrap — all per scenario, all on the worker.
Scenario online_arm_scenario(const std::string& id, const OnlineIlConfig& cfg,
                             std::shared_ptr<OracleCache> cache) {
  Scenario s;
  s.id = id;
  common::Rng seq_rng(99);
  std::vector<workloads::AppSpec> apps;
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kCortex))
    apps.push_back(a);
  for (const auto& a : workloads::CpuBenchmarks::of_suite(workloads::Suite::kParsec))
    apps.push_back(a);
  s.trace = workloads::CpuBenchmarks::sequence(apps, seq_rng);
  s.oracle_cache = cache;
  // Every arm collects over the same collect_seed trace, so the shared cache
  // labels each offline snippet once instead of once per arm.
  s.make_controller = online_il_collect_factory(
      workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench), /*snippets_per_app=*/40,
      /*configs_per_snippet=*/6, /*collect_seed=*/7, /*train_seed=*/5, cfg, std::move(cache));
  return s;
}

OnlineArmResult summarize_arm(const RunResult& res, const OnlineIlConfig& cfg) {
  OnlineArmResult out;
  out.energy_ratio = res.energy_ratio();
  const std::size_t tail = res.records.size() / 4;
  double e = 0.0, oe = 0.0;
  for (std::size_t i = res.records.size() - tail; i < res.records.size(); ++i) {
    e += res.records[i].energy_j;
    oe += res.records[i].oracle_energy_j;
  }
  out.tail_ratio = e / oe;
  // Buffer entry: 12-feature state + 4 labels, 4 bytes each.
  out.buffer_bytes = cfg.buffer_capacity * (12 + 4) * 4;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEngine engine;
  JsonlWriter json(json_path_arg(argc, argv));
  auto cache = std::make_shared<OracleCache>();

  // ---- Sections A + B: one batch of online-IL configuration ablations ----
  struct CandidateVariant {
    const char* name;
    bool sweeps;
    double explore;
  };
  const CandidateVariant variants[] = {{"neighborhood only", false, 0.0},
                                       {"+ cluster sweeps", true, 0.0},
                                       {"+ exploration (full)", true, 0.15}};

  std::vector<Scenario> batch;
  std::map<std::string, OnlineIlConfig> configs;
  for (std::size_t buf : {50u, 100u, 400u}) {
    OnlineIlConfig cfg;
    cfg.buffer_capacity = buf;
    const std::string id = "ablate/buffer/" + std::to_string(buf);
    configs[id] = cfg;
    batch.push_back(online_arm_scenario(id, cfg, cache));
  }
  for (std::size_t v = 0; v < 3; ++v) {
    OnlineIlConfig cfg;
    cfg.include_cluster_sweeps = variants[v].sweeps;
    cfg.explore_init = variants[v].explore;
    if (variants[v].explore == 0.0) {
      cfg.explore_min = 0.0;
      cfg.innovation_reset_threshold = 1e9;  // never re-arm
    }
    const std::string id = "ablate/candidates/" + std::to_string(v);
    configs[id] = cfg;
    batch.push_back(online_arm_scenario(id, cfg, cache));
  }

  std::map<std::string, OnlineArmResult> arm;
  for (const auto& r : engine.run_batch(batch)) {
    json.write_metrics("ablations", r.id, drm_metrics(r.run));
    arm.emplace(r.id, summarize_arm(r.run, configs.at(r.id)));
  }

  std::puts("=== A. Aggregation-buffer size (paper setting: 100) ===");
  {
    common::Table t({"Buffer", "Energy/Oracle", "Tail E/Oracle", "Buffer bytes"});
    for (std::size_t buf : {50u, 100u, 400u}) {
      const auto& r = arm.at("ablate/buffer/" + std::to_string(buf));
      t.add_row({std::to_string(buf), common::Table::fmt(r.energy_ratio, 3),
                 common::Table::fmt(r.tail_ratio, 3), std::to_string(r.buffer_bytes)});
    }
    t.print(std::cout);
    std::puts("100 labels per update (the paper's setting) adapts as well as larger");
    std::puts("buffers at a fraction of the storage (<20 KB with the policy).\n");
  }

  std::puts("=== B. Candidate-set construction ===");
  {
    common::Table t({"Variant", "Energy/Oracle", "Tail E/Oracle"});
    for (std::size_t v = 0; v < 3; ++v) {
      const auto& r = arm.at("ablate/candidates/" + std::to_string(v));
      t.add_row({variants[v].name, common::Table::fmt(r.energy_ratio, 3),
                 common::Table::fmt(r.tail_ratio, 3)});
    }
    t.print(std::cout);
    std::puts("Single-knob moves cannot cross the cluster-off/on energy valley, and");
    std::puts("without exploration the models lock into self-confirming states.\n");
  }

  std::puts("=== C. Implicit NMPC vs explicit NMPC ===");
  {
    const double fps = 30.0;
    struct CArm {
      std::string name;
      GpuRunResult nmpc, enmpc;
    };
    const std::vector<std::string> names{"EpicCitadel", "SharkDash", "GFXBench-trex"};
    const auto arms = engine.map(names, [fps](const std::string& name, std::size_t) {
      gpu::GpuPlatform plat;
      GpuRunner runner(plat, fps);
      const gpu::GpuConfig init{9, plat.params().max_slices};
      const auto& spec = workloads::GpuBenchmarks::by_name(name);
      common::Rng trng(1000 + spec.id);
      const auto trace = workloads::GpuBenchmarks::trace(spec, 1200, trng);

      GpuOnlineModels m1(plat);
      common::Rng b1(7);
      bootstrap_gpu_models(plat, m1, 1.0 / fps, 400, b1);
      NmpcConfig cfg;
      cfg.fps_target = fps;
      NmpcGpuController nmpc(plat, m1, cfg);
      CArm out{name, {}, {}};
      out.nmpc = runner.run(trace, nmpc, init);

      GpuOnlineModels m2(plat);
      common::Rng b2(7);
      bootstrap_gpu_models(plat, m2, 1.0 / fps, 400, b2);
      ExplicitNmpcGpuController enmpc(plat, m2, cfg, 1500);
      out.enmpc = runner.run(trace, enmpc, init);
      return out;
    });

    common::Table t({"Workload", "NMPC GPU J", "ENMPC GPU J", "delta (%)", "NMPC evals",
                     "ENMPC evals"});
    for (const auto& a : arms) {
      json.write_metrics("ablations", "ablate/enmpc/" + a.name,
                         {{"nmpc_gpu_energy_j", a.nmpc.gpu_energy_j},
                          {"enmpc_gpu_energy_j", a.enmpc.gpu_energy_j},
                          {"nmpc_evals", static_cast<double>(a.nmpc.decision_evals)},
                          {"enmpc_evals", static_cast<double>(a.enmpc.decision_evals)}});
    }
    for (const auto& a : arms) {
      t.add_row({a.name, common::Table::fmt(a.nmpc.gpu_energy_j, 2),
                 common::Table::fmt(a.enmpc.gpu_energy_j, 2),
                 common::Table::fmt(100.0 * (a.enmpc.gpu_energy_j / a.nmpc.gpu_energy_j - 1.0), 1),
                 std::to_string(a.nmpc.decision_evals), std::to_string(a.enmpc.decision_evals)});
    }
    t.print(std::cout);
    std::puts("The explicit law gives up little energy while cutting slow-tick model");
    std::puts("evaluations by ~an order of magnitude (144 per solve -> 2 per lookup).\n");
  }

  std::puts("=== D. Forgetting factor for the Fig. 2 predictor ===");
  {
    const double period = 1.0 / 30.0;
    struct DArm {
      std::string label;
      ml::StaffConfig cfg;
    };
    std::vector<DArm> arms;
    for (double lambda : {0.90, 0.98, 0.999}) {
      ml::StaffConfig s;
      s.lambda_min = s.lambda_max = s.lambda_init = lambda;
      arms.push_back({"fixed lambda = " + common::Table::fmt(lambda, 3), s});
    }
    arms.push_back({"STAFF (adaptive)", ml::StaffConfig{}});

    const auto mapes = engine.map(arms, [period](const DArm& d, std::size_t) {
      gpu::GpuPlatform plat;
      common::Rng rng(5);
      const auto trace = workloads::GpuBenchmarks::nenamark2(1000, rng);
      StaffFrameTimePredictor pred(plat, d.cfg);
      GpuWorkloadState w;
      std::vector<double> a, p;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const gpu::GpuConfig c{4 + 4 * static_cast<int>((i / 200) % 4), 2};
        const auto r = plat.render(trace[i], c, period);
        if (i > 50) {
          p.push_back(pred.predict_ms(w, c));
          a.push_back(r.frame_time_s * 1e3);
        }
        pred.update(w, c, r);
        w.observe(r, 2.0 / (1.0 + plat.params().slice_sync_overhead));
      }
      return common::mape(a, p);
    });

    common::Table t({"Predictor", "MAPE (%)"});
    for (std::size_t i = 0; i < arms.size(); ++i) {
      json.write_metrics("ablations", "ablate/staff/" + std::to_string(i),
                         {{"mape_pct", mapes[i]}});
      t.add_row({arms[i].label, common::Table::fmt(mapes[i], 2)});
    }
    t.print(std::cout);
    std::puts("Adaptive forgetting matches the best hand-tuned fixed factor without tuning.");
  }
  return 0;
}
