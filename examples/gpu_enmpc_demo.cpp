// Multi-variable GPU power management demo: baseline governor vs implicit
// NMPC vs explicit NMPC on one game, with per-phase configuration traces so
// you can watch the slow (slices) and fast (frequency) loops work.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/nmpc.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  // Optional scale-down for smoke tests: gpu_enmpc_demo [frames] [law_samples].
  const long frames_arg = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 1500;
  const long samples_arg = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 1500;
  if (frames_arg <= 0 || samples_arg <= 0) {
    std::fprintf(stderr, "usage: %s [frames] [law_samples]\n", argv[0]);
    return 2;
  }
  const std::size_t frames = static_cast<std::size_t>(frames_arg);
  const std::size_t law_samples = static_cast<std::size_t>(samples_arg);

  gpu::GpuPlatform plat;
  const double fps = 30.0;
  GpuRunner runner(plat, fps);
  const gpu::GpuConfig init{9, plat.params().max_slices};

  const auto& spec = workloads::GpuBenchmarks::by_name("EpicCitadel");
  common::Rng rng(3);
  const auto trace = workloads::GpuBenchmarks::trace(spec, frames, rng);
  std::printf("Workload: %s, %zu frames at %.0f FPS target\n\n", spec.name.c_str(), trace.size(),
              fps);

  common::Table t({"Controller", "GPU J", "PKG J", "Miss %", "Freq changes", "Slice changes",
                   "Model evals"});
  auto report = [&](GpuController& ctl) {
    const auto r = runner.run(trace, ctl, init);
    t.add_row({ctl.name(), common::Table::fmt(r.gpu_energy_j, 2),
               common::Table::fmt(r.pkg_energy_j, 2), common::Table::fmt(100.0 * r.miss_rate(), 2),
               std::to_string(r.freq_changes), std::to_string(r.slice_changes),
               std::to_string(r.decision_evals)});
    return r;
  };

  BaselineGpuGovernor baseline(plat);
  report(baseline);

  NmpcConfig cfg;
  cfg.fps_target = fps;
  GpuOnlineModels m1(plat);
  common::Rng b1(7);
  bootstrap_gpu_models(plat, m1, 1.0 / fps, 400, b1);
  NmpcGpuController nmpc(plat, m1, cfg);
  report(nmpc);

  GpuOnlineModels m2(plat);
  common::Rng b2(7);
  bootstrap_gpu_models(plat, m2, 1.0 / fps, 400, b2);
  ExplicitNmpcGpuController enmpc(plat, m2, cfg, law_samples);
  const auto re = report(enmpc);

  t.print(std::cout);

  // Show the multi-rate behaviour: slices change rarely, frequency often.
  std::puts("\nExplicit-NMPC configuration trace (every 100th frame):");
  for (std::size_t i = 0; i < re.configs.size(); i += 100) {
    std::printf("  frame %4zu: %2d slices @ %4.0f MHz\n", i, re.configs[i].num_slices,
                plat.freq_mhz(re.configs[i].freq_idx));
  }
  std::printf("\nExplicit-law construction used %zu offline NMPC evaluations (Sobol sampling).\n",
              enmpc.offline_evals());
  return 0;
}
