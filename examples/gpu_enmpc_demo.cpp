// Multi-variable GPU power management demo: baseline governor vs implicit
// NMPC vs explicit NMPC on one game, with per-phase configuration traces so
// you can watch the slow (slices) and fast (frequency) loops work.
//
// The three controllers are three registry arms run as one parallel
// ExperimentEngine batch; argv goes through the shared bench driver
// (`--frames/--law-samples` scale-down, `--list`, prefix selection, exit-2
// usage errors) instead of the old unchecked strtol scanning.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "bench/driver.h"
#include "common/table.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/gpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  std::size_t frames = 1500;
  std::size_t law_samples = 1500;
  bench::BenchDriver driver("gpu_enmpc_demo");
  driver.add_size_option("--frames", &frames, "frames of the EpicCitadel trace");
  driver.add_size_option("--law-samples", &law_samples, "Sobol samples of the explicit law");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  const double fps = 30.0;
  NmpcConfig cfg;
  cfg.fps_target = fps;
  const auto spec = workloads::GpuBenchmarks::by_name("EpicCitadel");

  // Harvest each controller's display name (and the ENMPC offline-sampling
  // cost) as its scenario runs: every on_complete writes its own
  // pre-inserted slot — no shared mutation.
  struct ArmInfo {
    std::string name;
    std::size_t offline_evals = 0;
  };
  auto info = std::make_shared<std::map<std::string, ArmInfo>>();

  ScenarioRegistry registry;
  const auto add_arm = [&](const std::string& id, GpuControllerFactory factory) {
    ArmInfo* slot = &(*info)[id];
    registry.add_any(id, [id, slot, factory, spec, frames, fps] {
      common::Rng trng(3);
      GpuScenario s;
      s.id = id;
      s.fps_target = fps;
      s.trace = workloads::GpuBenchmarks::trace(spec, frames, trng);
      s.initial = gpu::GpuConfig{9, s.platform.max_slices};
      s.make_controller = factory;
      s.on_complete = [slot](GpuController& ctl, const GpuRunResult&) {
        slot->name = ctl.name();
        if (const auto* enmpc = dynamic_cast<const ExplicitNmpcGpuController*>(&ctl))
          slot->offline_evals = enmpc->offline_evals();
      };
      return AnyScenario(std::move(s));
    });
  };
  add_arm("gpu_enmpc/1-baseline", gpu_baseline_factory());
  add_arm("gpu_enmpc/2-nmpc", gpu_nmpc_factory(cfg));
  add_arm("gpu_enmpc/3-enmpc", gpu_enmpc_factory(cfg, law_samples));
  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);

  std::printf("Workload: %s, %zu frames at %.0f FPS target\n\n", spec.name.c_str(), frames, fps);
  common::Table t({"Controller", "GPU J", "PKG J", "Miss %", "Freq changes", "Slice changes",
                   "Model evals"});
  for (const auto& r : results) {
    const GpuRunResult& run = r.as<GpuRunResult>();
    t.add_row({info->at(r.id()).name, common::Table::fmt(run.gpu_energy_j, 2),
               common::Table::fmt(run.pkg_energy_j, 2),
               common::Table::fmt(100.0 * run.miss_rate(), 2), std::to_string(run.freq_changes),
               std::to_string(run.slice_changes), std::to_string(run.decision_evals)});
  }
  t.print(std::cout);

  const bench::ResultIndex index(results);
  if (const AnyResult* e = index.find("gpu_enmpc/3-enmpc")) {
    // Show the multi-rate behaviour: slices change rarely, frequency often.
    const GpuRunResult& re = e->as<GpuRunResult>();
    const gpu::GpuPlatform plat;
    std::puts("\nExplicit-NMPC configuration trace (every 100th frame):");
    for (std::size_t i = 0; i < re.configs.size(); i += 100) {
      std::printf("  frame %4zu: %2d slices @ %4.0f MHz\n", i, re.configs[i].num_slices,
                  plat.freq_mhz(re.configs[i].freq_idx));
    }
    std::printf("\nExplicit-law construction used %zu offline NMPC evaluations (Sobol "
                "sampling).\n",
                info->at(e->id()).offline_evals);
  }
  return 0;
}
