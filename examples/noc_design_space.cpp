// NoC design-space exploration with the analytical + SVR-corrected latency
// models (paper Section III-C's motivating use case: models are fast enough
// to sweep design points that simulation cannot cover).
//
// Every design point — analytical sweep cells, SVR training simulations,
// verification simulations — is an independent task fanned out through
// ExperimentEngine::map, so the sweep scales with cores while keeping the
// exact output of a serial run (each task owns its seed and writes its own
// result slot).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "noc/svr_model.h"

using namespace oal;
using namespace oal::noc;
using oal::core::ExperimentEngine;

int main() {
  ExperimentEngine engine;

  std::puts("Sweep: mesh size x injection rate, uniform traffic, model-predicted latency\n");
  struct SweepPoint {
    std::size_t dim;
    double rate;
  };
  std::vector<SweepPoint> points;
  for (const std::size_t dim : {4u, 6u, 8u})
    for (double rate : {0.01, 0.02, 0.04, 0.08}) points.push_back({dim, rate});

  const auto sweep = engine.map(points, [](const SweepPoint& p, std::size_t) {
    const Mesh mesh(p.dim, p.dim);
    const AnalyticalNocModel model(mesh);
    return model.evaluate(TrafficMatrix::uniform(mesh.num_nodes(), p.rate));
  });

  common::Table t({"Mesh", "Rate/node", "Analytical (cycles)", "Max rho", "Saturated?"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = sweep[i];
    t.add_row({std::to_string(points[i].dim) + "x" + std::to_string(points[i].dim),
               common::Table::fmt(points[i].rate, 2), common::Table::fmt(r.avg_latency_cycles, 1),
               common::Table::fmt(r.max_link_utilization, 2), r.saturated ? "YES" : "no"});
  }
  t.print(std::cout);

  // Calibrated exploration: train the SVR correction on a handful of
  // simulations of the candidate fabric, then sweep with the hybrid model.
  // The 18 training simulations are the expensive part — they run in
  // parallel, each with its own seed.
  std::puts("\nCalibrated 8x8 sweep (SVR-corrected, trained on 18 simulations):");
  const Mesh mesh(8, 8);
  const NocSimulator sim(mesh);
  std::vector<TrafficMatrix> train;
  for (double r : {0.004, 0.010, 0.016, 0.022, 0.028, 0.034}) {
    train.push_back(TrafficMatrix::uniform(mesh.num_nodes(), r));
    train.push_back(TrafficMatrix::transpose(8, 8, r * 0.8));
    train.push_back(TrafficMatrix::hotspot(mesh.num_nodes(), 27, r * 0.7));
  }
  const auto lat = engine.map(train, [&sim](const TrafficMatrix& tm, std::size_t i) {
    SimConfig cfg;
    cfg.seed = 60 + i;
    cfg.measure_cycles = 40000.0;
    return sim.simulate(tm, cfg).avg_latency_cycles;
  });
  SvrNocModel hybrid(mesh);
  hybrid.fit(train, lat);

  const std::vector<double> rates{0.008, 0.018, 0.030};
  struct VerifyRow {
    double predicted, simulated;
  };
  const auto verify = engine.map(rates, [&sim, &hybrid, &mesh](double rate, std::size_t) {
    const auto tm = TrafficMatrix::uniform(mesh.num_nodes(), rate);
    SimConfig cfg;
    cfg.seed = 777;
    return VerifyRow{hybrid.predict(tm), sim.simulate(tm, cfg).avg_latency_cycles};
  });

  common::Table t2({"Traffic", "Rate/node", "Hybrid model (cycles)", "Simulated (cycles)"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t2.add_row({"uniform", common::Table::fmt(rates[i], 3),
                common::Table::fmt(verify[i].predicted, 1),
                common::Table::fmt(verify[i].simulated, 1)});
  }
  t2.print(std::cout);
  std::puts("\nThe hybrid model evaluates in microseconds; each simulation point costs");
  std::puts("tens of milliseconds — a >1000x exploration speedup at a few % error.");
  return 0;
}
