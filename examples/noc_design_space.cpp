// NoC design-space exploration with the analytical + SVR-corrected latency
// models (paper Section III-C's motivating use case: models are fast enough
// to sweep design points that simulation cannot cover).
//
// Every analytical sweep cell is its own registry arm and the calibrated
// study (SVR training simulations + verification) is a custom-closure arm,
// all run as one parallel ExperimentEngine batch through the shared bench
// driver (`--list`, prefix selection, `--measure-cycles` scale-down, exit-2
// usage errors).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/driver.h"
#include "common/table.h"
#include "core/scenario_registry.h"
#include "noc/svr_model.h"

using namespace oal;
using namespace oal::noc;
using namespace oal::core;

namespace {

/// Calibrated-study payload: hybrid-model predictions vs fresh simulations.
struct CalibratedRun {
  struct Row {
    double rate = 0.0;
    double predicted = 0.0;
    double simulated = 0.0;
  };
  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t measure_cycles = 40000;
  bench::BenchDriver driver("noc_design_space");
  driver.add_size_option("--measure-cycles", &measure_cycles,
                         "measured cycles per calibration/verification simulation");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  ScenarioRegistry registry;

  // ---- Analytical sweep: mesh size x injection rate ------------------------
  struct SweepPoint {
    std::size_t dim;
    double rate;
  };
  std::vector<SweepPoint> points;
  for (const std::size_t dim : {4u, 6u, 8u})
    for (double rate : {0.01, 0.02, 0.04, 0.08}) points.push_back({dim, rate});
  for (const SweepPoint& p : points) {
    const std::string id = "noc/sweep/" + std::to_string(p.dim) + "x" + std::to_string(p.dim) +
                           "/r" + common::Table::fmt(p.rate, 2);
    registry.add_any(id, [id, p] {
      NocScenario s;
      s.id = id;
      s.mesh_cols = p.dim;
      s.mesh_rows = p.dim;
      s.traffic = TrafficMatrix::uniform(p.dim * p.dim, p.rate);
      s.run_simulation = false;  // model-only sweep: that is the use case
      return AnyScenario(std::move(s));
    });
  }

  // ---- Calibrated exploration: SVR correction trained on simulations -------
  // The 18 training simulations and 3 verification simulations run inside
  // the arm (deterministic per-sim seeds), so the arm as a whole is one
  // batch member next to the sweep cells.
  registry.add_any("noc/calibrated", [measure_cycles] {
    return AnyScenario("noc/calibrated", [measure_cycles] {
      const Mesh mesh(8, 8);
      const NocSimulator sim(mesh);
      std::vector<TrafficMatrix> train;
      for (double r : {0.004, 0.010, 0.016, 0.022, 0.028, 0.034}) {
        train.push_back(TrafficMatrix::uniform(mesh.num_nodes(), r));
        train.push_back(TrafficMatrix::transpose(8, 8, r * 0.8));
        train.push_back(TrafficMatrix::hotspot(mesh.num_nodes(), 27, r * 0.7));
      }
      std::vector<double> lat;
      lat.reserve(train.size());
      for (std::size_t i = 0; i < train.size(); ++i) {
        SimConfig cfg;
        cfg.seed = 60 + i;
        cfg.measure_cycles = static_cast<double>(measure_cycles);
        lat.push_back(sim.simulate(train[i], cfg).avg_latency_cycles);
      }
      SvrNocModel hybrid(mesh);
      hybrid.fit(train, lat);

      CalibratedRun out;
      Metrics m;
      for (double rate : {0.008, 0.018, 0.030}) {
        const auto tm = TrafficMatrix::uniform(mesh.num_nodes(), rate);
        SimConfig cfg;
        cfg.seed = 777;
        cfg.measure_cycles = static_cast<double>(measure_cycles);
        const CalibratedRun::Row row{rate, hybrid.predict(tm),
                                     sim.simulate(tm, cfg).avg_latency_cycles};
        out.rows.push_back(row);
        m.emplace_back("predicted_r" + common::Table::fmt(rate, 3), row.predicted);
        m.emplace_back("simulated_r" + common::Table::fmt(rate, 3), row.simulated);
      }
      return AnyResult("noc/calibrated", std::move(out), std::move(m));
    });
  });

  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);
  const bench::ResultIndex index(results);

  bool printed = false;
  {
    common::Table t({"Mesh", "Rate/node", "Analytical (cycles)", "Max rho", "Saturated?"});
    int n = 0;
    for (const SweepPoint& p : points) {
      const AnyResult* r = index.find("noc/sweep/" + std::to_string(p.dim) + "x" +
                                      std::to_string(p.dim) + "/r" +
                                      common::Table::fmt(p.rate, 2));
      if (!r) continue;
      ++n;
      const auto& a = r->as<NocRunResult>().analytical;
      t.add_row({std::to_string(p.dim) + "x" + std::to_string(p.dim),
                 common::Table::fmt(p.rate, 2), common::Table::fmt(a.avg_latency_cycles, 1),
                 common::Table::fmt(a.max_link_utilization, 2), a.saturated ? "YES" : "no"});
    }
    if (n > 0) {
      printed = true;
      std::puts("Sweep: mesh size x injection rate, uniform traffic, model-predicted latency\n");
      t.print(std::cout);
    }
  }

  if (const AnyResult* r = index.find("noc/calibrated")) {
    std::printf("%sCalibrated 8x8 sweep (SVR-corrected, trained on 18 simulations):\n",
                printed ? "\n" : "");
    common::Table t2({"Traffic", "Rate/node", "Hybrid model (cycles)", "Simulated (cycles)"});
    for (const auto& row : r->as<CalibratedRun>().rows) {
      t2.add_row({"uniform", common::Table::fmt(row.rate, 3),
                  common::Table::fmt(row.predicted, 1), common::Table::fmt(row.simulated, 1)});
    }
    t2.print(std::cout);
    std::puts("\nThe hybrid model evaluates in microseconds; each simulation point costs");
    std::puts("tens of milliseconds — a >1000x exploration speedup at a few % error.");
  }
  return 0;
}
