// NoC design-space exploration with the analytical + SVR-corrected latency
// models (paper Section III-C's motivating use case: models are fast enough
// to sweep design points that simulation cannot cover).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "noc/svr_model.h"

using namespace oal;
using namespace oal::noc;

int main() {
  std::puts("Sweep: mesh size x injection rate, uniform traffic, model-predicted latency\n");
  common::Table t({"Mesh", "Rate/node", "Analytical (cycles)", "Max rho", "Saturated?"});
  for (const std::size_t dim : {4u, 6u, 8u}) {
    const Mesh mesh(dim, dim);
    const AnalyticalNocModel model(mesh);
    for (double rate : {0.01, 0.02, 0.04, 0.08}) {
      const auto r = model.evaluate(TrafficMatrix::uniform(mesh.num_nodes(), rate));
      t.add_row({std::to_string(dim) + "x" + std::to_string(dim), common::Table::fmt(rate, 2),
                 common::Table::fmt(r.avg_latency_cycles, 1),
                 common::Table::fmt(r.max_link_utilization, 2), r.saturated ? "YES" : "no"});
    }
  }
  t.print(std::cout);

  // Calibrated exploration: train the SVR correction on a handful of
  // simulations of the candidate fabric, then sweep with the hybrid model.
  std::puts("\nCalibrated 8x8 sweep (SVR-corrected, trained on 18 simulations):");
  const Mesh mesh(8, 8);
  const NocSimulator sim(mesh);
  std::vector<TrafficMatrix> train;
  std::vector<double> lat;
  for (double r : {0.004, 0.010, 0.016, 0.022, 0.028, 0.034}) {
    train.push_back(TrafficMatrix::uniform(mesh.num_nodes(), r));
    train.push_back(TrafficMatrix::transpose(8, 8, r * 0.8));
    train.push_back(TrafficMatrix::hotspot(mesh.num_nodes(), 27, r * 0.7));
  }
  for (std::size_t i = 0; i < train.size(); ++i) {
    SimConfig cfg;
    cfg.seed = 60 + i;
    cfg.measure_cycles = 40000.0;
    lat.push_back(sim.simulate(train[i], cfg).avg_latency_cycles);
  }
  SvrNocModel hybrid(mesh);
  hybrid.fit(train, lat);

  common::Table t2({"Traffic", "Rate/node", "Hybrid model (cycles)", "Simulated (cycles)"});
  for (double rate : {0.008, 0.018, 0.030}) {
    const auto tm = TrafficMatrix::uniform(mesh.num_nodes(), rate);
    SimConfig cfg;
    cfg.seed = 777;
    t2.add_row({"uniform", common::Table::fmt(rate, 3),
                common::Table::fmt(hybrid.predict(tm), 1),
                common::Table::fmt(sim.simulate(tm, cfg).avg_latency_cycles, 1)});
  }
  t2.print(std::cout);
  std::puts("\nThe hybrid model evaluates in microseconds; each simulation point costs");
  std::puts("tens of milliseconds — a >1000x exploration speedup at a few % error.");
  return 0;
}
