// Quickstart: the complete online-adaptive-learning loop in ~60 lines.
//
// 1. Profile design-time workloads and build an Oracle-labeled dataset.
// 2. Train the offline IL policy and bootstrap the online models.
// 3. Deploy the model-guided online-IL controller on an *unseen* workload
//    and watch it converge toward Oracle-level energy.
//
// The pipeline is cataloged as one registry arm and argv goes through the
// shared bench driver, so `quickstart --list`, prefix selection, and
// `--snippets/--per-app` scale-down all behave exactly like the benches
// (unknown flags and malformed counts exit 2 with usage).
#include <algorithm>
#include <cstdio>

#include "bench/driver.h"
#include "core/online_il.h"
#include "core/runner.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

namespace {

/// Everything the report needs from the worker-side pipeline run.
struct QuickstartRun {
  RunResult run;
  std::size_t dataset_states = 0;
  std::size_t policy_params = 0;
  std::size_t policy_bytes = 0;
  std::size_t policy_updates = 0;
  std::size_t config_count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t online_snippets = 400;
  std::size_t snippets_per_app = 30;
  bench::BenchDriver driver("quickstart");
  driver.add_size_option("--snippets", &online_snippets, "online snippets of the unseen workload");
  driver.add_size_option("--per-app", &snippets_per_app, "offline snippets per training app");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  ScenarioRegistry registry;
  const std::string arm = "quickstart/online-il";
  registry.add_any(arm, [arm, online_snippets, snippets_per_app] {
    return AnyScenario(arm, [arm, online_snippets, snippets_per_app] {
      // The platform: an Exynos-5422-class big.LITTLE SoC simulator with the
      // Table-I performance counters.
      soc::BigLittlePlatform platform;

      // --- 1. Offline phase (design time) ----------------------------------
      common::Rng rng(7);
      const auto train_apps = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
      const OfflineData offline = collect_offline_data(platform, train_apps, Objective::kEnergy,
                                                       snippets_per_app,
                                                       /*configs_per_snippet=*/6, rng);

      // --- 2. Train policy + bootstrap models ------------------------------
      IlPolicy policy(platform.space());
      policy.train_offline(offline.policy, rng);
      OnlineSocModels models(platform.space());
      models.bootstrap(offline.model_samples);

      // --- 3. Online phase: a workload the policy has never seen -----------
      const auto& unseen = workloads::CpuBenchmarks::by_name("Kmeans");
      common::Rng wl_rng(42);
      const auto trace = workloads::CpuBenchmarks::trace(unseen, online_snippets, wl_rng);

      OnlineIlController controller(platform.space(), policy, models);
      DrmRunner runner(platform);
      QuickstartRun out;
      out.run = runner.run(trace, controller, soc::SocConfig{4, 4, 8, 10});
      out.dataset_states = offline.policy.states.size();
      out.policy_params = policy.num_params();
      out.policy_bytes = policy.storage_bytes();
      out.policy_updates = controller.policy_updates();
      out.config_count = platform.space().size();

      Metrics m = drm_metrics(out.run);
      m.emplace_back("policy_updates", static_cast<double>(out.policy_updates));
      return AnyResult(arm, std::move(out), std::move(m));
    });
  });
  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);

  for (const auto& r : results) {
    const QuickstartRun& q = r.as<QuickstartRun>();
    std::printf("Platform: %zu configurations, %zu-dim counter vector\n", q.config_count,
                soc::PerfCounters::kDim);
    std::printf("Offline dataset: %zu Oracle-labeled states\n", q.dataset_states);
    std::printf("IL policy: %zu parameters (%zu bytes — fits an OS governor)\n", q.policy_params,
                q.policy_bytes);

    const std::size_t n = q.run.records.size();
    // Floor of one record per window so tiny --snippets runs stay finite.
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    const auto window_ratio = [&](std::size_t lo, std::size_t hi) {
      double e = 0.0, oe = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        e += q.run.records[i].energy_j;
        oe += q.run.records[i].oracle_energy_j;
      }
      return e / oe;
    };
    std::printf("\nRunning 'Kmeans' (unseen at design time), %zu snippets, %.1f s:\n", n,
                q.run.total_time_s());
    std::printf("  energy vs Oracle, 1st quarter: %.2fx   (policy still offline-shaped)\n",
                window_ratio(0, quarter));
    std::printf("  energy vs Oracle, last quarter: %.2fx  (adapted online)\n",
                window_ratio(n - quarter, n));
    std::printf("  policy updates performed: %zu (aggregation buffer of 100)\n",
                q.policy_updates);
  }
  return 0;
}
