// Quickstart: the complete online-adaptive-learning loop in ~60 lines.
//
// 1. Profile design-time workloads and build an Oracle-labeled dataset.
// 2. Train the offline IL policy and bootstrap the online models.
// 3. Deploy the model-guided online-IL controller on an *unseen* workload
//    and watch it converge toward Oracle-level energy.
#include <cstdio>
#include <cstdlib>

#include "core/online_il.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  // Optional scale-down for smoke tests: quickstart [online_snippets]
  // [snippets_per_app] (defaults reproduce the full study).
  const long online_arg = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 400;
  const long per_app_arg = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 30;
  if (online_arg <= 0 || per_app_arg <= 0) {
    std::fprintf(stderr, "usage: %s [online_snippets] [snippets_per_app]\n", argv[0]);
    return 2;
  }
  const std::size_t online_snippets = static_cast<std::size_t>(online_arg);
  const std::size_t snippets_per_app = static_cast<std::size_t>(per_app_arg);

  // The platform: an Exynos-5422-class big.LITTLE SoC simulator with 4940
  // runtime configurations and the Table-I performance counters.
  soc::BigLittlePlatform platform;
  std::printf("Platform: %zu configurations, %zu-dim counter vector\n",
              platform.space().size(), soc::PerfCounters::kDim);

  // --- 1. Offline phase (design time) --------------------------------------
  common::Rng rng(7);
  const auto train_apps = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const OfflineData offline = collect_offline_data(platform, train_apps, Objective::kEnergy,
                                                   snippets_per_app,
                                                   /*configs_per_snippet=*/6, rng);
  std::printf("Offline dataset: %zu Oracle-labeled states\n", offline.policy.states.size());

  // --- 2. Train policy + bootstrap models ----------------------------------
  IlPolicy policy(platform.space());
  policy.train_offline(offline.policy, rng);
  OnlineSocModels models(platform.space());
  models.bootstrap(offline.model_samples);
  std::printf("IL policy: %zu parameters (%zu bytes — fits an OS governor)\n",
              policy.num_params(), policy.storage_bytes());

  // --- 3. Online phase: a workload the policy has never seen ---------------
  const auto& unseen = workloads::CpuBenchmarks::by_name("Kmeans");
  common::Rng wl_rng(42);
  const auto trace = workloads::CpuBenchmarks::trace(unseen, online_snippets, wl_rng);

  OnlineIlController controller(platform.space(), policy, models);
  DrmRunner runner(platform);
  const RunResult result = runner.run(trace, controller, soc::SocConfig{4, 4, 8, 10});

  const std::size_t q = result.records.size() / 4;
  auto window_ratio = [&](std::size_t lo, std::size_t hi) {
    double e = 0.0, oe = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      e += result.records[i].energy_j;
      oe += result.records[i].oracle_energy_j;
    }
    return e / oe;
  };
  std::printf("\nRunning '%s' (unseen at design time), %zu snippets, %.1f s:\n",
              unseen.name.c_str(), trace.size(), result.total_time_s());
  std::printf("  energy vs Oracle, 1st quarter: %.2fx   (policy still offline-shaped)\n",
              window_ratio(0, q));
  std::printf("  energy vs Oracle, last quarter: %.2fx  (adapted online)\n",
              window_ratio(result.records.size() - q, result.records.size()));
  std::printf("  policy updates performed: %zu (aggregation buffer of 100)\n",
              controller.policy_updates());
  return 0;
}
