// Governor shoot-out on the mobile SoC: the Linux-style heuristics the paper
// motivates against (ondemand, interactive, performance, powersave) vs the
// learned online-IL controller, all normalized to the Oracle.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/governors.h"
#include "core/online_il.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy, 30, 6, rng);
  IlPolicy policy(plat.space());
  policy.train_offline(off.policy, rng);
  OnlineSocModels models(plat.space());
  models.bootstrap(off.model_samples);

  // A mixed-suite sequence (one app from each suite).
  std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("FFT"),
                                       workloads::CpuBenchmarks::by_name("Kmeans"),
                                       workloads::CpuBenchmarks::by_name("Blkschls-4T")};
  common::Rng seq_rng(17);
  const auto seq = workloads::CpuBenchmarks::sequence(apps, seq_rng);
  std::printf("Workload: FFT -> Kmeans -> Blkschls-4T, %zu snippets\n\n", seq.size());

  DrmRunner runner(plat);
  const soc::SocConfig init{4, 4, 8, 10};
  common::Table t({"Controller", "Energy (J)", "E/Oracle", "Time (s)"});

  auto report = [&](DrmController& ctl) {
    const auto res = runner.run(seq, ctl, init);
    t.add_row({ctl.name(), common::Table::fmt(res.total_energy_j(), 2),
               common::Table::fmt(res.energy_ratio(), 2),
               common::Table::fmt(res.total_time_s(), 1)});
  };

  PerformanceGovernor perf(plat.space());
  report(perf);
  PowersaveGovernor save;
  report(save);
  OndemandGovernor ondemand(plat.space());
  report(ondemand);
  InteractiveGovernor interactive(plat.space());
  report(interactive);
  OnlineIlController il(plat.space(), policy, models);
  report(il);

  t.print(std::cout);
  std::puts("\nThe heuristics 'leave considerable room for improvement' (paper Sec. I);");
  std::puts("the model-guided online-IL controller closes most of the gap to the Oracle.");
  return 0;
}
