// Governor shoot-out on the mobile SoC: the Linux-style heuristics the paper
// motivates against (ondemand, interactive, performance, powersave) vs the
// learned online-IL controller, all normalized to the Oracle.
//
// Each governor is a named scenario in a ScenarioRegistry; the whole
// shoot-out is one parallel ExperimentEngine batch over the same sequence.
// Argv goes through the shared bench driver (`--offline-per-app/--snippets`
// scale-down, `--list`, prefix selection, exit-2 usage errors).
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "bench/driver.h"
#include "common/table.h"
#include "core/online_il.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main(int argc, char** argv) {
  std::size_t offline_per_app = 30;
  std::size_t max_snippets = 1000;  // cap on the mixed-suite sequence
  bench::BenchDriver driver("mobile_governor_study");
  driver.add_size_option("--offline-per-app", &offline_per_app,
                         "offline snippets per MiBench training app");
  driver.add_size_option("--snippets", &max_snippets, "cap on the mixed-suite sequence length");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  // A mixed-suite sequence (one app from each suite).
  std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("FFT"),
                                       workloads::CpuBenchmarks::by_name("Kmeans"),
                                       workloads::CpuBenchmarks::by_name("Blkschls-4T")};
  common::Rng seq_rng(17);
  auto seq = workloads::CpuBenchmarks::sequence(apps, seq_rng);
  if (seq.size() > max_snippets) seq.resize(max_snippets);

  ScenarioRegistry registry;
  const auto add_governor = [&registry, &seq](const std::string& name, ControllerFactory make) {
    registry.add("governors/" + name, [seq, make] {
      Scenario s;
      s.trace = seq;
      s.make_controller = make;
      return s;
    });
  };
  add_governor("1-performance", governor_factory("performance"));
  add_governor("2-powersave", governor_factory("powersave"));
  add_governor("3-ondemand", governor_factory("ondemand"));
  add_governor("4-interactive", governor_factory("interactive"));
  // Offline collection runs inside the factory (on the worker), so the
  // --list fast path and deselected runs never pay for offline profiling.
  add_governor("5-online-il",
               online_il_collect_factory(workloads::CpuBenchmarks::of_suite(
                                             workloads::Suite::kMiBench),
                                         offline_per_app, /*configs_per_snippet=*/6,
                                         /*collect_seed=*/7, /*train_seed=*/7));

  if (driver.listing()) return driver.list(registry);
  std::printf("Workload: FFT -> Kmeans -> Blkschls-4T, %zu snippets\n\n", seq.size());

  // Harvest the display name of each controller as its scenario runs.  Each
  // on_complete writes its own pre-inserted map slot — no shared mutation.
  auto names = std::make_shared<std::map<std::string, std::string>>();
  std::vector<Scenario> batch;
  for (const std::string& name : driver.selection(registry)) batch.push_back(registry.build(name));
  for (Scenario& s : batch) {
    std::string* slot = &(*names)[s.id];
    s.on_complete = [slot](DrmController& ctl, const RunResult&) { *slot = ctl.name(); };
  }

  ExperimentEngine engine;
  const auto results = engine.run_batch(batch);
  {
    // The DRM-typed run_batch path has no AnyResults; wrap them so --json
    // emits per-arm records like every other driver-ported binary.
    std::vector<AnyResult> records;
    records.reserve(results.size());
    for (const auto& r : results) records.emplace_back(r.id, r.run, drm_metrics(r.run));
    driver.json().write(driver.bench_name(), records);
  }
  common::Table t({"Controller", "Energy (J)", "E/Oracle", "Time (s)"});
  for (const auto& r : results) {
    t.add_row({names->at(r.id), common::Table::fmt(r.run.total_energy_j(), 2),
               common::Table::fmt(r.run.energy_ratio(), 2),
               common::Table::fmt(r.run.total_time_s(), 1)});
  }

  t.print(std::cout);
  std::puts("\nThe heuristics 'leave considerable room for improvement' (paper Sec. I);");
  std::puts("the model-guided online-IL controller closes most of the gap to the Oracle.");
  return 0;
}
