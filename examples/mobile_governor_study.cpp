// Governor shoot-out on the mobile SoC: the Linux-style heuristics the paper
// motivates against (ondemand, interactive, performance, powersave) vs the
// learned online-IL controller, all normalized to the Oracle.
//
// Each governor is a named scenario in a ScenarioRegistry; the whole
// shoot-out is one parallel ExperimentEngine batch over the same sequence.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "common/table.h"
#include "core/online_il.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"

using namespace oal;
using namespace oal::core;

int main() {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  const auto off = std::make_shared<OfflineData>(
      collect_offline_data(plat, mibench, Objective::kEnergy, 30, 6, rng));

  // A mixed-suite sequence (one app from each suite).
  std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("FFT"),
                                       workloads::CpuBenchmarks::by_name("Kmeans"),
                                       workloads::CpuBenchmarks::by_name("Blkschls-4T")};
  common::Rng seq_rng(17);
  const auto seq = workloads::CpuBenchmarks::sequence(apps, seq_rng);
  std::printf("Workload: FFT -> Kmeans -> Blkschls-4T, %zu snippets\n\n", seq.size());

  ScenarioRegistry registry;
  const auto add_governor = [&registry, &seq](const std::string& name, ControllerFactory make) {
    registry.add("governors/" + name, [seq, make] {
      Scenario s;
      s.trace = seq;
      s.make_controller = make;
      return s;
    });
  };
  add_governor("1-performance", governor_factory("performance"));
  add_governor("2-powersave", governor_factory("powersave"));
  add_governor("3-ondemand", governor_factory("ondemand"));
  add_governor("4-interactive", governor_factory("interactive"));
  add_governor("5-online-il", online_il_factory(off, /*train_seed=*/7));

  // Harvest the display name of each controller as its scenario runs.  Each
  // on_complete writes its own pre-inserted map slot — no shared mutation.
  auto names = std::make_shared<std::map<std::string, std::string>>();
  std::vector<Scenario> batch = registry.build_batch("governors/");
  for (Scenario& s : batch) {
    std::string* slot = &(*names)[s.id];
    s.on_complete = [slot](DrmController& ctl, const RunResult&) { *slot = ctl.name(); };
  }

  ExperimentEngine engine;
  common::Table t({"Controller", "Energy (J)", "E/Oracle", "Time (s)"});
  for (const auto& r : engine.run_batch(batch)) {
    t.add_row({names->at(r.id), common::Table::fmt(r.run.total_energy_j(), 2),
               common::Table::fmt(r.run.energy_ratio(), 2),
               common::Table::fmt(r.run.total_time_s(), 1)});
  }

  t.print(std::cout);
  std::puts("\nThe heuristics 'leave considerable room for improvement' (paper Sec. I);");
  std::puts("the model-guided online-IL controller closes most of the gap to the Oracle.");
  return 0;
}
