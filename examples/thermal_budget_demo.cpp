// Thermal-aware power budgeting demo: the Section III-A pipeline end-to-end.
// Estimate skin temperature from internal sensors, compute the sustainable
// power budget, and throttle a synthetic burst workload so neither junction
// nor skin limits are violated.
//
// The closed loop is cataloged as one registry arm and argv goes through the
// shared bench driver (`--ticks` scale-down, `--list`, exit-2 usage errors)
// instead of the old unchecked std::atoi scanning.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/driver.h"
#include "common/table.h"
#include "core/scenario_registry.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"

using namespace oal;
using namespace oal::thermal;
using namespace oal::core;

namespace {

struct TraceRow {
  double t_s = 0.0;
  double demand_w = 0.0;
  double granted_w = 0.0;
  double junction_c = 0.0;
  double skin_est_c = 0.0;
  double skin_true_c = 0.0;
};

/// Worker-side payload: the budget summary plus the throttling trace.
struct BudgetDemoRun {
  double budget_w = 0.0;
  std::string binding_node;
  PowerBudgetConfig limits;
  std::vector<TraceRow> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Each tick is 10 s of simulated closed-loop throttling.
  std::size_t ticks = 36;
  bench::BenchDriver driver("thermal_budget_demo");
  driver.add_size_option("--ticks", &ticks, "10 s closed-loop throttling ticks");
  if (!driver.parse(argc, argv)) return driver.exit_code();

  ScenarioRegistry registry;
  const std::string arm = "thermal_budget/closed-loop";
  registry.add_any(arm, [arm, ticks] {
    return AnyScenario(arm, [arm, ticks] {
      auto net = RcThermalNetwork::mobile_soc();
      LeakageModel leak;
      leak.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
      leak.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};

      const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};
      const PowerBudgetConfig limits;  // 85 C junction, 45 C skin
      const auto budget = max_sustainable_power(net, leak, shape, limits);

      // Train the skin estimator on a calibration run.
      SensorArray sensors({0, 1, 2, 3}, 0.2, 33);
      SkinTemperatureEstimator skin_est(4);
      {
        RcThermalNetwork calib = net;
        common::Rng rng(5);
        std::vector<common::Vec> xs;
        std::vector<double> ys;
        common::Vec p(5, 0.0);
        for (int i = 0; i < 900; ++i) {
          if (i % 60 == 0)
            p = {rng.uniform(0.2, 4.5), rng.uniform(0.1, 1.0), rng.uniform(0.1, 3.0), 0.0, 0.0};
          calib.step(p, 1.0);
          xs.push_back(sensors.read(calib.temperatures()));
          ys.push_back(calib.temperatures()[4]);
        }
        skin_est.fit(xs, ys);
      }

      // Closed-loop run: a bursty workload demands 12 W; the governor caps
      // power at the transient headroom recomputed every 10 s.
      BudgetDemoRun out;
      out.budget_w = budget.total_power_w;
      out.binding_node = net.nodes()[budget.binding_node].name;
      out.limits = limits;
      for (std::size_t tick = 0; tick < ticks; ++tick) {
        const double t_s = static_cast<double>(tick) * 10.0;
        const double demand_w = (tick / 6) % 2 == 0 ? 12.0 : 4.0;
        // Re-evaluate the 10 s transient headroom from the current state.
        const double headroom_scale = transient_power_headroom(net, leak, shape, 10.0, limits);
        const double total_shape = shape[0] + shape[1] + shape[2];
        const double granted_w = std::min(demand_w, headroom_scale * total_shape);
        const double granted_scale = granted_w / total_shape;
        // Apply for 10 s with leakage feedback.
        for (int s = 0; s < 10; ++s) {
          const auto p_leak = leak.leakage(net.temperatures());
          common::Vec p(5, 0.0);
          for (int i = 0; i < 5; ++i) p[i] = granted_scale * shape[i] + p_leak[i];
          net.step(p, 1.0);
        }
        const auto reading = sensors.read(net.temperatures());
        if (tick % 3 == 0) {
          out.rows.push_back(TraceRow{t_s + 10.0, demand_w, granted_w, net.temperatures()[0],
                                      skin_est.estimate(reading), net.temperatures()[4]});
        }
      }
      Metrics m{{"budget_w", out.budget_w},
                {"ticks", static_cast<double>(ticks)},
                {"final_junction_c", net.temperatures()[0]},
                {"final_skin_c", net.temperatures()[4]}};
      return AnyResult(arm, std::move(out), std::move(m));
    });
  });
  if (driver.listing()) return driver.list(registry);

  ExperimentEngine engine;
  const auto results = engine.run_any(driver.select(registry));
  driver.json().write(driver.bench_name(), results);

  for (const auto& r : results) {
    const BudgetDemoRun& d = r.as<BudgetDemoRun>();
    std::printf("Sustainable budget for this workload shape: %.2f W (binding: %s)\n\n",
                d.budget_w, d.binding_node.c_str());
    std::puts("Closed-loop throttling trace (demand 12 W bursts, 4 W idle):");
    common::Table t({"t (s)", "Demand (W)", "Granted (W)", "T_junction (C)", "T_skin est (C)",
                     "T_skin true (C)"});
    for (const TraceRow& row : d.rows) {
      t.add_row({common::Table::fmt(row.t_s, 0), common::Table::fmt(row.demand_w, 1),
                 common::Table::fmt(row.granted_w, 2), common::Table::fmt(row.junction_c, 1),
                 common::Table::fmt(row.skin_est_c, 1), common::Table::fmt(row.skin_true_c, 1)});
    }
    t.print(std::cout);
    std::printf("\nLimits: junction %.0f C, skin %.0f C — never exceeded; bursts get full\n",
                d.limits.t_max_junction_c, d.limits.t_max_skin_c);
    std::puts("power while cold, then the budget tapers toward the sustainable level.");
  }
  return 0;
}
