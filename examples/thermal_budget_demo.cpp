// Thermal-aware power budgeting demo: the Section III-A pipeline end-to-end.
// Estimate skin temperature from internal sensors, compute the sustainable
// power budget, and throttle a synthetic burst workload so neither junction
// nor skin limits are violated.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"

using namespace oal;
using namespace oal::thermal;

int main(int argc, char** argv) {
  // Optional scale-down for smoke tests: thermal_budget_demo [ticks]
  // (each tick is 10 s of simulated closed-loop throttling).
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 36;
  if (ticks <= 0) {
    std::fprintf(stderr, "usage: %s [ticks]\n", argv[0]);
    return 2;
  }
  auto net = RcThermalNetwork::mobile_soc();
  LeakageModel leak;
  leak.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
  leak.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};

  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};
  const PowerBudgetConfig limits;  // 85 C junction, 45 C skin
  const auto budget = max_sustainable_power(net, leak, shape, limits);
  std::printf("Sustainable budget for this workload shape: %.2f W (binding: %s)\n\n",
              budget.total_power_w, net.nodes()[budget.binding_node].name.c_str());

  // Train the skin estimator on a calibration run.
  SensorArray sensors({0, 1, 2, 3}, 0.2, 33);
  SkinTemperatureEstimator skin_est(4);
  {
    RcThermalNetwork calib = net;
    common::Rng rng(5);
    std::vector<common::Vec> xs;
    std::vector<double> ys;
    common::Vec p(5, 0.0);
    for (int i = 0; i < 900; ++i) {
      if (i % 60 == 0)
        p = {rng.uniform(0.2, 4.5), rng.uniform(0.1, 1.0), rng.uniform(0.1, 3.0), 0.0, 0.0};
      calib.step(p, 1.0);
      xs.push_back(sensors.read(calib.temperatures()));
      ys.push_back(calib.temperatures()[4]);
    }
    skin_est.fit(xs, ys);
  }

  // Closed-loop run: a bursty workload demands 12 W; the governor caps power
  // at the transient headroom recomputed every 10 s.
  std::puts("Closed-loop throttling trace (demand 12 W bursts, 4 W idle):");
  common::Table t({"t (s)", "Demand (W)", "Granted (W)", "T_junction (C)", "T_skin est (C)",
                   "T_skin true (C)"});
  double granted_scale = budget.scale;
  for (int tick = 0; tick < ticks; ++tick) {
    const double t_s = tick * 10.0;
    const double demand_w = (tick / 6) % 2 == 0 ? 12.0 : 4.0;
    // Re-evaluate the 10 s transient headroom from the current state.
    const double headroom_scale = transient_power_headroom(net, leak, shape, 10.0, limits);
    const double total_shape = shape[0] + shape[1] + shape[2];
    const double granted_w = std::min(demand_w, headroom_scale * total_shape);
    granted_scale = granted_w / total_shape;
    // Apply for 10 s with leakage feedback.
    for (int s = 0; s < 10; ++s) {
      const auto p_leak = leak.leakage(net.temperatures());
      common::Vec p(5, 0.0);
      for (int i = 0; i < 5; ++i) p[i] = granted_scale * shape[i] + p_leak[i];
      net.step(p, 1.0);
    }
    const auto reading = sensors.read(net.temperatures());
    if (tick % 3 == 0) {
      t.add_row({common::Table::fmt(t_s + 10.0, 0), common::Table::fmt(demand_w, 1),
                 common::Table::fmt(granted_w, 2), common::Table::fmt(net.temperatures()[0], 1),
                 common::Table::fmt(skin_est.estimate(reading), 1),
                 common::Table::fmt(net.temperatures()[4], 1)});
    }
  }
  t.print(std::cout);
  std::printf("\nLimits: junction %.0f C, skin %.0f C — never exceeded; bursts get full\n",
              limits.t_max_junction_c, limits.t_max_skin_c);
  std::puts("power while cold, then the budget tapers toward the sustainable level.");
  return 0;
}
