// oal_lint: project-invariant checker for the oal tree.
//
// The repo rests on contracts no compiler enforces: bitwise parallel==serial
// determinism (ExperimentEngine, sharded oracle_search, fleet streaming),
// zero-allocation steady-state hot paths (the *_into scratch surfaces), and
// JSONL baselines gated bitwise across runs.  Past PRs fixed bug classes a
// token scan would have caught — atof typos turning tolerances into 0.0
// gates, strtoull accepting wrapped negatives, default-precision float
// printing truncating gated metrics.  This tool scans src/ bench/ tools/
// examples/ and fails on the recurring classes:
//
//   unchecked-parse  atoi/atol/atoll/atof anywhere (no error reporting at
//                    all), or a strtol/strtod-family call whose end-pointer
//                    argument is nullptr/NULL/0 (errors silently become 0.0).
//   nondet-rand      std::rand/srand/rand_r/drand48/random_device/
//                    random_shuffle: nondeterministic or global-state
//                    randomness.  All randomness flows through common::Rng
//                    with an explicit seed.
//   nondet-seed      seeding from wall-clock time: time(nullptr) anywhere,
//                    or an Rng/seed/engine constructor whose arguments
//                    mention now()/time() — runs would stop reproducing.
//   unordered-iter   range-for over a container declared as
//                    unordered_map/unordered_set in this file or its
//                    sibling header: hash order is implementation-defined,
//                    so anything order-sensitive (JSONL records, stdout
//                    tables, reductions feeding gated metrics) must sort
//                    first.  Order-insensitive iterations document that with
//                    an allow.
//   hot-path-alloc   inside a region marked `// oal-lint: hot-path` ...
//                    `// oal-lint: hot-path-end`: raw new/malloc-family
//                    calls or container growth (push_back/resize/...).  The
//                    markers wrap the steady-state decide/step surfaces that
//                    tests/test_hot_path_alloc.cpp asserts allocation-free;
//                    the lint catches regressions at review time, before a
//                    test ever runs.
//   float-format     in JSONL-adjacent code (file name contains jsonl /
//                    results_io, or the file builds raw "metrics" JSON):
//                    std::to_string() or a printf %g/%f/%e conversion
//                    without an explicit precision.  Default 6-digit
//                    formatting silently truncates gated doubles; use
//                    json_number()-style %.17g.
//   unused-allow     an `// oal-lint: allow(rule)` that suppressed nothing
//                    — stale suppressions rot into blind spots.
//
// Escape hatch: `// oal-lint: allow(rule)` (comma-separate several rules) on
// the flagged line, or alone on the line directly above, suppresses the
// diagnostic.  Every allow in the tree carries a reason in its comment.
//
// Modes:
//   oal_lint <file-or-dir>...        scan; exit 1 on any violation
//   oal_lint --selftest <dir>        run the fixture suite: every *.cpp/*.h
//                                    under <dir> declares its expected
//                                    diagnostics via `// lint-expect:
//                                    <rule>=<count>` headers; exact-match or
//                                    exit 1.
//
// The scanner is a tokenizer, not a parser: it strips comments and string
// literals (preserving line numbers), tokenizes the rest, and pattern-
// matches token runs.  That is deliberate — it keeps the checker a single
// dependency-free TU that runs in milliseconds on the whole tree, at the
// cost of not seeing through typedefs or macros.  The rules are tuned so
// the heuristics err toward firing (an allow with a reason is cheap).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diag {
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  std::size_t line = 0;
  bool ident = false;
};

struct Literal {
  std::string text;  ///< contents between the quotes, escapes left raw
  std::size_t line = 0;
};

/// One line of the allow map: rules permitted, and whether any diagnostic
/// actually consumed the permission (for unused-allow).
struct Allow {
  std::set<std::string> rules;
  bool used = false;
};

const std::set<std::string>& all_rules() {
  static const std::set<std::string> kRules{"unchecked-parse", "nondet-rand", "nondet-seed",
                                            "unordered-iter",  "hot-path-alloc", "float-format",
                                            "unused-allow"};
  return kRules;
}

// ---------------------------------------------------------------------------
// File model: raw lines, comment directives, blanked code, tokens, literals.
// ---------------------------------------------------------------------------

class FileModel {
 public:
  bool load(const fs::path& path) {
    path_ = path;
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    raw_ = ss.str();
    split_lines();
    blank_and_collect();
    parse_directives();
    tokenize();
    return true;
  }

  const fs::path& path() const { return path_; }
  const std::string& raw() const { return raw_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<Literal>& literals() const { return literals_; }
  const std::vector<std::string>& lines() const { return lines_; }

  bool hot(std::size_t line) const {
    bool on = false;
    for (const auto& [begin, end] : hot_regions_)
      if (line >= begin && line <= end) on = true;
    return on;
  }
  bool has_hot_regions() const { return !hot_regions_.empty(); }

  std::map<std::size_t, Allow>& allows() { return allows_; }

 private:
  void split_lines() {
    lines_.clear();
    std::string cur;
    for (char c : raw_) {
      if (c == '\n') {
        lines_.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    lines_.push_back(cur);
  }

  /// Replaces comments and string/char literals with spaces (newlines kept)
  /// so the tokenizer sees only code; collects string literals on the side.
  void blank_and_collect() {
    code_ = raw_;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = code_.size();
    auto blank = [&](std::size_t pos) {
      if (code_[pos] != '\n') code_[pos] = ' ';
    };
    while (i < n) {
      const char c = code_[i];
      if (c == '\n') {
        ++line;
        ++i;
      } else if (c == '/' && i + 1 < n && code_[i + 1] == '/') {
        while (i < n && code_[i] != '\n') blank(i++);
      } else if (c == '/' && i + 1 < n && code_[i + 1] == '*') {
        blank(i);
        blank(i + 1);
        i += 2;
        while (i + 1 < n && !(code_[i] == '*' && code_[i + 1] == '/')) {
          if (code_[i] == '\n') ++line;
          blank(i++);
        }
        if (i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        }
      } else if (c == '"' || c == '\'') {
        const char quote = c;
        const std::size_t start_line = line;
        blank(i++);
        std::string text;
        while (i < n && code_[i] != quote) {
          if (code_[i] == '\\' && i + 1 < n) {
            text += code_[i];
            text += code_[i + 1];
            blank(i);
            blank(i + 1);
            i += 2;
            continue;
          }
          if (code_[i] == '\n') ++line;  // unterminated literal; keep counting
          text += code_[i];
          blank(i++);
        }
        if (i < n) blank(i++);  // closing quote
        if (quote == '"') literals_.push_back({text, start_line});
      } else {
        ++i;
      }
    }
  }

  /// Scans the raw comment text for oal-lint directives; comments were
  /// blanked from the code view, so this reads the original lines.  A
  /// directive must begin its comment (`// oal-lint: ...`), so prose that
  /// merely *mentions* a directive mid-comment is inert.
  void parse_directives() {
    std::size_t hot_open = 0;  // 0 = no open region
    for (std::size_t ln = 0; ln < lines_.size(); ++ln) {
      const std::string& text = lines_[ln];
      const std::size_t slash = text.find("//");
      if (slash == std::string::npos) continue;
      std::size_t pos = slash + 2;
      while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
      if (text.compare(pos, 9, "oal-lint:") != 0) continue;
      const std::string rest = text.substr(pos + 9);
      const std::size_t line = ln + 1;
      // Match the region keywords as the directive's first word only: an
      // allow(hot-path-alloc) also *contains* "hot-path" and must not
      // open/close a region.
      std::size_t w = 0;
      while (w < rest.size() && (rest[w] == ' ' || rest[w] == '\t')) ++w;
      std::size_t we = w;
      while (we < rest.size() && rest[we] != ' ' && rest[we] != '\t' && rest[we] != '(') ++we;
      const std::string word = rest.substr(w, we - w);
      if (word == "hot-path-end") {
        if (hot_open) hot_regions_.emplace_back(hot_open, line);
        hot_open = 0;
      } else if (word == "hot-path") {
        hot_open = line;
      }
      std::size_t a = rest.find("allow(");
      while (a != std::string::npos) {
        const std::size_t close = rest.find(')', a);
        if (close == std::string::npos) break;
        std::string inside = rest.substr(a + 6, close - a - 6);
        std::string rule;
        std::istringstream rs(inside);
        while (std::getline(rs, rule, ',')) {
          rule.erase(std::remove_if(rule.begin(), rule.end(),
                                    [](unsigned char c) { return std::isspace(c) != 0; }),
                     rule.end());
          if (!rule.empty()) allows_[line].rules.insert(rule);
        }
        a = rest.find("allow(", close);
      }
    }
    if (hot_open) hot_regions_.emplace_back(hot_open, lines_.size());
  }

  void tokenize() {
    std::size_t line = 1;
    const std::size_t n = code_.size();
    std::size_t i = 0;
    while (i < n) {
      const char c = code_[i];
      if (c == '\n') {
        ++line;
        ++i;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(code_[j])) || code_[j] == '_'))
          ++j;
        tokens_.push_back({code_.substr(i, j - i), line, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(code_[j])) || code_[j] == '.' ||
                         code_[j] == '\''))
          ++j;
        tokens_.push_back({code_.substr(i, j - i), line, false});
        i = j;
      } else {
        tokens_.push_back({std::string(1, c), line, false});
        ++i;
      }
    }
  }

  fs::path path_;
  std::string raw_;
  std::string code_;
  std::vector<std::string> lines_;
  std::vector<Token> tokens_;
  std::vector<Literal> literals_;
  std::vector<std::pair<std::size_t, std::size_t>> hot_regions_;
  std::map<std::size_t, Allow> allows_;
};

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

bool is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// Index of the ')' matching the '(' at `open`, or tokens.size() if
/// unbalanced.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return t.size();
}

/// Splits the argument tokens of the call parenthesized at [open, close]
/// into top-level comma-separated slices of token indices.
std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& t,
                                                            std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  if (close <= open + 1) return args;
  // Only ()[]{} nest: '<'/'>' are comparisons far more often than template
  // brackets inside call arguments, and miscounting them would break the
  // top-level comma split on any arg containing `->`.
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (x == "," && depth == 0) {
      args.emplace_back(start, i);
      start = i + 1;
    }
  }
  args.emplace_back(start, close);
  return args;
}

bool range_contains_ident(const std::vector<Token>& t, std::size_t begin, std::size_t end,
                          const std::set<std::string>& names) {
  for (std::size_t i = begin; i < end; ++i)
    if (t[i].ident && names.count(t[i].text)) return true;
  return false;
}

/// True when the argument slice is exactly one null-ish token.
bool arg_is_null(const std::vector<Token>& t, std::pair<std::size_t, std::size_t> arg) {
  if (arg.second != arg.first + 1) return false;
  const std::string& x = t[arg.first].text;
  return x == "nullptr" || x == "NULL" || x == "0";
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void rule_unchecked_parse(const FileModel& f, std::vector<Diag>& out) {
  static const std::set<std::string> kBanned{"atoi", "atol", "atoll", "atof"};
  static const std::set<std::string> kStrto{"strtol",  "strtoul",  "strtoll", "strtoull",
                                            "strtod",  "strtof",   "strtold", "strtoimax",
                                            "strtoumax"};
  const auto& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || !is(t, i + 1, "(")) continue;
    if (kBanned.count(t[i].text)) {
      out.push_back({t[i].line, "unchecked-parse",
                     t[i].text + "() reports no errors; use strto* with an end-pointer check"});
      continue;
    }
    if (!kStrto.count(t[i].text)) continue;
    const std::size_t close = match_paren(t, i + 1);
    const auto args = split_args(t, i + 1, close);
    if (args.size() < 2 || arg_is_null(t, args[1])) {
      out.push_back({t[i].line, "unchecked-parse",
                     t[i].text + "() with a null end pointer silently maps garbage to 0"});
    }
  }
}

void rule_nondet_rand(const FileModel& f, std::vector<Diag>& out) {
  static const std::set<std::string> kCalls{"srand",   "rand_r",  "drand48",       "lrand48",
                                            "mrand48", "erand48", "random_shuffle"};
  const auto& t = f.tokens();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    const bool call_like = i + 1 < t.size() && is(t, i + 1, "(");
    if ((kCalls.count(t[i].text) && call_like) || t[i].text == "random_device" ||
        (t[i].text == "rand" && call_like)) {
      out.push_back({t[i].line, "nondet-rand",
                     t[i].text + " is nondeterministic/global; use common::Rng with a fixed seed"});
    }
  }
}

void rule_nondet_seed(const FileModel& f, std::vector<Diag>& out) {
  static const std::set<std::string> kSeedSinks{"Rng",        "seed",    "seed_seq",
                                                "mt19937",    "mt19937_64",
                                                "default_random_engine", "minstd_rand"};
  const auto& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || !is(t, i + 1, "(")) continue;
    const std::size_t close = match_paren(t, i + 1);
    if (t[i].text == "time") {
      const auto args = split_args(t, i + 1, close);
      if (args.size() == 1 && arg_is_null(t, args[0])) {
        out.push_back({t[i].line, "nondet-seed", "time(nullptr) makes runs unreproducible"});
      }
      continue;
    }
    if (!kSeedSinks.count(t[i].text)) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      const bool now_call = t[j].ident && t[j].text == "now";
      const bool time_call = t[j].ident && t[j].text == "time" && is(t, j + 1, "(");
      if (now_call || time_call) {
        out.push_back({t[i].line, "nondet-seed",
                       t[i].text + "(...) seeded from the wall clock; seeds must be explicit"});
        break;
      }
    }
  }
}

/// Collects identifiers declared as unordered containers in a token stream:
/// `unordered_map<...> [&*const]* name` (members, locals, params alike).
void harvest_unordered(const std::vector<Token>& t, std::set<std::string>& names) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident) continue;
    const std::string& x = t[i].text;
    if (x != "unordered_map" && x != "unordered_set" && x != "unordered_multimap" &&
        x != "unordered_multiset")
      continue;
    std::size_t j = i + 1;
    if (is(t, j, "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const" || t[j].text == ">"))
      ++j;
    if (j < t.size() && t[j].ident) names.insert(t[j].text);
  }
}

void rule_unordered_iter(const FileModel& f, const std::set<std::string>& unordered_names,
                         std::vector<Diag>& out) {
  const auto& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i].text != "for" || !is(t, i + 1, "(")) continue;
    const std::size_t close = match_paren(t, i + 1);
    // Find the range-for ':' at top level (skip "::" pairs).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == ":" && depth == 0) {
        if (is(t, j + 1, ":") || (j > 0 && t[j - 1].text == ":")) continue;
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    if (range_contains_ident(t, colon + 1, close, unordered_names)) {
      out.push_back({t[i].line, "unordered-iter",
                     "range-for over an unordered container: hash order is not deterministic; "
                     "sort first or allow() with an order-insensitivity argument"});
    }
  }
}

void rule_hot_path_alloc(const FileModel& f, std::vector<Diag>& out) {
  if (!f.has_hot_regions()) return;
  static const std::set<std::string> kAllocCalls{"malloc", "calloc", "realloc", "strdup",
                                                 "aligned_alloc"};
  static const std::set<std::string> kGrowth{"push_back", "emplace_back", "push_front",
                                             "emplace_front", "resize", "reserve", "insert",
                                             "emplace", "append"};
  const auto& t = f.tokens();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || !f.hot(t[i].line)) continue;
    const bool call_like = i + 1 < t.size() && is(t, i + 1, "(");
    if (t[i].text == "new") {
      out.push_back(
          {t[i].line, "hot-path-alloc", "raw new in a hot-path region (steady state must not allocate)"});
    } else if (kAllocCalls.count(t[i].text) && call_like) {
      out.push_back({t[i].line, "hot-path-alloc",
                     t[i].text + "() in a hot-path region (steady state must not allocate)"});
    } else if (kGrowth.count(t[i].text) && call_like && i > 0 &&
               (t[i - 1].text == "." || (t[i - 1].text == ">" && i > 1 && t[i - 2].text == "-"))) {
      out.push_back({t[i].line, "hot-path-alloc",
                     "container ." + t[i].text + "() in a hot-path region may reallocate; "
                     "use the preallocated scratch surfaces"});
    }
  }
}

bool jsonl_adjacent(const FileModel& f) {
  std::string name = f.path().filename().string();
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  if (name.find("jsonl") != std::string::npos || name.find("results_io") != std::string::npos)
    return true;
  // Files that hand-build JSON records: look for an escaped "metrics" key in
  // a string literal.  (Built from pieces so this file doesn't match itself.)
  std::string needle = "\\\"metrics";
  needle += "\\\"";
  return f.raw().find(needle) != std::string::npos;
}

void rule_float_format(const FileModel& f, std::vector<Diag>& out) {
  if (!jsonl_adjacent(f)) return;
  const auto& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].ident && t[i].text == "to_string" && is(t, i + 1, "(")) {
      out.push_back({t[i].line, "float-format",
                     "std::to_string truncates doubles to 6 significant digits; use %.17g "
                     "(json_number) in JSONL-adjacent code"});
    }
  }
  for (const Literal& lit : f.literals()) {
    const std::string& s = lit.text;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      if (s[i] != '%') continue;
      if (s[i + 1] == '%') {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      bool has_precision = false;
      while (j < s.size() && (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '-' ||
                              s[j] == '+' || s[j] == ' ' || s[j] == '#' || s[j] == '*' ||
                              s[j] == '.' || s[j] == 'l' || s[j] == 'h')) {
        if (s[j] == '.') has_precision = true;
        ++j;
      }
      if (j < s.size() && std::strchr("gGeEfFaA", s[j]) && !has_precision) {
        out.push_back({lit.line, "float-format",
                       "printf float conversion without explicit precision in JSONL-adjacent "
                       "code; default 6 digits truncates gated metrics"});
      }
      i = j;
    }
  }
}

// ---------------------------------------------------------------------------
// Scan driver.
// ---------------------------------------------------------------------------

/// Scans one file; returns surviving (not-allowed) diagnostics, including
/// unused-allow hygiene findings, sorted by line.
std::vector<Diag> scan_file(const fs::path& path, bool* io_error = nullptr) {
  FileModel f;
  if (!f.load(path)) {
    if (io_error) *io_error = true;
    return {};
  }

  std::set<std::string> unordered_names;
  harvest_unordered(f.tokens(), unordered_names);
  // Members are routinely declared in the sibling header and iterated in the
  // .cpp; harvest the header's declarations too.
  if (path.extension() == ".cpp") {
    fs::path header = path;
    header.replace_extension(".h");
    FileModel h;
    if (fs::exists(header) && h.load(header)) harvest_unordered(h.tokens(), unordered_names);
  }

  std::vector<Diag> raw;
  rule_unchecked_parse(f, raw);
  rule_nondet_rand(f, raw);
  rule_nondet_seed(f, raw);
  rule_unordered_iter(f, unordered_names, raw);
  rule_hot_path_alloc(f, raw);
  rule_float_format(f, raw);

  auto& allows = f.allows();
  auto allowed = [&](const Diag& d) {
    for (std::size_t line : {d.line, d.line - 1}) {
      auto it = allows.find(line);
      if (it != allows.end() && it->second.rules.count(d.rule)) {
        it->second.used = true;
        return true;
      }
    }
    return false;
  };

  std::vector<Diag> out;
  for (const Diag& d : raw)
    if (!allowed(d)) out.push_back(d);

  for (const auto& [line, allow] : allows) {
    for (const std::string& rule : allow.rules) {
      if (!all_rules().count(rule)) {
        out.push_back({line, "unused-allow", "unknown rule '" + rule + "' in allow()"});
      }
    }
    if (!allow.used && !allow.rules.empty()) {
      bool known = false;
      for (const std::string& rule : allow.rules)
        if (all_rules().count(rule)) known = true;
      if (known)
        out.push_back({line, "unused-allow",
                       "allow() suppressed nothing; delete the stale suppression"});
    }
  }

  std::sort(out.begin(), out.end(), [](const Diag& a, const Diag& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h";
}

std::vector<fs::path> collect_files(const std::vector<std::string>& roots, bool* io_error) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && scannable(e.path())) files.push_back(e.path());
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "oal_lint: no such file or directory: %s\n", root.c_str());
      *io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_scan(const std::vector<std::string>& roots) {
  bool io_error = false;
  const auto files = collect_files(roots, &io_error);
  std::size_t violations = 0;
  for (const fs::path& file : files) {
    bool file_error = false;
    for (const Diag& d : scan_file(file, &file_error)) {
      std::printf("%s:%zu: [%s] %s\n", file.string().c_str(), d.line, d.rule.c_str(),
                  d.message.c_str());
      ++violations;
    }
    io_error |= file_error;
  }
  if (io_error) return 2;
  if (violations) {
    std::printf("oal_lint: %zu violation%s in %zu files scanned\n", violations,
                violations == 1 ? "" : "s", files.size());
    return 1;
  }
  std::printf("oal_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: fixtures declare expected diagnostics in lint-expect headers.
// ---------------------------------------------------------------------------

std::map<std::string, std::size_t> parse_expectations(const fs::path& file) {
  std::map<std::string, std::size_t> expect;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t pos = line.find("lint-expect:");
    if (pos == std::string::npos) continue;
    std::istringstream rest(line.substr(pos + 12));
    std::string item;
    while (rest >> item) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) continue;
      // Fixture headers are first-party: a garbage count parses to 0 and
      // fails the exact-match comparison below, so no end-pointer check.
      // oal-lint: allow(unchecked-parse)
      const unsigned long n = std::strtoul(item.substr(eq + 1).c_str(), nullptr, 10);
      expect[item.substr(0, eq)] += static_cast<std::size_t>(n);
    }
  }
  return expect;
}

int run_selftest(const std::string& dir) {
  bool io_error = false;
  const auto files = collect_files({dir}, &io_error);
  if (io_error || files.empty()) {
    std::fprintf(stderr, "oal_lint: no fixtures under %s\n", dir.c_str());
    return 2;
  }
  std::size_t failures = 0;
  for (const fs::path& file : files) {
    const auto expect = parse_expectations(file);
    for (const auto& [rule, n] : expect) {
      if (!all_rules().count(rule)) {
        std::printf("FAIL %s: lint-expect names unknown rule '%s'\n", file.string().c_str(),
                    rule.c_str());
        ++failures;
      }
      (void)n;
    }
    std::map<std::string, std::size_t> got;
    for (const Diag& d : scan_file(file)) ++got[d.rule];
    bool ok = got.size() == expect.size();
    for (const auto& [rule, n] : expect)
      if (!got.count(rule) || got.at(rule) != n) ok = false;
    if (ok) {
      std::printf("PASS %s\n", file.string().c_str());
      continue;
    }
    ++failures;
    std::printf("FAIL %s\n", file.string().c_str());
    for (const auto& [rule, n] : expect)
      std::printf("  expected %s=%zu, got %zu\n", rule.c_str(), n,
                  got.count(rule) ? got.at(rule) : 0);
    for (const auto& [rule, n] : got)
      if (!expect.count(rule)) std::printf("  unexpected %s=%zu\n", rule.c_str(), n);
  }
  std::printf("oal_lint selftest: %zu fixtures, %zu failure%s\n", files.size(), failures,
              failures == 1 ? "" : "s");
  return failures ? 1 : 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: oal_lint <file-or-dir>...      scan (exit 1 on violations)\n"
               "       oal_lint --selftest <dir>      run the fixture suite\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 2;
  }
  if (args[0] == "--selftest") {
    if (args.size() != 2) {
      usage();
      return 2;
    }
    return run_selftest(args[1]);
  }
  for (const std::string& a : args) {
    if (a.size() >= 2 && a[0] == '-') {
      std::fprintf(stderr, "oal_lint: unknown option '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }
  return run_scan(args);
}
