// CLI wrapper over core::compare_jsonl: diff two `--json` bench outputs and
// fail (exit 1) on metric drift beyond tolerance.  CI runs it against a
// checked-in baseline so bench metrics cannot silently regress.
//
// Usage: jsonl_compare <baseline.jsonl> <current.jsonl>
//                      [--rel-tol <frac>] [--abs-tol <v>]
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/jsonl_compare.h"

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  oal::core::JsonlCompareOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "jsonl_compare: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rel-tol") {
      opts.rel_tol = std::atof(value());
    } else if (arg == "--abs-tol") {
      opts.abs_tol = std::atof(value());
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: jsonl_compare <baseline.jsonl> <current.jsonl> "
                "[--rel-tol <frac>] [--abs-tol <v>]");
      return 0;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "jsonl_compare: unexpected argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "usage: jsonl_compare <baseline.jsonl> <current.jsonl> "
                         "[--rel-tol <frac>] [--abs-tol <v>]\n");
    return 2;
  }

  try {
    const auto baseline = oal::core::read_jsonl_file(baseline_path);
    const auto current = oal::core::read_jsonl_file(current_path);
    const auto res = oal::core::compare_jsonl(baseline, current, opts);
    std::printf("jsonl_compare: %zu records, %zu metrics compared (rel_tol %.3g, abs_tol %.3g)\n",
                res.records_compared, res.metrics_compared, opts.rel_tol, opts.abs_tol);
    if (res.records_only_in_current > 0)
      std::printf("  note: %zu record(s) only in current (not gated; refresh the baseline to "
                  "track them)\n",
                  res.records_only_in_current);
    for (const auto& issue : res.issues) std::printf("  REGRESSION: %s\n", issue.c_str());
    if (!res.ok()) {
      std::printf("jsonl_compare: FAIL (%zu issues)\n", res.issues.size());
      return 1;
    }
    std::puts("jsonl_compare: OK");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsonl_compare: %s\n", e.what());
    return 2;
  }
}
