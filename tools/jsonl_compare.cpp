// CLI wrapper over core::compare_jsonl: diff two `--json` bench outputs and
// fail (exit 1) on metric drift beyond tolerance.  CI runs it against a
// checked-in baseline so bench metrics cannot silently regress.
//
// Usage: jsonl_compare <baseline.jsonl> <current.jsonl>
//                      [--rel-tol <frac>] [--abs-tol <v>]
//                      [--metrics <name[,name|prefix*...]>]
//                      [--metric-rel-tol <name>=<frac>]...
//                      [--metric-abs-tol <name>=<v>]...
//
// --metrics gates only the named metrics (a trailing '*' matches by prefix),
// so benches with chaotic metrics can check in baselines for their stable
// subset; the per-metric tolerance flags loosen (or tighten) single metrics
// without widening the whole gate.  Unknown metric names are errors.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/jsonl_compare.h"

namespace {

constexpr const char* kUsage =
    "usage: jsonl_compare <baseline.jsonl> <current.jsonl> "
    "[--rel-tol <frac>] [--abs-tol <v>] [--metrics <name[,name|prefix*...]>] "
    "[--metric-rel-tol <name>=<frac>]... [--metric-abs-tol <name>=<v>]...";

/// Parses a tolerance; exits 2 on non-numeric input (atof would silently
/// turn a typo into 0.0 — a near-exact gate where a looser one was meant).
double tolerance_value(const std::string& flag, const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "jsonl_compare: %s expects a number, got '%s'\n", flag.c_str(), text);
    std::exit(2);
  }
  return v;
}

/// Splits "name=value"; exits 2 on a missing '=', an empty name, or a
/// non-numeric value.
std::pair<std::string, double> name_value(const std::string& flag, const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::fprintf(stderr, "jsonl_compare: %s expects <name>=<value>, got '%s'\n", flag.c_str(),
                 arg.c_str());
    std::exit(2);
  }
  return {arg.substr(0, eq), tolerance_value(flag, arg.c_str() + eq + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  oal::core::JsonlCompareOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "jsonl_compare: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rel-tol") {
      opts.rel_tol = tolerance_value(arg, value());
    } else if (arg == "--abs-tol") {
      opts.abs_tol = tolerance_value(arg, value());
    } else if (arg == "--metrics") {
      // Comma-separated names/prefixes, accumulated across repeats.
      std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string elem =
            list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!elem.empty()) opts.metrics.push_back(elem);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (opts.metrics.empty()) {
        std::fprintf(stderr, "jsonl_compare: --metrics requires at least one metric name\n");
        return 2;
      }
    } else if (arg == "--metric-rel-tol") {
      const auto [name, tol] = name_value(arg, value());
      opts.rel_tol_for[name] = tol;
    } else if (arg == "--metric-abs-tol") {
      const auto [name, tol] = name_value(arg, value());
      opts.abs_tol_for[name] = tol;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "jsonl_compare: unknown flag '%s'\n%s\n", arg.c_str(), kUsage);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "jsonl_compare: unexpected argument '%s'\n%s\n", arg.c_str(), kUsage);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  try {
    const auto baseline = oal::core::read_jsonl_file(baseline_path);
    const auto current = oal::core::read_jsonl_file(current_path);
    const auto res = oal::core::compare_jsonl(baseline, current, opts);
    std::printf("jsonl_compare: %zu records, %zu metrics compared (rel_tol %.3g, abs_tol %.3g)\n",
                res.records_compared, res.metrics_compared, opts.rel_tol, opts.abs_tol);
    if (res.records_only_in_current > 0)
      std::printf("  note: %zu record(s) only in current (not gated; refresh the baseline to "
                  "track them)\n",
                  res.records_only_in_current);
    for (const auto& issue : res.issues) std::printf("  REGRESSION: %s\n", issue.c_str());
    if (!res.ok()) {
      std::printf("jsonl_compare: FAIL (%zu issues)\n", res.issues.size());
      return 1;
    }
    std::puts("jsonl_compare: OK");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsonl_compare: %s\n", e.what());
    return 2;
  }
}
