// Inspect CLI for the persistent artifact store (core::ArtifactStore).
// CI runs `stat` after the warm-store bench pass (a quick inventory in the
// log) and `verify` to fail the job if any store file is corrupt.
//
// Usage: artifact_store <dir> <list|stat|verify|gc>
//   list    one line per file: name, kind, entries, bytes, status
//   stat    aggregate totals (files, oracle entries, blob doubles, bytes)
//   verify  exit 1 if any file is invalid (prints the offenders)
//   gc      delete invalid files (leftover temp files included)
//
// `<dir>` is created if missing (an empty store is valid and stats to
// zeroes), matching the bench drivers' `--store` behavior.
#include <cstdio>
#include <exception>
#include <string>

#include "core/artifact_store.h"

namespace {

constexpr const char* kUsage = "usage: artifact_store <dir> <list|stat|verify|gc>";

const char* kind_name(std::uint32_t kind) {
  switch (kind) {
    case oal::core::ArtifactStore::kKindOracle:
      return "oracle";
    case oal::core::ArtifactStore::kKindBlob:
      return "blob";
    default:
      return "unknown";
  }
}

int cmd_list(const oal::core::ArtifactStore& store) {
  for (const auto& f : store.inspect()) {
    std::printf("%-40s %-8s %8llu entries %10llu bytes  %s\n", f.name.c_str(),
                kind_name(f.kind), static_cast<unsigned long long>(f.payload_entries),
                static_cast<unsigned long long>(f.bytes),
                f.valid ? "ok" : f.detail.c_str());
  }
  return 0;
}

int cmd_stat(const oal::core::ArtifactStore& store) {
  std::size_t files = 0, invalid = 0;
  unsigned long long oracle_entries = 0, blob_doubles = 0, bytes = 0;
  for (const auto& f : store.inspect()) {
    ++files;
    bytes += f.bytes;
    if (!f.valid) {
      ++invalid;
      continue;
    }
    if (f.kind == oal::core::ArtifactStore::kKindOracle)
      oracle_entries += f.payload_entries;
    else if (f.kind == oal::core::ArtifactStore::kKindBlob)
      blob_doubles += f.payload_entries;
  }
  std::printf("store: %s\n", store.dir().c_str());
  std::printf("files: %zu (%zu invalid)\n", files, invalid);
  std::printf("oracle entries: %llu\n", oracle_entries);
  std::printf("blob doubles: %llu\n", blob_doubles);
  std::printf("total bytes: %llu\n", bytes);
  return 0;
}

int cmd_verify(const oal::core::ArtifactStore& store) {
  std::size_t bad = 0;
  for (const auto& f : store.inspect()) {
    if (f.valid) continue;
    ++bad;
    std::fprintf(stderr, "artifact_store: %s: %s\n", f.name.c_str(), f.detail.c_str());
  }
  if (bad) {
    std::fprintf(stderr, "artifact_store: %zu invalid file(s)\n", bad);
    return 1;
  }
  std::puts("all store files valid");
  return 0;
}

int cmd_gc(oal::core::ArtifactStore& store) {
  std::printf("removed %zu invalid file(s)\n", store.gc());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }
  const std::string command = argv[2];
  try {
    oal::core::ArtifactStore store(argv[1]);
    if (command == "list") return cmd_list(store);
    if (command == "stat") return cmd_stat(store);
    if (command == "verify") return cmd_verify(store);
    if (command == "gc") return cmd_gc(store);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "artifact_store: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "artifact_store: unknown command '%s'\n%s\n", command.c_str(), kUsage);
  return 2;
}
