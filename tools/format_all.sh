#!/usr/bin/env sh
# Normalize (or, with --check, verify) every tracked C++ file against the
# repo .clang-format.  CI runs `tools/format_all.sh --check`; run the script
# with no arguments before committing to fix everything in place.
#
# --lint runs the repo's oal_lint invariant checker (self-test fixtures plus
# the full src/bench/tools/examples scan) instead of clang-format.  It uses
# the binary at $OAL_LINT, or build/oal_lint, building that target first if
# a build directory is configured.
#
# Usage: tools/format_all.sh [--check | --lint] [clang-format-binary]
set -eu

cd "$(dirname "$0")/.."

mode=fix
binary=clang-format
for arg in "$@"; do
  case "$arg" in
    --check) mode=check ;;
    --lint) mode=lint ;;
    *) binary="$arg" ;;
  esac
done

if [ "$mode" = lint ]; then
  lint="${OAL_LINT:-build/oal_lint}"
  if [ ! -x "$lint" ] && [ -d build ]; then
    cmake --build build --target oal_lint > /dev/null
  fi
  if [ ! -x "$lint" ]; then
    echo "format_all.sh: '$lint' not built (configure a build dir or set OAL_LINT)" >&2
    exit 2
  fi
  "$lint" --selftest tests/lint_fixtures
  exec "$lint" src bench tools examples
fi

if ! command -v "$binary" > /dev/null 2>&1; then
  echo "format_all.sh: '$binary' not found on PATH" >&2
  exit 2
fi

files="$(git ls-files 'src/*.h' 'src/*.cpp' 'src/**/*.h' 'src/**/*.cpp' \
         'tests/*.cpp' 'bench/*.h' 'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp')"
if [ -z "$files" ]; then
  echo "format_all.sh: no tracked C++ files found" >&2
  exit 2
fi

if [ "$mode" = check ]; then
  echo "$files" | xargs "$binary" --dry-run -Werror
  echo "format_all.sh: $(echo "$files" | wc -l) files clean"
else
  echo "$files" | xargs "$binary" -i
  echo "format_all.sh: formatted $(echo "$files" | wc -l) files"
fi
