#!/usr/bin/env sh
# Normalize (or, with --check, verify) every tracked C++ file against the
# repo .clang-format.  CI runs `tools/format_all.sh --check`; run the script
# with no arguments before committing to fix everything in place.
#
# Usage: tools/format_all.sh [--check] [clang-format-binary]
set -eu

cd "$(dirname "$0")/.."

mode=fix
binary=clang-format
for arg in "$@"; do
  case "$arg" in
    --check) mode=check ;;
    *) binary="$arg" ;;
  esac
done

if ! command -v "$binary" > /dev/null 2>&1; then
  echo "format_all.sh: '$binary' not found on PATH" >&2
  exit 2
fi

files="$(git ls-files 'src/*.h' 'src/*.cpp' 'src/**/*.h' 'src/**/*.cpp' \
         'tests/*.cpp' 'bench/*.h' 'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp')"
if [ -z "$files" ]; then
  echo "format_all.sh: no tracked C++ files found" >&2
  exit 2
fi

if [ "$mode" = check ]; then
  echo "$files" | xargs "$binary" --dry-run -Werror
  echo "format_all.sh: $(echo "$files" | wc -l) files clean"
else
  echo "$files" | xargs "$binary" -i
  echo "format_all.sh: formatted $(echo "$files" | wc -l) files"
fi
