// Integrated-GPU subsystem model (Intel Core i5 class).
//
// Substitutes for the paper's Intel integrated-GPU platform in the ENMPC
// study (Fig. 5) and the Minnowboard GPU of the frame-time-prediction study
// (Fig. 2).  The model exposes the two control knobs of the paper with their
// different actuation granularities:
//   * operating frequency/voltage (fast: per frame), and
//   * number of power-gated slices (slow: costs time + energy to change).
//
// Per frame: compute time scales with 1/(f * slice-efficiency); exposed
// memory time is frequency-independent; the GPU races to the FPS deadline
// and idles (clock-gated) for the remainder of the period.  Energy is
// accounted at three scopes matching Fig. 5's bars: GPU, PKG (GPU + CPU +
// uncore) and PKG+DRAM.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gpu/frame.h"

namespace oal::gpu {

struct GpuConfig {
  int freq_idx = 0;   ///< index into GpuParams::freqs_mhz
  int num_slices = 1; ///< active slices, 1..max_slices

  // Not `= default`: defaulted comparisons need C++20 and this builds as C++17.
  bool operator==(const GpuConfig& o) const {
    return freq_idx == o.freq_idx && num_slices == o.num_slices;
  }
  bool operator!=(const GpuConfig& o) const { return !(*this == o); }
};

struct GpuParams {
  std::vector<double> freqs_mhz{300, 350, 400, 450, 500, 550, 600, 650,
                                700, 750, 800, 850, 900, 950, 1000, 1050, 1100, 1150};
  int max_slices = 4;
  // Voltage curve endpoints (V).
  double v_min = 0.65, v_max = 1.05;
  // Dynamic energy: effective switched capacitance per slice (nF).
  double ceff_slice_nf = 1.10;
  // Leakage per active slice (W per volt).
  double leak_slice_w_per_v = 0.22;
  // GPU uncore (front end, display) power (W).
  double gpu_base_w = 0.12;
  // Idle (clock-gated but not power-gated) fraction of active dynamic power.
  double idle_dyn_fraction = 0.06;
  // Multi-slice scaling penalty.
  double slice_sync_overhead = 0.07;
  // Memory subsystem.
  double mem_bw_gbps = 12.0;
  double dram_energy_nj_per_byte = 0.06;
  double dram_static_w = 0.25;
  // CPU + rest of package (producer side).
  double cpu_freq_ghz = 2.4;
  double cpu_dyn_w_at_busy = 2.4;  ///< CPU power when 100% busy
  double pkg_base_w = 0.55;        ///< uncore/rail power in PKG scope
  // Actuation overheads (paper: slice changes are slow and costly).
  double dvfs_transition_us = 20.0;
  double dvfs_transition_energy_mj = 0.02;
  double slice_transition_ms = 1.5;
  double slice_transition_energy_mj = 1.2;
  // Measurement noise.
  double time_noise = 0.01;
  double power_noise = 0.015;
};

/// Per-frame execution result at one configuration.
struct FrameResult {
  double frame_time_s = 0.0;     ///< render completion time (excl. idle)
  bool deadline_met = true;      ///< frame_time <= period
  double gpu_busy_frac = 0.0;    ///< frame_time / period (clamped to 1)
  // Energies over one full period (busy + idle until the deadline).
  double gpu_energy_j = 0.0;
  double pkg_energy_j = 0.0;     ///< gpu + cpu + package base
  double pkg_dram_energy_j = 0.0;
  // Observables for online models.
  double busy_cycles = 0.0;
  double mem_bytes = 0.0;
  double avg_gpu_power_w = 0.0;
};

class GpuPlatform {
 public:
  explicit GpuPlatform(GpuParams params = {}, std::uint64_t noise_seed = 77);

  const GpuParams& params() const { return params_; }
  std::size_t num_freqs() const { return params_.freqs_mhz.size(); }
  double freq_mhz(int idx) const { return params_.freqs_mhz.at(static_cast<std::size_t>(idx)); }
  double voltage(double f_mhz) const;
  bool valid(const GpuConfig& c) const;

  /// Noise-free ground truth for one frame at one configuration, accounted
  /// over a deadline period of `period_s` seconds.
  FrameResult render_ideal(const FrameDescriptor& f, const GpuConfig& c, double period_s) const;

  /// Ground truth + measurement noise; advances the noise RNG.
  FrameResult render(const FrameDescriptor& f, const GpuConfig& c, double period_s);

  /// Energy + time penalty for switching configurations (charged by runners
  /// when a controller changes freq and/or slice count).
  struct TransitionCost {
    double time_s = 0.0;
    double energy_j = 0.0;
  };
  TransitionCost transition_cost(const GpuConfig& from, const GpuConfig& to) const;

  /// Exhaustive minimum-(scope)-energy config meeting the deadline; used as
  /// the optimization reference in tests.  scope: 0=GPU, 1=PKG, 2=PKG+DRAM.
  GpuConfig best_config(const FrameDescriptor& f, double period_s, int scope = 0) const;

 private:
  GpuParams params_;
  common::Rng noise_rng_;
};

}  // namespace oal::gpu
