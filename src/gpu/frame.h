// Graphics frame descriptor.
//
// Deadline-driven graphics workloads (paper Section IV-B) are sequences of
// frames; each frame carries configuration-independent work descriptors from
// which the GPU platform model derives frame time, power and energy for any
// (slice count, frequency) setting.
#pragma once

#include <cstdint>

namespace oal::gpu {

struct FrameDescriptor {
  /// GPU shader/raster work in cycles on a single slice at unit efficiency.
  double render_cycles = 4.0e6;
  /// Memory traffic for the frame (bytes: textures, render targets).
  double mem_bytes = 8.0e6;
  /// CPU-side driver + game-logic work for this frame (cycles on one core).
  double cpu_cycles = 2.0e6;
  /// Fraction of memory time not hidden behind compute.
  double mem_exposed = 0.30;

  std::uint32_t workload_id = 0;
};

}  // namespace oal::gpu
