#include "gpu/gpu_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace oal::gpu {

GpuPlatform::GpuPlatform(GpuParams params, std::uint64_t noise_seed)
    : params_(params), noise_rng_(noise_seed) {
  if (params_.freqs_mhz.empty()) throw std::invalid_argument("GpuPlatform: empty frequency table");
  if (params_.max_slices < 1) throw std::invalid_argument("GpuPlatform: max_slices < 1");
}

double GpuPlatform::voltage(double f_mhz) const {
  const double lo = params_.freqs_mhz.front();
  const double hi = params_.freqs_mhz.back();
  const double t = (f_mhz - lo) / (hi - lo);
  return params_.v_min + t * (params_.v_max - params_.v_min);
}

bool GpuPlatform::valid(const GpuConfig& c) const {
  return c.freq_idx >= 0 && c.freq_idx < static_cast<int>(params_.freqs_mhz.size()) &&
         c.num_slices >= 1 && c.num_slices <= params_.max_slices;
}

FrameResult GpuPlatform::render_ideal(const FrameDescriptor& f, const GpuConfig& c,
                                      double period_s) const {
  if (!valid(c)) throw std::invalid_argument("GpuPlatform::render_ideal: invalid config");
  if (period_s <= 0.0) throw std::invalid_argument("GpuPlatform::render_ideal: bad period");
  const double freq = freq_mhz(c.freq_idx) * 1e6;  // Hz
  const double n = static_cast<double>(c.num_slices);
  const double eff = n / (1.0 + params_.slice_sync_overhead * (n - 1.0));

  const double t_compute = f.render_cycles / (freq * eff);
  const double t_mem = f.mem_bytes / (params_.mem_bw_gbps * 1e9);
  const double frame_time = t_compute + f.mem_exposed * t_mem;

  const bool met = frame_time <= period_s;
  // A missed frame still occupies the whole next-vsync slot; busy time is
  // capped at the (extended) completion time for energy accounting.
  const double busy = std::min(frame_time, period_s);
  const double idle = std::max(period_s - frame_time, 0.0);

  const double v = voltage(freq_mhz(c.freq_idx));
  const double p_dyn = params_.ceff_slice_nf * 1e-9 * v * v * freq * n;
  const double p_leak = params_.leak_slice_w_per_v * v * n;
  const double p_active = p_dyn + p_leak + params_.gpu_base_w;
  const double p_idle = params_.idle_dyn_fraction * p_dyn + p_leak + params_.gpu_base_w;

  FrameResult r;
  r.frame_time_s = frame_time;
  r.deadline_met = met;
  r.gpu_busy_frac = std::min(frame_time / period_s, 1.0);
  r.gpu_energy_j = p_active * busy + p_idle * idle;

  // CPU producer: game logic + driver work each period, then cpuidle.
  const double t_cpu = f.cpu_cycles / (params_.cpu_freq_ghz * 1e9);
  const double cpu_energy = params_.cpu_dyn_w_at_busy * std::min(t_cpu, period_s);
  r.pkg_energy_j = r.gpu_energy_j + cpu_energy + params_.pkg_base_w * period_s;

  const double dram_energy =
      f.mem_bytes * params_.dram_energy_nj_per_byte * 1e-9 + params_.dram_static_w * period_s;
  r.pkg_dram_energy_j = r.pkg_energy_j + dram_energy;

  r.busy_cycles = f.render_cycles / eff;
  r.mem_bytes = f.mem_bytes;
  r.avg_gpu_power_w = r.gpu_energy_j / period_s;
  return r;
}

FrameResult GpuPlatform::render(const FrameDescriptor& f, const GpuConfig& c, double period_s) {
  FrameResult r = render_ideal(f, c, period_s);
  auto noisy = [&](double v, double sigma) {
    return v * std::max(1.0 + sigma * noise_rng_.normal(), 0.0);
  };
  r.frame_time_s = noisy(r.frame_time_s, params_.time_noise);
  r.deadline_met = r.frame_time_s <= period_s;
  r.gpu_busy_frac = std::min(r.frame_time_s / period_s, 1.0);
  r.gpu_energy_j = noisy(r.gpu_energy_j, params_.power_noise);
  r.pkg_energy_j = noisy(r.pkg_energy_j, params_.power_noise);
  r.pkg_dram_energy_j = noisy(r.pkg_dram_energy_j, params_.power_noise);
  r.busy_cycles = noisy(r.busy_cycles, params_.time_noise);
  r.avg_gpu_power_w = r.gpu_energy_j / period_s;
  return r;
}

GpuPlatform::TransitionCost GpuPlatform::transition_cost(const GpuConfig& from,
                                                         const GpuConfig& to) const {
  TransitionCost t;
  if (from.freq_idx != to.freq_idx) {
    t.time_s += params_.dvfs_transition_us * 1e-6;
    t.energy_j += params_.dvfs_transition_energy_mj * 1e-3;
  }
  if (from.num_slices != to.num_slices) {
    t.time_s += params_.slice_transition_ms * 1e-3;
    t.energy_j += params_.slice_transition_energy_mj * 1e-3;
  }
  return t;
}

GpuConfig GpuPlatform::best_config(const FrameDescriptor& f, double period_s, int scope) const {
  GpuConfig best{static_cast<int>(params_.freqs_mhz.size()) - 1, params_.max_slices};
  double best_e = std::numeric_limits<double>::infinity();
  bool any_met = false;
  for (int s = 1; s <= params_.max_slices; ++s) {
    for (int fi = 0; fi < static_cast<int>(params_.freqs_mhz.size()); ++fi) {
      const GpuConfig c{fi, s};
      const FrameResult r = render_ideal(f, c, period_s);
      const double e = scope == 0 ? r.gpu_energy_j : scope == 1 ? r.pkg_energy_j
                                                                : r.pkg_dram_energy_j;
      if (r.deadline_met) {
        if (!any_met || e < best_e) {
          any_met = true;
          best_e = e;
          best = c;
        }
      } else if (!any_met) {
        // No feasible config yet: fall back to the fastest (min frame time).
        const FrameResult rb = render_ideal(f, best, period_s);
        if (r.frame_time_s < rb.frame_time_s) best = c;
      }
    }
  }
  return best;
}

}  // namespace oal::gpu
