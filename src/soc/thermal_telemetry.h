// Read-only thermal telemetry published to runtime controllers.
//
// When a thermal budgeter (soc::ThermalSocAdapter) is bound to a DrmRunner,
// the runner forwards a ThermalTelemetry snapshot to the controller before
// every decision — the same sensor/budget state a kernel governor would read
// from sysfs.  Thermally-blind controllers ignore it (the default), so a
// bound telemetry source never perturbs their decisions; thermal-aware
// controllers fold it into their policy state and candidate search so they
// can learn to avoid the budget clamp instead of fighting it.
//
// The default-constructed value is the *neutral* snapshot (cool device, no
// active budget): offline training data collected without a thermal adapter
// uses it, so blind and aware feature pipelines share one code path.
#pragma once

namespace oal::soc {

struct ThermalTelemetry {
  /// True when a budgeter is actively constraining decisions; false for the
  /// neutral (unconstrained) snapshot.
  bool constrained = false;
  double junction_c = 25.0;        ///< hottest silicon-node temperature
  double skin_c = 25.0;            ///< device skin temperature
  double junction_limit_c = 85.0;  ///< junction throttle limit
  double skin_limit_c = 45.0;      ///< skin throttle limit
  double ambient_c = 25.0;
  /// Current power budget (W).  kUnconstrainedBudgetW when no budget binds.
  double budget_w = kUnconstrainedBudgetW;
  /// Total power observed over the last executed snippet (W).
  double last_power_w = 0.0;

  /// Neutral budget stand-in: comfortably above any reachable configuration
  /// of the modeled platforms, so "no budget" and "slack budget" share one
  /// representation.
  static constexpr double kUnconstrainedBudgetW = 8.0;

  /// Remaining power headroom under the budget (may be negative while the
  /// budgeter is still throttling toward a freshly tightened budget).
  double headroom_w() const { return budget_w - last_power_w; }
};

}  // namespace oal::soc
