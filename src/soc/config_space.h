// SoC configuration space.
//
// The paper's running example is the Samsung Exynos 5422 (Odroid-XU3):
// a big.LITTLE SoC whose runtime-controllable knobs are
//   - number of active LITTLE cores   (1..4)
//   - number of active big cores      (0..4)
//   - LITTLE cluster frequency        (200..1400 MHz in 100 MHz steps, 13 levels)
//   - big cluster frequency           (200..2000 MHz in 100 MHz steps, 19 levels)
// giving 4 * 5 * 13 * 19 = 4940 unique configurations — the exact number the
// paper quotes.  This file defines the configuration value type and an
// enumerable/indexable description of the space, including the local
// neighborhoods used by the online-IL candidate search.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oal::soc {

struct SocConfig {
  int num_little = 4;      ///< active LITTLE cores, 1..4
  int num_big = 4;         ///< active big cores, 0..4
  int little_freq_idx = 0; ///< index into ConfigSpace::little_freqs()
  int big_freq_idx = 0;    ///< index into ConfigSpace::big_freqs()

  // Not `= default`: defaulted comparisons need C++20 and this builds as C++17.
  bool operator==(const SocConfig& o) const {
    return num_little == o.num_little && num_big == o.num_big &&
           little_freq_idx == o.little_freq_idx && big_freq_idx == o.big_freq_idx;
  }
  bool operator!=(const SocConfig& o) const { return !(*this == o); }
};

class ConfigSpace {
 public:
  ConfigSpace();

  std::size_t size() const { return size_; }

  /// Frequency tables in MHz.
  const std::vector<double>& little_freqs() const { return little_freqs_; }
  const std::vector<double>& big_freqs() const { return big_freqs_; }

  double little_freq_mhz(const SocConfig& c) const { return little_freqs_[c.little_freq_idx]; }
  double big_freq_mhz(const SocConfig& c) const { return big_freqs_[c.big_freq_idx]; }

  /// Bijection between configurations and [0, size).
  std::size_t index_of(const SocConfig& c) const;
  SocConfig config_at(std::size_t index) const;

  /// True if every knob is within its legal range.
  bool valid(const SocConfig& c) const;

  /// All configurations (size() == 4940 entries).
  std::vector<SocConfig> enumerate() const;

  /// Configurations whose knob indices each differ by at most `radius` steps
  /// from `c`, with at most `max_changed_knobs` knobs changed simultaneously.
  /// Includes `c` itself.  This is the candidate set of the online-IL search.
  std::vector<SocConfig> neighborhood(const SocConfig& c, int radius = 1,
                                      int max_changed_knobs = 4) const;
  /// Same candidate set built into a caller-owned buffer (cleared first, so
  /// a reused buffer's capacity is recycled and the per-decision search does
  /// not allocate once warmed up).  Identical contents and order.
  void neighborhood_into(const SocConfig& c, int radius, int max_changed_knobs,
                         std::vector<SocConfig>& out) const;

  /// Per-cluster joint sweeps: all (core count, frequency) pairs of one
  /// cluster while the other cluster either stays at `c` or is parked in its
  /// idle role (gated big cluster / one idle-speed little core).  A cluster's
  /// core count and frequency form one logical decision (e.g. "enable the
  /// big cluster at 1.3 GHz"), and single-knob moves cannot cross the energy
  /// valley between cluster-off and cluster-on-at-speed; the exclusive
  /// variants additionally make canonical "little-only"/"big-only" operating
  /// points reachable in one move.  2*(4*13) + 2*(5*19) = 294 configs.
  std::vector<SocConfig> cluster_sweeps(const SocConfig& c) const;
  /// Buffer-reusing form of cluster_sweeps (see neighborhood_into).
  void cluster_sweeps_into(const SocConfig& c, std::vector<SocConfig>& out) const;

  /// Number of levels per knob, in order (little cores, big cores, f_little,
  /// f_big) — used to size policy heads.
  std::vector<std::size_t> knob_cardinalities() const;

  static std::string to_string(const SocConfig& c);

 private:
  std::vector<double> little_freqs_;
  std::vector<double> big_freqs_;
  std::size_t size_;
};

}  // namespace oal::soc
