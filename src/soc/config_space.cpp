#include "soc/config_space.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace oal::soc {

ConfigSpace::ConfigSpace() {
  for (int f = 200; f <= 1400; f += 100) little_freqs_.push_back(static_cast<double>(f));
  for (int f = 200; f <= 2000; f += 100) big_freqs_.push_back(static_cast<double>(f));
  size_ = 4ull * 5ull * little_freqs_.size() * big_freqs_.size();
}

bool ConfigSpace::valid(const SocConfig& c) const {
  return c.num_little >= 1 && c.num_little <= 4 && c.num_big >= 0 && c.num_big <= 4 &&
         c.little_freq_idx >= 0 && c.little_freq_idx < static_cast<int>(little_freqs_.size()) &&
         c.big_freq_idx >= 0 && c.big_freq_idx < static_cast<int>(big_freqs_.size());
}

std::size_t ConfigSpace::index_of(const SocConfig& c) const {
  if (!valid(c)) throw std::invalid_argument("ConfigSpace::index_of: invalid config");
  const std::size_t nl = static_cast<std::size_t>(c.num_little - 1);  // 0..3
  const std::size_t nb = static_cast<std::size_t>(c.num_big);         // 0..4
  const std::size_t fl = static_cast<std::size_t>(c.little_freq_idx);
  const std::size_t fb = static_cast<std::size_t>(c.big_freq_idx);
  return ((nl * 5 + nb) * little_freqs_.size() + fl) * big_freqs_.size() + fb;
}

SocConfig ConfigSpace::config_at(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("ConfigSpace::config_at: index out of range");
  SocConfig c;
  c.big_freq_idx = static_cast<int>(index % big_freqs_.size());
  index /= big_freqs_.size();
  c.little_freq_idx = static_cast<int>(index % little_freqs_.size());
  index /= little_freqs_.size();
  c.num_big = static_cast<int>(index % 5);
  index /= 5;
  c.num_little = static_cast<int>(index) + 1;
  return c;
}

std::vector<SocConfig> ConfigSpace::enumerate() const {
  std::vector<SocConfig> all;
  all.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) all.push_back(config_at(i));
  return all;
}

std::vector<SocConfig> ConfigSpace::neighborhood(const SocConfig& c, int radius,
                                                 int max_changed_knobs) const {
  std::vector<SocConfig> result;
  neighborhood_into(c, radius, max_changed_knobs, result);
  return result;
}

void ConfigSpace::neighborhood_into(const SocConfig& c, int radius, int max_changed_knobs,
                                    std::vector<SocConfig>& result) const {
  if (!valid(c)) throw std::invalid_argument("ConfigSpace::neighborhood: invalid config");
  result.clear();
  for (int dl = -radius; dl <= radius; ++dl) {
    for (int db = -radius; db <= radius; ++db) {
      for (int dfl = -radius; dfl <= radius; ++dfl) {
        for (int dfb = -radius; dfb <= radius; ++dfb) {
          const int changed = (dl != 0) + (db != 0) + (dfl != 0) + (dfb != 0);
          if (changed > max_changed_knobs) continue;
          SocConfig n{c.num_little + dl, c.num_big + db, c.little_freq_idx + dfl,
                      c.big_freq_idx + dfb};
          if (valid(n)) result.push_back(n);
        }
      }
    }
  }
}

std::vector<SocConfig> ConfigSpace::cluster_sweeps(const SocConfig& c) const {
  std::vector<SocConfig> result;
  cluster_sweeps_into(c, result);
  return result;
}

void ConfigSpace::cluster_sweeps_into(const SocConfig& c, std::vector<SocConfig>& result) const {
  if (!valid(c)) throw std::invalid_argument("ConfigSpace::cluster_sweeps: invalid config");
  result.clear();
  result.reserve(2 * (4 * little_freqs_.size() + 5 * big_freqs_.size()));
  for (int nl = 1; nl <= 4; ++nl) {
    for (int fl = 0; fl < static_cast<int>(little_freqs_.size()); ++fl) {
      // Vary the little cluster with the big cluster unchanged...
      result.push_back(SocConfig{nl, c.num_big, fl, c.big_freq_idx});
      // ...and the "little-only" role: big cluster gated in the same move.
      // Without these exclusive sweeps, configurations like L2@1400/B0 are
      // only reachable through an uphill intermediate (energy valley).
      result.push_back(SocConfig{nl, 0, fl, 0});
    }
  }
  for (int nb = 0; nb <= 4; ++nb) {
    for (int fb = 0; fb < static_cast<int>(big_freqs_.size()); ++fb) {
      result.push_back(SocConfig{c.num_little, nb, c.little_freq_idx, fb});
      // "Big-only" role: one idle-speed little core (the OS still needs it).
      result.push_back(SocConfig{1, nb, 0, fb});
    }
  }
}

std::vector<std::size_t> ConfigSpace::knob_cardinalities() const {
  return {4, 5, little_freqs_.size(), big_freqs_.size()};
}

std::string ConfigSpace::to_string(const SocConfig& c) {
  std::ostringstream os;
  os << "L" << c.num_little << "@" << (200 + 100 * c.little_freq_idx) << "MHz"
     << "/B" << c.num_big << "@" << (200 + 100 * c.big_freq_idx) << "MHz";
  return os.str();
}

}  // namespace oal::soc
