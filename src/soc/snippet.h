// Workload snippet descriptor.
//
// Following DyPO (Gupta et al., TECS 2017) and the paper's Section IV-A1,
// applications are segmented into *workload-conservative snippets*: each
// snippet retires a fixed number of instructions, so its descriptors are
// configuration-independent properties of the code, while execution time,
// power, and counters depend on the chosen SoC configuration.
#pragma once

#include <cstdint>

namespace oal::soc {

struct SnippetDescriptor {
  /// Instructions retired in this snippet (fixed per experiment, ~20M).
  double instructions = 20e6;

  /// Base (no-stall) cycles-per-instruction on a LITTLE (in-order) core.
  double base_cpi_little = 1.6;
  /// Base CPI on a big (out-of-order) core; smaller for ILP-rich code.
  double base_cpi_big = 1.0;

  /// L2 cache misses per kilo-instruction (memory intensity).
  double l2_mpki = 1.0;
  /// Branch mispredictions per kilo-instruction.
  double branch_mpki = 2.0;
  /// Data memory accesses per instruction.
  double mem_access_per_inst = 0.3;
  /// Fraction of instructions in parallelizable regions (Amdahl).
  double parallel_fraction = 0.05;
  /// Maximum software threads: the parallel region cannot use more cores
  /// than this (e.g. blackscholes-2T vs -4T differ only here).
  int max_threads = 8;

  /// Application id this snippet came from (bookkeeping only).
  std::uint32_t app_id = 0;
};

}  // namespace oal::soc
