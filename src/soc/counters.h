// Hardware performance counters collected per snippet (paper Table I).
#pragma once

#include "common/matrix.h"

namespace oal::soc {

/// One row of Table I: the system state observed at the end of each snippet.
/// These are the only quantities runtime policies may read; ground-truth
/// workload descriptors are never exposed to controllers.
struct PerfCounters {
  double instructions_retired = 0.0;
  double cpu_cycles = 0.0;                 ///< total busy cycles, all cores
  double branch_mispredictions = 0.0;      ///< per-core sum
  double l2_cache_misses = 0.0;
  double data_memory_accesses = 0.0;
  double noncache_external_requests = 0.0; ///< external memory requests
  double little_cluster_utilization = 0.0; ///< in [0, 1]
  double big_cluster_utilization = 0.0;    ///< in [0, 1]
  double total_power_w = 0.0;              ///< total chip power consumption
  /// Average scheduler run-queue depth over the snippet (runnable software
  /// threads).  Not a hardware counter, but an OS statistic every governor
  /// can read; without it thread-level parallelism is unobservable whenever
  /// only one core is active.
  double avg_runnable_threads = 1.0;

  /// Flattens to a feature vector (Table I order, plus run-queue depth).
  common::Vec to_vec() const {
    return {instructions_retired,     cpu_cycles,
            branch_mispredictions,    l2_cache_misses,
            data_memory_accesses,     noncache_external_requests,
            little_cluster_utilization, big_cluster_utilization,
            total_power_w,            avg_runnable_threads};
  }
  static constexpr std::size_t kDim = 10;
};

/// Result of executing one snippet at one configuration.
struct SnippetResult {
  double exec_time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  PerfCounters counters;
};

}  // namespace oal::soc
