#include "soc/platform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace oal::soc {

BigLittlePlatform::BigLittlePlatform(PlatformParams params, std::uint64_t noise_seed)
    : params_(params), noise_rng_(noise_seed) {
  v_little_table_.reserve(space_.little_freqs().size());
  for (double f : space_.little_freqs()) v_little_table_.push_back(voltage_little(f));
  v_big_table_.reserve(space_.big_freqs().size());
  for (double f : space_.big_freqs()) v_big_table_.push_back(voltage_big(f));
}

double BigLittlePlatform::voltage_little(double f_mhz) const {
  const double span = space_.little_freqs().back() - space_.little_freqs().front();
  const double t = (f_mhz - space_.little_freqs().front()) / span;
  return params_.v_min_little +
         std::pow(t, params_.v_exponent) * (params_.v_max_little - params_.v_min_little);
}

double BigLittlePlatform::voltage_big(double f_mhz) const {
  const double span = space_.big_freqs().back() - space_.big_freqs().front();
  const double t = (f_mhz - space_.big_freqs().front()) / span;
  return params_.v_min_big +
         std::pow(t, params_.v_exponent) * (params_.v_max_big - params_.v_min_big);
}

namespace {

struct ClusterPerf {
  double cpi = 0.0;
  double throughput = 0.0;  // instructions / second per core
};

}  // namespace

SnippetResult BigLittlePlatform::execute_ideal(const SnippetDescriptor& s,
                                               const SocConfig& c) const {
  return execute_ideal_impl(s, c, nullptr);
}

SnippetResult BigLittlePlatform::execute_ideal_impl(const SnippetDescriptor& s, const SocConfig& c,
                                                    PowerBreakdown* breakdown) const {
  if (!space_.valid(c)) throw std::invalid_argument("execute_ideal: invalid config");
  const double f_l = space_.little_freq_mhz(c) * 1e6;  // Hz
  const double f_b = space_.big_freq_mhz(c) * 1e6;
  const double n_l = static_cast<double>(c.num_little);
  const double n_b = static_cast<double>(c.num_big);

  auto cluster_perf = [&](bool big, double mem_latency_ns) -> ClusterPerf {
    const double f = big ? f_b : f_l;
    const double base = big ? s.base_cpi_big : s.base_cpi_little;
    const double bp = big ? params_.branch_penalty_big : params_.branch_penalty_little;
    const double exposed = big ? params_.stall_exposed_big : params_.stall_exposed_little;
    const double miss_cycles = mem_latency_ns * 1e-9 * f;  // latency in cycles at f
    ClusterPerf p;
    p.cpi = base + (s.branch_mpki / 1000.0) * bp + (s.l2_mpki / 1000.0) * miss_cycles * exposed;
    p.throughput = f / p.cpi;
    return p;
  };

  // Parallel-region efficiency with synchronization overhead.
  auto par_eff = [&](double n) { return n <= 1.0 ? n : n / (1.0 + params_.sync_overhead * (n - 1.0)); };

  // Cores used in the parallel region: at most max_threads software threads,
  // greedily placed on the fastest cores first (HMP scheduler behaviour).
  struct ParAlloc {
    double k_big = 0.0;
    double k_little = 0.0;
  };
  auto par_alloc = [&](const ClusterPerf& pl, const ClusterPerf& pb) -> ParAlloc {
    const double k = std::min(static_cast<double>(std::max(s.max_threads, 1)), n_l + n_b);
    ParAlloc a;
    if (c.num_big >= 1 && pb.throughput >= pl.throughput) {
      a.k_big = std::min(n_b, k);
      a.k_little = std::min(n_l, k - a.k_big);
    } else {
      a.k_little = std::min(n_l, k);
      a.k_big = c.num_big >= 1 ? std::min(n_b, k - a.k_little) : 0.0;
    }
    return a;
  };

  auto exec_time = [&](double mem_latency_ns) -> double {
    const ClusterPerf pl = cluster_perf(false, mem_latency_ns);
    const ClusterPerf pb = cluster_perf(true, mem_latency_ns);
    const double thr_serial = (c.num_big >= 1) ? std::max(pb.throughput, pl.throughput)
                                               : pl.throughput;
    const ParAlloc a = par_alloc(pl, pb);
    const double k = a.k_big + a.k_little;
    const double thr_sum = a.k_little * pl.throughput + a.k_big * pb.throughput;
    const double thr_par = k > 0.0 ? thr_sum * (par_eff(k) / k) : thr_serial;
    const double i_serial = (1.0 - s.parallel_fraction) * s.instructions;
    const double i_par = s.parallel_fraction * s.instructions;
    return i_serial / thr_serial + (i_par > 0.0 ? i_par / thr_par : 0.0);
  };

  // Two-pass memory-contention resolution: compute time at nominal latency,
  // derive bandwidth utilization, inflate latency M/M/1-style, recompute.
  const double traffic_bytes =
      (s.l2_mpki / 1000.0) * s.instructions * params_.cache_line_bytes * params_.writeback_factor;
  double latency = params_.mem_latency_ns;
  double t = exec_time(latency);
  {
    const double bw_used = traffic_bytes / t / 1e9;  // GB/s
    const double rho = std::min(bw_used / params_.mem_bw_gbps, 0.95);
    latency = params_.mem_latency_ns * (1.0 + rho * rho / (1.0 - rho));
    t = exec_time(latency);
  }

  // --- Busy-time bookkeeping for utilization & cycle counters -------------
  const ClusterPerf pl = cluster_perf(false, latency);
  const ClusterPerf pb = cluster_perf(true, latency);
  const bool serial_on_big = c.num_big >= 1 && pb.throughput >= pl.throughput;
  const double thr_serial = serial_on_big ? pb.throughput : pl.throughput;
  const double i_serial = (1.0 - s.parallel_fraction) * s.instructions;
  const double t_serial = i_serial / thr_serial;
  const double t_par = std::max(t - t_serial, 0.0);
  const ParAlloc alloc = par_alloc(pl, pb);

  double busy_little = t_par * alloc.k_little;  // core-seconds
  double busy_big = t_par * alloc.k_big;
  (serial_on_big ? busy_big : busy_little) += t_serial;

  const double u_little = (n_l > 0.0 && t > 0.0) ? std::min(busy_little / (n_l * t), 1.0) : 0.0;
  const double u_big = (n_b > 0.0 && t > 0.0) ? std::min(busy_big / (n_b * t), 1.0) : 0.0;

  // --- Power ---------------------------------------------------------------
  const double v_l = v_little_table_[c.little_freq_idx];
  const double v_b = v_big_table_[c.big_freq_idx];
  const double p_dyn_l = params_.ceff_little_nf * 1e-9 * v_l * v_l * f_l * n_l * u_little;
  const double p_dyn_b =
      (c.num_big >= 1) ? params_.ceff_big_nf * 1e-9 * v_b * v_b * f_b * n_b * u_big : 0.0;
  const double p_leak = n_l * params_.leak_little_w_per_v * v_l +
                        (c.num_big >= 1 ? n_b * params_.leak_big_w_per_v * v_b : 0.0);
  const double p_dram =
      (traffic_bytes / t) * params_.dram_energy_nj_per_byte * 1e-9 + params_.dram_static_w;
  const double p_total = p_dyn_l + p_dyn_b + p_leak + p_dram + params_.base_power_w;
  if (breakdown) {
    breakdown->little_w = p_dyn_l + n_l * params_.leak_little_w_per_v * v_l;
    breakdown->big_w = p_dyn_b + (c.num_big >= 1 ? n_b * params_.leak_big_w_per_v * v_b : 0.0);
    breakdown->dram_w = p_dram;
    breakdown->base_w = params_.base_power_w;
  }

  SnippetResult r;
  r.exec_time_s = t;
  r.avg_power_w = p_total;
  r.energy_j = p_total * t;

  PerfCounters& k = r.counters;
  k.instructions_retired = s.instructions;
  k.cpu_cycles = busy_little * f_l + busy_big * f_b;
  k.branch_mispredictions = (s.branch_mpki / 1000.0) * s.instructions;
  k.l2_cache_misses = (s.l2_mpki / 1000.0) * s.instructions;
  k.data_memory_accesses = s.mem_access_per_inst * s.instructions;
  k.noncache_external_requests =
      (s.l2_mpki / 1000.0) * s.instructions * params_.writeback_factor;
  k.little_cluster_utilization = u_little;
  k.big_cluster_utilization = u_big;
  k.total_power_w = p_total;
  // Scheduler run-queue depth: one runnable thread in the serial region,
  // max_threads in the parallel region, weighted by region time shares.
  const double t_share_par = t > 0.0 ? t_par / t : 0.0;
  k.avg_runnable_threads =
      (1.0 - t_share_par) * 1.0 + t_share_par * static_cast<double>(std::max(s.max_threads, 1));
  return r;
}

PowerBreakdown BigLittlePlatform::power_breakdown(const SnippetDescriptor& s,
                                                  const SocConfig& c) const {
  PowerBreakdown out;
  (void)execute_ideal_impl(s, c, &out);
  return out;
}

double BigLittlePlatform::apply_noise(double v, double sigma) {
  return v * std::max(1.0 + sigma * noise_rng_.normal(), 0.0);
}

SnippetResult BigLittlePlatform::execute(const SnippetDescriptor& s, const SocConfig& c) {
  SnippetResult r = execute_ideal(s, c);
  const double cs = params_.counter_noise;
  PerfCounters& k = r.counters;
  k.instructions_retired = apply_noise(k.instructions_retired, cs * 0.1);
  k.cpu_cycles = apply_noise(k.cpu_cycles, cs);
  k.branch_mispredictions = apply_noise(k.branch_mispredictions, cs);
  k.l2_cache_misses = apply_noise(k.l2_cache_misses, cs);
  k.data_memory_accesses = apply_noise(k.data_memory_accesses, cs);
  k.noncache_external_requests = apply_noise(k.noncache_external_requests, cs);
  k.little_cluster_utilization = std::clamp(apply_noise(k.little_cluster_utilization, cs), 0.0, 1.0);
  k.big_cluster_utilization = std::clamp(apply_noise(k.big_cluster_utilization, cs), 0.0, 1.0);
  k.total_power_w = apply_noise(k.total_power_w, params_.power_noise);
  k.avg_runnable_threads = std::max(apply_noise(k.avg_runnable_threads, cs), 1.0);
  // Measured energy/power reflect the same noisy sensor.
  r.avg_power_w = k.total_power_w;
  r.energy_j = r.avg_power_w * r.exec_time_s;
  return r;
}

SocConfig BigLittlePlatform::best_energy_config(const SnippetDescriptor& s) const {
  SocConfig best;
  double best_e = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const SocConfig c = space_.config_at(i);
    const double e = execute_ideal(s, c).energy_j;
    if (e < best_e) {
      best_e = e;
      best = c;
    }
  }
  return best;
}

}  // namespace oal::soc
