// Analytic big.LITTLE SoC platform model (Odroid-XU3 / Exynos 5422 class).
//
// This simulator replaces the physical board of the paper's IL/RL study.
// It maps (snippet descriptor, SoC configuration) to execution time, power,
// energy, and the Table-I performance counters:
//
//  * Performance: per-cluster CPI = base CPI + branch-misprediction penalty
//    + exposed memory-stall cycles (memory latency in *nanoseconds* is
//    constant, so the cycle cost of a miss grows with frequency — the
//    memory wall).  Amdahl split: the serial region runs on the fastest
//    active core, the parallel region across all active cores with a
//    synchronization penalty.  Memory-bandwidth contention inflates the
//    effective latency through an M/M/1-style factor.
//  * Power: per-cluster switched-capacitance dynamic power (C V^2 f u n),
//    voltage from a frequency-dependent OPP curve, per-core leakage
//    proportional to V, DRAM energy per byte + static, and a base/uncore
//    term.  Power-gated (inactive) cores consume nothing.
//
// `execute_ideal` is deterministic ground truth (used to construct Oracles);
// `execute` adds multiplicative measurement noise to the counters/power, and
// is all that runtime controllers may observe.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "soc/config_space.h"
#include "soc/counters.h"
#include "soc/snippet.h"

namespace oal::soc {

struct PlatformParams {
  // Voltage operating points (V) at the frequency extremes; the curve
  // between them is convex (t^v_exponent), as on real OPP tables, which
  // penalizes the top frequencies and produces interior energy optima.
  double v_min_little = 0.90, v_max_little = 1.20;
  double v_min_big = 0.90, v_max_big = 1.36;
  double v_exponent = 1.8;
  // Effective switched capacitance per core (nF).
  double ceff_little_nf = 0.085;
  double ceff_big_nf = 0.38;
  // Leakage coefficient per active core (W per volt).
  double leak_little_w_per_v = 0.02;
  double leak_big_w_per_v = 0.11;
  // Always-on uncore/rail power (W).
  double base_power_w = 0.55;
  // Memory subsystem.
  double mem_latency_ns = 80.0;
  double mem_bw_gbps = 8.0;          ///< saturation bandwidth
  double dram_energy_nj_per_byte = 0.05;
  double dram_static_w = 0.15;
  double cache_line_bytes = 64.0;
  double writeback_factor = 1.30;    ///< external requests per L2 miss
  // Fraction of memory latency exposed to the pipeline (OoO hides more).
  double stall_exposed_little = 0.85;
  double stall_exposed_big = 0.50;
  // Branch misprediction penalties (cycles).
  double branch_penalty_little = 8.0;
  double branch_penalty_big = 14.0;
  // Parallel-region synchronization overhead per extra core.
  double sync_overhead = 0.04;
  // Relative (1-sigma) measurement noise applied by execute().
  double counter_noise = 0.01;
  double power_noise = 0.015;
};

/// Per-rail decomposition of a snippet's (noise-free) average power.
struct PowerBreakdown {
  double little_w = 0.0;  ///< little-cluster dynamic + leakage
  double big_w = 0.0;     ///< big-cluster dynamic + leakage
  double dram_w = 0.0;    ///< DRAM traffic + static
  double base_w = 0.0;    ///< always-on uncore/rail
  double total_w() const { return little_w + big_w + dram_w + base_w; }
};

class BigLittlePlatform {
 public:
  explicit BigLittlePlatform(PlatformParams params = {}, std::uint64_t noise_seed = 2020);

  BigLittlePlatform(const BigLittlePlatform&) = default;
  BigLittlePlatform& operator=(const BigLittlePlatform&) = default;

  const ConfigSpace& space() const { return space_; }
  const PlatformParams& params() const { return params_; }

  /// OPP voltage curves (linear between the extremes).
  double voltage_little(double f_mhz) const;
  double voltage_big(double f_mhz) const;

  /// Noise-free ground truth; deterministic and side-effect free.
  SnippetResult execute_ideal(const SnippetDescriptor& s, const SocConfig& c) const;

  /// Per-rail split of execute_ideal's average power (sums to its
  /// avg_power_w).  Feeds the thermal RC network's power-injection nodes.
  PowerBreakdown power_breakdown(const SnippetDescriptor& s, const SocConfig& c) const;

  /// Ground truth plus multiplicative measurement noise (what runtime
  /// controllers observe).  Advances the internal noise RNG.
  SnippetResult execute(const SnippetDescriptor& s, const SocConfig& c);

  /// Exhaustive minimum-energy configuration for a snippet (ground truth).
  SocConfig best_energy_config(const SnippetDescriptor& s) const;

 private:
  /// Shared ground-truth evaluation; fills `breakdown` when non-null (same
  /// power terms that sum into the result's avg_power_w).
  SnippetResult execute_ideal_impl(const SnippetDescriptor& s, const SocConfig& c,
                                   PowerBreakdown* breakdown) const;
  double apply_noise(double v, double sigma);

  PlatformParams params_;
  ConfigSpace space_;
  common::Rng noise_rng_;
  // Per-OPP voltages, precomputed once: the pow() in the OPP curve would
  // otherwise dominate the exhaustive Oracle sweep (2 calls x 4940 configs
  // per snippet).  Entries equal voltage_little/big at that OPP bit-for-bit.
  std::vector<double> v_little_table_;
  std::vector<double> v_big_table_;
};

}  // namespace oal::soc
