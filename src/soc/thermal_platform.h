// Thermally-constrained big.LITTLE platform adapter (paper Section III-A,
// after Bhat et al.: "the power budget is used as a metric to throttle the
// frequency and number of operating cores").
//
// ThermalSocAdapter couples the thermal/ layer into the DRM hot path: it
// advances a compact RC network from the platform's per-snippet power
// breakdown (big cluster, little cluster, DRAM+uncore on the PCB node) with
// temperature-dependent leakage feedback, periodically recomputes the power
// budget (transient_power_headroom over a configurable horizon, or
// max_sustainable_power for a steady-state budget), and clamps proposed
// SocConfigs that the platform's power model predicts would exceed it.
// Throttling order mirrors a firmware budgeter: big frequency first, then
// big cores, then little frequency, then little cores (floor: 1 LITTLE core
// at minimum frequency).
//
// The adapter plugs into DrmRunner through the arbiter/observer hooks, so
// any DrmController runs unmodified under a thermal budget; the budgeter
// consults only the platform's deterministic power model (the simulator
// stand-in for a power-meter feedback loop), never measurement noise, so
// runs stay bitwise reproducible.
#pragma once

#include <cstddef>

#include "gpu/gpu_model.h"
#include "soc/platform.h"
#include "soc/thermal_telemetry.h"
#include "thermal/fixed_point.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"

namespace oal::soc {

struct ThermalConstraintParams {
  thermal::PowerBudgetConfig limits;  ///< junction/skin limits + skin node
  /// Horizon for transient_power_headroom; <= 0 switches to the steady-state
  /// max_sustainable_power budget.
  double horizon_s = 10.0;
  /// Simulated-time cadence of budget recomputation.
  double budget_interval_s = 0.5;
  double ambient_c = 25.0;
  /// Starting temperatures (deg C) per RC node; empty = ambient everywhere.
  /// Preheating (e.g. a device already hot from prior load) makes short
  /// traces thermally binding.
  common::Vec initial_temperature_c;
  /// Temperature-dependent leakage injected on top of the platform's power
  /// (node order: big, little, gpu, pcb, skin).
  thermal::LeakageModel leakage{{0.35, 0.08, 0.25, 0.0, 0.0},
                                {0.025, 0.02, 0.025, 0.0, 0.0},
                                25.0};
};

/// One step down the firmware throttle ladder: big frequency first, then
/// big cores, then little frequency, then little cores.  Returns false at
/// the floor (1 LITTLE core at minimum frequency).  Shared by the budget
/// arbiter and by thermal-aware controllers that internalize it (they must
/// descend the *same* ladder or their proposals diverge from what the
/// arbiter would grant).
bool throttle_step(SocConfig& c);

class ThermalSocAdapter {
 public:
  explicit ThermalSocAdapter(BigLittlePlatform& platform, ThermalConstraintParams params = {});

  /// Clamps a proposed configuration to the current power budget (DrmRunner
  /// arbiter).  Counts a clamp when the returned config differs.
  SocConfig arbitrate(const SnippetDescriptor& s, const SocConfig& proposed);

  /// Advances the RC network by the executed snippet's time under its power
  /// breakdown + leakage, and refreshes the budget on the configured cadence
  /// (DrmRunner observer).
  void observe(const SnippetDescriptor& s, const SocConfig& applied, const SnippetResult& r);

  double budget_w() const { return budget_w_; }
  std::size_t clamped_snippets() const { return clamped_; }
  double peak_junction_c() const { return peak_junction_c_; }
  double peak_skin_c() const { return peak_skin_c_; }
  const thermal::RcThermalNetwork& network() const { return net_; }

  /// Read-only snapshot of the current thermal state for the runner's
  /// telemetry channel (temperatures, limits, budget, last observed power).
  /// Side-effect free, so publishing it never perturbs a run.
  ThermalTelemetry telemetry() const;

 private:
  void refresh_budget();
  void track_peaks();

  BigLittlePlatform* platform_;
  ThermalConstraintParams params_;
  thermal::RcThermalNetwork net_;
  common::Vec shape_w_;  ///< last observed per-node power shape
  double budget_w_ = 0.0;
  double since_budget_s_ = 0.0;
  std::size_t clamped_ = 0;
  double peak_junction_c_ = 0.0;
  double peak_skin_c_ = 0.0;
};

/// Thermal constraints for the GPU frame loop (ENMPC under a skin budget).
/// Shares the RC network/budget machinery with the DRM adapter; the power
/// injection maps the GPU platform's per-frame energies onto the RC
/// network's GPU node (finally exercising it) and the PCB node (CPU +
/// uncore + DRAM producer side).
struct ThermalGpuConstraintParams {
  thermal::PowerBudgetConfig limits;  ///< junction/skin limits + skin node
  /// Horizon for transient_power_headroom; <= 0 switches to the steady-state
  /// max_sustainable_power budget.
  double horizon_s = 10.0;
  /// Simulated-time cadence of budget recomputation.
  double budget_interval_s = 0.5;
  double ambient_c = 25.0;
  /// Starting temperatures (deg C) per RC node; empty = ambient everywhere.
  common::Vec initial_temperature_c;
  /// Temperature-dependent leakage injected on top of the platform's power
  /// (node order: big, little, gpu, pcb, skin) — GPU-heavy by default.
  thermal::LeakageModel leakage{{0.05, 0.03, 0.30, 0.0, 0.0},
                                {0.02, 0.02, 0.03, 0.0, 0.0},
                                25.0};
};

/// One step down the GPU firmware throttle ladder: frequency first (fast,
/// cheap actuation), then slice gating.  Returns false at the floor (1 slice
/// at minimum frequency).  Shared by the budget arbiter and by the
/// budget-aware NMPC fallback (mirroring soc::throttle_step on the DRM
/// side): both must descend the *same* ladder or the controller's proposals
/// diverge from what the arbiter would grant.
bool gpu_throttle_step(gpu::GpuConfig& c);

/// GpuRunner-facing thermal budgeter: clamps proposed GpuConfigs to the
/// current power budget (frequency first, then slices; floor: 1 slice at
/// minimum frequency) and advances the RC network from rendered frames.
/// Plugs into GpuRunner through its arbiter/observer hooks, mirroring the
/// DRM adapter's contract: budgeting consults only the platform's
/// deterministic ideal model, so runs stay bitwise reproducible.
class ThermalGpuAdapter {
 public:
  ThermalGpuAdapter(gpu::GpuPlatform& platform, double period_s,
                    ThermalGpuConstraintParams params = {});

  /// Clamps a proposed configuration to the current power budget (GpuRunner
  /// arbiter).  Counts a clamp when the returned config differs.
  gpu::GpuConfig arbitrate(const gpu::FrameDescriptor& f, const gpu::GpuConfig& proposed);

  /// Advances the RC network by one frame period under the frame's measured
  /// energies + leakage, refreshing the budget on the configured cadence
  /// (GpuRunner observer).
  void observe(const gpu::FrameDescriptor& f, const gpu::GpuConfig& applied,
               const gpu::FrameResult& r);

  double budget_w() const { return budget_w_; }
  std::size_t clamped_frames() const { return clamped_; }
  double peak_junction_c() const { return peak_junction_c_; }
  double peak_skin_c() const { return peak_skin_c_; }
  const thermal::RcThermalNetwork& network() const { return net_; }

  /// Read-only snapshot of the current thermal state for the runner's
  /// telemetry channel (temperatures, limits, budget, last observed power).
  /// Side-effect free, so publishing it never perturbs a run.
  ThermalTelemetry telemetry() const;

 private:
  void refresh_budget();
  void track_peaks();

  gpu::GpuPlatform* platform_;
  double period_s_;
  ThermalGpuConstraintParams params_;
  thermal::RcThermalNetwork net_;
  common::Vec shape_w_;  ///< last observed per-node power shape
  double budget_w_ = 0.0;
  double since_budget_s_ = 0.0;
  std::size_t clamped_ = 0;
  double peak_junction_c_ = 0.0;
  double peak_skin_c_ = 0.0;
};

}  // namespace oal::soc
