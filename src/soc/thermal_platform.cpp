#include "soc/thermal_platform.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace oal::soc {

namespace {

// Node indices of thermal::RcThermalNetwork::mobile_soc().
constexpr std::size_t kBigNode = 0;
constexpr std::size_t kLittleNode = 1;
constexpr std::size_t kGpuNode = 2;
constexpr std::size_t kPcbNode = 3;

double sum(const common::Vec& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

/// Both adapter constructors accept user-supplied per-node vectors; any size
/// mismatch against the RC network would silently index out of range deep in
/// the hot loop, so validate everything up front with sizes in the message.
void validate_node_vectors(const char* who, const thermal::RcThermalNetwork& net,
                           const common::Vec& initial_temperature_c,
                           const thermal::LeakageModel& leak) {
  const std::size_t n = net.num_nodes();
  const auto fail = [who, n](const char* field, std::size_t got) {
    throw std::invalid_argument(std::string(who) + ": " + field + " has " + std::to_string(got) +
                                " entries but the RC network has " + std::to_string(n) +
                                " nodes");
  };
  if (!initial_temperature_c.empty() && initial_temperature_c.size() != n)
    fail("initial_temperature_c", initial_temperature_c.size());
  if (leak.p0_w.size() != n) fail("leakage.p0_w", leak.p0_w.size());
  if (leak.k_per_c.size() != n) fail("leakage.k_per_c", leak.k_per_c.size());
}

}  // namespace

ThermalSocAdapter::ThermalSocAdapter(BigLittlePlatform& platform, ThermalConstraintParams params)
    : platform_(&platform),
      params_(std::move(params)),
      net_(thermal::RcThermalNetwork::mobile_soc(params_.ambient_c)),
      shape_w_(net_.num_nodes(), 0.0) {
  validate_node_vectors("ThermalSocAdapter", net_, params_.initial_temperature_c, params_.leakage);
  if (!params_.initial_temperature_c.empty()) net_.set_temperatures(params_.initial_temperature_c);
  // Nominal big-heavy shape until the first snippet is observed.
  shape_w_[kBigNode] = 0.55;
  shape_w_[kLittleNode] = 0.10;
  shape_w_[kPcbNode] = 0.35;
  track_peaks();
  refresh_budget();
}

void ThermalSocAdapter::refresh_budget() {
  if (params_.horizon_s > 0.0) {
    const double scale = thermal::transient_power_headroom(net_, params_.leakage, shape_w_,
                                                           params_.horizon_s, params_.limits);
    budget_w_ = scale * sum(shape_w_);
  } else {
    budget_w_ =
        thermal::max_sustainable_power(net_, params_.leakage, shape_w_, params_.limits)
            .total_power_w;
  }
}

bool throttle_step(SocConfig& c) {
  // Big-cluster knobs are only touched while the cluster is on: with
  // num_big == 0 its frequency has no power effect, and stepping it would
  // record phantom clamps.
  if (c.num_big > 0) {
    if (c.big_freq_idx > 0) {
      --c.big_freq_idx;
    } else {
      --c.num_big;
    }
  } else if (c.little_freq_idx > 0) {
    --c.little_freq_idx;
  } else if (c.num_little > 1) {
    --c.num_little;
  } else {
    return false;
  }
  return true;
}

SocConfig ThermalSocAdapter::arbitrate(const SnippetDescriptor& s, const SocConfig& proposed) {
  SocConfig c = proposed;
  const auto over_budget = [&](const SocConfig& cc) {
    return platform_->execute_ideal(s, cc).avg_power_w > budget_w_;
  };
  // Firmware-style throttle ladder; bottoms out at 1 LITTLE core at minimum
  // frequency (the budget can be infeasible — e.g. base power alone above
  // it — in which case the floor config runs and temperatures keep rising
  // until the next budget refresh).
  while (over_budget(c)) {
    if (!throttle_step(c)) break;
  }
  if (c != proposed) ++clamped_;
  return c;
}

void ThermalSocAdapter::observe(const SnippetDescriptor& s, const SocConfig& applied,
                               const SnippetResult& r) {
  const PowerBreakdown bd = platform_->power_breakdown(s, applied);
  common::Vec inject(net_.num_nodes(), 0.0);
  inject[kBigNode] = bd.big_w;
  inject[kLittleNode] = bd.little_w;
  inject[kPcbNode] = bd.dram_w + bd.base_w;
  shape_w_ = inject;

  const common::Vec leak = params_.leakage.leakage(net_.temperatures());
  common::Vec power(net_.num_nodes(), 0.0);
  for (std::size_t i = 0; i < power.size(); ++i) power[i] = inject[i] + leak[i];
  net_.step(power, r.exec_time_s);
  track_peaks();

  since_budget_s_ += r.exec_time_s;
  if (since_budget_s_ >= params_.budget_interval_s) {
    refresh_budget();
    since_budget_s_ = 0.0;
  }
}

void ThermalSocAdapter::track_peaks() {
  const common::Vec& t = net_.temperatures();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == params_.limits.skin_node) {
      peak_skin_c_ = std::max(peak_skin_c_, t[i]);
    } else if (i != kPcbNode) {
      peak_junction_c_ = std::max(peak_junction_c_, t[i]);
    }
  }
}

ThermalTelemetry ThermalSocAdapter::telemetry() const {
  ThermalTelemetry t;
  t.constrained = true;
  const common::Vec& temps = net_.temperatures();
  double junction = temps[kBigNode];
  for (std::size_t i = 0; i < temps.size(); ++i) {
    if (i == params_.limits.skin_node || i == kPcbNode) continue;
    junction = std::max(junction, temps[i]);
  }
  t.junction_c = junction;
  t.skin_c = temps[params_.limits.skin_node];
  t.junction_limit_c = params_.limits.t_max_junction_c;
  t.skin_limit_c = params_.limits.t_max_skin_c;
  t.ambient_c = params_.ambient_c;
  t.budget_w = budget_w_;
  t.last_power_w = sum(shape_w_);
  return t;
}

// ---------------------------------------------------------------------------
// ThermalGpuAdapter
// ---------------------------------------------------------------------------

ThermalGpuAdapter::ThermalGpuAdapter(gpu::GpuPlatform& platform, double period_s,
                                     ThermalGpuConstraintParams params)
    : platform_(&platform),
      period_s_(period_s),
      params_(std::move(params)),
      net_(thermal::RcThermalNetwork::mobile_soc(params_.ambient_c)),
      shape_w_(net_.num_nodes(), 0.0) {
  if (period_s_ <= 0.0) throw std::invalid_argument("ThermalGpuAdapter: period_s must be > 0");
  validate_node_vectors("ThermalGpuAdapter", net_, params_.initial_temperature_c, params_.leakage);
  if (!params_.initial_temperature_c.empty()) net_.set_temperatures(params_.initial_temperature_c);
  // Nominal render-heavy shape until the first frame is observed.
  shape_w_[kGpuNode] = 0.60;
  shape_w_[kPcbNode] = 0.40;
  track_peaks();
  refresh_budget();
}

void ThermalGpuAdapter::refresh_budget() {
  if (params_.horizon_s > 0.0) {
    const double scale = thermal::transient_power_headroom(net_, params_.leakage, shape_w_,
                                                           params_.horizon_s, params_.limits);
    budget_w_ = scale * sum(shape_w_);
  } else {
    budget_w_ =
        thermal::max_sustainable_power(net_, params_.leakage, shape_w_, params_.limits)
            .total_power_w;
  }
}

bool gpu_throttle_step(gpu::GpuConfig& c) {
  if (c.freq_idx > 0) {
    --c.freq_idx;
  } else if (c.num_slices > 1) {
    --c.num_slices;
  } else {
    return false;
  }
  return true;
}

gpu::GpuConfig ThermalGpuAdapter::arbitrate(const gpu::FrameDescriptor& f,
                                            const gpu::GpuConfig& proposed) {
  gpu::GpuConfig c = proposed;
  const auto over_budget = [&](const gpu::GpuConfig& cc) {
    // Full producer-side power (PKG + DRAM scope) against the budget — the
    // same total the observer injects into the RC network.
    return platform_->render_ideal(f, cc, period_s_).pkg_dram_energy_j / period_s_ > budget_w_;
  };
  // Firmware throttle ladder; bottoms out at 1 slice at minimum frequency
  // (an infeasible budget runs the floor config and temperatures keep rising
  // until the next refresh).
  while (over_budget(c)) {
    if (!gpu_throttle_step(c)) break;
  }
  if (c != proposed) ++clamped_;
  return c;
}

void ThermalGpuAdapter::observe(const gpu::FrameDescriptor& /*f*/,
                                const gpu::GpuConfig& /*applied*/, const gpu::FrameResult& r) {
  common::Vec inject(net_.num_nodes(), 0.0);
  inject[kGpuNode] = r.gpu_energy_j / period_s_;
  inject[kPcbNode] = (r.pkg_dram_energy_j - r.gpu_energy_j) / period_s_;
  shape_w_ = inject;

  const common::Vec leak = params_.leakage.leakage(net_.temperatures());
  common::Vec power(net_.num_nodes(), 0.0);
  for (std::size_t i = 0; i < power.size(); ++i) power[i] = inject[i] + leak[i];
  net_.step(power, period_s_);
  track_peaks();

  since_budget_s_ += period_s_;
  if (since_budget_s_ >= params_.budget_interval_s) {
    refresh_budget();
    since_budget_s_ = 0.0;
  }
}

void ThermalGpuAdapter::track_peaks() {
  const common::Vec& t = net_.temperatures();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == params_.limits.skin_node) {
      peak_skin_c_ = std::max(peak_skin_c_, t[i]);
    } else if (i != kPcbNode) {
      peak_junction_c_ = std::max(peak_junction_c_, t[i]);
    }
  }
}

ThermalTelemetry ThermalGpuAdapter::telemetry() const {
  ThermalTelemetry t;
  t.constrained = true;
  const common::Vec& temps = net_.temperatures();
  double junction = temps[kGpuNode];
  for (std::size_t i = 0; i < temps.size(); ++i) {
    if (i == params_.limits.skin_node || i == kPcbNode) continue;
    junction = std::max(junction, temps[i]);
  }
  t.junction_c = junction;
  t.skin_c = temps[params_.limits.skin_node];
  t.junction_limit_c = params_.limits.t_max_junction_c;
  t.skin_limit_c = params_.limits.t_max_skin_c;
  t.ambient_c = params_.ambient_c;
  t.budget_w = budget_w_;
  t.last_power_w = sum(shape_w_);
  return t;
}

}  // namespace oal::soc
