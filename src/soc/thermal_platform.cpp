#include "soc/thermal_platform.h"

#include <algorithm>
#include <stdexcept>

namespace oal::soc {

namespace {

// Node indices of thermal::RcThermalNetwork::mobile_soc().
constexpr std::size_t kBigNode = 0;
constexpr std::size_t kLittleNode = 1;
constexpr std::size_t kPcbNode = 3;

double sum(const common::Vec& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

ThermalSocAdapter::ThermalSocAdapter(BigLittlePlatform& platform, ThermalConstraintParams params)
    : platform_(&platform),
      params_(std::move(params)),
      net_(thermal::RcThermalNetwork::mobile_soc(params_.ambient_c)),
      shape_w_(net_.num_nodes(), 0.0) {
  if (!params_.initial_temperature_c.empty()) {
    if (params_.initial_temperature_c.size() != net_.num_nodes())
      throw std::invalid_argument("ThermalSocAdapter: initial_temperature_c size mismatch");
    net_.set_temperatures(params_.initial_temperature_c);
  }
  // Nominal big-heavy shape until the first snippet is observed.
  shape_w_[kBigNode] = 0.55;
  shape_w_[kLittleNode] = 0.10;
  shape_w_[kPcbNode] = 0.35;
  track_peaks();
  refresh_budget();
}

void ThermalSocAdapter::refresh_budget() {
  if (params_.horizon_s > 0.0) {
    const double scale = thermal::transient_power_headroom(net_, params_.leakage, shape_w_,
                                                           params_.horizon_s, params_.limits);
    budget_w_ = scale * sum(shape_w_);
  } else {
    budget_w_ =
        thermal::max_sustainable_power(net_, params_.leakage, shape_w_, params_.limits)
            .total_power_w;
  }
}

SocConfig ThermalSocAdapter::arbitrate(const SnippetDescriptor& s, const SocConfig& proposed) {
  SocConfig c = proposed;
  const auto over_budget = [&](const SocConfig& cc) {
    return platform_->execute_ideal(s, cc).avg_power_w > budget_w_;
  };
  // Firmware-style throttle ladder; bottoms out at 1 LITTLE core at minimum
  // frequency (the budget can be infeasible — e.g. base power alone above
  // it — in which case the floor config runs and temperatures keep rising
  // until the next budget refresh).  Big-cluster knobs are only touched
  // while the cluster is on: with num_big == 0 its frequency has no power
  // effect, and stepping it would record phantom clamps.
  while (over_budget(c)) {
    if (c.num_big > 0) {
      if (c.big_freq_idx > 0) {
        --c.big_freq_idx;
      } else {
        --c.num_big;
      }
    } else if (c.little_freq_idx > 0) {
      --c.little_freq_idx;
    } else if (c.num_little > 1) {
      --c.num_little;
    } else {
      break;
    }
  }
  if (c != proposed) ++clamped_;
  return c;
}

void ThermalSocAdapter::observe(const SnippetDescriptor& s, const SocConfig& applied,
                               const SnippetResult& r) {
  const PowerBreakdown bd = platform_->power_breakdown(s, applied);
  common::Vec inject(net_.num_nodes(), 0.0);
  inject[kBigNode] = bd.big_w;
  inject[kLittleNode] = bd.little_w;
  inject[kPcbNode] = bd.dram_w + bd.base_w;
  shape_w_ = inject;

  const common::Vec leak = params_.leakage.leakage(net_.temperatures());
  common::Vec power(net_.num_nodes(), 0.0);
  for (std::size_t i = 0; i < power.size(); ++i) power[i] = inject[i] + leak[i];
  net_.step(power, r.exec_time_s);
  track_peaks();

  since_budget_s_ += r.exec_time_s;
  if (since_budget_s_ >= params_.budget_interval_s) {
    refresh_budget();
    since_budget_s_ = 0.0;
  }
}

void ThermalSocAdapter::track_peaks() {
  const common::Vec& t = net_.temperatures();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == params_.limits.skin_node) {
      peak_skin_c_ = std::max(peak_skin_c_, t[i]);
    } else if (i != kPcbNode) {
      peak_junction_c_ = std::max(peak_junction_c_, t[i]);
    }
  }
}

}  // namespace oal::soc
