// Queueing-theoretic analytical NoC latency model (paper Section III-C:
// "state-of-the-art techniques view the NoC as a network of queues and
// construct performance models using queuing theory").
//
// Each directed link is an M/D/1 server: deterministic service time equal to
// the packet serialization latency, Poisson-approximated arrivals equal to
// the sum of injection rates routed across the link (XY routing).  The
// average end-to-end packet latency is
//     L = hops * (t_router + t_ser) + sum_over_links W_link + W_source
// with the M/D/1 waiting time W = rho * s / (2 (1 - rho)).  Estimated
// channel and source waiting times are also exported individually — they are
// the physics features of the SVR-corrected model (Qian et al., TCAD 2015).
#pragma once

#include "noc/mesh.h"

namespace oal::noc {

struct NocParams {
  double router_delay_cycles = 3.0;   ///< per-hop pipeline latency
  double packet_service_cycles = 4.0; ///< serialization time (packet/flit ratio)
  double link_capacity = 1.0;         ///< packets per service window
};

struct AnalyticalLatency {
  double avg_latency_cycles = 0.0;
  double avg_channel_waiting_cycles = 0.0;  ///< mean per-packet queueing
  double avg_source_waiting_cycles = 0.0;   ///< injection-queue waiting
  double max_link_utilization = 0.0;
  bool saturated = false;  ///< some link at/over capacity
};

class AnalyticalNocModel {
 public:
  AnalyticalNocModel(const Mesh& mesh, NocParams params = {});

  /// Per-link utilization (rho) under a traffic matrix with XY routing.
  std::vector<double> link_utilization(const TrafficMatrix& t) const;

  /// Average end-to-end latency prediction.
  AnalyticalLatency evaluate(const TrafficMatrix& t) const;

  const NocParams& params() const { return params_; }

 private:
  const Mesh* mesh_;
  NocParams params_;
};

}  // namespace oal::noc
