#include "noc/analytical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::noc {

AnalyticalNocModel::AnalyticalNocModel(const Mesh& mesh, NocParams params)
    : mesh_(&mesh), params_(params) {
  if (params_.packet_service_cycles <= 0.0)
    throw std::invalid_argument("AnalyticalNocModel: bad service time");
}

std::vector<double> AnalyticalNocModel::link_utilization(const TrafficMatrix& t) const {
  std::vector<double> lambda(mesh_->num_links(), 0.0);
  for (std::size_t s = 0; s < t.num_nodes(); ++s) {
    for (std::size_t d = 0; d < t.num_nodes(); ++d) {
      const double r = t.rate(s, d);
      if (r <= 0.0 || s == d) continue;
      for (std::size_t link : mesh_->xy_route(s, d)) lambda[link] += r;
    }
  }
  std::vector<double> rho(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i)
    rho[i] = lambda[i] * params_.packet_service_cycles / params_.link_capacity;
  return rho;
}

AnalyticalLatency AnalyticalNocModel::evaluate(const TrafficMatrix& t) const {
  AnalyticalLatency out;
  const std::vector<double> rho = link_utilization(t);
  out.max_link_utilization = rho.empty() ? 0.0 : *std::max_element(rho.begin(), rho.end());
  out.saturated = out.max_link_utilization >= 0.999;

  // M/D/1 waiting per link: W = rho * s / (2 (1 - rho)), capped near
  // saturation so the model degrades gracefully instead of exploding.
  const double s_cycles = params_.packet_service_cycles;
  auto waiting = [&](double r) {
    const double rc = std::min(r, 0.995);
    return rc * s_cycles / (2.0 * (1.0 - rc));
  };

  double total_rate = 0.0;
  double lat_sum = 0.0;
  double chan_wait_sum = 0.0;
  double src_wait_sum = 0.0;
  for (std::size_t s = 0; s < t.num_nodes(); ++s) {
    // Source (injection) queue: all flows from s share one injection port.
    double inj_rate = 0.0;
    for (std::size_t d = 0; d < t.num_nodes(); ++d)
      if (d != s) inj_rate += t.rate(s, d);
    const double src_wait = waiting(inj_rate * s_cycles / params_.link_capacity);

    for (std::size_t d = 0; d < t.num_nodes(); ++d) {
      const double r = t.rate(s, d);
      if (r <= 0.0 || s == d) continue;
      const auto route = mesh_->xy_route(s, d);
      double w = 0.0;
      for (std::size_t link : route) w += waiting(rho[link]);
      const double hops = static_cast<double>(route.size());
      const double lat =
          hops * (params_.router_delay_cycles + s_cycles) + w + src_wait;
      lat_sum += r * lat;
      chan_wait_sum += r * w;
      src_wait_sum += r * src_wait;
      total_rate += r;
    }
  }
  if (total_rate <= 0.0) throw std::invalid_argument("AnalyticalNocModel: empty traffic");
  out.avg_latency_cycles = lat_sum / total_rate;
  out.avg_channel_waiting_cycles = chan_wait_sum / total_rate;
  out.avg_source_waiting_cycles = src_wait_sum / total_rate;
  return out;
}

}  // namespace oal::noc
