// Packet-level discrete-event NoC simulator.
//
// The reference "measurement" substrate for Section III-C: packets are
// injected per-source as Poisson processes following a traffic matrix, XY
// routed, and queued FIFO at every directed link (deterministic service =
// serialization time, plus per-hop router delay).  The analytical model of
// analytical.h approximates exactly this system, and the SVR model of
// svr_model.h learns its residuals — mirroring the paper's methodology where
// the simulator plays the role of the real interconnect.
#pragma once

#include <cstdint>

#include "noc/analytical.h"
#include "noc/mesh.h"

namespace oal::noc {

struct SimConfig {
  double warmup_cycles = 10000.0;
  double measure_cycles = 80000.0;
  std::uint64_t seed = 1;
};

struct SimResult {
  double avg_latency_cycles = 0.0;
  double p95_latency_cycles = 0.0;
  double avg_hops = 0.0;
  std::size_t packets_measured = 0;
  double offered_rate = 0.0;   ///< packets/cycle injected
  double delivered_rate = 0.0; ///< packets/cycle delivered in the window
};

class NocSimulator {
 public:
  NocSimulator(const Mesh& mesh, NocParams params = {});

  SimResult simulate(const TrafficMatrix& t, const SimConfig& cfg = {}) const;

 private:
  const Mesh* mesh_;
  NocParams params_;
};

}  // namespace oal::noc
