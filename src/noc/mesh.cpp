#include "noc/mesh.h"

#include <cmath>
#include <stdexcept>

namespace oal::noc {

Mesh::Mesh(std::size_t cols, std::size_t rows) : cols_(cols), rows_(rows) {
  if (cols < 2 || rows < 1) throw std::invalid_argument("Mesh: need at least a 2x1 mesh");
  link_lookup_.assign(num_nodes(), std::vector<std::size_t>(num_nodes(), 0));
  auto add_link = [&](std::size_t a, std::size_t b) {
    links_.push_back({a, b});
    link_lookup_[a][b] = links_.size();  // store idx+1
  };
  for (std::size_t y = 0; y < rows_; ++y) {
    for (std::size_t x = 0; x < cols_; ++x) {
      const std::size_t n = node(x, y);
      if (x + 1 < cols_) {
        add_link(n, node(x + 1, y));
        add_link(node(x + 1, y), n);
      }
      if (y + 1 < rows_) {
        add_link(n, node(x, y + 1));
        add_link(node(x, y + 1), n);
      }
    }
  }
}

std::size_t Mesh::link_index(std::size_t from, std::size_t to) const {
  if (from >= num_nodes() || to >= num_nodes()) throw std::invalid_argument("link_index: bad node");
  const std::size_t idx = link_lookup_[from][to];
  if (idx == 0) throw std::invalid_argument("link_index: nodes not adjacent");
  return idx - 1;
}

std::vector<std::size_t> Mesh::xy_route(std::size_t src, std::size_t dst) const {
  if (src >= num_nodes() || dst >= num_nodes()) throw std::invalid_argument("xy_route: bad node");
  std::vector<std::size_t> route;
  std::size_t cx = x_of(src), cy = y_of(src);
  const std::size_t dx = x_of(dst), dy = y_of(dst);
  while (cx != dx) {
    const std::size_t nx = cx < dx ? cx + 1 : cx - 1;
    route.push_back(link_index(node(cx, cy), node(nx, cy)));
    cx = nx;
  }
  while (cy != dy) {
    const std::size_t ny = cy < dy ? cy + 1 : cy - 1;
    route.push_back(link_index(node(cx, cy), node(cx, ny)));
    cy = ny;
  }
  return route;
}

std::size_t Mesh::hop_count(std::size_t src, std::size_t dst) const {
  const auto dx = static_cast<std::ptrdiff_t>(x_of(src)) - static_cast<std::ptrdiff_t>(x_of(dst));
  const auto dy = static_cast<std::ptrdiff_t>(y_of(src)) - static_cast<std::ptrdiff_t>(y_of(dst));
  return static_cast<std::size_t>(std::abs(dx) + std::abs(dy));
}

TrafficMatrix::TrafficMatrix(std::size_t num_nodes) : m_(num_nodes, num_nodes) {}

double TrafficMatrix::total_rate() const {
  double t = 0.0;
  for (std::size_t s = 0; s < m_.rows(); ++s)
    for (std::size_t d = 0; d < m_.cols(); ++d) t += m_(s, d);
  return t;
}

TrafficMatrix TrafficMatrix::uniform(std::size_t num_nodes, double rate_per_node) {
  TrafficMatrix t(num_nodes);
  const double per_dst = rate_per_node / static_cast<double>(num_nodes - 1);
  for (std::size_t s = 0; s < num_nodes; ++s)
    for (std::size_t d = 0; d < num_nodes; ++d)
      if (s != d) t.rate(s, d) = per_dst;
  return t;
}

TrafficMatrix TrafficMatrix::transpose(std::size_t cols, std::size_t rows, double rate_per_node) {
  TrafficMatrix t(cols * rows);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      const std::size_t src = y * cols + x;
      // Transpose across the diagonal (requires square mesh for exactness;
      // coordinates are clamped otherwise).
      const std::size_t tx = y < cols ? y : cols - 1;
      const std::size_t ty = x < rows ? x : rows - 1;
      const std::size_t dst = ty * cols + tx;
      if (dst != src) t.rate(src, dst) = rate_per_node;
    }
  }
  return t;
}

TrafficMatrix TrafficMatrix::hotspot(std::size_t num_nodes, std::size_t hotspot_node,
                                     double rate_per_node, double hotspot_fraction) {
  if (hotspot_node >= num_nodes) throw std::invalid_argument("hotspot: bad node");
  TrafficMatrix t(num_nodes);
  const double to_hot = rate_per_node * hotspot_fraction;
  const double per_dst = rate_per_node * (1.0 - hotspot_fraction) / static_cast<double>(num_nodes - 1);
  for (std::size_t s = 0; s < num_nodes; ++s) {
    if (s == hotspot_node) continue;
    t.rate(s, hotspot_node) += to_hot;
    for (std::size_t d = 0; d < num_nodes; ++d)
      if (d != s) t.rate(s, d) += per_dst;
  }
  return t;
}

TrafficMatrix TrafficMatrix::bit_complement(std::size_t cols, std::size_t rows,
                                            double rate_per_node) {
  const std::size_t n = cols * rows;
  TrafficMatrix t(n);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      const std::size_t src = y * cols + x;
      const std::size_t dst = (rows - 1 - y) * cols + (cols - 1 - x);
      if (dst != src) t.rate(src, dst) = rate_per_node;
    }
  }
  return t;
}

}  // namespace oal::noc
