#include "noc/simulator.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace oal::noc {

NocSimulator::NocSimulator(const Mesh& mesh, NocParams params) : mesh_(&mesh), params_(params) {}

namespace {

struct Packet {
  double inject_time = 0.0;
  std::vector<std::size_t> route;
  std::size_t next_hop = 0;
};

struct HopEvent {
  double time = 0.0;      // arrival time at the head of the next link queue
  std::size_t packet = 0;
  bool operator>(const HopEvent& o) const { return time > o.time; }
};

}  // namespace

SimResult NocSimulator::simulate(const TrafficMatrix& t, const SimConfig& cfg) const {
  if (t.num_nodes() != mesh_->num_nodes())
    throw std::invalid_argument("NocSimulator: traffic size mismatch");
  common::Rng rng(cfg.seed);
  const double horizon = cfg.warmup_cycles + cfg.measure_cycles;
  const double service = params_.packet_service_cycles / params_.link_capacity;

  // Pre-draw all injections (Poisson per source, categorical destination).
  std::vector<Packet> packets;
  for (std::size_t s = 0; s < t.num_nodes(); ++s) {
    double rate = 0.0;
    std::vector<double> weights(t.num_nodes(), 0.0);
    for (std::size_t d = 0; d < t.num_nodes(); ++d) {
      if (d == s) continue;
      weights[d] = t.rate(s, d);
      rate += t.rate(s, d);
    }
    if (rate <= 0.0) continue;
    double clock = rng.exponential(rate);
    while (clock < horizon) {
      const std::size_t dst = rng.categorical(weights);
      Packet p;
      p.inject_time = clock;
      p.route = mesh_->xy_route(s, dst);
      packets.push_back(std::move(p));
      clock += rng.exponential(rate);
    }
  }

  // Event-driven FIFO links: serve arrivals in global time order.
  std::priority_queue<HopEvent, std::vector<HopEvent>, std::greater<>> events;
  for (std::size_t i = 0; i < packets.size(); ++i) events.push({packets[i].inject_time, i});
  std::vector<double> link_free(mesh_->num_links(), 0.0);

  std::vector<double> latencies;
  std::vector<double> hops;
  latencies.reserve(packets.size());
  std::size_t delivered_in_window = 0;
  while (!events.empty()) {
    const HopEvent ev = events.top();
    events.pop();
    Packet& p = packets[ev.packet];
    if (p.next_hop >= p.route.size()) {
      // Arrived at destination.
      const double latency = ev.time - p.inject_time;
      if (p.inject_time >= cfg.warmup_cycles && p.inject_time < horizon) {
        latencies.push_back(latency);
        hops.push_back(static_cast<double>(p.route.size()));
        ++delivered_in_window;
      }
      continue;
    }
    const std::size_t link = p.route[p.next_hop];
    const double start = std::max(ev.time, link_free[link]);
    link_free[link] = start + service;
    ++p.next_hop;
    events.push({start + service + params_.router_delay_cycles, ev.packet});
  }

  SimResult out;
  if (latencies.empty()) throw std::runtime_error("NocSimulator: no packets measured");
  out.avg_latency_cycles = common::mean(latencies);
  out.p95_latency_cycles = common::percentile(latencies, 95.0);
  out.avg_hops = common::mean(hops);
  out.packets_measured = latencies.size();
  out.offered_rate = t.total_rate();
  out.delivered_rate = static_cast<double>(delivered_in_window) / cfg.measure_cycles;
  return out;
}

}  // namespace oal::noc
