#include "noc/svr_model.h"

#include <algorithm>
#include <cmath>
#include <cmath>
#include <stdexcept>

#include "common/stats.h"
#include "ml/scaler.h"

namespace oal::noc {

common::Vec noc_features(const AnalyticalNocModel& model, const Mesh& mesh,
                         const TrafficMatrix& t) {
  const AnalyticalLatency a = model.evaluate(t);
  const std::vector<double> rho = model.link_utilization(t);
  double rho_mean = 0.0;
  for (double r : rho) rho_mean += r;
  rho_mean /= static_cast<double>(rho.size());
  const double rho_max = *std::max_element(rho.begin(), rho.end());

  // Traffic shape statistics.
  double total = 0.0, hop_sum = 0.0;
  double max_pair = 0.0;
  for (std::size_t s = 0; s < t.num_nodes(); ++s) {
    for (std::size_t d = 0; d < t.num_nodes(); ++d) {
      const double r = t.rate(s, d);
      if (r <= 0.0 || s == d) continue;
      total += r;
      hop_sum += r * static_cast<double>(mesh.hop_count(s, d));
      max_pair = std::max(max_pair, r);
    }
  }
  const double avg_hops = total > 0.0 ? hop_sum / total : 0.0;

  return {a.avg_channel_waiting_cycles,
          a.avg_source_waiting_cycles,
          a.avg_latency_cycles,
          rho_mean,
          rho_max,
          total,
          avg_hops,
          max_pair};
}

SvrNocModel::SvrNocModel(const Mesh& mesh, NocParams params, std::size_t rbf_features,
                         double rbf_gamma, std::uint64_t seed)
    : mesh_(mesh), model_(mesh_, params), sampler_(8, rbf_features, rbf_gamma, seed),
      residual_(9, ml::RlsConfig{0.99, 1.0, 0.0}) {}

common::Vec SvrNocModel::transformed(const TrafficMatrix& t) const {
  return sampler_.transform(scaler_.transform(noc_features(model_, mesh_, t)));
}

common::Vec SvrNocModel::residual_features(const TrafficMatrix& t) const {
  // Linear (scaled raw features + bias): platform drift shifts latency in a
  // way that is close to linear in the waiting-time features, and a
  // low-dimensional residual cannot destabilize distant predictions the way
  // a high-dimensional RBF residual can.
  common::Vec f = scaler_.transform(noc_features(model_, mesh_, t));
  f.push_back(1.0);
  return f;
}

void SvrNocModel::fit(const std::vector<TrafficMatrix>& traffics,
                      const std::vector<double>& sim_latency) {
  if (traffics.empty() || traffics.size() != sim_latency.size())
    throw std::invalid_argument("SvrNocModel::fit: bad data");
  std::vector<common::Vec> raw;
  raw.reserve(traffics.size());
  for (const auto& t : traffics) raw.push_back(noc_features(model_, mesh_, t));
  scaler_ = ml::StandardScaler();
  scaler_.fit(raw);
  std::vector<common::Vec> z;
  std::vector<double> target;
  z.reserve(raw.size());
  target.reserve(raw.size());
  // The SVR learns the *residual* of the queueing-theoretic model, so the
  // combined predictor can only refine — never regress below — the
  // analytical baseline it is built on.
  for (std::size_t i = 0; i < traffics.size(); ++i) {
    z.push_back(sampler_.transform(scaler_.transform(raw[i])));
    target.push_back(sim_latency[i] - model_.evaluate(traffics[i]).avg_latency_cycles);
  }
  ml::SvrConfig cfg;
  cfg.c = 20.0;
  cfg.epsilon = 0.25;
  cfg.epochs = 150;
  svr_ = ml::LinearSvr(cfg);
  svr_.fit(z, target);
  fitted_ = true;
}

double SvrNocModel::predict(const TrafficMatrix& t) const {
  if (!fitted_) throw std::logic_error("SvrNocModel::predict before fit");
  return model_.evaluate(t).avg_latency_cycles + svr_.predict(transformed(t)) +
         residual_.predict(residual_features(t));
}

void SvrNocModel::update(const TrafficMatrix& t, double measured_latency) {
  if (!fitted_) throw std::logic_error("SvrNocModel::update before fit");
  const double base =
      model_.evaluate(t).avg_latency_cycles + svr_.predict(transformed(t));
  // Robust update: a saturated network produces unbounded latencies that no
  // open-network latency model can represent; clipping the innovation keeps
  // one saturated measurement from destroying the model everywhere else.
  double target = measured_latency - base;
  const double clip = 0.5 * std::max(base, 1.0);
  target = std::clamp(target, -clip, clip);
  residual_.update(residual_features(t), target);
}

double SvrNocModel::analytical(const TrafficMatrix& t) const {
  return model_.evaluate(t).avg_latency_cycles;
}

}  // namespace oal::noc
