// 2D-mesh NoC topology with XY routing (paper Section III-C substrate).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace oal::noc {

/// Directed link identifier inside a mesh.
struct Link {
  std::size_t from = 0;
  std::size_t to = 0;
};

class Mesh {
 public:
  Mesh(std::size_t cols, std::size_t rows);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t num_nodes() const { return cols_ * rows_; }
  std::size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }

  std::size_t node(std::size_t x, std::size_t y) const { return y * cols_ + x; }
  std::size_t x_of(std::size_t n) const { return n % cols_; }
  std::size_t y_of(std::size_t n) const { return n / cols_; }

  /// Dimension-ordered (XY) route: sequence of link indices src -> dst.
  std::vector<std::size_t> xy_route(std::size_t src, std::size_t dst) const;
  /// Link index for a hop between adjacent nodes; throws if not adjacent.
  std::size_t link_index(std::size_t from, std::size_t to) const;

  std::size_t hop_count(std::size_t src, std::size_t dst) const;

 private:
  std::size_t cols_;
  std::size_t rows_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> link_lookup_;  // [from][to] -> idx+1
};

/// Traffic matrix: packet injection rate (packets/cycle) per (src, dst).
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t num_nodes);

  double& rate(std::size_t src, std::size_t dst) { return m_(src, dst); }
  double rate(std::size_t src, std::size_t dst) const { return m_(src, dst); }
  std::size_t num_nodes() const { return m_.rows(); }
  /// Total injection rate (packets/cycle over all sources).
  double total_rate() const;

  /// Canonical synthetic patterns at a given per-node injection rate.
  static TrafficMatrix uniform(std::size_t num_nodes, double rate_per_node);
  static TrafficMatrix transpose(std::size_t cols, std::size_t rows, double rate_per_node);
  static TrafficMatrix hotspot(std::size_t num_nodes, std::size_t hotspot_node,
                               double rate_per_node, double hotspot_fraction = 0.5);
  static TrafficMatrix bit_complement(std::size_t cols, std::size_t rows, double rate_per_node);

 private:
  common::Mat m_;
};

}  // namespace oal::noc
