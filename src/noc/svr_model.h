// SVR-corrected NoC latency model (Qian et al., TCAD 2015; paper Section
// III-C): "the waiting time obtained from the analytical models and the
// waiting time obtained from an NoC simulator are used as features to learn
// [an] SVR-based model to estimate NoC performance."
//
// Features per traffic configuration: the analytical model's channel/source
// waiting estimates, utilization statistics and traffic descriptors; target:
// the simulator-measured average latency.  An RBF feature map + linear SVR
// realizes the kernel SVR of the original work.  An online variant
// (RLS-refined residual) addresses the survey's closing observation that
// offline NoC models should become adaptive.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/rls.h"
#include "ml/scaler.h"
#include "ml/svr.h"
#include "noc/analytical.h"
#include "noc/simulator.h"

namespace oal::noc {

/// Feature vector of one traffic configuration (from the analytical model).
common::Vec noc_features(const AnalyticalNocModel& model, const Mesh& mesh,
                         const TrafficMatrix& t);

class SvrNocModel {
 public:
  SvrNocModel(const Mesh& mesh, NocParams params = {}, std::size_t rbf_features = 48,
              double rbf_gamma = 0.25, std::uint64_t seed = 9);

  /// Offline training on (traffic, simulated latency) pairs.
  void fit(const std::vector<TrafficMatrix>& traffics, const std::vector<double>& sim_latency);

  /// Latency prediction for a new traffic configuration.
  double predict(const TrafficMatrix& t) const;

  /// Online refinement from a new measurement (adaptive extension).
  void update(const TrafficMatrix& t, double measured_latency);

  /// Pure analytical prediction (for accuracy comparisons).
  double analytical(const TrafficMatrix& t) const;

  bool fitted() const { return fitted_; }

 private:
  common::Vec transformed(const TrafficMatrix& t) const;
  common::Vec residual_features(const TrafficMatrix& t) const;

  Mesh mesh_;
  AnalyticalNocModel model_;
  ml::StandardScaler scaler_;
  ml::RbfSampler sampler_;
  ml::LinearSvr svr_;
  ml::RecursiveLeastSquares residual_;  // online residual (linear, raw features)
  bool fitted_ = false;
};

}  // namespace oal::noc
