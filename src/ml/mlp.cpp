#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oal::ml {

namespace {
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

common::Vec softmax(const common::Vec& z) {
  double mx = z.front();
  for (double v : z) mx = std::max(mx, v);
  common::Vec p(z.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, common::Rng& rng)
    : w_(out, in), b_(out, 0.0), gw_(out, in), gb_(out, 0.0), mw_(out, in), vw_(out, in),
      mb_(out, 0.0), vb_(out, 0.0) {
  // Xavier/Glorot initialization.
  const double scale = std::sqrt(2.0 / static_cast<double>(in + out));
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) w_(r, c) = rng.normal(0.0, scale);
}

common::Vec DenseLayer::forward(const common::Vec& x) const {
  common::Vec y = w_ * x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += b_[i];
  return y;
}

common::Vec DenseLayer::backward(const common::Vec& x, const common::Vec& dy) {
  for (std::size_t r = 0; r < w_.rows(); ++r) {
    gb_[r] += dy[r];
    for (std::size_t c = 0; c < w_.cols(); ++c) gw_(r, c) += dy[r] * x[c];
  }
  common::Vec dx(w_.cols(), 0.0);
  for (std::size_t r = 0; r < w_.rows(); ++r)
    for (std::size_t c = 0; c < w_.cols(); ++c) dx[c] += w_(r, c) * dy[r];
  return dx;
}

void DenseLayer::apply_adam(double lr, double l2, std::size_t t) {
  const double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(t));
  for (std::size_t r = 0; r < w_.rows(); ++r) {
    for (std::size_t c = 0; c < w_.cols(); ++c) {
      const double g = gw_(r, c) + l2 * w_(r, c);
      mw_(r, c) = kAdamBeta1 * mw_(r, c) + (1.0 - kAdamBeta1) * g;
      vw_(r, c) = kAdamBeta2 * vw_(r, c) + (1.0 - kAdamBeta2) * g * g;
      w_(r, c) -= lr * (mw_(r, c) / bc1) / (std::sqrt(vw_(r, c) / bc2) + kAdamEps);
    }
    const double g = gb_[r];
    mb_[r] = kAdamBeta1 * mb_[r] + (1.0 - kAdamBeta1) * g;
    vb_[r] = kAdamBeta2 * vb_[r] + (1.0 - kAdamBeta2) * g * g;
    b_[r] -= lr * (mb_[r] / bc1) / (std::sqrt(vb_[r] / bc2) + kAdamEps);
  }
}

void DenseLayer::zero_grad() {
  gw_ *= 0.0;
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

// ---- Mlp -------------------------------------------------------------------

Mlp::Mlp(std::size_t input_dim, std::size_t output_dim, MlpConfig cfg)
    : input_dim_(input_dim), output_dim_(output_dim), cfg_(cfg) {
  if (input_dim == 0 || output_dim == 0) throw std::invalid_argument("Mlp: zero dimension");
  common::Rng rng(cfg_.seed);
  std::size_t prev = input_dim;
  for (std::size_t h : cfg_.hidden) {
    layers_.emplace_back(prev, h, rng);
    prev = h;
  }
  layers_.emplace_back(prev, output_dim, rng);
}

common::Vec Mlp::activate(const common::Vec& z) const {
  common::Vec a(z.size());
  if (cfg_.activation == Activation::kTanh) {
    for (std::size_t i = 0; i < z.size(); ++i) a[i] = std::tanh(z[i]);
  } else {
    for (std::size_t i = 0; i < z.size(); ++i) a[i] = z[i] > 0.0 ? z[i] : 0.0;
  }
  return a;
}

common::Vec Mlp::activate_grad(const common::Vec& z) const {
  common::Vec g(z.size());
  if (cfg_.activation == Activation::kTanh) {
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double t = std::tanh(z[i]);
      g[i] = 1.0 - t * t;
    }
  } else {
    for (std::size_t i = 0; i < z.size(); ++i) g[i] = z[i] > 0.0 ? 1.0 : 0.0;
  }
  return g;
}

common::Vec Mlp::forward(const common::Vec& x) const {
  if (x.size() != input_dim_) throw std::invalid_argument("Mlp::forward: dim mismatch");
  common::Vec a = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) a = activate(layers_[l].forward(a));
  return layers_.back().forward(a);
}

double Mlp::train_step(const common::Vec& x, const common::Vec& target, const common::Vec* mask) {
  if (target.size() != output_dim_) throw std::invalid_argument("Mlp::train_step: target dim");
  // Forward with caches.
  std::vector<common::Vec> pre, post;
  post.push_back(x);
  common::Vec a = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    common::Vec z = layers_[l].forward(a);
    pre.push_back(z);
    a = activate(z);
    post.push_back(a);
  }
  const common::Vec y = layers_.back().forward(a);

  common::Vec dy(output_dim_);
  double loss = 0.0;
  for (std::size_t i = 0; i < output_dim_; ++i) {
    const double m = mask != nullptr ? (*mask)[i] : 1.0;
    const double e = (y[i] - target[i]) * m;
    dy[i] = e;
    loss += 0.5 * e * e;
  }

  for (auto& l : layers_) l.zero_grad();
  common::Vec grad = layers_.back().backward(post.back(), dy);
  for (std::size_t l = layers_.size() - 1; l-- > 0;) {
    const common::Vec ag = activate_grad(pre[l]);
    for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= ag[i];
    grad = layers_[l].backward(post[l], grad);
  }
  ++adam_t_;
  for (auto& l : layers_) l.apply_adam(cfg_.learning_rate, cfg_.l2, adam_t_);
  return loss;
}

double Mlp::train(const std::vector<common::Vec>& xs, const std::vector<common::Vec>& targets,
                  std::size_t epochs, std::size_t batch_size, common::Rng& rng) {
  if (xs.size() != targets.size() || xs.empty()) throw std::invalid_argument("Mlp::train: bad data");
  (void)batch_size;  // per-sample Adam steps; batch_size kept for API symmetry
  double last_epoch_loss = 0.0;
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t e = 0; e < epochs; ++e) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i-- > 1;)
      std::swap(order[i], order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i)))]);
    double loss = 0.0;
    for (std::size_t idx : order) loss += train_step(xs[idx], targets[idx]);
    last_epoch_loss = loss / static_cast<double>(xs.size());
  }
  return last_epoch_loss;
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.num_params();
  return n;
}

void Mlp::copy_params_from(const Mlp& other) {
  if (other.layers_.size() != layers_.size()) throw std::invalid_argument("Mlp::copy_params_from: shape");
  layers_ = other.layers_;
}

// ---- MultiHeadClassifier ----------------------------------------------------

MultiHeadClassifier::MultiHeadClassifier(std::size_t input_dim, std::vector<std::size_t> head_sizes,
                                         MlpConfig cfg)
    : input_dim_(input_dim), cfg_(cfg), head_sizes_(std::move(head_sizes)) {
  if (head_sizes_.empty()) throw std::invalid_argument("MultiHeadClassifier: no heads");
  common::Rng rng(cfg_.seed);
  std::size_t prev = input_dim;
  for (std::size_t h : cfg_.hidden) {
    trunk_.emplace_back(prev, h, rng);
    prev = h;
  }
  for (std::size_t hs : head_sizes_) {
    if (hs < 2) throw std::invalid_argument("MultiHeadClassifier: head needs >= 2 classes");
    heads_.emplace_back(prev, hs, rng);
  }
}

MultiHeadClassifier::TrunkCache MultiHeadClassifier::trunk_forward(const common::Vec& x) const {
  TrunkCache c;
  c.post.push_back(x);
  common::Vec a = x;
  for (const auto& layer : trunk_) {
    common::Vec z = layer.forward(a);
    c.pre.push_back(z);
    a.resize(z.size());
    if (cfg_.activation == Activation::kTanh) {
      for (std::size_t i = 0; i < z.size(); ++i) a[i] = std::tanh(z[i]);
    } else {
      for (std::size_t i = 0; i < z.size(); ++i) a[i] = z[i] > 0.0 ? z[i] : 0.0;
    }
    c.post.push_back(a);
  }
  return c;
}

std::vector<common::Vec> MultiHeadClassifier::predict_proba(const common::Vec& x) const {
  if (x.size() != input_dim_) throw std::invalid_argument("MultiHeadClassifier: dim mismatch");
  const TrunkCache c = trunk_forward(x);
  std::vector<common::Vec> probs;
  probs.reserve(heads_.size());
  for (const auto& head : heads_) probs.push_back(softmax(head.forward(c.post.back())));
  return probs;
}

std::vector<std::size_t> MultiHeadClassifier::predict(const common::Vec& x) const {
  const auto probs = predict_proba(x);
  std::vector<std::size_t> cls;
  cls.reserve(probs.size());
  for (const auto& p : probs)
    cls.push_back(static_cast<std::size_t>(
        std::distance(p.begin(), std::max_element(p.begin(), p.end()))));
  return cls;
}

double MultiHeadClassifier::train_step(const common::Vec& x, const std::vector<std::size_t>& labels) {
  if (labels.size() != heads_.size())
    throw std::invalid_argument("MultiHeadClassifier::train_step: label count mismatch");
  const TrunkCache c = trunk_forward(x);

  for (auto& l : trunk_) l.zero_grad();
  for (auto& h : heads_) h.zero_grad();

  double loss = 0.0;
  common::Vec dtrunk(c.post.back().size(), 0.0);
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    if (labels[h] >= head_sizes_[h])
      throw std::invalid_argument("MultiHeadClassifier::train_step: label out of range");
    const common::Vec z = heads_[h].forward(c.post.back());
    common::Vec p = softmax(z);
    loss += -std::log(std::max(p[labels[h]], 1e-12));
    // dL/dz = p - onehot(label)
    p[labels[h]] -= 1.0;
    const common::Vec dx = heads_[h].backward(c.post.back(), p);
    for (std::size_t i = 0; i < dtrunk.size(); ++i) dtrunk[i] += dx[i];
  }

  common::Vec grad = dtrunk;
  for (std::size_t l = trunk_.size(); l-- > 0;) {
    const common::Vec& z = c.pre[l];
    if (cfg_.activation == Activation::kTanh) {
      for (std::size_t i = 0; i < grad.size(); ++i) {
        const double t = std::tanh(z[i]);
        grad[i] *= 1.0 - t * t;
      }
    } else {
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= z[i] > 0.0 ? 1.0 : 0.0;
    }
    grad = trunk_[l].backward(c.post[l], grad);
  }

  ++adam_t_;
  for (auto& l : trunk_) l.apply_adam(cfg_.learning_rate, cfg_.l2, adam_t_);
  for (auto& h : heads_) h.apply_adam(cfg_.learning_rate, cfg_.l2, adam_t_);
  return loss;
}

double MultiHeadClassifier::train(const std::vector<common::Vec>& xs,
                                  const std::vector<std::vector<std::size_t>>& labels,
                                  std::size_t epochs, std::size_t batch_size, common::Rng& rng) {
  if (xs.size() != labels.size() || xs.empty())
    throw std::invalid_argument("MultiHeadClassifier::train: bad data");
  (void)batch_size;
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  double last = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t i = order.size(); i-- > 1;)
      std::swap(order[i], order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i)))]);
    double loss = 0.0;
    for (std::size_t idx : order) loss += train_step(xs[idx], labels[idx]);
    last = loss / static_cast<double>(xs.size());
  }
  return last;
}

std::size_t MultiHeadClassifier::num_params() const {
  std::size_t n = 0;
  for (const auto& l : trunk_) n += l.num_params();
  for (const auto& h : heads_) n += h.num_params();
  return n;
}

}  // namespace oal::ml
