#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.h"

namespace oal::ml {

namespace {

// Minibatch rows per gradient shard.  The shard geometry is a property of the
// batch, not of the executor: shard s always covers rows
// [s*kGradShardRows, ...), and shard results are reduced in ascending shard
// order, so training is bitwise identical serial vs. any thread count.
constexpr std::size_t kGradShardRows = 8;

common::Mat slice_rows(const common::Mat& m, std::size_t r0, std::size_t r1) {
  common::Mat s(r1 - r0, m.cols());
  for (std::size_t r = r0; r < r1; ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) s(r - r0, c) = m(r, c);
  return s;
}

common::Vec activate_vec(Activation act, const common::Vec& z) {
  common::Vec a(z.size());
  if (act == Activation::kTanh) {
    for (std::size_t i = 0; i < z.size(); ++i) a[i] = std::tanh(z[i]);
  } else {
    for (std::size_t i = 0; i < z.size(); ++i) a[i] = z[i] > 0.0 ? z[i] : 0.0;
  }
  return a;
}

/// In-place variant of activate_vec: same elementwise math, no allocation.
void activate_vec_inplace(Activation act, common::Vec& a) {
  if (act == Activation::kTanh) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::tanh(a[i]);
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = a[i] > 0.0 ? a[i] : 0.0;
  }
}

void activate_inplace(Activation act, common::Mat& z) {
  if (act == Activation::kTanh) {
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t c = 0; c < z.cols(); ++c) z(r, c) = std::tanh(z(r, c));
  } else {
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t c = 0; c < z.cols(); ++c)
        if (z(r, c) < 0.0) z(r, c) = 0.0;
  }
}

/// g .*= activation'(z), recomputed from the *post*-activation a = act(z):
/// tanh'(z) = 1 - a^2 (bitwise equal to 1 - tanh(z)^2) and relu'(z) =
/// [a > 0], so the pre-activations never need caching.
void scale_by_activation_grad(Activation act, const common::Mat& post, common::Mat& g) {
  if (act == Activation::kTanh) {
    for (std::size_t r = 0; r < post.rows(); ++r)
      for (std::size_t c = 0; c < post.cols(); ++c) {
        const double t = post(r, c);
        g(r, c) *= 1.0 - t * t;
      }
  } else {
    for (std::size_t r = 0; r < post.rows(); ++r)
      for (std::size_t c = 0; c < post.cols(); ++c) g(r, c) *= post(r, c) > 0.0 ? 1.0 : 0.0;
  }
}

/// Fisher-Yates shuffle with the caller's deterministic RNG (the only source
/// of randomness in a training pass — no hidden engine-global state).
void shuffle_order(std::vector<std::size_t>& order, common::Rng& rng) {
  for (std::size_t i = order.size(); i-- > 1;)
    std::swap(order[i], order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i)))]);
}

}  // namespace

common::Vec softmax(const common::Vec& z) {
  double mx = z.front();
  for (double v : z) mx = std::max(mx, v);
  common::Vec p(z.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

// ---- DenseLayer ------------------------------------------------------------

DenseLayer::DenseLayer(std::size_t in, std::size_t out, common::Rng& rng,
                       std::unique_ptr<Optimizer> opt)
    : w_(out, in), b_(out, 0.0), opt_(std::move(opt)) {
  // Xavier/Glorot initialization.
  const double scale = std::sqrt(2.0 / static_cast<double>(in + out));
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) w_(r, c) = rng.normal(0.0, scale);
}

DenseLayer::DenseLayer(const DenseLayer& o)
    : w_(o.w_), b_(o.b_), opt_(o.opt_ ? o.opt_->clone() : nullptr) {}

DenseLayer& DenseLayer::operator=(const DenseLayer& o) {
  if (this != &o) {
    w_ = o.w_;
    b_ = o.b_;
    opt_ = o.opt_ ? o.opt_->clone() : nullptr;
  }
  return *this;
}

common::Vec DenseLayer::forward(const common::Vec& x) const {
  common::Vec y = w_ * x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += b_[i];
  return y;
}

// oal-lint: hot-path
void DenseLayer::forward_into(const common::Vec& x, common::Vec& y) const {
  if (w_.cols() != x.size()) throw std::invalid_argument("Mat*Vec size mismatch");
  // Same accumulation order as Mat::operator*(Vec) followed by the bias add,
  // so the result is bitwise identical to forward().
  y.resize(w_.rows());  // oal-lint: allow(hot-path-alloc)  reaches capacity once, then no-op
  for (std::size_t i = 0; i < w_.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < w_.cols(); ++j) s += w_(i, j) * x[j];
    y[i] = s + b_[i];
  }
}
// oal-lint: hot-path-end

common::Mat DenseLayer::forward_batch(const common::Mat& x) const {
  common::Mat y = common::matmul_nt(x, w_);
  common::add_row_broadcast(y, b_);
  return y;
}

void DenseLayer::grads(const common::Mat& x, const common::Mat& dy, common::Mat& gw,
                       common::Vec& gb) const {
  gw = common::matmul_tn(dy, x);
  gb = common::col_sums(dy);
}

common::Mat DenseLayer::backprop_input(const common::Mat& dy) const {
  return common::matmul(dy, w_);
}

void DenseLayer::apply(const common::Mat& gw, const common::Vec& gb) {
  opt_->apply(w_, b_, gw, gb);
}

void DenseLayer::append_params(std::vector<double>& out) const {
  out.insert(out.end(), w_.data().begin(), w_.data().end());
  out.insert(out.end(), b_.begin(), b_.end());
}

bool DenseLayer::read_params(const std::vector<double>& in, std::size_t& pos) {
  const std::size_t nw = w_.rows() * w_.cols();
  if (pos + nw + b_.size() > in.size()) return false;
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
            in.begin() + static_cast<std::ptrdiff_t>(pos + nw), w_.raw());
  pos += nw;
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
            in.begin() + static_cast<std::ptrdiff_t>(pos + b_.size()), b_.begin());
  pos += b_.size();
  return true;
}

// ---- Mlp -------------------------------------------------------------------

Mlp::Mlp(std::size_t input_dim, std::size_t output_dim, MlpConfig cfg)
    : input_dim_(input_dim), output_dim_(output_dim), cfg_(std::move(cfg)) {
  if (input_dim == 0 || output_dim == 0) throw std::invalid_argument("Mlp: zero dimension");
  common::Rng rng(cfg_.seed);
  std::size_t prev = input_dim;
  for (std::size_t h : cfg_.hidden) {
    layers_.emplace_back(prev, h, rng,
                         make_optimizer(cfg_.optimizer, cfg_.learning_rate, cfg_.l2));
    prev = h;
  }
  layers_.emplace_back(prev, output_dim, rng,
                       make_optimizer(cfg_.optimizer, cfg_.learning_rate, cfg_.l2));
}

common::Vec Mlp::forward(const common::Vec& x) const {
  if (x.size() != input_dim_) throw std::invalid_argument("Mlp::forward: dim mismatch");
  common::Vec a = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l)
    a = activate_vec(cfg_.activation, layers_[l].forward(a));
  return layers_.back().forward(a);
}

// oal-lint: hot-path
void Mlp::forward_into(const common::Vec& x, common::Vec& out, InferScratch& s) const {
  if (x.size() != input_dim_) throw std::invalid_argument("Mlp::forward: dim mismatch");
  const common::Vec* cur = &x;
  bool use_a = true;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    common::Vec& dst = use_a ? s.a : s.b;
    layers_[l].forward_into(*cur, dst);
    activate_vec_inplace(cfg_.activation, dst);
    cur = &dst;
    use_a = !use_a;
  }
  layers_.back().forward_into(*cur, out);
}
// oal-lint: hot-path-end

common::Mat Mlp::forward_batch(const common::Mat& x) const {
  if (x.cols() != input_dim_) throw std::invalid_argument("Mlp::forward_batch: dim mismatch");
  common::Mat a = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    a = layers_[l].forward_batch(a);
    activate_inplace(cfg_.activation, a);
  }
  return layers_.back().forward_batch(a);
}

Mlp::ShardGrads Mlp::backward_shard(const common::Mat& x, const common::Mat& targets,
                                    const common::Mat* mask, std::size_t row0,
                                    std::size_t row1) const {
  const std::size_t n = row1 - row0;
  common::Mat sliced;
  const common::Mat* input = &x;
  if (row0 != 0 || row1 != x.rows()) {
    sliced = slice_rows(x, row0, row1);
    input = &sliced;
  }

  // Forward; acts[l] = activated output of hidden layer l (inputs to layer
  // l+1).  Pre-activations are not cached — see scale_by_activation_grad.
  const std::size_t nlayers = layers_.size();
  std::vector<common::Mat> acts;
  acts.reserve(nlayers - 1);
  for (std::size_t l = 0; l + 1 < nlayers; ++l) {
    common::Mat z = layers_[l].forward_batch(l == 0 ? *input : acts.back());
    activate_inplace(cfg_.activation, z);
    acts.push_back(std::move(z));
  }
  const common::Mat y = layers_.back().forward_batch(nlayers == 1 ? *input : acts.back());

  common::Mat dy(n, output_dim_);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < output_dim_; ++j) {
      const double m = mask != nullptr ? (*mask)(row0 + i, j) : 1.0;
      const double e = (y(i, j) - targets(row0 + i, j)) * m;
      dy(i, j) = e;
      loss += 0.5 * e * e;
    }
  }

  ShardGrads sg;
  sg.gw.resize(nlayers);
  sg.gb.resize(nlayers);
  sg.loss = loss;
  common::Mat cur = std::move(dy);
  for (std::size_t l = nlayers; l-- > 0;) {
    const common::Mat& in = l == 0 ? *input : acts[l - 1];
    layers_[l].grads(in, cur, sg.gw[l], sg.gb[l]);
    if (l > 0) {
      cur = layers_[l].backprop_input(cur);
      scale_by_activation_grad(cfg_.activation, acts[l - 1], cur);
    }
  }
  return sg;
}

double Mlp::train_batch(const common::Mat& x, const common::Mat& targets,
                        const common::Mat* mask) {
  if (x.rows() == 0 || x.rows() != targets.rows())
    throw std::invalid_argument("Mlp::train_batch: bad batch");
  if (x.cols() != input_dim_) throw std::invalid_argument("Mlp::train_batch: input dim");
  if (targets.cols() != output_dim_) throw std::invalid_argument("Mlp::train_batch: target dim");
  if (mask != nullptr && (mask->rows() != x.rows() || mask->cols() != output_dim_))
    throw std::invalid_argument("Mlp::train_batch: mask shape");

  const std::size_t bsz = x.rows();
  const std::size_t nshards = (bsz + kGradShardRows - 1) / kGradShardRows;
  std::vector<ShardGrads> shards(nshards);
  const auto run = [&](std::size_t s) {
    const std::size_t r0 = s * kGradShardRows;
    shards[s] = backward_shard(x, targets, mask, r0, std::min(bsz, r0 + kGradShardRows));
  };
  if (cfg_.pool != nullptr && nshards > 1) {
    cfg_.pool->run_indexed(nshards, run);
  } else {
    for (std::size_t s = 0; s < nshards; ++s) run(s);
  }

  // Fixed-order reduction: ascending shard index, independent of executor.
  ShardGrads total = std::move(shards.front());
  for (std::size_t s = 1; s < nshards; ++s) {
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      total.gw[l] += shards[s].gw[l];
      for (std::size_t i = 0; i < total.gb[l].size(); ++i) total.gb[l][i] += shards[s].gb[l][i];
    }
    total.loss += shards[s].loss;
  }

  const double inv_b = 1.0 / static_cast<double>(bsz);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    total.gw[l] *= inv_b;
    for (double& v : total.gb[l]) v *= inv_b;
    layers_[l].apply(total.gw[l], total.gb[l]);
  }
  return total.loss * inv_b;
}

double Mlp::train_step(const common::Vec& x, const common::Vec& target, const common::Vec* mask) {
  if (x.size() != input_dim_) throw std::invalid_argument("Mlp::train_step: input dim");
  if (target.size() != output_dim_) throw std::invalid_argument("Mlp::train_step: target dim");
  common::Mat xb(1, input_dim_), tb(1, output_dim_);
  for (std::size_t i = 0; i < input_dim_; ++i) xb(0, i) = x[i];
  for (std::size_t i = 0; i < output_dim_; ++i) tb(0, i) = target[i];
  if (mask == nullptr) return train_batch(xb, tb);
  if (mask->size() != output_dim_) throw std::invalid_argument("Mlp::train_step: mask dim");
  common::Mat mb(1, output_dim_);
  for (std::size_t i = 0; i < output_dim_; ++i) mb(0, i) = (*mask)[i];
  return train_batch(xb, tb, &mb);
}

double Mlp::train_epoch(const common::Mat& xs, const common::Mat& targets,
                        std::size_t batch_size, common::Rng& rng) {
  if (xs.rows() == 0 || xs.rows() != targets.rows())
    throw std::invalid_argument("Mlp::train_epoch: bad data");
  const std::size_t n = xs.rows();
  if (batch_size == 0) batch_size = n;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  shuffle_order(order, rng);
  double loss_sum = 0.0;
  common::Mat xb, tb;  // gather buffers, reallocated only on batch-size change
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    const std::size_t bs = end - start;
    if (xb.rows() != bs) {
      xb = common::Mat(bs, xs.cols());
      tb = common::Mat(bs, targets.cols());
    }
    for (std::size_t i = start; i < end; ++i) {
      for (std::size_t c = 0; c < xs.cols(); ++c) xb(i - start, c) = xs(order[i], c);
      for (std::size_t c = 0; c < targets.cols(); ++c) tb(i - start, c) = targets(order[i], c);
    }
    loss_sum += train_batch(xb, tb) * static_cast<double>(bs);
  }
  return loss_sum / static_cast<double>(n);
}

double Mlp::train(const std::vector<common::Vec>& xs, const std::vector<common::Vec>& targets,
                  std::size_t epochs, std::size_t batch_size, common::Rng& rng) {
  if (xs.size() != targets.size() || xs.empty()) throw std::invalid_argument("Mlp::train: bad data");
  const common::Mat x = common::Mat::from_rows(xs);
  const common::Mat t = common::Mat::from_rows(targets);
  double last_epoch_loss = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) last_epoch_loss = train_epoch(x, t, batch_size, rng);
  return last_epoch_loss;
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.num_params();
  return n;
}

void Mlp::copy_params_from(const Mlp& other) {
  if (other.layers_.size() != layers_.size()) throw std::invalid_argument("Mlp::copy_params_from: shape");
  layers_ = other.layers_;
}

void Mlp::export_params(std::vector<double>& out) const {
  for (const auto& l : layers_) l.append_params(out);
}

bool Mlp::import_params(const std::vector<double>& in, std::size_t& pos) {
  for (auto& l : layers_)
    if (!l.read_params(in, pos)) return false;
  return true;
}

// ---- MultiHeadClassifier ----------------------------------------------------

MultiHeadClassifier::MultiHeadClassifier(std::size_t input_dim, std::vector<std::size_t> head_sizes,
                                         MlpConfig cfg)
    : input_dim_(input_dim), cfg_(std::move(cfg)), head_sizes_(std::move(head_sizes)) {
  if (head_sizes_.empty()) throw std::invalid_argument("MultiHeadClassifier: no heads");
  common::Rng rng(cfg_.seed);
  std::size_t prev = input_dim;
  for (std::size_t h : cfg_.hidden) {
    trunk_.emplace_back(prev, h, rng,
                        make_optimizer(cfg_.optimizer, cfg_.learning_rate, cfg_.l2));
    prev = h;
  }
  for (std::size_t hs : head_sizes_) {
    if (hs < 2) throw std::invalid_argument("MultiHeadClassifier: head needs >= 2 classes");
    heads_.emplace_back(prev, hs, rng,
                        make_optimizer(cfg_.optimizer, cfg_.learning_rate, cfg_.l2));
  }
}

std::vector<common::Vec> MultiHeadClassifier::predict_proba(const common::Vec& x) const {
  if (x.size() != input_dim_) throw std::invalid_argument("MultiHeadClassifier: dim mismatch");
  common::Vec a = x;
  for (const auto& layer : trunk_) a = activate_vec(cfg_.activation, layer.forward(a));
  std::vector<common::Vec> probs;
  probs.reserve(heads_.size());
  for (const auto& head : heads_) probs.push_back(softmax(head.forward(a)));
  return probs;
}

std::vector<std::size_t> MultiHeadClassifier::predict(const common::Vec& x) const {
  const auto probs = predict_proba(x);
  std::vector<std::size_t> cls;
  cls.reserve(probs.size());
  for (const auto& p : probs)
    cls.push_back(static_cast<std::size_t>(
        std::distance(p.begin(), std::max_element(p.begin(), p.end()))));
  return cls;
}

// oal-lint: hot-path
void MultiHeadClassifier::predict_into(const common::Vec& x, std::vector<std::size_t>& cls,
                                       InferScratch& s) const {
  if (x.size() != input_dim_) throw std::invalid_argument("MultiHeadClassifier: dim mismatch");
  const common::Vec* cur = &x;
  bool use_a = true;
  for (const auto& layer : trunk_) {
    common::Vec& dst = use_a ? s.a : s.b;
    layer.forward_into(*cur, dst);
    activate_vec_inplace(cfg_.activation, dst);
    cur = &dst;
    use_a = !use_a;
  }
  cls.resize(heads_.size());  // oal-lint: allow(hot-path-alloc)  reaches capacity once, then no-op
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    heads_[h].forward_into(*cur, s.logits);
    cls[h] = static_cast<std::size_t>(
        std::distance(s.logits.begin(), std::max_element(s.logits.begin(), s.logits.end())));
  }
}
// oal-lint: hot-path-end

MultiHeadClassifier::ShardGrads MultiHeadClassifier::backward_shard(
    const common::Mat& x, const std::vector<std::vector<std::size_t>>& labels, std::size_t row0,
    std::size_t row1) const {
  const std::size_t n = row1 - row0;
  common::Mat sliced;
  const common::Mat* input = &x;
  if (row0 != 0 || row1 != x.rows()) {
    sliced = slice_rows(x, row0, row1);
    input = &sliced;
  }

  // Trunk forward; acts[l] = activated output of trunk layer l.
  std::vector<common::Mat> acts;
  acts.reserve(trunk_.size());
  for (std::size_t l = 0; l < trunk_.size(); ++l) {
    common::Mat z = trunk_[l].forward_batch(l == 0 ? *input : acts.back());
    activate_inplace(cfg_.activation, z);
    acts.push_back(std::move(z));
  }
  const common::Mat& feat = trunk_.empty() ? *input : acts.back();

  ShardGrads sg;
  sg.gw.resize(trunk_.size() + heads_.size());
  sg.gb.resize(trunk_.size() + heads_.size());

  common::Mat dtrunk(n, feat.cols());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    // Head logits become dL/dz in place: softmax each row (same arithmetic
    // as ml::softmax), then subtract the one-hot label.
    common::Mat dz = heads_[h].forward_batch(feat);
    const std::size_t classes = head_sizes_[h];
    for (std::size_t i = 0; i < n; ++i) {
      double mx = dz(i, 0);
      for (std::size_t j = 0; j < classes; ++j) mx = std::max(mx, dz(i, j));
      double sum = 0.0;
      for (std::size_t j = 0; j < classes; ++j) {
        dz(i, j) = std::exp(dz(i, j) - mx);
        sum += dz(i, j);
      }
      for (std::size_t j = 0; j < classes; ++j) dz(i, j) /= sum;
      const std::size_t label = labels[row0 + i][h];
      sg.loss += -std::log(std::max(dz(i, label), 1e-12));
      dz(i, label) -= 1.0;
    }
    heads_[h].grads(feat, dz, sg.gw[trunk_.size() + h], sg.gb[trunk_.size() + h]);
    dtrunk += heads_[h].backprop_input(dz);
  }

  common::Mat cur = std::move(dtrunk);
  for (std::size_t l = trunk_.size(); l-- > 0;) {
    scale_by_activation_grad(cfg_.activation, acts[l], cur);
    const common::Mat& in = l == 0 ? *input : acts[l - 1];
    trunk_[l].grads(in, cur, sg.gw[l], sg.gb[l]);
    if (l > 0) cur = trunk_[l].backprop_input(cur);
  }
  return sg;
}

double MultiHeadClassifier::train_batch(const common::Mat& x,
                                        const std::vector<std::vector<std::size_t>>& labels) {
  if (x.rows() == 0 || x.rows() != labels.size())
    throw std::invalid_argument("MultiHeadClassifier::train_batch: bad batch");
  if (x.cols() != input_dim_)
    throw std::invalid_argument("MultiHeadClassifier::train_batch: input dim");
  for (const auto& row : labels) {
    if (row.size() != heads_.size())
      throw std::invalid_argument("MultiHeadClassifier::train_batch: label count mismatch");
    for (std::size_t h = 0; h < heads_.size(); ++h)
      if (row[h] >= head_sizes_[h])
        throw std::invalid_argument("MultiHeadClassifier::train_batch: label out of range");
  }

  const std::size_t bsz = x.rows();
  const std::size_t nshards = (bsz + kGradShardRows - 1) / kGradShardRows;
  std::vector<ShardGrads> shards(nshards);
  const auto run = [&](std::size_t s) {
    const std::size_t r0 = s * kGradShardRows;
    shards[s] = backward_shard(x, labels, r0, std::min(bsz, r0 + kGradShardRows));
  };
  if (cfg_.pool != nullptr && nshards > 1) {
    cfg_.pool->run_indexed(nshards, run);
  } else {
    for (std::size_t s = 0; s < nshards; ++s) run(s);
  }

  ShardGrads total = std::move(shards.front());
  const std::size_t nlayers = trunk_.size() + heads_.size();
  for (std::size_t s = 1; s < nshards; ++s) {
    for (std::size_t l = 0; l < nlayers; ++l) {
      total.gw[l] += shards[s].gw[l];
      for (std::size_t i = 0; i < total.gb[l].size(); ++i) total.gb[l][i] += shards[s].gb[l][i];
    }
    total.loss += shards[s].loss;
  }

  const double inv_b = 1.0 / static_cast<double>(bsz);
  for (std::size_t l = 0; l < nlayers; ++l) {
    total.gw[l] *= inv_b;
    for (double& v : total.gb[l]) v *= inv_b;
  }
  for (std::size_t l = 0; l < trunk_.size(); ++l) trunk_[l].apply(total.gw[l], total.gb[l]);
  for (std::size_t h = 0; h < heads_.size(); ++h)
    heads_[h].apply(total.gw[trunk_.size() + h], total.gb[trunk_.size() + h]);
  return total.loss * inv_b;
}

double MultiHeadClassifier::train_step(const common::Vec& x,
                                       const std::vector<std::size_t>& labels) {
  if (x.size() != input_dim_)
    throw std::invalid_argument("MultiHeadClassifier::train_step: dim mismatch");
  common::Mat xb(1, input_dim_);
  for (std::size_t i = 0; i < input_dim_; ++i) xb(0, i) = x[i];
  return train_batch(xb, {labels});
}

double MultiHeadClassifier::train_epoch(const std::vector<common::Vec>& xs,
                                        const std::vector<std::vector<std::size_t>>& labels,
                                        std::size_t batch_size, common::Rng& rng) {
  if (xs.size() != labels.size() || xs.empty())
    throw std::invalid_argument("MultiHeadClassifier::train_epoch: bad data");
  const std::size_t n = xs.size();
  if (batch_size == 0) batch_size = n;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  shuffle_order(order, rng);
  double loss_sum = 0.0;
  common::Mat xb;  // gather buffers, reallocated only on batch-size change
  std::vector<std::vector<std::size_t>> lb;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    const std::size_t bs = end - start;
    if (xb.rows() != bs) xb = common::Mat(bs, input_dim_);
    lb.resize(bs);
    for (std::size_t i = start; i < end; ++i) {
      xb.set_row(i - start, xs[order[i]]);
      lb[i - start] = labels[order[i]];
    }
    loss_sum += train_batch(xb, lb) * static_cast<double>(bs);
  }
  return loss_sum / static_cast<double>(n);
}

double MultiHeadClassifier::train(const std::vector<common::Vec>& xs,
                                  const std::vector<std::vector<std::size_t>>& labels,
                                  std::size_t epochs, std::size_t batch_size, common::Rng& rng) {
  if (xs.size() != labels.size() || xs.empty())
    throw std::invalid_argument("MultiHeadClassifier::train: bad data");
  double last = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) last = train_epoch(xs, labels, batch_size, rng);
  return last;
}

std::size_t MultiHeadClassifier::num_params() const {
  std::size_t n = 0;
  for (const auto& l : trunk_) n += l.num_params();
  for (const auto& h : heads_) n += h.num_params();
  return n;
}

void MultiHeadClassifier::export_params(std::vector<double>& out) const {
  for (const auto& l : trunk_) l.append_params(out);
  for (const auto& h : heads_) h.append_params(out);
}

bool MultiHeadClassifier::import_params(const std::vector<double>& in, std::size_t& pos) {
  for (auto& l : trunk_)
    if (!l.read_params(in, pos)) return false;
  for (auto& h : heads_)
    if (!h.read_params(in, pos)) return false;
  return true;
}

}  // namespace oal::ml
