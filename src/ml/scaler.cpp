#include "ml/scaler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::ml {

StandardScaler::StandardScaler(std::size_t dim) : mean_(dim, 0.0), m2_(dim, 0.0) {}

void StandardScaler::fit(const std::vector<common::Vec>& samples) {
  if (samples.empty()) throw std::invalid_argument("StandardScaler::fit: no samples");
  mean_.assign(samples.front().size(), 0.0);
  m2_.assign(samples.front().size(), 0.0);
  count_ = 0;
  for (const auto& s : samples) partial_fit(s);
}

void StandardScaler::partial_fit(const common::Vec& x) {
  if (mean_.empty()) {
    mean_.assign(x.size(), 0.0);
    m2_.assign(x.size(), 0.0);
  }
  if (x.size() != mean_.size()) throw std::invalid_argument("StandardScaler: dim mismatch");
  ++count_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(count_);
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

common::Vec StandardScaler::stds() const {
  common::Vec s(mean_.size(), 1.0);
  if (count_ == 0) return s;
  for (std::size_t i = 0; i < mean_.size(); ++i) {
    const double var = m2_[i] / static_cast<double>(count_);
    s[i] = var < kConstantVariance ? 1.0 : std::max(std::sqrt(var), kMinScale);
  }
  return s;
}

common::Vec StandardScaler::transform(const common::Vec& x) const {
  if (x.size() != mean_.size()) throw std::invalid_argument("StandardScaler: dim mismatch");
  const common::Vec s = stds();
  common::Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / s[i];
  return z;
}

void StandardScaler::transform_into(const common::Vec& x, common::Vec& z,
                                    TransformCache& cache) const {
  if (x.size() != mean_.size()) throw std::invalid_argument("StandardScaler: dim mismatch");
  if (cache.count != count_) {
    cache.stds = stds();
    cache.count = count_;
  }
  z.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / cache.stds[i];
}

common::Vec StandardScaler::inverse_transform(const common::Vec& z) const {
  if (z.size() != mean_.size()) throw std::invalid_argument("StandardScaler: dim mismatch");
  const common::Vec s = stds();
  common::Vec x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) x[i] = z[i] * s[i] + mean_[i];
  return x;
}

void StandardScaler::export_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(mean_.size()));
  out.push_back(static_cast<double>(count_));
  out.insert(out.end(), mean_.begin(), mean_.end());
  out.insert(out.end(), m2_.begin(), m2_.end());
}

bool StandardScaler::import_state(const std::vector<double>& in, std::size_t& pos) {
  if (pos + 2 > in.size()) return false;
  const double dim_d = in[pos];
  const double count_d = in[pos + 1];
  if (dim_d < 0.0 || dim_d > 1e9 || count_d < 0.0) return false;
  const auto dim = static_cast<std::size_t>(dim_d);
  if (pos + 2 + 2 * dim > in.size()) return false;
  pos += 2;
  mean_.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
               in.begin() + static_cast<std::ptrdiff_t>(pos + dim));
  pos += dim;
  m2_.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + dim));
  pos += dim;
  count_ = static_cast<std::size_t>(count_d);
  return true;
}

}  // namespace oal::ml
