#include "ml/rls.h"

#include <stdexcept>

namespace oal::ml {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, RlsConfig cfg)
    : cfg_(cfg), theta_(dim, 0.0), p_(common::Mat::identity(dim) * cfg.initial_p) {
  if (dim == 0) throw std::invalid_argument("RLS: dim must be > 0");
  if (cfg.lambda <= 0.0 || cfg.lambda > 1.0)
    throw std::invalid_argument("RLS: lambda must be in (0, 1]");
  if (cfg.initial_p <= 0.0) throw std::invalid_argument("RLS: initial_p must be > 0");
}

double RecursiveLeastSquares::predict(const common::Vec& x) const {
  return common::dot(theta_, x);
}

double RecursiveLeastSquares::update(const common::Vec& x, double y) {
  if (x.size() != theta_.size()) throw std::invalid_argument("RLS: feature dim mismatch");
  const double err = y - predict(x);
  // K = P x / (lambda + x' P x)
  const common::Vec px = p_ * x;
  const double denom = cfg_.lambda + common::dot(x, px) + cfg_.regularization;
  common::Vec k = common::scale(px, 1.0 / denom);
  // theta += K err
  for (std::size_t i = 0; i < theta_.size(); ++i) theta_[i] += k[i] * err;
  // P = (P - K x' P) / lambda
  const common::Mat kxp = common::outer(k, px);
  p_ -= kxp;
  p_ *= 1.0 / cfg_.lambda;
  // Symmetrize to fight numerical drift.
  for (std::size_t i = 0; i < p_.rows(); ++i)
    for (std::size_t j = i + 1; j < p_.cols(); ++j) {
      const double v = 0.5 * (p_(i, j) + p_(j, i));
      p_(i, j) = v;
      p_(j, i) = v;
    }
  ++updates_;
  return err;
}

void RecursiveLeastSquares::set_weights(common::Vec theta) {
  if (theta.size() != theta_.size()) throw std::invalid_argument("RLS: weight dim mismatch");
  theta_ = std::move(theta);
}

void RecursiveLeastSquares::set_lambda(double lambda) {
  if (lambda <= 0.0 || lambda > 1.0) throw std::invalid_argument("RLS: lambda out of range");
  cfg_.lambda = lambda;
}

void RecursiveLeastSquares::reset_covariance() {
  p_ = common::Mat::identity(theta_.size()) * cfg_.initial_p;
}

}  // namespace oal::ml
