#include "ml/rls.h"

#include <stdexcept>

namespace oal::ml {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, RlsConfig cfg)
    : cfg_(cfg), theta_(dim, 0.0), p_(common::Mat::identity(dim) * cfg.initial_p) {
  if (dim == 0) throw std::invalid_argument("RLS: dim must be > 0");
  if (cfg.lambda <= 0.0 || cfg.lambda > 1.0)
    throw std::invalid_argument("RLS: lambda must be in (0, 1]");
  if (cfg.initial_p <= 0.0) throw std::invalid_argument("RLS: initial_p must be > 0");
}

double RecursiveLeastSquares::predict(const common::Vec& x) const {
  return common::dot(theta_, x);
}

double RecursiveLeastSquares::update(const common::Vec& x, double y) {
  Scratch scratch;
  return update(x, y, scratch);
}

// oal-lint: hot-path
double RecursiveLeastSquares::update(const common::Vec& x, double y, Scratch& scratch) {
  if (x.size() != theta_.size()) throw std::invalid_argument("RLS: feature dim mismatch");
  const std::size_t n = theta_.size();
  const double err = y - predict(x);
  // K = P x / (lambda + x' P x); px/k live in the caller's scratch (resize
  // is a no-op once the buffers have grown to the largest dim in use).
  if (scratch.px.size() < n) scratch.px.resize(n);  // oal-lint: allow(hot-path-alloc)
  if (scratch.k.size() < n) scratch.k.resize(n);    // oal-lint: allow(hot-path-alloc)
  common::Vec& px = scratch.px;
  common::Vec& k = scratch.k;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += p_(i, j) * x[j];
    px[i] = s;
  }
  double xpx = 0.0;
  for (std::size_t i = 0; i < n; ++i) xpx += x[i] * px[i];
  const double denom = cfg_.lambda + xpx + cfg_.regularization;
  const double inv_denom = 1.0 / denom;
  for (std::size_t i = 0; i < n; ++i) k[i] = px[i] * inv_denom;
  // theta += K err
  for (std::size_t i = 0; i < n; ++i) theta_[i] += k[i] * err;
  // P = (P - K x' P) / lambda — fused elementwise; bitwise-equal to the
  // outer/subtract/scale triple it replaces (same products, same order).
  const double inv_lambda = 1.0 / cfg_.lambda;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) p_(i, j) = (p_(i, j) - k[i] * px[j]) * inv_lambda;
  // Symmetrize to fight numerical drift.
  for (std::size_t i = 0; i < p_.rows(); ++i)
    for (std::size_t j = i + 1; j < p_.cols(); ++j) {
      const double v = 0.5 * (p_(i, j) + p_(j, i));
      p_(i, j) = v;
      p_(j, i) = v;
    }
  ++updates_;
  return err;
}
// oal-lint: hot-path-end

void RecursiveLeastSquares::set_weights(common::Vec theta) {
  if (theta.size() != theta_.size()) throw std::invalid_argument("RLS: weight dim mismatch");
  theta_ = std::move(theta);
}

void RecursiveLeastSquares::set_lambda(double lambda) {
  if (lambda <= 0.0 || lambda > 1.0) throw std::invalid_argument("RLS: lambda out of range");
  cfg_.lambda = lambda;
}

void RecursiveLeastSquares::reset_covariance() {
  p_ = common::Mat::identity(theta_.size()) * cfg_.initial_p;
}

}  // namespace oal::ml
