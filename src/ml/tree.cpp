#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace oal::ml {

namespace {

// Candidate split: sorts idx by feature f and scans boundaries.
struct SplitResult {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // lower is better
};

}  // namespace

// ---- RegressionTree ---------------------------------------------------------

void RegressionTree::fit(const std::vector<common::Vec>& x, const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("RegressionTree::fit: bad data");
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  root_ = build(x, y, idx, 0);
}

std::unique_ptr<RegressionTree::Node> RegressionTree::build(const std::vector<common::Vec>& x,
                                                            const std::vector<double>& y,
                                                            std::vector<std::size_t>& idx,
                                                            std::size_t depth) {
  auto node = std::make_unique<Node>();
  double mean = 0.0;
  for (std::size_t i : idx) mean += y[i];
  mean /= static_cast<double>(idx.size());
  node->value = mean;

  if (depth >= cfg_.max_depth || idx.size() < cfg_.min_samples_split) return node;

  const std::size_t dims = x.front().size();
  SplitResult best;
  for (std::size_t f = 0; f < dims; ++f) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    // Prefix sums for O(n) variance scan.
    double lsum = 0.0, lsq = 0.0;
    double rsum = 0.0, rsq = 0.0;
    for (std::size_t i : idx) {
      rsum += y[i];
      rsq += y[i] * y[i];
    }
    for (std::size_t k = 0; k + 1 < idx.size(); ++k) {
      const double yi = y[idx[k]];
      lsum += yi;
      lsq += yi * yi;
      rsum -= yi;
      rsq -= yi * yi;
      if (x[idx[k]][f] == x[idx[k + 1]][f]) continue;  // no boundary here
      const std::size_t nl = k + 1, nr = idx.size() - nl;
      if (nl < cfg_.min_samples_leaf || nr < cfg_.min_samples_leaf) continue;
      const double lvar = lsq - lsum * lsum / static_cast<double>(nl);
      const double rvar = rsq - rsum * rsum / static_cast<double>(nr);
      const double score = lvar + rvar;  // total within-node SSE
      if (score < best.score) {
        best = {true, f, 0.5 * (x[idx[k]][f] + x[idx[k + 1]][f]), score};
      }
    }
  }
  if (!best.found) return node;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (x[i][best.feature] <= best.threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->leaf = false;
  node->feature = best.feature;
  node->threshold = best.threshold;
  node->left = build(x, y, left_idx, depth + 1);
  node->right = build(x, y, right_idx, depth + 1);
  return node;
}

double RegressionTree::predict(const common::Vec& x) const {
  if (!root_) throw std::logic_error("RegressionTree::predict before fit");
  const Node* n = root_.get();
  while (!n->leaf) n = x[n->feature] <= n->threshold ? n->left.get() : n->right.get();
  return n->value;
}

namespace {
std::size_t node_depth(const RegressionTree* /*unused*/) { return 0; }
}  // namespace

std::size_t RegressionTree::depth() const {
  struct Walker {
    static std::size_t depth(const Node* n) {
      if (n == nullptr || n->leaf) return 0;
      return 1 + std::max(depth(n->left.get()), depth(n->right.get()));
    }
  };
  (void)node_depth(this);
  return Walker::depth(root_.get());
}

std::size_t RegressionTree::num_leaves() const {
  struct Walker {
    static std::size_t leaves(const Node* n) {
      if (n == nullptr) return 0;
      if (n->leaf) return 1;
      return leaves(n->left.get()) + leaves(n->right.get());
    }
  };
  return Walker::leaves(root_.get());
}

// ---- ClassificationTree -----------------------------------------------------

void ClassificationTree::fit(const std::vector<common::Vec>& x, const std::vector<std::size_t>& y,
                             std::size_t num_classes) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("ClassificationTree::fit: bad data");
  num_classes_ = num_classes;
  for (std::size_t label : y)
    if (label >= num_classes) throw std::invalid_argument("ClassificationTree: label out of range");
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  root_ = build(x, y, idx, 0);
}

std::unique_ptr<ClassificationTree::Node> ClassificationTree::build(
    const std::vector<common::Vec>& x, const std::vector<std::size_t>& y,
    std::vector<std::size_t>& idx, std::size_t depth) {
  auto node = std::make_unique<Node>();
  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t i : idx) ++counts[y[i]];
  node->label = static_cast<std::size_t>(
      std::distance(counts.begin(), std::max_element(counts.begin(), counts.end())));

  const bool pure = counts[node->label] == idx.size();
  if (pure || depth >= cfg_.max_depth || idx.size() < cfg_.min_samples_split) return node;

  const std::size_t dims = x.front().size();
  SplitResult best;
  std::vector<double> lcnt(num_classes_), rcnt(num_classes_);
  for (std::size_t f = 0; f < dims; ++f) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    std::fill(lcnt.begin(), lcnt.end(), 0.0);
    std::fill(rcnt.begin(), rcnt.end(), 0.0);
    for (std::size_t i : idx) rcnt[y[i]] += 1.0;
    for (std::size_t k = 0; k + 1 < idx.size(); ++k) {
      lcnt[y[idx[k]]] += 1.0;
      rcnt[y[idx[k]]] -= 1.0;
      if (x[idx[k]][f] == x[idx[k + 1]][f]) continue;
      const double nl = static_cast<double>(k + 1);
      const double nr = static_cast<double>(idx.size() - k - 1);
      if (nl < static_cast<double>(cfg_.min_samples_leaf) ||
          nr < static_cast<double>(cfg_.min_samples_leaf))
        continue;
      double gl = 1.0, gr = 1.0;
      for (std::size_t c = 0; c < num_classes_; ++c) {
        gl -= (lcnt[c] / nl) * (lcnt[c] / nl);
        gr -= (rcnt[c] / nr) * (rcnt[c] / nr);
      }
      const double score = nl * gl + nr * gr;  // weighted Gini impurity
      if (score < best.score) {
        best = {true, f, 0.5 * (x[idx[k]][f] + x[idx[k + 1]][f]), score};
      }
    }
  }
  if (!best.found) return node;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (x[i][best.feature] <= best.threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->leaf = false;
  node->feature = best.feature;
  node->threshold = best.threshold;
  node->left = build(x, y, left_idx, depth + 1);
  node->right = build(x, y, right_idx, depth + 1);
  return node;
}

std::size_t ClassificationTree::predict(const common::Vec& x) const {
  if (!root_) throw std::logic_error("ClassificationTree::predict before fit");
  const Node* n = root_.get();
  while (!n->leaf) n = x[n->feature] <= n->threshold ? n->left.get() : n->right.get();
  return n->label;
}

}  // namespace oal::ml
