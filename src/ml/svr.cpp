#include "ml/svr.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/constants.h"

namespace oal::ml {

void LinearSvr::fit(const std::vector<common::Vec>& x, const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("LinearSvr::fit: bad data");
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  w_.assign(d, 0.0);
  b_ = 0.0;
  common::Rng rng(cfg_.seed);

  // Averaged SGD on the primal:
  //   min (1/2)||w||^2 + C * sum_i max(0, |y_i - (w x_i + b)| - eps)
  common::Vec w_avg(d, 0.0);
  double b_avg = 0.0;
  std::size_t avg_count = 0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const double lambda = 1.0 / (cfg_.c * static_cast<double>(n));
  std::size_t t = 0;
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    for (std::size_t i = order.size(); i-- > 1;)
      std::swap(order[i], order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i)))]);
    for (std::size_t idx : order) {
      ++t;
      const double eta = cfg_.learning_rate / (1.0 + cfg_.learning_rate * lambda * static_cast<double>(t));
      const double pred = common::dot(w_, x[idx]) + b_;
      const double resid = y[idx] - pred;
      double g = 0.0;  // d(loss)/d(pred)
      if (resid > cfg_.epsilon) g = -1.0;
      else if (resid < -cfg_.epsilon) g = 1.0;
      for (std::size_t j = 0; j < d; ++j) w_[j] -= eta * (lambda * w_[j] + g * x[idx][j]);
      b_ -= eta * g;
      // Polyak averaging over the second half of training.
      if (e >= cfg_.epochs / 2) {
        ++avg_count;
        for (std::size_t j = 0; j < d; ++j)
          w_avg[j] += (w_[j] - w_avg[j]) / static_cast<double>(avg_count);
        b_avg += (b_ - b_avg) / static_cast<double>(avg_count);
      }
    }
  }
  if (avg_count > 0) {
    w_ = w_avg;
    b_ = b_avg;
  }
  fitted_ = true;
}

double LinearSvr::predict(const common::Vec& x) const {
  if (!fitted_) throw std::logic_error("LinearSvr::predict before fit");
  return common::dot(w_, x) + b_;
}

RbfSampler::RbfSampler(std::size_t input_dim, std::size_t num_features, double gamma,
                       std::uint64_t seed)
    : projection_(num_features, input_dim), offsets_(num_features) {
  if (gamma <= 0.0) throw std::invalid_argument("RbfSampler: gamma must be > 0");
  common::Rng rng(seed);
  const double scale = std::sqrt(2.0 * gamma);
  for (std::size_t i = 0; i < num_features; ++i) {
    for (std::size_t j = 0; j < input_dim; ++j) projection_(i, j) = rng.normal(0.0, scale);
    offsets_[i] = rng.uniform(0.0, 2.0 * common::kPi);
  }
}

common::Vec RbfSampler::transform(const common::Vec& x) const {
  common::Vec z = projection_ * x;
  const double amp = std::sqrt(2.0 / static_cast<double>(z.size()));
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = amp * std::cos(z[i] + offsets_[i]);
  return z;
}

std::vector<common::Vec> RbfSampler::transform(const std::vector<common::Vec>& x) const {
  std::vector<common::Vec> out;
  out.reserve(x.size());
  for (const auto& xi : x) out.push_back(transform(xi));
  return out;
}

}  // namespace oal::ml
