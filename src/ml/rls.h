// Recursive least squares with exponential forgetting.
//
// This is the workhorse online model of the paper (Section III-B): power and
// performance models are linear in a feature vector derived from hardware
// counters, and are updated after every snippet/frame with a forgetting
// factor lambda so stale workload phases decay.  Gupta et al. (IEEE TC 2018)
// use exactly this construction for integrated-GPU frame-time modeling.
#pragma once

#include "common/matrix.h"

namespace oal::ml {

struct RlsConfig {
  double lambda = 0.98;        ///< forgetting factor in (0, 1]
  double initial_p = 1e3;      ///< initial covariance scale (P = p0 * I)
  double regularization = 0.0; ///< optional Tikhonov term added to denominator
};

class RecursiveLeastSquares {
 public:
  RecursiveLeastSquares(std::size_t dim, RlsConfig cfg = {});

  /// Predicted output theta^T x.
  double predict(const common::Vec& x) const;

  /// Reusable temporaries for the allocation-free update overload.  One
  /// Scratch serves models of any dim (buffers grow to the largest dim seen
  /// and then stop allocating), so a controller can share one across its
  /// per-frame refits.
  struct Scratch {
    common::Vec px;  ///< P x
    common::Vec k;   ///< Kalman gain K
  };

  /// One RLS update step; returns the a-priori prediction error (y - theta^T x).
  double update(const common::Vec& x, double y);

  /// Allocation-free update: arithmetic identical (bitwise) to
  /// update(x, y), with the temporaries parked in `scratch`.  Steady-state
  /// it performs no heap allocation; update(x, y) is a thin wrapper.
  double update(const common::Vec& x, double y, Scratch& scratch);

  const common::Vec& weights() const { return theta_; }
  void set_weights(common::Vec theta);
  const common::Mat& covariance() const { return p_; }
  double lambda() const { return cfg_.lambda; }
  void set_lambda(double lambda);
  std::size_t dim() const { return theta_.size(); }
  std::size_t updates() const { return updates_; }

  /// Resets covariance (keeps weights) — used after abrupt workload change.
  void reset_covariance();

 private:
  RlsConfig cfg_;
  common::Vec theta_;
  common::Mat p_;
  std::size_t updates_ = 0;
};

}  // namespace oal::ml
