// Deep Q-network (MLP value function + experience replay + target network).
//
// This is the "deep Q-learning based RL" baseline the paper contrasts with
// online imitation learning: it needs a reward function and many environment
// interactions to converge, which is exactly the drawback Figs. 3-4
// illustrate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ml/mlp.h"

namespace oal::ml {

struct DqnConfig {
  std::vector<std::size_t> hidden{32, 32};
  double learning_rate = 1e-3;
  double gamma = 0.6;
  double epsilon_init = 0.5;
  double epsilon_min = 0.05;
  double epsilon_decay = 0.999;
  std::size_t replay_capacity = 2048;
  std::size_t batch_size = 32;
  std::size_t target_sync_period = 64;  ///< steps between target-network syncs
  std::size_t min_replay = 64;          ///< do not train before this many samples
  std::uint64_t seed = 17;
  /// Update rule for the online network (ml/optimizer.h).
  OptimizerConfig optimizer{};
};

class Dqn {
 public:
  Dqn(std::size_t state_dim, std::size_t num_actions, DqnConfig cfg = {});

  /// Epsilon-greedy action (decays epsilon).
  std::size_t select_action(const common::Vec& state);
  std::size_t greedy_action(const common::Vec& state) const;

  /// Stores a transition and runs one mini-batch update if enough replay.
  void observe(const common::Vec& state, std::size_t action, double reward,
               const common::Vec& next_state);

  double epsilon() const { return epsilon_; }
  std::size_t num_actions() const { return num_actions_; }
  std::size_t replay_size() const { return replay_count_; }

  /// One stored transition.  The replay buffer is a preallocated ring:
  /// every slot's state vectors are sized at construction, so steady-state
  /// observe() copies into existing storage and never touches the heap.
  struct Transition {
    common::Vec state;
    std::size_t action = 0;
    double reward = 0.0;
    common::Vec next_state;
  };
  /// i-th oldest stored transition (i < replay_size()) — the same indexing
  /// the sampling in train_batch uses; exposed so tests can assert the ring
  /// reproduces deque eviction order exactly.
  const Transition& replay_at(std::size_t i) const {
    return replay_[(replay_head_ + i) % replay_.size()];
  }

  /// Appends the online + target network weights, epsilon, the exploration
  /// rng's position, and the step counter.  The replay buffer is *not*
  /// captured (it is bulky, transient warm-up state); a restored agent
  /// greedy-acts identically and resumes training from an empty buffer.
  void export_params(std::vector<double>& out) const;
  /// Restores what export_params wrote; false on underrun or shape mismatch.
  bool import_params(const std::vector<double>& in, std::size_t& pos);

 private:
  void train_batch();

  std::size_t state_dim_;
  std::size_t num_actions_;
  DqnConfig cfg_;
  Mlp online_;
  Mlp target_;
  double epsilon_;
  common::Rng rng_;
  /// Replay ring: replay_capacity preallocated slots; slot (head + i) % cap
  /// holds the i-th oldest transition, matching the retired deque's order
  /// (and therefore its sampling stream) bit for bit.
  std::vector<Transition> replay_;
  std::size_t replay_head_ = 0;
  std::size_t replay_count_ = 0;
  /// Inference scratch for the per-decide greedy path; mutable because
  /// greedy_action is logically const.  A Dqn is single-owner (one
  /// controller), never shared across threads.
  mutable common::Vec q_scratch_;
  mutable Mlp::InferScratch fwd_scratch_;
  std::size_t steps_ = 0;
};

}  // namespace oal::ml
