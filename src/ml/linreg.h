// Batch ridge (L2-regularized least squares) regression.
//
// Used for: offline bootstrap of the online power/performance models, the
// explicit-NMPC surface approximation, skin-temperature estimation, and the
// NoC analytical-model correction.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace oal::ml {

class RidgeRegression {
 public:
  explicit RidgeRegression(double alpha = 1e-6) : alpha_(alpha) {}

  /// Fits theta = argmin ||X theta - y||^2 + alpha ||theta||^2.
  /// If fit_intercept, an intercept is estimated separately (not penalized).
  void fit(const std::vector<common::Vec>& x, const std::vector<double>& y,
           bool fit_intercept = true);

  double predict(const common::Vec& x) const;
  std::vector<double> predict(const std::vector<common::Vec>& x) const;

  bool fitted() const { return fitted_; }
  const common::Vec& coefficients() const { return theta_; }
  double intercept() const { return intercept_; }

  /// Coefficient of determination on a dataset.
  double r2(const std::vector<common::Vec>& x, const std::vector<double>& y) const;

 private:
  double alpha_;
  common::Vec theta_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Expands x to degree-2 polynomial features: [x, x_i*x_j (i<=j)].
common::Vec quadratic_features(const common::Vec& x);

}  // namespace oal::ml
