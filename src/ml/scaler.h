// Feature standardization.
//
// All learned models in this project (policies, SVR, MLPs) operate on
// standardized features; the scaler can be fit offline and then updated
// online so the feature distribution tracks workload drift.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace oal::ml {

/// Per-feature (x - mean) / std standardizer.
class StandardScaler {
 public:
  StandardScaler() = default;
  explicit StandardScaler(std::size_t dim);

  /// Batch fit from rows of samples.
  void fit(const std::vector<common::Vec>& samples);

  /// Online (streaming) update of mean/variance via Welford's algorithm.
  void partial_fit(const common::Vec& x);

  common::Vec transform(const common::Vec& x) const;
  common::Vec inverse_transform(const common::Vec& z) const;

  /// Caller-owned cache of the derived stds for the allocation-free path.
  /// `count` stamps the fit the stds were computed from; transform_into
  /// recomputes them only when the scaler has been (re)fit since — a
  /// policy-update event, never the steady-state decide path.
  struct TransformCache {
    common::Vec stds;
    std::size_t count = static_cast<std::size_t>(-1);
  };
  /// Allocation-free transform (once `z`/`cache` have their capacity):
  /// identical arithmetic to transform(), bitwise-equal results.
  void transform_into(const common::Vec& x, common::Vec& z, TransformCache& cache) const;

  std::size_t dim() const { return mean_.size(); }
  bool fitted() const { return count_ > 0; }
  const common::Vec& mean() const { return mean_; }
  /// Standard deviations.  Constant features get scale 1.0 — as in
  /// sklearn's StandardScaler — so a feature that happens to be constant in
  /// the training set (e.g. the neutral thermal telemetry of offline
  /// profiling) is centered but never amplified: dividing by a ~0 std would
  /// launch any runtime deviation to ~1e9 and saturate the network.
  /// Near-constant features are floored at kMinScale, bounding the
  /// amplification of a runtime deviation at 1/kMinScale instead of the
  /// cliff a tiny true std would open.
  common::Vec stds() const;

  /// Appends {dim, count, mean, m2} to `out` — enough to reconstruct the
  /// scaler exactly (transform() of the restored scaler is bitwise identical).
  void export_state(std::vector<double>& out) const;
  /// Restores what export_state wrote; false on underrun or a nonsensical
  /// dimension, leaving the scaler unchanged in that case.
  bool import_state(const std::vector<double>& in, std::size_t& pos);

 private:
  common::Vec mean_;
  common::Vec m2_;
  std::size_t count_ = 0;
  static constexpr double kConstantVariance = 1e-12;  ///< below this: scale 1.0
  static constexpr double kMinScale = 1e-2;           ///< floor for tiny true stds
};

}  // namespace oal::ml
