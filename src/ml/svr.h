// Support vector regression.
//
// Qian et al. (TCAD 2015) learn an SVR latency model for NoCs on top of
// queueing-theoretic features; Section III-C of the surveyed paper adopts
// that construction.  We implement epsilon-insensitive linear SVR trained by
// averaged stochastic subgradient descent, plus a random-Fourier-feature map
// (Rahimi & Recht) that approximates an RBF kernel, so `RbfSampler + LinearSvr`
// behaves like kernel SVR at a fraction of the cost.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace oal::ml {

struct SvrConfig {
  double c = 10.0;          ///< inverse regularization strength
  double epsilon = 0.01;    ///< epsilon-insensitive tube half-width
  double learning_rate = 0.05;
  std::size_t epochs = 60;
  std::uint64_t seed = 7;
};

class LinearSvr {
 public:
  explicit LinearSvr(SvrConfig cfg = {}) : cfg_(cfg) {}

  void fit(const std::vector<common::Vec>& x, const std::vector<double>& y);
  double predict(const common::Vec& x) const;
  bool fitted() const { return fitted_; }
  const common::Vec& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  SvrConfig cfg_;
  common::Vec w_;
  double b_ = 0.0;
  bool fitted_ = false;
};

/// Random Fourier features approximating an RBF kernel with bandwidth gamma:
/// z(x) = sqrt(2/D) * cos(W x + b),  W_ij ~ N(0, 2*gamma), b_i ~ U[0, 2*pi).
class RbfSampler {
 public:
  RbfSampler(std::size_t input_dim, std::size_t num_features, double gamma,
             std::uint64_t seed = 11);

  common::Vec transform(const common::Vec& x) const;
  std::vector<common::Vec> transform(const std::vector<common::Vec>& x) const;
  std::size_t output_dim() const { return offsets_.size(); }

 private:
  common::Mat projection_;  // D x input_dim
  common::Vec offsets_;     // D
};

}  // namespace oal::ml
