// CART decision trees.
//
// Kim et al. (TVLSI 2017) and Mandal et al. (TVLSI 2019) represent offline IL
// policies with regression-tree models because they evaluate in a handful of
// comparisons — cheap enough for an OS governor.  We provide both a
// regression tree (variance-reduction splits) and a classification tree
// (Gini splits) so the offline-IL experiments can compare policy
// representations (ablation bench).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"

namespace oal::ml {

struct TreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_split = 8;
  std::size_t min_samples_leaf = 4;
};

class RegressionTree {
 public:
  explicit RegressionTree(TreeConfig cfg = {}) : cfg_(cfg) {}

  void fit(const std::vector<common::Vec>& x, const std::vector<double>& y);
  double predict(const common::Vec& x) const;
  bool fitted() const { return root_ != nullptr; }
  std::size_t depth() const;
  std::size_t num_leaves() const;

 private:
  struct Node {
    bool leaf = true;
    double value = 0.0;         // leaf prediction
    std::size_t feature = 0;    // split feature
    double threshold = 0.0;     // split threshold (go left if x <= t)
    std::unique_ptr<Node> left, right;
  };
  std::unique_ptr<Node> build(const std::vector<common::Vec>& x, const std::vector<double>& y,
                              std::vector<std::size_t>& idx, std::size_t depth);
  TreeConfig cfg_;
  std::unique_ptr<Node> root_;
};

class ClassificationTree {
 public:
  explicit ClassificationTree(TreeConfig cfg = {}) : cfg_(cfg) {}

  /// Labels must be in [0, num_classes).
  void fit(const std::vector<common::Vec>& x, const std::vector<std::size_t>& y,
           std::size_t num_classes);
  std::size_t predict(const common::Vec& x) const;
  bool fitted() const { return root_ != nullptr; }

 private:
  struct Node {
    bool leaf = true;
    std::size_t label = 0;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left, right;
  };
  std::unique_ptr<Node> build(const std::vector<common::Vec>& x,
                              const std::vector<std::size_t>& y, std::vector<std::size_t>& idx,
                              std::size_t depth);
  TreeConfig cfg_;
  std::size_t num_classes_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace oal::ml
