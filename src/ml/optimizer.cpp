#include "ml/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace oal::ml {

namespace {

void check_shapes(const common::Mat& w, const common::Vec& b, const common::Mat& gw,
                  const common::Vec& gb) {
  if (gw.rows() != w.rows() || gw.cols() != w.cols() || gb.size() != b.size())
    throw std::invalid_argument("Optimizer::apply: gradient shape mismatch");
}

}  // namespace

// ---- Sgd -------------------------------------------------------------------

Sgd::Sgd(double learning_rate, double l2, double momentum)
    : lr_(learning_rate), l2_(l2), momentum_(momentum) {}

void Sgd::apply(common::Mat& w, common::Vec& b, const common::Mat& gw, const common::Vec& gb) {
  check_shapes(w, b, gw, gb);
  if (momentum_ != 0.0 && vw_.empty()) {
    vw_ = common::Mat(w.rows(), w.cols());
    vb_.assign(b.size(), 0.0);
  }
  // Flat loops over the row-major storage: every element's update is
  // independent, so this is bit-identical to the nested (row, col) loops.
  const std::size_t n = w.rows() * w.cols();
  double* __restrict__ wp = w.raw();
  const double* __restrict__ gp = gw.raw();
  if (momentum_ != 0.0) {
    double* __restrict__ vp = vw_.raw();
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gp[i] + l2_ * wp[i];
      vp[i] = momentum_ * vp[i] - lr_ * g;
      wp[i] += vp[i];
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      vb_[i] = momentum_ * vb_[i] - lr_ * gb[i];
      b[i] += vb_[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) wp[i] -= lr_ * (gp[i] + l2_ * wp[i]);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] -= lr_ * gb[i];
  }
}

std::unique_ptr<Optimizer> Sgd::clone() const { return std::make_unique<Sgd>(*this); }

// ---- Adam ------------------------------------------------------------------

Adam::Adam(double learning_rate, double l2, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), l2_(l2), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

void Adam::apply(common::Mat& w, common::Vec& b, const common::Mat& gw, const common::Vec& gb) {
  check_shapes(w, b, gw, gb);
  if (mw_.empty()) {
    mw_ = common::Mat(w.rows(), w.cols());
    vw_ = common::Mat(w.rows(), w.cols());
    mb_.assign(b.size(), 0.0);
    vb_.assign(b.size(), 0.0);
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  // Flat loops over the row-major storage: every element's update is
  // independent, so this is bit-identical to the nested (row, col) loops, and
  // the compiler can vectorize the sqrt/div chain (element-wise IEEE ops —
  // vector and scalar lanes round identically).
  const std::size_t n = w.rows() * w.cols();
  double* __restrict__ wp = w.raw();
  double* __restrict__ mp = mw_.raw();
  double* __restrict__ vp = vw_.raw();
  const double* __restrict__ gp = gw.raw();
  const double omb1 = 1.0 - beta1_, omb2 = 1.0 - beta2_;
  for (std::size_t i = 0; i < n; ++i) {
    const double g = gp[i] + l2_ * wp[i];
    const double m = beta1_ * mp[i] + omb1 * g;
    const double v = beta2_ * vp[i] + omb2 * g * g;
    mp[i] = m;
    vp[i] = v;
    wp[i] -= lr_ * (m / bc1) / (std::sqrt(v / bc2) + eps_);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double g = gb[i];
    const double m = beta1_ * mb_[i] + omb1 * g;
    const double v = beta2_ * vb_[i] + omb2 * g * g;
    mb_[i] = m;
    vb_[i] = v;
    b[i] -= lr_ * (m / bc1) / (std::sqrt(v / bc2) + eps_);
  }
}

std::unique_ptr<Optimizer> Adam::clone() const { return std::make_unique<Adam>(*this); }

std::unique_ptr<Optimizer> make_optimizer(const OptimizerConfig& cfg, double learning_rate,
                                          double l2) {
  switch (cfg.kind) {
    case OptimizerConfig::Kind::kSgd:
      return std::make_unique<Sgd>(learning_rate, l2, cfg.momentum);
    case OptimizerConfig::Kind::kAdam:
      return std::make_unique<Adam>(learning_rate, l2, cfg.beta1, cfg.beta2, cfg.epsilon);
  }
  throw std::invalid_argument("make_optimizer: unknown optimizer kind");
}

}  // namespace oal::ml
