// Tabular Q-learning.
//
// Paper Section IV-A2 describes the two standard RL baselines for DRM:
// table-based Q-learning (impractical storage for large state spaces, slow
// convergence) and deep-Q learning.  This file implements the tabular
// variant; see dqn.h for the deep variant.  The DRM controllers in src/core
// use these as the RL baselines of Figs. 3 and 4.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace oal::ml {

struct QLearnConfig {
  double alpha = 0.1;          ///< learning rate
  double gamma = 0.6;          ///< discount factor
  double epsilon_init = 0.5;   ///< initial exploration rate
  double epsilon_min = 0.05;
  double epsilon_decay = 0.999;  ///< multiplicative per-step decay
  double optimistic_init = 0.0;  ///< initial Q value for unseen (s,a)
  std::uint64_t seed = 13;
};

/// Q-table over hashed discrete states and a fixed discrete action set.
class TabularQ {
 public:
  TabularQ(std::size_t num_actions, QLearnConfig cfg = {});

  /// Epsilon-greedy action selection (decays epsilon).
  std::size_t select_action(std::uint64_t state);
  /// Pure greedy action (no exploration, no decay).
  std::size_t greedy_action(std::uint64_t state) const;

  /// Q-learning update: Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a)).
  void update(std::uint64_t state, std::size_t action, double reward, std::uint64_t next_state);

  double q_value(std::uint64_t state, std::size_t action) const;

  /// Appends the complete learning state — epsilon, the exploration rng's
  /// mid-stream position (u64 words bit-preserved in doubles), and the
  /// Q-table sorted by state id (so the wire bytes are deterministic even
  /// though the hash map isn't ordered).  A restored learner's subsequent
  /// select_action/update sequence is bitwise identical to the original's.
  void export_state(std::vector<double>& out) const;
  /// Restores what export_state wrote; false (learner unchanged) on underrun
  /// or an action-count mismatch.
  bool import_state(const std::vector<double>& in, std::size_t& pos);

  double epsilon() const { return epsilon_; }
  std::size_t num_states_visited() const { return table_.size(); }
  /// Bytes of Q-table storage (the paper's argument against tabular RL).
  std::size_t storage_bytes() const;

 private:
  const std::vector<double>& row(std::uint64_t state) const;
  std::vector<double>& row_mut(std::uint64_t state);

  std::size_t num_actions_;
  QLearnConfig cfg_;
  double epsilon_;
  common::Rng rng_;
  std::unordered_map<std::uint64_t, std::vector<double>> table_;
  std::vector<double> default_row_;
};

/// Hashes a vector of small discrete components into a state id.
std::uint64_t hash_state(const std::vector<int>& components);
/// Same FNV-1a hash over a caller-owned array — the allocation-free form the
/// controllers' per-step discretization uses (identical bytes mixed in the
/// identical order, so the ids match the vector overload's exactly).
std::uint64_t hash_state(const int* components, std::size_t n);

}  // namespace oal::ml
