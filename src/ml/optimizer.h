// Pluggable parameter-update rules for the neural-network trainers.
//
// The batch training engine (ml/mlp.h) reduces minibatch gradients into one
// (gw, gb) pair per layer and hands them to an Optimizer for the actual
// parameter step.  Each layer owns one Optimizer instance, so per-layer
// state (momentum buffers, Adam moments, the bias-correction step count)
// lives inside the optimizer and copies with the network (DQN target syncs
// clone optimizer state along with the weights, exactly as the pre-refactor
// per-layer Adam buffers did).
//
// Implementations must be deterministic: apply() may only depend on its
// arguments and the optimizer's own state, and must traverse parameters in
// row-major order so training stays bitwise reproducible.
#pragma once

#include <memory>

#include "common/matrix.h"

namespace oal::ml {

/// Per-layer update rule: consumes the reduced minibatch gradients and steps
/// the parameters in place.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update step.  `w`/`b` are the layer parameters, `gw`/`gb` the
  /// (already batch-averaged) loss gradients of the same shapes.
  virtual void apply(common::Mat& w, common::Vec& b, const common::Mat& gw,
                     const common::Vec& gb) = 0;

  /// Deep copy including accumulated state (moments, step counts).
  virtual std::unique_ptr<Optimizer> clone() const = 0;
};

/// Optimizer selection carried by MlpConfig/DqnConfig (copyable config, the
/// polymorphic instances are materialized per layer by make_optimizer).
struct OptimizerConfig {
  enum class Kind { kSgd, kAdam };
  /// Adam is the default: it is the update rule this library has always
  /// used, and the Adam implementation is bitwise-identical to the
  /// pre-optimizer-interface per-layer update.
  Kind kind = Kind::kAdam;
  /// Sgd: classical momentum (0 = plain gradient descent).
  double momentum = 0.0;
  /// Adam moments/stability (SNIPPETS.md OptimizerAdam shape).
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Plain SGD with optional classical momentum and L2 weight decay:
///   v = momentum * v - lr * (g + l2 * w);  w += v.
class Sgd : public Optimizer {
 public:
  Sgd(double learning_rate, double l2, double momentum = 0.0);

  void apply(common::Mat& w, common::Vec& b, const common::Mat& gw,
             const common::Vec& gb) override;
  std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double l2_;
  double momentum_;
  common::Mat vw_;  ///< momentum buffers, lazily sized on first apply
  common::Vec vb_;
};

/// Adam (Kingma & Ba) with bias correction and L2 weight decay folded into
/// the gradient.  The arithmetic and parameter traversal order match the
/// pre-refactor DenseLayer::apply_adam exactly, so a default-configured
/// network trains bitwise-identically to the old implementation.
class Adam : public Optimizer {
 public:
  Adam(double learning_rate, double l2, double beta1 = 0.9, double beta2 = 0.999,
       double epsilon = 1e-8);

  void apply(common::Mat& w, common::Vec& b, const common::Mat& gw,
             const common::Vec& gb) override;
  std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double l2_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;       ///< step count for bias correction
  common::Mat mw_, vw_;     ///< first/second moments, lazily sized
  common::Vec mb_, vb_;
};

/// Materializes the configured optimizer for one layer.
std::unique_ptr<Optimizer> make_optimizer(const OptimizerConfig& cfg, double learning_rate,
                                          double l2);

}  // namespace oal::ml
