#include "ml/dqn.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace oal::ml {

namespace {
MlpConfig make_mlp_config(const DqnConfig& cfg, std::uint64_t seed_offset) {
  MlpConfig m;
  m.hidden = cfg.hidden;
  m.activation = Activation::kRelu;
  m.learning_rate = cfg.learning_rate;
  m.seed = cfg.seed + seed_offset;
  m.optimizer = cfg.optimizer;
  return m;
}
}  // namespace

Dqn::Dqn(std::size_t state_dim, std::size_t num_actions, DqnConfig cfg)
    : state_dim_(state_dim), num_actions_(num_actions), cfg_(cfg),
      online_(state_dim, num_actions, make_mlp_config(cfg, 0)),
      target_(state_dim, num_actions, make_mlp_config(cfg, 0)),
      epsilon_(cfg.epsilon_init), rng_(cfg.seed + 99) {
  if (num_actions == 0) throw std::invalid_argument("Dqn: need at least one action");
  target_.copy_params_from(online_);
  // Preallocate every replay slot (including its state vectors) up front so
  // steady-state observe() copy-assigns into existing storage — the decision
  // hot path never grows the heap after construction.
  replay_.resize(cfg_.replay_capacity);
  for (Transition& t : replay_) {
    t.state.resize(state_dim_);
    t.next_state.resize(state_dim_);
  }
}

std::size_t Dqn::select_action(const common::Vec& state) {
  std::size_t a;
  if (rng_.bernoulli(epsilon_)) {
    a = static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(num_actions_) - 1));
  } else {
    a = greedy_action(state);
  }
  epsilon_ = std::max(cfg_.epsilon_min, epsilon_ * cfg_.epsilon_decay);
  return a;
}

std::size_t Dqn::greedy_action(const common::Vec& state) const {
  online_.forward_into(state, q_scratch_, fwd_scratch_);
  return static_cast<std::size_t>(
      std::distance(q_scratch_.begin(), std::max_element(q_scratch_.begin(), q_scratch_.end())));
}

void Dqn::observe(const common::Vec& state, std::size_t action, double reward,
                  const common::Vec& next_state) {
  if (state.size() != state_dim_ || next_state.size() != state_dim_)
    throw std::invalid_argument("Dqn::observe: state dim mismatch");
  if (action >= num_actions_) throw std::invalid_argument("Dqn::observe: bad action");
  if (cfg_.replay_capacity > 0) {
    // Ring insert, identical ordering to the retired deque's
    // push_back-then-pop_front: when full, the oldest slot is overwritten in
    // place and becomes the newest.
    const bool full = replay_count_ == cfg_.replay_capacity;
    Transition& slot =
        full ? replay_[replay_head_] : replay_[(replay_head_ + replay_count_) % cfg_.replay_capacity];
    slot.state = state;  // equal-size copy: no reallocation
    slot.action = action;
    slot.reward = reward;
    slot.next_state = next_state;
    if (full) {
      replay_head_ = (replay_head_ + 1) % cfg_.replay_capacity;
    } else {
      ++replay_count_;
    }
  }
  ++steps_;
  if (replay_count_ >= cfg_.min_replay) train_batch();
  if (steps_ % cfg_.target_sync_period == 0) target_.copy_params_from(online_);
}

void Dqn::train_batch() {
  // Sample the whole minibatch up front (same rng draw count and order as the
  // historical per-transition loop), then evaluate it through one batched
  // online/target forward pass each instead of per-transition vectors.
  const std::size_t bsz = cfg_.batch_size;
  std::vector<const Transition*> batch(bsz);
  for (std::size_t b = 0; b < bsz; ++b) {
    // Index i = i-th oldest, exactly as the deque indexed; replay_at maps it
    // onto the ring, so the sampled transition stream is bitwise unchanged.
    const auto i = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(replay_count_) - 1));
    batch[b] = &replay_at(i);
  }

  common::Mat states(bsz, state_dim_), next_states(bsz, state_dim_);
  for (std::size_t b = 0; b < bsz; ++b) {
    states.set_row(b, batch[b]->state);
    next_states.set_row(b, batch[b]->next_state);
  }

  const common::Mat next_q = target_.forward_batch(next_states);
  common::Mat targets = online_.forward_batch(states);
  common::Mat mask(bsz, num_actions_, 0.0);
  for (std::size_t b = 0; b < bsz; ++b) {
    double best_next = next_q(b, 0);
    for (std::size_t a = 1; a < num_actions_; ++a) best_next = std::max(best_next, next_q(b, a));
    targets(b, batch[b]->action) = batch[b]->reward + cfg_.gamma * best_next;
    mask(b, batch[b]->action) = 1.0;
  }
  online_.train_batch(states, targets, &mask);
}

void Dqn::export_params(std::vector<double>& out) const {
  out.push_back(static_cast<double>(state_dim_));
  out.push_back(static_cast<double>(num_actions_));
  online_.export_params(out);
  target_.export_params(out);
  out.push_back(epsilon_);
  const common::Rng::State rs = rng_.state();
  for (std::uint64_t w : rs.s) {
    double d = 0.0;
    std::memcpy(&d, &w, sizeof(d));
    out.push_back(d);
  }
  out.push_back(rs.has_cached_normal ? 1.0 : 0.0);
  out.push_back(rs.cached_normal);
  out.push_back(static_cast<double>(steps_));
}

bool Dqn::import_params(const std::vector<double>& in, std::size_t& pos) {
  if (pos + 2 > in.size()) return false;
  if (in[pos] != static_cast<double>(state_dim_) ||
      in[pos + 1] != static_cast<double>(num_actions_))
    return false;
  std::size_t p = pos + 2;
  if (!online_.import_params(in, p) || !target_.import_params(in, p)) return false;
  if (p + 8 > in.size()) return false;
  epsilon_ = in[p++];
  common::Rng::State rs;
  for (std::uint64_t& w : rs.s) {
    std::memcpy(&w, &in[p++], sizeof(w));
  }
  rs.has_cached_normal = in[p++] != 0.0;
  rs.cached_normal = in[p++];
  rng_.set_state(rs);
  steps_ = static_cast<std::size_t>(in[p++]);
  // Replay is not part of the artifact: restart from an empty ring (slots
  // themselves stay allocated).
  replay_head_ = 0;
  replay_count_ = 0;
  pos = p;
  return true;
}

}  // namespace oal::ml
