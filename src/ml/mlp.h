// Multi-layer perceptrons trained with backpropagation (paper Section IV-A3:
// "the policy is represented as a neural network and it is updated using the
// back-propagation algorithm").
//
// Training is batch-first: minibatches travel as matrices (rows = samples)
// through GEMM kernels (common/matrix.h), gradients are reduced over
// fixed-size row shards in ascending shard order, and the reduced gradient is
// handed to a pluggable ml::Optimizer (ml/optimizer.h) for the parameter
// step.  The fixed shard geometry makes training bitwise reproducible at any
// thread count: an optional common::ThreadPool only decides *who* computes a
// shard, never how the reduction is ordered (the engine's parallel == serial
// contract, extended to training).  The scalar train_step routes through the
// batch path as a 1-row batch, so there is exactly one backprop
// implementation.
//
// Two variants are provided:
//  * Mlp — generic regression network with linear outputs (used by the DQN
//    baseline and by function-approximation experiments).
//  * MultiHeadClassifier — a shared trunk with one softmax head per control
//    knob; this is the IL policy representation (one head each for the
//    number of little/big cores and the little/big frequency levels).
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ml/optimizer.h"

namespace oal::common {
class ThreadPool;
}  // namespace oal::common

namespace oal::ml {

enum class Activation { kTanh, kRelu };

/// One dense layer.  Parameters plus the layer's optimizer; gradients live in
/// caller-owned buffers so shards can backprop concurrently through a const
/// layer.
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, common::Rng& rng,
             std::unique_ptr<Optimizer> opt);
  DenseLayer(const DenseLayer& o);
  DenseLayer& operator=(const DenseLayer& o);
  DenseLayer(DenseLayer&&) = default;
  DenseLayer& operator=(DenseLayer&&) = default;

  common::Vec forward(const common::Vec& x) const;
  /// Allocation-free forward: writes y = W*x + b into `y` (resized to
  /// out_dim(); no reallocation once capacity suffices).  `y` must not alias
  /// `x`.  Identical FP operation order to forward(), so the results are
  /// bitwise equal.
  void forward_into(const common::Vec& x, common::Vec& y) const;
  /// Batch forward: Y = X * W^T + b (rows = samples).
  common::Mat forward_batch(const common::Mat& x) const;

  /// Parameter gradients of a batch: gw = dY^T * X, gb = column sums of dY.
  void grads(const common::Mat& x, const common::Mat& dy, common::Mat& gw,
             common::Vec& gb) const;
  /// Input gradient of a batch: dX = dY * W.
  common::Mat backprop_input(const common::Mat& dy) const;

  /// One optimizer step on the (batch-averaged) gradients.
  void apply(const common::Mat& gw, const common::Vec& gb);

  std::size_t in_dim() const { return w_.cols(); }
  std::size_t out_dim() const { return w_.rows(); }
  std::size_t num_params() const { return w_.rows() * w_.cols() + b_.size(); }

  const common::Mat& weights() const { return w_; }

  /// Appends w (row-major) then b to `out` — the artifact-store wire format.
  /// Optimizer state is deliberately excluded: a restored layer serves
  /// inference / fresh training, not mid-stream optimizer resumption.
  void append_params(std::vector<double>& out) const;
  /// Reads back what append_params wrote (layer shape must already match);
  /// false on underrun, leaving pos unspecified.
  bool read_params(const std::vector<double>& in, std::size_t& pos);

 private:
  common::Mat w_;  // out x in
  common::Vec b_;  // out
  std::unique_ptr<Optimizer> opt_;
};

struct MlpConfig {
  std::vector<std::size_t> hidden{32};
  Activation activation = Activation::kTanh;
  double learning_rate = 1e-3;
  double l2 = 0.0;
  std::uint64_t seed = 1;
  /// Update rule (ml/optimizer.h); default Adam matches the historical update.
  OptimizerConfig optimizer{};
  /// Optional pool for shard-parallel gradient computation.  Results are
  /// bitwise identical with or without it.  Must not be the pool this
  /// network trains *on* (pool tasks may not block on their own pool), so
  /// controllers built inside ExperimentEngine workers leave it null.
  common::ThreadPool* pool = nullptr;
};

/// Regression MLP with linear outputs, trained on (optionally masked) MSE.
class Mlp {
 public:
  Mlp(std::size_t input_dim, std::size_t output_dim, MlpConfig cfg = {});

  common::Vec forward(const common::Vec& x) const;

  /// Reusable activation buffers for the allocation-free inference path.
  /// Sized lazily on first use (max layer width), then stable: a controller
  /// owning one InferScratch per network performs zero steady-state heap
  /// allocations per forward_into() call.
  struct InferScratch {
    common::Vec a, b;
  };
  /// Allocation-free inference into `out` (must not alias `x`).  Bitwise
  /// identical to forward(): same per-layer FP operation order.
  void forward_into(const common::Vec& x, common::Vec& out, InferScratch& s) const;

  /// Batch inference: rows = samples.
  common::Mat forward_batch(const common::Mat& x) const;

  /// One optimizer step on 0.5*||mask .* (f(x) - target)||^2; returns the
  /// loss.  mask == nullptr means all outputs contribute.  Routed through
  /// train_batch as a 1-row batch.
  double train_step(const common::Vec& x, const common::Vec& target,
                    const common::Vec* mask = nullptr);

  /// One optimizer step on a minibatch (rows = samples); returns the mean
  /// per-sample loss.  mask, when given, has the same shape as targets.
  double train_batch(const common::Mat& x, const common::Mat& targets,
                     const common::Mat* mask = nullptr);

  /// One pass over the dataset in minibatches of `batch_size`, visiting
  /// samples in an order drawn from the caller's seeded rng; returns the
  /// mean per-sample loss of the pass.
  double train_epoch(const common::Mat& xs, const common::Mat& targets,
                     std::size_t batch_size, common::Rng& rng);

  /// Mini-batch training over a dataset; returns mean loss of the last epoch.
  double train(const std::vector<common::Vec>& xs, const std::vector<common::Vec>& targets,
               std::size_t epochs, std::size_t batch_size, common::Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }
  std::size_t num_params() const;

  /// Copies all parameters (and optimizer state) from another network of
  /// identical shape (used for DQN target networks).
  void copy_params_from(const Mlp& other);

  /// Appends every layer's parameters to `out` (see DenseLayer::append_params).
  void export_params(std::vector<double>& out) const;
  /// Restores parameters into a network of identical architecture; false on
  /// underrun.  forward() is then bitwise identical to the exported network's.
  bool import_params(const std::vector<double>& in, std::size_t& pos);

 private:
  struct ShardGrads {
    std::vector<common::Mat> gw;
    std::vector<common::Vec> gb;
    double loss = 0.0;
  };
  ShardGrads backward_shard(const common::Mat& x, const common::Mat& targets,
                            const common::Mat* mask, std::size_t row0,
                            std::size_t row1) const;

  std::size_t input_dim_;
  std::size_t output_dim_;
  MlpConfig cfg_;
  std::vector<DenseLayer> layers_;
};

/// Shared-trunk multi-head softmax classifier: the IL policy network.
class MultiHeadClassifier {
 public:
  /// head_sizes[h] = number of classes of head h.
  MultiHeadClassifier(std::size_t input_dim, std::vector<std::size_t> head_sizes,
                      MlpConfig cfg = {});

  /// Per-head class probabilities.
  std::vector<common::Vec> predict_proba(const common::Vec& x) const;
  /// Per-head argmax class.
  std::vector<std::size_t> predict(const common::Vec& x) const;

  /// Reusable trunk/logit buffers for the allocation-free decision path.
  struct InferScratch {
    common::Vec a, b, logits;
  };
  /// Per-head argmax written into `cls` (resized to num_heads()), taken
  /// directly from the head logits — the softmax is skipped entirely.  exp
  /// is strictly increasing and the per-head division by the partition sum
  /// is monotone, so the logit argmax (first-max tie-break, exactly
  /// std::max_element's) equals predict()'s softmax argmax; the equivalence
  /// is asserted bitwise in tests/test_hot_path_alloc.cpp.  Zero heap
  /// allocations once the scratch buffers have grown to the layer widths.
  void predict_into(const common::Vec& x, std::vector<std::size_t>& cls, InferScratch& s) const;

  /// One optimizer step on the summed cross-entropy of all heads; returns
  /// the loss.  Routed through train_batch as a 1-row batch.
  double train_step(const common::Vec& x, const std::vector<std::size_t>& labels);

  /// One optimizer step on a minibatch (rows = samples); labels[i] holds one
  /// class per head for sample i.  Returns the mean per-sample loss.
  double train_batch(const common::Mat& x,
                     const std::vector<std::vector<std::size_t>>& labels);

  /// One pass over the dataset in minibatches of `batch_size`; sample order
  /// is drawn from the caller's seeded rng.  Returns the mean loss.
  double train_epoch(const std::vector<common::Vec>& xs,
                     const std::vector<std::vector<std::size_t>>& labels,
                     std::size_t batch_size, common::Rng& rng);

  /// Mini-batch training; returns mean loss of the final epoch.
  double train(const std::vector<common::Vec>& xs,
               const std::vector<std::vector<std::size_t>>& labels, std::size_t epochs,
               std::size_t batch_size, common::Rng& rng);

  std::size_t num_heads() const { return heads_.size(); }
  std::size_t num_params() const;

  /// Appends trunk then head parameters to `out`.
  void export_params(std::vector<double>& out) const;
  /// Restores into an identically-shaped classifier; false on underrun.
  bool import_params(const std::vector<double>& in, std::size_t& pos);
  /// Storage footprint in bytes assuming 4-byte fixed-point parameters (the
  /// paper stores the policy in <20 KB of firmware memory).
  std::size_t storage_bytes() const { return num_params() * 4; }

 private:
  struct ShardGrads {
    std::vector<common::Mat> gw;  // trunk layers, then heads
    std::vector<common::Vec> gb;
    double loss = 0.0;
  };
  ShardGrads backward_shard(const common::Mat& x,
                            const std::vector<std::vector<std::size_t>>& labels,
                            std::size_t row0, std::size_t row1) const;

  std::size_t input_dim_;
  MlpConfig cfg_;
  std::vector<DenseLayer> trunk_;
  std::vector<DenseLayer> heads_;
  std::vector<std::size_t> head_sizes_;
};

/// Numerically-stable softmax.
common::Vec softmax(const common::Vec& z);

}  // namespace oal::ml
