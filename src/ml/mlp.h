// Multi-layer perceptrons trained with backpropagation (paper Section IV-A3:
// "the policy is represented as a neural network and it is updated using the
// back-propagation algorithm").
//
// Two variants are provided:
//  * Mlp — generic regression network with linear outputs (used by the DQN
//    baseline and by function-approximation experiments).
//  * MultiHeadClassifier — a shared trunk with one softmax head per control
//    knob; this is the IL policy representation (one head each for the
//    number of little/big cores and the little/big frequency levels).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace oal::ml {

enum class Activation { kTanh, kRelu };

/// One dense layer with Adam optimizer state.
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, common::Rng& rng);

  common::Vec forward(const common::Vec& x) const;
  /// Backward pass: given dL/dy and the cached input, accumulates parameter
  /// gradients and returns dL/dx.
  common::Vec backward(const common::Vec& x, const common::Vec& dy);

  void apply_adam(double lr, double l2, std::size_t t);
  void zero_grad();

  std::size_t in_dim() const { return w_.cols(); }
  std::size_t out_dim() const { return w_.rows(); }
  std::size_t num_params() const { return w_.rows() * w_.cols() + b_.size(); }

  const common::Mat& weights() const { return w_; }

 private:
  common::Mat w_;       // out x in
  common::Vec b_;       // out
  common::Mat gw_;      // gradient accumulators
  common::Vec gb_;
  common::Mat mw_, vw_; // Adam moments
  common::Vec mb_, vb_;
};

struct MlpConfig {
  std::vector<std::size_t> hidden{32};
  Activation activation = Activation::kTanh;
  double learning_rate = 1e-3;
  double l2 = 0.0;
  std::uint64_t seed = 1;
};

/// Regression MLP with linear outputs, trained on (optionally masked) MSE.
class Mlp {
 public:
  Mlp(std::size_t input_dim, std::size_t output_dim, MlpConfig cfg = {});

  common::Vec forward(const common::Vec& x) const;

  /// One SGD/Adam step on 0.5*||mask .* (f(x) - target)||^2; returns the loss.
  /// mask == nullptr means all outputs contribute.
  double train_step(const common::Vec& x, const common::Vec& target,
                    const common::Vec* mask = nullptr);

  /// Mini-batch training over a dataset; returns mean loss of the last epoch.
  double train(const std::vector<common::Vec>& xs, const std::vector<common::Vec>& targets,
               std::size_t epochs, std::size_t batch_size, common::Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }
  std::size_t num_params() const;

  /// Copies all parameters from another network of identical shape (used for
  /// DQN target networks).
  void copy_params_from(const Mlp& other);

 private:
  friend class MultiHeadClassifier;
  common::Vec activate(const common::Vec& z) const;
  common::Vec activate_grad(const common::Vec& z) const;

  std::size_t input_dim_;
  std::size_t output_dim_;
  MlpConfig cfg_;
  std::vector<DenseLayer> layers_;
  std::size_t adam_t_ = 0;
};

/// Shared-trunk multi-head softmax classifier: the IL policy network.
class MultiHeadClassifier {
 public:
  /// head_sizes[h] = number of classes of head h.
  MultiHeadClassifier(std::size_t input_dim, std::vector<std::size_t> head_sizes,
                      MlpConfig cfg = {});

  /// Per-head class probabilities.
  std::vector<common::Vec> predict_proba(const common::Vec& x) const;
  /// Per-head argmax class.
  std::vector<std::size_t> predict(const common::Vec& x) const;

  /// One Adam step on the summed cross-entropy of all heads; returns loss.
  double train_step(const common::Vec& x, const std::vector<std::size_t>& labels);

  /// Mini-batch training; returns mean loss of the final epoch.
  double train(const std::vector<common::Vec>& xs,
               const std::vector<std::vector<std::size_t>>& labels, std::size_t epochs,
               std::size_t batch_size, common::Rng& rng);

  std::size_t num_heads() const { return heads_.size(); }
  std::size_t num_params() const;
  /// Storage footprint in bytes assuming 4-byte fixed-point parameters (the
  /// paper stores the policy in <20 KB of firmware memory).
  std::size_t storage_bytes() const { return num_params() * 4; }

 private:
  struct TrunkCache {
    std::vector<common::Vec> pre;   // pre-activation per layer
    std::vector<common::Vec> post;  // post-activation per layer (post[0] = input)
  };
  TrunkCache trunk_forward(const common::Vec& x) const;

  std::size_t input_dim_;
  MlpConfig cfg_;
  std::vector<DenseLayer> trunk_;
  std::vector<DenseLayer> heads_;
  std::vector<std::size_t> head_sizes_;
  std::size_t adam_t_ = 0;
};

/// Numerically-stable softmax.
common::Vec softmax(const common::Vec& z);

}  // namespace oal::ml
