#include "ml/qlearn.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace oal::ml {

TabularQ::TabularQ(std::size_t num_actions, QLearnConfig cfg)
    : num_actions_(num_actions), cfg_(cfg), epsilon_(cfg.epsilon_init), rng_(cfg.seed),
      default_row_(num_actions, cfg.optimistic_init) {
  if (num_actions == 0) throw std::invalid_argument("TabularQ: need at least one action");
}

const std::vector<double>& TabularQ::row(std::uint64_t state) const {
  const auto it = table_.find(state);
  return it == table_.end() ? default_row_ : it->second;
}

std::vector<double>& TabularQ::row_mut(std::uint64_t state) {
  auto [it, inserted] = table_.try_emplace(state, default_row_);
  return it->second;
}

std::size_t TabularQ::select_action(std::uint64_t state) {
  std::size_t a;
  if (rng_.bernoulli(epsilon_)) {
    a = static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(num_actions_) - 1));
  } else {
    a = greedy_action(state);
  }
  epsilon_ = std::max(cfg_.epsilon_min, epsilon_ * cfg_.epsilon_decay);
  return a;
}

std::size_t TabularQ::greedy_action(std::uint64_t state) const {
  const auto& q = row(state);
  return static_cast<std::size_t>(std::distance(q.begin(), std::max_element(q.begin(), q.end())));
}

void TabularQ::update(std::uint64_t state, std::size_t action, double reward,
                      std::uint64_t next_state) {
  if (action >= num_actions_) throw std::invalid_argument("TabularQ::update: bad action");
  const auto& next_q = row(next_state);
  const double best_next = *std::max_element(next_q.begin(), next_q.end());
  auto& q = row_mut(state);
  q[action] += cfg_.alpha * (reward + cfg_.gamma * best_next - q[action]);
}

double TabularQ::q_value(std::uint64_t state, std::size_t action) const {
  return row(state)[action];
}

namespace {

double u64_as_double(std::uint64_t v) {
  double d = 0.0;
  std::memcpy(&d, &v, sizeof(d));
  return d;
}

std::uint64_t double_as_u64(double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

}  // namespace

void TabularQ::export_state(std::vector<double>& out) const {
  out.push_back(epsilon_);
  const common::Rng::State rs = rng_.state();
  for (std::uint64_t w : rs.s) out.push_back(u64_as_double(w));
  out.push_back(rs.has_cached_normal ? 1.0 : 0.0);
  out.push_back(rs.cached_normal);
  out.push_back(static_cast<double>(num_actions_));
  out.push_back(static_cast<double>(table_.size()));
  std::vector<std::uint64_t> states;
  states.reserve(table_.size());
  // Hash order is fine here: this pass only harvests the keys, and the sort
  // below fixes the export order before anything is written.
  // oal-lint: allow(unordered-iter)
  for (const auto& [state, q] : table_) states.push_back(state);
  std::sort(states.begin(), states.end());
  for (std::uint64_t state : states) {
    out.push_back(u64_as_double(state));
    const auto& q = table_.at(state);
    out.insert(out.end(), q.begin(), q.end());
  }
}

bool TabularQ::import_state(const std::vector<double>& in, std::size_t& pos) {
  if (pos + 8 > in.size()) return false;
  std::size_t p = pos;
  const double epsilon = in[p++];
  common::Rng::State rs;
  for (std::uint64_t& w : rs.s) w = double_as_u64(in[p++]);
  rs.has_cached_normal = in[p++] != 0.0;
  rs.cached_normal = in[p++];
  if (in[p] != static_cast<double>(num_actions_)) return false;
  ++p;
  const double rows_d = in[p++];
  if (rows_d < 0.0 || rows_d > 1e12) return false;
  const auto rows = static_cast<std::size_t>(rows_d);
  if (p + rows * (1 + num_actions_) > in.size()) return false;
  std::unordered_map<std::uint64_t, std::vector<double>> table;
  table.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t state = double_as_u64(in[p++]);
    table.emplace(state, std::vector<double>(in.begin() + static_cast<std::ptrdiff_t>(p),
                                             in.begin() + static_cast<std::ptrdiff_t>(p + num_actions_)));
    p += num_actions_;
  }
  epsilon_ = epsilon;
  rng_.set_state(rs);
  table_ = std::move(table);
  pos = p;
  return true;
}

std::size_t TabularQ::storage_bytes() const {
  // Key + row of doubles per visited state.
  return table_.size() * (sizeof(std::uint64_t) + num_actions_ * sizeof(double));
}

std::uint64_t hash_state(const std::vector<int>& components) {
  return hash_state(components.data(), components.size());
}

std::uint64_t hash_state(const int* components, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (std::size_t i = 0; i < n; ++i) {
    auto v = static_cast<std::uint64_t>(static_cast<std::int64_t>(components[i]));
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace oal::ml
