#include "ml/staff.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oal::ml {

StaffModel::StaffModel(std::size_t dim, StaffConfig cfg)
    : cfg_(cfg),
      rls_(dim, RlsConfig{cfg.lambda_init, cfg.initial_p, 0.0}),
      active_(dim, true),
      feat_mean_(dim, 0.0),
      feat_m2_(dim, 0.0) {
  if (cfg.lambda_min <= 0.0 || cfg.lambda_max > 1.0 || cfg.lambda_min > cfg.lambda_max)
    throw std::invalid_argument("STAFF: invalid lambda bounds");
  if (cfg.top_k > dim) throw std::invalid_argument("STAFF: top_k > dim");
}

common::Vec StaffModel::masked(const common::Vec& x) const {
  common::Vec xm(x);
  for (std::size_t i = 0; i < xm.size(); ++i)
    if (!active_[i]) xm[i] = 0.0;
  return xm;
}

double StaffModel::predict(const common::Vec& x) const { return rls_.predict(masked(x)); }

double StaffModel::update(const common::Vec& x, double y) {
  if (x.size() != feat_mean_.size()) throw std::invalid_argument("STAFF: feature dim mismatch");
  // Track feature statistics on the raw (unmasked) features so previously
  // dropped features can be re-admitted when they become informative.
  ++feat_count_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double delta = x[i] - feat_mean_[i];
    feat_mean_[i] += delta / static_cast<double>(feat_count_);
    feat_m2_[i] += delta * (x[i] - feat_mean_[i]);
  }

  const common::Vec xm = masked(x);
  const double err = rls_.update(xm, y);
  adapt_lambda(err, xm);

  if (cfg_.top_k > 0 && rls_.updates() >= cfg_.warmup &&
      rls_.updates() % cfg_.reselect_period == 0) {
    reselect_features();
  }
  return err;
}

void StaffModel::adapt_lambda(double err, const common::Vec& xm) {
  // Stabilized EWMA estimate of the innovation variance.
  const double e2 = err * err;
  if (!innov_init_) {
    innov_var_ = std::max(e2, 1e-12);
    innov_init_ = true;
  } else {
    innov_var_ = (1.0 - cfg_.var_alpha) * innov_var_ + cfg_.var_alpha * e2;
  }
  // Fortescue-style variable forgetting factor: keep the information content
  // of the estimator approximately constant.  Normalized innovation >> 1
  // (relative to the tracked variance) indicates a regime change and lowers
  // lambda; steady-state innovations push lambda to lambda_max.
  const common::Vec px = rls_.covariance() * xm;
  const double gain = 1.0 + common::dot(xm, px);
  const double denom = cfg_.info_horizon * std::max(innov_var_, 1e-12) * gain;
  double lambda = 1.0 - e2 / std::max(denom, 1e-12);
  lambda = std::clamp(lambda, cfg_.lambda_min, cfg_.lambda_max);
  rls_.set_lambda(lambda);
}

void StaffModel::reselect_features() {
  const std::size_t dim = feat_mean_.size();
  const common::Vec& theta = rls_.weights();
  std::vector<double> score(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    const double var = feat_m2_[i] / static_cast<double>(std::max<std::size_t>(feat_count_, 1));
    score[i] = std::abs(theta[i]) * std::sqrt(std::max(var, 0.0));
    // A feature with (numerically) zero variance carries no information even
    // if its weight is large (it acts as a bias); treat the bias-like term as
    // always informative by giving constant features a tiny floor score so
    // an explicit bias column is never dropped before real features.
    if (var < 1e-18) score[i] = std::abs(theta[i]) * 1e-9 + 1e-12;
  }
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });
  std::fill(active_.begin(), active_.end(), false);
  for (std::size_t k = 0; k < cfg_.top_k; ++k) active_[order[k]] = true;
}

std::size_t StaffModel::num_active() const {
  return static_cast<std::size_t>(std::count(active_.begin(), active_.end(), true));
}

}  // namespace oal::ml
