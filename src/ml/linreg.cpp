#include "ml/linreg.h"

#include <cmath>
#include <stdexcept>

namespace oal::ml {

void RidgeRegression::fit(const std::vector<common::Vec>& x, const std::vector<double>& y,
                          bool fit_intercept) {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("RidgeRegression::fit: bad data");
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();

  common::Vec xmean(d, 0.0);
  double ymean = 0.0;
  if (fit_intercept) {
    for (const auto& xi : x)
      for (std::size_t j = 0; j < d; ++j) xmean[j] += xi[j] / static_cast<double>(n);
    for (double yi : y) ymean += yi / static_cast<double>(n);
  }

  // Normal equations on centered data: (X'X + alpha I) theta = X'y.
  common::Mat xtx(d, d);
  common::Vec xty(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    common::Vec xc = x[i];
    for (std::size_t j = 0; j < d; ++j) xc[j] -= xmean[j];
    const double yc = y[i] - ymean;
    for (std::size_t a = 0; a < d; ++a) {
      xty[a] += xc[a] * yc;
      for (std::size_t b = a; b < d; ++b) xtx(a, b) += xc[a] * xc[b];
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += alpha_;
  }
  theta_ = common::cholesky_solve(xtx, xty);
  intercept_ = ymean - common::dot(theta_, xmean);
  fitted_ = true;
}

double RidgeRegression::predict(const common::Vec& x) const {
  if (!fitted_) throw std::logic_error("RidgeRegression::predict before fit");
  return common::dot(theta_, x) + intercept_;
}

std::vector<double> RidgeRegression::predict(const std::vector<common::Vec>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& xi : x) out.push_back(predict(xi));
  return out;
}

double RidgeRegression::r2(const std::vector<common::Vec>& x, const std::vector<double>& y) const {
  if (x.size() != y.size() || x.empty()) throw std::invalid_argument("r2: bad data");
  double ymean = 0.0;
  for (double yi : y) ymean += yi / static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double p = predict(x[i]);
    ss_res += (y[i] - p) * (y[i] - p);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

common::Vec quadratic_features(const common::Vec& x) {
  common::Vec f;
  f.reserve(x.size() + x.size() * (x.size() + 1) / 2);
  for (double v : x) f.push_back(v);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = i; j < x.size(); ++j) f.push_back(x[i] * x[j]);
  return f;
}

}  // namespace oal::ml
