// STAFF: Stabilized Adaptive Forgetting Factor + online Feature selection.
//
// Reproduces the modeling technique of Gupta et al., "STAFF: Online Learning
// with Stabilized Adaptive Forgetting Factor and Feature Selection
// Algorithm" (DAC 2018), which the surveyed paper uses for adaptive GPU
// frame-time prediction (Fig. 2):
//
//  * The forgetting factor is adapted per sample following the
//    constant-information principle (Fortescue et al.): a large normalized
//    innovation shrinks lambda so the model re-learns quickly after a
//    workload/DVFS change; small innovations push lambda back toward 1 for
//    low-variance steady-state tracking.  Stabilization = clamping to
//    [lambda_min, lambda_max] plus an EWMA innovation-variance estimate so a
//    single outlier cannot collapse the memory.
//  * Online feature selection ranks features by the magnitude of their
//    standardized contribution |theta_i| * std(x_i) and keeps the top-k;
//    dropped features are masked to zero.  Selection is re-evaluated every
//    `reselect_period` updates.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "ml/rls.h"

namespace oal::ml {

struct StaffConfig {
  double lambda_min = 0.90;
  double lambda_max = 0.999;
  double lambda_init = 0.98;
  double initial_p = 1e3;
  /// Nominal innovation variance horizon (Fortescue sigma0^2 * N0).
  double info_horizon = 50.0;
  /// EWMA coefficient for the innovation variance estimate.
  double var_alpha = 0.05;
  /// Number of features kept active (0 = keep all).
  std::size_t top_k = 0;
  /// Re-run feature selection every this many updates.
  std::size_t reselect_period = 64;
  /// Warm-up updates before feature selection may drop anything.
  std::size_t warmup = 32;
};

class StaffModel {
 public:
  StaffModel(std::size_t dim, StaffConfig cfg = {});

  double predict(const common::Vec& x) const;
  /// Returns the a-priori prediction error.
  double update(const common::Vec& x, double y);

  double lambda() const { return rls_.lambda(); }
  const common::Vec& weights() const { return rls_.weights(); }
  /// Active-feature mask (1 = used, 0 = dropped by feature selection).
  const std::vector<bool>& active_mask() const { return active_; }
  std::size_t num_active() const;
  std::size_t updates() const { return rls_.updates(); }

 private:
  common::Vec masked(const common::Vec& x) const;
  void adapt_lambda(double err, const common::Vec& xm);
  void reselect_features();

  StaffConfig cfg_;
  RecursiveLeastSquares rls_;
  std::vector<bool> active_;
  // Streaming feature statistics for contribution scoring.
  common::Vec feat_mean_;
  common::Vec feat_m2_;
  std::size_t feat_count_ = 0;
  double innov_var_ = 1.0;
  bool innov_init_ = false;
};

}  // namespace oal::ml
