// Work-stealing thread pool.
//
// Fixed set of workers, one task deque per worker: submitters deal tasks
// round-robin, a worker pops its own deque LIFO (cache-warm) and steals FIFO
// from its siblings when empty.  The pool itself is *stateless with respect
// to tasks* — all per-task state lives in the closures, which is what lets
// ExperimentEngine guarantee parallel == serial results (each scenario owns
// its platform, controller, and Rng stream; the pool only schedules).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace oal::common {

class ThreadPool {
 public:
  /// num_threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks may not themselves block on the pool.
  void submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1) on the pool and blocks until all complete.  If a
  /// call throws, the exception with the *lowest index* is rethrown after
  /// every task has finished — deterministic regardless of scheduling.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like run_indexed, but the caller *participates*: indices are handed out
  /// through an atomic cursor that the calling thread drains alongside
  /// helper tasks queued on the pool.  Because the caller can complete every
  /// index alone (helpers that arrive after the cursor is exhausted no-op),
  /// this is safe to call from inside a pool worker — including nested —
  /// where run_indexed would deadlock waiting for its own thread.  Same
  /// exception contract: the lowest-index exception is rethrown after all
  /// indices finish.  Which thread runs an index is scheduling-dependent, so
  /// fn must make results index-deterministic (write only out[i]).
  void run_helping(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Deterministic parallel map: out[i] = fn(items[i], i), order-independent.
  template <typename T, typename F>
  auto parallel_map(const std::vector<T>& items, F&& fn)
      -> std::vector<decltype(fn(items.front(), std::size_t{0}))> {
    using R = decltype(fn(items.front(), std::size_t{0}));
    // std::vector<bool> packs bits: concurrent writes to adjacent elements
    // would race on the shared word.  Return e.g. char/int instead.
    static_assert(!std::is_same_v<R, bool>, "parallel_map cannot return bool");
    std::vector<R> out(items.size());
    run_indexed(items.size(), [&](std::size_t i) { out[i] = fn(items[i], i); });
    return out;
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t worker_index);
  bool try_pop(std::size_t worker_index, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  /// Tasks pushed but not yet taken, guarded by wake_mutex_.  Signed: a
  /// steal can land between a task's push and its deferred ++queued_, making
  /// the count transiently -1.
  long long queued_ = 0;
  bool stop_ = false;
  std::size_t next_queue_ = 0;  ///< round-robin submit cursor (guarded by wake_mutex_)
};

}  // namespace oal::common
