#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::common {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty vector");
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs.data(), xs.size(), p);
}

double percentile_sorted(const double* xs, std::size_t n, double p) {
  if (n == 0) throw std::invalid_argument("percentile of empty vector");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of range");
  const double idx = p / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min of empty vector");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max of empty vector");
  return *std::max_element(xs.begin(), xs.end());
}

double sum(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mape(const std::vector<double>& actual, const std::vector<double>& predicted, double eps) {
  if (actual.size() != predicted.size()) throw std::invalid_argument("mape size mismatch");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < eps) continue;
    s += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
    ++n;
  }
  if (n == 0) throw std::invalid_argument("mape: no valid entries");
  return 100.0 * s / static_cast<double>(n);
}

double rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
  if (actual.size() != predicted.size()) throw std::invalid_argument("rmse size mismatch");
  if (actual.empty()) throw std::invalid_argument("rmse of empty vectors");
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) throw std::invalid_argument("correlation size mismatch");
  const double ma = mean(a), mb = mean(b);
  double sab = 0.0, sa = 0.0, sb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    sa += (a[i] - ma) * (a[i] - ma);
    sb += (b[i] - mb) * (b[i] - mb);
  }
  if (sa <= 0.0 || sb <= 0.0) return 0.0;
  return sab / std::sqrt(sa * sb);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace oal::common
