// Small statistics helpers shared by models, benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace oal::common {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);
/// p in [0, 100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);
/// The one percentile rule shared repo-wide (common::stats::percentile,
/// core::DecisionTimer, fleet::PopulationAggregator): linear interpolation
/// between order statistics at idx = p/100 * (n-1) over an ALREADY-SORTED
/// range.  Keeping a single primitive means every surface that reports a
/// p50/p99 agrees bit-for-bit on the same samples.  Throws on n == 0 or
/// p outside [0, 100].
double percentile_sorted(const double* xs, std::size_t n, double p);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
double sum(const std::vector<double>& xs);

/// Mean absolute percentage error: mean(|pred - actual| / |actual|) * 100.
/// Entries with |actual| < eps are skipped.
double mape(const std::vector<double>& actual, const std::vector<double>& predicted,
            double eps = 1e-12);

/// Root-mean-square error.
double rmse(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Pearson correlation coefficient.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Exponentially-weighted moving average tracker.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  double update(double x) {
    if (!init_) {
      value_ = x;
      init_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
  }
  double value() const { return value_; }
  bool initialized() const { return init_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool init_ = false;
};

/// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace oal::common
