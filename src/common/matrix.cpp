#include "common/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <ostream>
#include <stdexcept>

namespace oal::common {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Mat::Mat(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("ragged initializer for Mat");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Mat Mat::identity(std::size_t n) {
  Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Mat Mat::diag(const Vec& d) {
  Mat m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Mat Mat::from_rows(const std::vector<Vec>& rows) {
  if (rows.empty()) throw std::invalid_argument("Mat::from_rows: no rows");
  Mat m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) throw std::invalid_argument("Mat::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Mat Mat::transpose() const {
  Mat t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Mat Mat::operator+(const Mat& o) const {
  Mat r = *this;
  r += o;
  return r;
}

Mat Mat::operator-(const Mat& o) const {
  Mat r = *this;
  r -= o;
  return r;
}

Mat& Mat::operator+=(const Mat& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Mat size mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Mat& Mat::operator-=(const Mat& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Mat size mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Mat& Mat::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Mat Mat::operator*(double s) const {
  Mat r = *this;
  r *= s;
  return r;
}

Mat Mat::operator*(const Mat& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("Mat size mismatch in *");
  Mat r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) r(i, j) += aik * o(k, j);
    }
  }
  return r;
}

Vec Mat::operator*(const Vec& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Mat*Vec size mismatch");
  Vec r(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    r[i] = s;
  }
  return r;
}

Vec Mat::row(std::size_t r) const {
  Vec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vec Mat::col(std::size_t c) const {
  Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Mat::set_row(std::size_t r, const Vec& v) {
  if (v.size() != cols_) throw std::invalid_argument("set_row size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

double Mat::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Mat::trace() const {
  double s = 0.0;
  for (std::size_t i = 0; i < std::min(rows_, cols_); ++i) s += (*this)(i, i);
  return s;
}

double Mat::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Mat& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) os << m(r, c) << (c + 1 == m.cols() ? "" : ", ");
    os << (r + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

double dot(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vec add(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("add size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vec sub(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("sub size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vec scale(const Vec& a, double s) {
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * s;
  return r;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

// ---- GEMM kernels ----------------------------------------------------------
//
// Each element accumulates its reduction strictly in ascending index order
// starting from 0.0 (no zero-skip shortcuts, unlike operator*), so batch
// training built on these kernels is bitwise reproducible and a 1-row batch
// reproduces the per-sample loops it replaced.

Mat matmul(const Mat& a, const Mat& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dim mismatch");
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  Mat r(m, n);
  const double* __restrict__ ap = a.raw();
  const double* __restrict__ bp = b.raw();
  double* __restrict__ rp = r.raw();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < kk; ++k) {
      const double aik = ap[i * kk + k];
      const double* brow = bp + k * n;
      double* rrow = rp + i * n;
      for (std::size_t j = 0; j < n; ++j) rrow[j] += aik * brow[j];
    }
  return r;
}

Mat matmul_tn(const Mat& a, const Mat& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: leading dim mismatch");
  const std::size_t m = a.cols(), kk = a.rows(), n = b.cols();
  Mat r(m, n);
  const double* __restrict__ ap = a.raw();
  const double* __restrict__ bp = b.raw();
  double* __restrict__ rp = r.raw();
  for (std::size_t k = 0; k < kk; ++k)
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = ap[k * m + i];
      const double* brow = bp + k * n;
      double* rrow = rp + i * n;
      for (std::size_t j = 0; j < n; ++j) rrow[j] += aki * brow[j];
    }
  return r;
}

Mat matmul_nt(const Mat& a, const Mat& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: trailing dim mismatch");
  const std::size_t m = a.rows(), n = b.rows(), kk = a.cols();
  Mat r(m, n);
  const double* __restrict__ ap = a.raw();
  const double* __restrict__ bp = b.raw();
  double* __restrict__ rp = r.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = ap + i * kk;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = bp + j * kk;
      double s = 0.0;
      for (std::size_t k = 0; k < kk; ++k) s += arow[k] * brow[k];
      rp[i * n + j] = s;
    }
  }
  return r;
}

void add_row_broadcast(Mat& m, const Vec& v) {
  if (v.size() != m.cols()) throw std::invalid_argument("add_row_broadcast: size mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) += v[c];
}

Vec col_sums(const Mat& m) {
  Vec s(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) s[c] += m(r, c);
  return s;
}

Mat outer(const Vec& a, const Vec& b) {
  Mat m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  return m;
}

namespace {

// LU with partial pivoting, in place.  Returns pivot permutation and sign.
struct LuResult {
  Mat lu;
  std::vector<std::size_t> piv;
  double sign = 1.0;
};

LuResult lu_factor(Mat a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("lu_factor: matrix not square");
  LuResult res{std::move(a), {}, 1.0};
  res.piv.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.piv[i] = i;
  Mat& m = res.lu;
  for (std::size_t k = 0; k < n; ++k) {
    // Pivot selection.
    std::size_t p = k;
    double best = std::abs(m(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(m(i, k)) > best) {
        best = std::abs(m(i, k));
        p = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("lu_factor: singular matrix");
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(p, c), m(k, c));
      std::swap(res.piv[p], res.piv[k]);
      res.sign = -res.sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      m(i, k) /= m(k, k);
      const double f = m(i, k);
      for (std::size_t c = k + 1; c < n; ++c) m(i, c) -= f * m(k, c);
    }
  }
  return res;
}

Vec lu_apply(const LuResult& f, const Vec& b) {
  const std::size_t n = f.lu.rows();
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.piv[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= f.lu(i, j) * x[j];
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= f.lu(ii, j) * x[j];
    x[ii] /= f.lu(ii, ii);
  }
  return x;
}

}  // namespace

Vec lu_solve(Mat a, Vec b) {
  if (a.rows() != b.size()) throw std::invalid_argument("lu_solve size mismatch");
  const LuResult f = lu_factor(std::move(a));
  return lu_apply(f, b);
}

Mat lu_solve(Mat a, const Mat& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("lu_solve size mismatch");
  const LuResult f = lu_factor(std::move(a));
  Mat x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vec xc = lu_apply(f, b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Mat inverse(const Mat& a) { return lu_solve(a, Mat::identity(a.rows())); }

double determinant(Mat a) {
  LuResult f = lu_factor(std::move(a));
  double d = f.sign;
  for (std::size_t i = 0; i < f.lu.rows(); ++i) d *= f.lu(i, i);
  return d;
}

Mat cholesky(const Mat& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("cholesky: matrix not square");
  Mat l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("cholesky: matrix not SPD");
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Vec cholesky_solve(const Mat& a, const Vec& b) {
  const Mat l = cholesky(a);
  const std::size_t n = l.rows();
  Vec y(b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= l(i, j) * y[j];
    y[i] /= l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) y[ii] -= l(j, ii) * y[j];
    y[ii] /= l(ii, ii);
  }
  return y;
}

namespace {

// Reduces to upper Hessenberg form by Householder reflections (in place).
void hessenberg(Mat& a) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    double alpha = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha < 1e-300) continue;
    if (a(k + 1, k) > 0) alpha = -alpha;
    Vec v(n, 0.0);
    v[k + 1] = a(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
    double vnorm = norm2(v);
    if (vnorm < 1e-300) continue;
    for (double& x : v) x /= vnorm;
    // A <- (I - 2 v v^T) A (I - 2 v v^T)
    for (std::size_t c = 0; c < n; ++c) {
      double s = 0.0;
      for (std::size_t r = k + 1; r < n; ++r) s += v[r] * a(r, c);
      for (std::size_t r = k + 1; r < n; ++r) a(r, c) -= 2.0 * v[r] * s;
    }
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) s += a(r, c) * v[c];
      for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= 2.0 * s * v[c];
    }
  }
}

}  // namespace

Eigenvalues eigenvalues(const Mat& a_in) {
  // Francis-style shifted QR on the Hessenberg form with deflation.  For the
  // small (<= ~32x32) matrices in this codebase this is fast and reliable.
  Mat a = a_in;
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("eigenvalues: matrix not square");
  Eigenvalues ev;
  if (n == 0) return ev;
  hessenberg(a);

  std::size_t hi = n;  // active block is [0, hi)
  int iter_guard = 0;
  const int max_iters = 200 * static_cast<int>(n) + 200;
  while (hi > 0 && iter_guard++ < max_iters) {
    // Look for a small subdiagonal to deflate.
    std::size_t lo = hi - 1;
    while (lo > 0) {
      const double s = std::abs(a(lo - 1, lo - 1)) + std::abs(a(lo, lo));
      if (std::abs(a(lo, lo - 1)) < 1e-13 * (s + 1e-30)) {
        a(lo, lo - 1) = 0.0;
        break;
      }
      --lo;
    }
    if (lo == hi - 1) {  // 1x1 block
      ev.real.push_back(a(lo, lo));
      ev.imag.push_back(0.0);
      hi -= 1;
      continue;
    }
    if (lo == hi - 2) {  // 2x2 block: solve quadratic
      const double p = a(lo, lo), q = a(lo, lo + 1), r = a(lo + 1, lo), s = a(lo + 1, lo + 1);
      const double tr = p + s, det = p * s - q * r;
      const double disc = tr * tr / 4.0 - det;
      if (disc >= 0.0) {
        const double sq = std::sqrt(disc);
        ev.real.push_back(tr / 2.0 + sq);
        ev.imag.push_back(0.0);
        ev.real.push_back(tr / 2.0 - sq);
        ev.imag.push_back(0.0);
      } else {
        const double sq = std::sqrt(-disc);
        ev.real.push_back(tr / 2.0);
        ev.imag.push_back(sq);
        ev.real.push_back(tr / 2.0);
        ev.imag.push_back(-sq);
      }
      hi -= 2;
      continue;
    }
    // Wilkinson shift from the trailing 2x2 of the active block.
    const double p = a(hi - 2, hi - 2), q = a(hi - 2, hi - 1), r = a(hi - 1, hi - 2),
                 s = a(hi - 1, hi - 1);
    const double tr = p + s, det = p * s - q * r;
    double shift = s;
    const double disc = tr * tr / 4.0 - det;
    if (disc >= 0) {
      const double sq = std::sqrt(disc);
      const double l1 = tr / 2.0 + sq, l2 = tr / 2.0 - sq;
      shift = (std::abs(l1 - s) < std::abs(l2 - s)) ? l1 : l2;
    }
    // Shifted QR step via Givens rotations on the Hessenberg block [lo, hi).
    for (std::size_t i = lo; i < hi; ++i) a(i, i) -= shift;
    std::vector<std::pair<double, double>> rot(hi - lo - 1);
    for (std::size_t k = lo; k + 1 < hi; ++k) {
      const double x = a(k, k), y = a(k + 1, k);
      const double rr = std::hypot(x, y);
      double c = 1.0, sn = 0.0;
      if (rr > 1e-300) {
        c = x / rr;
        sn = y / rr;
      }
      rot[k - lo] = {c, sn};
      for (std::size_t j = k; j < hi; ++j) {
        const double t1 = a(k, j), t2 = a(k + 1, j);
        a(k, j) = c * t1 + sn * t2;
        a(k + 1, j) = -sn * t1 + c * t2;
      }
    }
    for (std::size_t k = lo; k + 1 < hi; ++k) {
      const auto [c, sn] = rot[k - lo];
      const std::size_t top = lo;
      const std::size_t last = std::min(hi, k + 2);
      for (std::size_t i = top; i < last + (last < hi ? 1 : 0) && i < hi; ++i) {
        const double t1 = a(i, k), t2 = a(i, k + 1);
        a(i, k) = c * t1 + sn * t2;
        a(i, k + 1) = -sn * t1 + c * t2;
      }
    }
    for (std::size_t i = lo; i < hi; ++i) a(i, i) += shift;
  }
  // If the guard tripped, report the remaining diagonal as-is (best effort).
  for (std::size_t i = 0; i < hi; ++i) {
    ev.real.push_back(a(i, i));
    ev.imag.push_back(0.0);
  }
  return ev;
}

double spectral_radius(const Mat& a) {
  const Eigenvalues ev = eigenvalues(a);
  double m = 0.0;
  for (std::size_t i = 0; i < ev.real.size(); ++i)
    m = std::max(m, std::hypot(ev.real[i], ev.imag[i]));
  return m;
}

}  // namespace oal::common
