#include "common/sobol.h"

#include <stdexcept>

namespace oal::common {

namespace {

// Primitive polynomial degrees, coefficients (a) and initial direction
// numbers (m) for dimensions 2..16, following the classic Joe-Kuo table.
// Dimension 1 is the van der Corput sequence (all m_i = 1).
struct DimInit {
  unsigned degree;
  unsigned a;                          // polynomial coefficient bits
  std::vector<std::uint32_t> m_init;   // first `degree` m values (odd)
};

const DimInit kDims[] = {
    {1, 0, {1}},                      // dim 2
    {2, 1, {1, 3}},                   // dim 3
    {3, 1, {1, 3, 1}},                // dim 4
    {3, 2, {1, 1, 1}},                // dim 5
    {4, 1, {1, 1, 3, 3}},             // dim 6
    {4, 4, {1, 3, 5, 13}},            // dim 7
    {5, 2, {1, 1, 5, 5, 17}},         // dim 8
    {5, 4, {1, 1, 5, 5, 5}},          // dim 9
    {5, 7, {1, 1, 7, 11, 19}},        // dim 10
    {5, 11, {1, 1, 5, 1, 1}},         // dim 11
    {5, 13, {1, 1, 1, 3, 11}},        // dim 12
    {5, 14, {1, 3, 5, 5, 31}},        // dim 13
    {6, 1, {1, 3, 3, 9, 7, 49}},      // dim 14
    {6, 13, {1, 1, 1, 15, 21, 21}},   // dim 15
    {6, 16, {1, 3, 1, 13, 27, 49}},   // dim 16
};

constexpr unsigned kBits = 32;

}  // namespace

SobolSequence::SobolSequence(std::size_t dim) : dim_(dim) {
  if (dim < 1 || dim > 16) throw std::invalid_argument("SobolSequence: dim must be in [1,16]");
  v_.resize(dim);
  x_.assign(dim, 0);

  // Dimension 1: van der Corput (v_k = 1 << (32-k)).
  v_[0].resize(kBits);
  for (unsigned k = 0; k < kBits; ++k) v_[0][k] = 1u << (31 - k);

  for (std::size_t d = 1; d < dim; ++d) {
    const DimInit& di = kDims[d - 1];
    const unsigned s = di.degree;
    std::vector<std::uint32_t> m(kBits);
    for (unsigned k = 0; k < s; ++k) m[k] = di.m_init[k];
    for (unsigned k = s; k < kBits; ++k) {
      std::uint32_t val = m[k - s] ^ (m[k - s] << s);
      for (unsigned j = 1; j < s; ++j) {
        if ((di.a >> (s - 1 - j)) & 1u) val ^= m[k - j] << j;
      }
      m[k] = val;
    }
    v_[d].resize(kBits);
    for (unsigned k = 0; k < kBits; ++k) v_[d][k] = m[k] << (31 - k);
  }
}

std::vector<double> SobolSequence::next() {
  // Gray-code update: point k is obtained from point k-1 by flipping the
  // direction number indexed by the count of trailing one-bits of k-1.
  std::vector<double> p(dim_);
  if (index_ == 0) {
    // First point is the origin.
    ++index_;
    return p;
  }
  std::uint64_t c = 0;
  std::uint64_t idx = index_ - 1;
  while (idx & 1ULL) {
    idx >>= 1;
    ++c;
  }
  if (c >= kBits) throw std::runtime_error("SobolSequence exhausted");
  for (std::size_t d = 0; d < dim_; ++d) {
    x_[d] ^= v_[d][c];
    p[d] = static_cast<double>(x_[d]) * 0x1.0p-32;
  }
  ++index_;
  return p;
}

void SobolSequence::skip(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) (void)next();
}

std::vector<std::vector<double>> sobol_grid(std::size_t n, const std::vector<double>& lo,
                                            const std::vector<double>& hi) {
  if (lo.size() != hi.size()) throw std::invalid_argument("sobol_grid: lo/hi size mismatch");
  SobolSequence seq(lo.size());
  seq.skip(1);  // drop the all-zeros point
  std::vector<std::vector<double>> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p = seq.next();
    for (std::size_t d = 0; d < p.size(); ++d) p[d] = lo[d] + (hi[d] - lo[d]) * p[d];
    pts.push_back(std::move(p));
  }
  return pts;
}

}  // namespace oal::common
