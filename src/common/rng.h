// Deterministic random number generation.
//
// All stochastic components (workload generators, measurement noise, policy
// initialization, exploration) draw from explicitly-seeded Rng instances so
// every experiment in bench/ is exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

namespace oal::common {

/// xoshiro256** generator wrapped with the distribution helpers this project
/// needs.  Deliberately not std::mt19937: xoshiro is faster and its output is
/// identical across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponential with given rate (lambda).
  double exponential(double rate);
  /// Samples an index according to (unnormalized, non-negative) weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derives an independent child stream (for per-component seeding).
  Rng fork();

  /// Complete generator state, for persisting mid-stream positions (e.g. a
  /// pretrained controller whose exploration stream must resume exactly
  /// where pretraining left it).  Restoring a snapshot makes the subsequent
  /// draw sequence bitwise identical to the original's.
  struct State {
    std::uint64_t s[4];
    bool has_cached_normal;
    double cached_normal;
  };
  State state() const { return State{{s_[0], s_[1], s_[2], s_[3]}, has_cached_normal_,
                                     cached_normal_}; }
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace oal::common
