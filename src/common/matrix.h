// Dense vector/matrix algebra used throughout the library.
//
// The models in this project (RLS, ridge regression, Kalman filters, thermal
// state-space models) operate on small dense matrices (tens of rows), so a
// simple row-major implementation with LU / Cholesky factorization is both
// sufficient and easy to audit.  No external BLAS dependency is required.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace oal::common {

using Vec = std::vector<double>;

/// Row-major dense matrix of doubles.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0);
  Mat(std::initializer_list<std::initializer_list<double>> rows);

  static Mat identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Mat diag(const Vec& d);
  /// Stacks equal-length vectors as rows (batch-matrix construction).
  static Mat from_rows(const std::vector<Vec>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }

  /// Raw row-major storage (rows*cols doubles).  The hot training kernels
  /// (GEMM, optimizer steps) iterate flat arrays so the compiler can
  /// vectorize; element order is unchanged, so results are bit-identical to
  /// the indexed loops.
  double* raw() { return data_.data(); }
  const double* raw() const { return data_.data(); }

  Mat transpose() const;
  Mat operator+(const Mat& o) const;
  Mat operator-(const Mat& o) const;
  Mat operator*(const Mat& o) const;
  Mat operator*(double s) const;
  Mat& operator+=(const Mat& o);
  Mat& operator-=(const Mat& o);
  Mat& operator*=(double s);

  Vec operator*(const Vec& v) const;

  /// Extracts row r as a vector.
  Vec row(std::size_t r) const;
  /// Extracts column c as a vector.
  Vec col(std::size_t c) const;
  void set_row(std::size_t r, const Vec& v);

  /// Frobenius norm.
  double norm() const;
  double trace() const;

  /// Maximum absolute element.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Mat& m);

// ---- Vector helpers -------------------------------------------------------

double dot(const Vec& a, const Vec& b);
Vec add(const Vec& a, const Vec& b);
Vec sub(const Vec& a, const Vec& b);
Vec scale(const Vec& a, double s);
double norm2(const Vec& a);
/// Outer product a b^T.
Mat outer(const Vec& a, const Vec& b);

// ---- GEMM kernels ----------------------------------------------------------
// Minibatch training kernels (rows = samples).  Every output element reduces
// in ascending index order from 0.0 with no zero-skip, so results are bitwise
// deterministic and a 1-row batch matches the per-sample scalar loops.

/// C = A * B.
Mat matmul(const Mat& a, const Mat& b);
/// C = A^T * B (fused transpose; the batch weight-gradient kernel dY^T * X).
Mat matmul_tn(const Mat& a, const Mat& b);
/// C = A * B^T (fused transpose; the batch forward kernel X * W^T).
Mat matmul_nt(const Mat& a, const Mat& b);
/// m(r, :) += v for every row r (bias broadcast).
void add_row_broadcast(Mat& m, const Vec& v);
/// Column sums (the batch bias-gradient reduction).
Vec col_sums(const Mat& m);

// ---- Factorizations & solvers ---------------------------------------------

/// Solves A x = b by LU decomposition with partial pivoting.
/// Throws std::runtime_error if A is (numerically) singular.
Vec lu_solve(Mat a, Vec b);

/// Solves A X = B column-by-column; returns X.
Mat lu_solve(Mat a, const Mat& b);

/// Inverse via LU.  Prefer lu_solve when possible.
Mat inverse(const Mat& a);

/// Cholesky factor L (lower) of a symmetric positive-definite matrix.
/// Throws std::runtime_error if the matrix is not SPD.
Mat cholesky(const Mat& a);

/// Solves A x = b for SPD A via Cholesky.
Vec cholesky_solve(const Mat& a, const Vec& b);

/// Determinant via LU (sign-corrected).
double determinant(Mat a);

/// Eigenvalues of a general real matrix via the (shifted) QR algorithm on the
/// Hessenberg form.  Returns real parts and imaginary parts.  Intended for
/// the small matrices used in thermal stability analysis.
struct Eigenvalues {
  Vec real;
  Vec imag;
};
Eigenvalues eigenvalues(const Mat& a);

/// Spectral radius: max |lambda_i|.
double spectral_radius(const Mat& a);

}  // namespace oal::common
