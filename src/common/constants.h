// Shared math constants (std::numbers needs C++20; this repo builds as
// C++17).
#pragma once

namespace oal::common {

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace oal::common
