// Low-discrepancy sequence generation.
//
// The explicit-NMPC technique the paper builds on (Chakrabarty et al., IEEE
// TAC 2017) samples the NMPC control law on a *low-discrepancy* grid of the
// state space before fitting the explicit approximation.  We provide a Sobol
// sequence (direction numbers for up to 16 dimensions, Joe-Kuo style
// primitive polynomials) which covers every use in this project.
#pragma once

#include <cstdint>
#include <vector>

namespace oal::common {

class SobolSequence {
 public:
  /// dim in [1, 16].
  explicit SobolSequence(std::size_t dim);

  /// Next point in [0,1)^dim.
  std::vector<double> next();

  /// Skips ahead (useful to drop the degenerate all-zeros first point).
  void skip(std::size_t n);

  std::size_t dimension() const { return dim_; }

 private:
  std::size_t dim_;
  std::uint64_t index_ = 0;
  std::vector<std::vector<std::uint32_t>> v_;  // direction numbers per dim
  std::vector<std::uint32_t> x_;               // current integer state per dim
};

/// Convenience: n Sobol points scaled to [lo_i, hi_i] per dimension.
std::vector<std::vector<double>> sobol_grid(std::size_t n, const std::vector<double>& lo,
                                            const std::vector<double>& hi);

}  // namespace oal::common
