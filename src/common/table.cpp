#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oal::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header list");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: cell count != header count");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace oal::common
