#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace oal::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stop_) throw std::logic_error("ThreadPool::submit: pool is shutting down");
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // queued_ rises only after the task is visible in its deque, so a worker
  // woken by the predicate always finds work (no busy re-wait window).
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker_index, std::function<void()>& task) {
  // Own queue first, newest task (LIFO: better locality for recursive splits).
  {
    WorkerQueue& q = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal the oldest task from a sibling.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(worker_index + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(worker_index, task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::exception_ptr> errors;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(n);
  batch->errors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    submit([batch, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        batch->errors[i] = std::current_exception();
      }
      if (batch->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        batch->done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->remaining.load() == 0; });
  for (std::size_t i = 0; i < n; ++i)
    if (batch->errors[i]) std::rethrow_exception(batch->errors[i]);
}

void ThreadPool::run_helping(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // All shared state lives behind a shared_ptr: helper tasks may start after
  // the caller has drained every index and returned, so they must never touch
  // the caller's stack frame.  The cursor check guards the fn reference —
  // helpers that find the cursor exhausted exit without dereferencing it.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::size_t n = 0;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::exception_ptr> errors;
    const std::function<void(std::size_t)>* fn = nullptr;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(n);
  batch->n = n;
  batch->errors.resize(n);
  batch->fn = &fn;
  auto drain = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const std::size_t i = b->next.fetch_add(1);
      if (i >= b->n) return;
      try {
        (*b->fn)(i);
      } catch (...) {
        b->errors[i] = std::current_exception();
      }
      if (b->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(b->mutex);
        b->done_cv.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(size(), n);
  for (std::size_t h = 0; h < helpers; ++h) submit([batch, drain] { drain(batch); });
  drain(batch);
  // `fn` stays alive until remaining hits 0, because only completed calls
  // decrement it; the wait below therefore also fences helpers off `fn`.
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->remaining.load() == 0; });
  for (std::size_t i = 0; i < n; ++i)
    if (batch->errors[i]) std::rethrow_exception(batch->errors[i]);
}

}  // namespace oal::common
