// Console table formatter used by benches and examples to print the rows of
// the paper's tables/figures in a readable, diff-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oal::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with aligned columns and a header separator.
  std::string to_string() const;
  void print(std::ostream& os) const;

  /// Renders as CSV (for scripting / plotting).
  std::string to_csv() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oal::common
