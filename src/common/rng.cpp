#include "common/rng.h"

#include <cmath>
#include <stdexcept>

#include "common/constants.h"

namespace oal::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: all-zero weights");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  has_cached_normal_ = st.has_cached_normal;
  cached_normal_ = st.cached_normal;
}

}  // namespace oal::common
