#include "workloads/cpu_benchmarks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::workloads {

std::string suite_name(Suite s) {
  switch (s) {
    case Suite::kMiBench: return "Mi-Bench";
    case Suite::kCortex: return "Cortex";
    case Suite::kParsec: return "PARSEC";
  }
  return "?";
}

namespace {

// Descriptor builder with the fields that vary between apps.
soc::SnippetDescriptor desc(double cpi_l, double cpi_b, double mpki, double bmpki, double mem_ai,
                            double pf, int threads) {
  soc::SnippetDescriptor d;
  d.instructions = 20e6;
  d.base_cpi_little = cpi_l;
  d.base_cpi_big = cpi_b;
  d.l2_mpki = mpki;
  d.branch_mpki = bmpki;
  d.mem_access_per_inst = mem_ai;
  d.parallel_fraction = pf;
  d.max_threads = threads;
  return d;
}

Phase phase(soc::SnippetDescriptor mean, double sigma, double weight) {
  return Phase{mean, sigma, weight};
}

std::vector<AppSpec> build_all() {
  std::vector<AppSpec> apps;
  auto add = [&](std::string name, Suite suite, std::vector<Phase> phases,
                 std::size_t snippets) {
    AppSpec a;
    a.name = std::move(name);
    a.suite = suite;
    a.phases = std::move(phases);
    a.default_snippets = snippets;
    a.app_id = static_cast<std::uint32_t>(apps.size());
    for (auto& p : a.phases) p.mean.app_id = a.app_id;
    apps.push_back(std::move(a));
  };

  // ---- MiBench-like: serial, compute-bound, ILP-rich ----------------------
  // BML (basicmath-large): FP-heavy loops, tiny working set.
  add("BML", Suite::kMiBench,
      {phase(desc(1.55, 0.85, 0.35, 1.8, 0.28, 0.04, 1), 0.04, 0.6),
       phase(desc(1.45, 0.80, 0.50, 2.2, 0.30, 0.04, 1), 0.04, 0.4)},
      240);
  // Dijkstra: pointer chasing on a modest graph.
  add("Dijkstra", Suite::kMiBench,
      {phase(desc(1.80, 1.10, 2.10, 4.5, 0.34, 0.05, 1), 0.05, 1.0)}, 220);
  // FFT: dense FP butterflies, strided access.
  add("FFT", Suite::kMiBench,
      {phase(desc(1.40, 0.75, 1.20, 1.2, 0.32, 0.06, 1), 0.04, 0.5),
       phase(desc(1.50, 0.82, 1.60, 1.4, 0.33, 0.06, 1), 0.04, 0.5)},
      240);
  // Patricia: trie lookups, branchy.
  add("Patricia", Suite::kMiBench,
      {phase(desc(1.85, 1.15, 2.40, 5.5, 0.36, 0.04, 1), 0.05, 1.0)}, 220);
  // Qsort: comparison sort, mispredict heavy.
  add("Qsort", Suite::kMiBench,
      {phase(desc(1.70, 1.00, 1.50, 6.0, 0.35, 0.05, 1), 0.05, 1.0)}, 220);
  // SHA: pure integer rounds, near-zero misses.
  add("SHA", Suite::kMiBench,
      {phase(desc(1.35, 0.70, 0.15, 1.0, 0.25, 0.03, 1), 0.03, 1.0)}, 240);
  // Blowfish: table-driven cipher.
  add("Blowfish", Suite::kMiBench,
      {phase(desc(1.40, 0.74, 0.30, 1.5, 0.30, 0.03, 1), 0.03, 1.0)}, 240);
  // Stringsearch: short loops, heavy branching.
  add("Stringsearch", Suite::kMiBench,
      {phase(desc(1.60, 0.95, 0.80, 7.0, 0.30, 0.03, 1), 0.05, 1.0)}, 220);
  // ADPCM: streaming codec, trivially cached.
  add("ADPCM", Suite::kMiBench,
      {phase(desc(1.30, 0.68, 0.10, 1.2, 0.26, 0.03, 1), 0.03, 1.0)}, 240);
  // AES: rounds + key schedule phases.
  add("AES", Suite::kMiBench,
      {phase(desc(1.42, 0.76, 0.40, 1.6, 0.29, 0.04, 1), 0.04, 0.7),
       phase(desc(1.38, 0.72, 0.25, 1.3, 0.27, 0.04, 1), 0.04, 0.3)},
      240);

  // ---- Cortex-like: irregular, memory-dominated ----------------------------
  // Kmeans: repeated sweeps over a large dataset; assignment phase is
  // memory-bound, update phase slightly lighter.
  // CortexSuite kernels are single-threaded ML/vision codes: serial,
  // memory-dominated, with a moderate big-core advantage.  Their optimal
  // big-core frequency varies with memory intensity (more misses -> lower
  // knee), which is what makes the Fig. 3 big-frequency accuracy metric
  // non-trivial during the online phase.
  add("Kmeans", Suite::kCortex,
      {phase(desc(2.10, 1.10, 9.5, 3.0, 0.45, 0.05, 1), 0.06, 0.7),
       phase(desc(1.95, 1.02, 6.5, 2.5, 0.42, 0.05, 1), 0.06, 0.3)},
      400);
  // Spectral: sparse-matrix-ish FP with indirect access.
  add("Spectral", Suite::kCortex,
      {phase(desc(1.95, 1.00, 6.0, 2.2, 0.40, 0.04, 1), 0.06, 1.0)}, 400);
  // MotionEst: block matching; blocked access, moderate reuse.
  add("MotionEst", Suite::kCortex,
      {phase(desc(1.90, 0.98, 3.2, 4.0, 0.38, 0.04, 1), 0.06, 1.0)}, 400);
  // PCA: covariance accumulation over a matrix that misses in L2.
  add("PCA", Suite::kCortex,
      {phase(desc(2.20, 1.15, 11.0, 2.0, 0.48, 0.05, 1), 0.06, 1.0)}, 400);

  // ---- PARSEC-like: multi-threaded FP kernels ------------------------------
  add("Blkschls-2T", Suite::kParsec,
      {phase(desc(1.45, 0.80, 0.80, 1.5, 0.30, 0.92, 2), 0.04, 1.0)}, 450);
  add("Blkschls-4T", Suite::kParsec,
      {phase(desc(1.45, 0.80, 0.90, 1.5, 0.30, 0.95, 4), 0.04, 1.0)}, 450);
  return apps;
}

}  // namespace

const std::vector<AppSpec>& CpuBenchmarks::all() {
  static const std::vector<AppSpec> apps = build_all();
  return apps;
}

const AppSpec& CpuBenchmarks::by_name(const std::string& name) {
  for (const auto& a : all())
    if (a.name == name) return a;
  throw std::invalid_argument("CpuBenchmarks::by_name: unknown app " + name);
}

std::vector<AppSpec> CpuBenchmarks::of_suite(Suite s) {
  std::vector<AppSpec> out;
  for (const auto& a : all())
    if (a.suite == s) out.push_back(a);
  return out;
}

std::vector<soc::SnippetDescriptor> CpuBenchmarks::trace(const AppSpec& app, std::size_t n,
                                                         common::Rng& rng) {
  if (app.phases.empty()) throw std::invalid_argument("CpuBenchmarks::trace: app has no phases");
  double total_w = 0.0;
  for (const auto& p : app.phases) total_w += p.weight;

  std::vector<soc::SnippetDescriptor> out;
  out.reserve(n);
  // AR(1) multiplicative wander per descriptor field, shared across phases so
  // phase transitions are sharp but intra-phase behaviour is persistent.
  constexpr double kRho = 0.85;
  double wander[5] = {0, 0, 0, 0, 0};  // log-space offsets
  for (const auto& p : app.phases) {
    const auto phase_len = static_cast<std::size_t>(
        std::round(static_cast<double>(n) * p.weight / total_w));
    for (std::size_t i = 0; i < phase_len && out.size() < n; ++i) {
      for (double& w : wander) w = kRho * w + rng.normal(0.0, p.rel_sigma);
      soc::SnippetDescriptor d = p.mean;
      d.base_cpi_little *= std::exp(wander[0]);
      d.base_cpi_big *= std::exp(wander[0]);  // CPIs move together (same code)
      d.l2_mpki *= std::exp(wander[1]);
      d.branch_mpki *= std::exp(wander[2]);
      d.mem_access_per_inst *= std::exp(wander[3]);
      d.parallel_fraction = std::clamp(d.parallel_fraction * std::exp(0.5 * wander[4]), 0.0, 0.98);
      out.push_back(d);
    }
  }
  while (out.size() < n) out.push_back(out.back());
  return out;
}

std::vector<soc::SnippetDescriptor> CpuBenchmarks::trace(const AppSpec& app, common::Rng& rng) {
  return trace(app, app.default_snippets, rng);
}

std::vector<soc::SnippetDescriptor> CpuBenchmarks::sequence(const std::vector<AppSpec>& apps,
                                                            common::Rng& rng,
                                                            std::vector<std::size_t>* boundaries) {
  std::vector<soc::SnippetDescriptor> out;
  if (boundaries != nullptr) boundaries->clear();
  for (const auto& app : apps) {
    if (boundaries != nullptr) boundaries->push_back(out.size());
    const auto t = trace(app, rng);
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace oal::workloads
