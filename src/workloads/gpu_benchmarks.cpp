#include "workloads/gpu_benchmarks.h"

#include <cmath>
#include <stdexcept>

#include "common/constants.h"

namespace oal::workloads {

namespace {

GpuWorkloadSpec spec(std::string name, double cycles, double mem, double cpu, double amp,
                     double period, double jitter, double cut, std::uint32_t id) {
  GpuWorkloadSpec s;
  s.name = std::move(name);
  s.mean_render_cycles = cycles;
  s.mean_mem_bytes = mem;
  s.mean_cpu_cycles = cpu;
  s.scene_amplitude = amp;
  s.scene_period_frames = period;
  s.frame_jitter = jitter;
  s.scene_cut_prob = cut;
  s.id = id;
  return s;
}

std::vector<GpuWorkloadSpec> build_fig5() {
  // Intensities span GPU capacity (~127M cycles/frame at 30 FPS, max config)
  // so the baseline-vs-ENMPC headroom ranges from slim (AngryBirds) to huge
  // (SharkDash), matching the 5%..58% spread of Fig. 5.
  std::vector<GpuWorkloadSpec> v;
  v.push_back(spec("3DMarkIceStorm", 12e6, 10e6, 4e6, 0.35, 300, 0.05, 0.006, 0));
  v.push_back(spec("AngryBirds", 70e6, 40e6, 12e6, 0.10, 400, 0.04, 0.002, 1));
  v.push_back(spec("AngryBots", 35e6, 22e6, 9e6, 0.22, 260, 0.05, 0.004, 2));
  v.push_back(spec("EpicCitadel", 28e6, 20e6, 8e6, 0.25, 320, 0.05, 0.003, 3));
  v.push_back(spec("FruitNinja", 15e6, 9e6, 5e6, 0.30, 200, 0.06, 0.005, 4));
  v.push_back(spec("GFXBench-trex", 55e6, 34e6, 10e6, 0.12, 350, 0.04, 0.002, 5));
  v.push_back(spec("JungleRun", 32e6, 18e6, 8e6, 0.20, 240, 0.05, 0.004, 6));
  v.push_back(spec("SharkDash", 4.5e6, 4e6, 3e6, 0.30, 220, 0.06, 0.005, 7));
  v.push_back(spec("TheChase", 48e6, 30e6, 10e6, 0.15, 380, 0.04, 0.003, 8));
  v.push_back(spec("VendettaMark", 22e6, 14e6, 7e6, 0.25, 280, 0.05, 0.004, 9));
  return v;
}

}  // namespace

const std::vector<GpuWorkloadSpec>& GpuBenchmarks::fig5_suite() {
  static const std::vector<GpuWorkloadSpec> suite = build_fig5();
  return suite;
}

const GpuWorkloadSpec& GpuBenchmarks::by_name(const std::string& name) {
  for (const auto& s : fig5_suite())
    if (s.name == name) return s;
  throw std::invalid_argument("GpuBenchmarks::by_name: unknown workload " + name);
}

std::vector<gpu::FrameDescriptor> GpuBenchmarks::trace(const GpuWorkloadSpec& s,
                                                       std::size_t num_frames,
                                                       common::Rng& rng) {
  std::vector<gpu::FrameDescriptor> frames;
  frames.reserve(num_frames);
  double cut_scale = 1.0;          // current scene intensity multiplier
  double jitter_state = 0.0;       // AR(1) per-frame jitter
  const double phase0 = rng.uniform(0.0, 2.0 * common::kPi);
  for (std::size_t i = 0; i < num_frames; ++i) {
    if (rng.bernoulli(s.scene_cut_prob)) cut_scale = rng.uniform(0.7, 1.4);
    jitter_state = 0.8 * jitter_state + rng.normal(0.0, s.frame_jitter);
    const double envelope =
        1.0 + s.scene_amplitude *
                  std::sin(phase0 + 2.0 * common::kPi * static_cast<double>(i) /
                                        s.scene_period_frames);
    const double m = cut_scale * envelope * std::exp(jitter_state);
    gpu::FrameDescriptor f;
    f.render_cycles = s.mean_render_cycles * m;
    f.mem_bytes = s.mean_mem_bytes * (0.6 + 0.4 * m);  // traffic tracks content, damped
    f.cpu_cycles = s.mean_cpu_cycles * (0.8 + 0.2 * m);
    f.mem_exposed = 0.30;
    f.workload_id = s.id;
    frames.push_back(f);
  }
  return frames;
}

std::vector<gpu::FrameDescriptor> GpuBenchmarks::nenamark2(std::size_t num_frames,
                                                           common::Rng& rng) {
  // Moderate load with pronounced scene dynamics: several distinct scenes of
  // different complexity with smooth ramps — good stress for the adaptive
  // frame-time predictor of Fig. 2.
  GpuWorkloadSpec s = spec("Nenamark2", 26e6, 16e6, 6e6, 0.40, 180, 0.03, 0.008, 100);
  return trace(s, num_frames, rng);
}

}  // namespace oal::workloads
