// Synthetic graphics workloads.
//
// Substitutes for the ten commercial games/benchmarks of the ENMPC study
// (Fig. 5) and the Nenamark2 trace of the frame-time-prediction study
// (Fig. 2).  Each workload generates a frame stream whose render work
// follows slow scene drift (sinusoidal content envelope) plus abrupt scene
// changes, spanning intensities from far-below GPU capacity (SharkDash — the
// paper's 58 % savings case) to near capacity (AngryBirds — the 5 % case).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gpu/frame.h"

namespace oal::workloads {

struct GpuWorkloadSpec {
  std::string name;
  double mean_render_cycles = 20e6;  ///< per frame
  double mean_mem_bytes = 12e6;
  double mean_cpu_cycles = 6e6;
  double scene_amplitude = 0.25;     ///< relative sinusoidal content swing
  double scene_period_frames = 240;  ///< frames per content cycle
  double frame_jitter = 0.05;        ///< relative per-frame noise
  double scene_cut_prob = 0.004;     ///< per-frame probability of a hard cut
  std::uint32_t id = 0;
};

class GpuBenchmarks {
 public:
  /// The ten Fig. 5 workloads, in the paper's order.
  static const std::vector<GpuWorkloadSpec>& fig5_suite();
  static const GpuWorkloadSpec& by_name(const std::string& name);

  static std::vector<gpu::FrameDescriptor> trace(const GpuWorkloadSpec& spec,
                                                 std::size_t num_frames, common::Rng& rng);

  /// Nenamark2-like trace for Fig. 2 (moderate load, strong scene dynamics).
  static std::vector<gpu::FrameDescriptor> nenamark2(std::size_t num_frames, common::Rng& rng);
};

}  // namespace oal::workloads
