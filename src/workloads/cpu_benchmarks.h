// Synthetic CPU benchmark suite.
//
// Substitutes for MiBench / CortexSuite / PARSEC in the IL/RL experiments
// (paper Table II, Figs. 3-4).  Each of the 16 named applications is a
// phase-structured generator of workload-conservative snippets.  Suites are
// given deliberately different descriptor statistics so that the
// *distribution shift* the paper's argument rests on is present:
//
//   MiBench-like : serial, compute-bound, ILP-rich (big-core friendly).
//   Cortex-like  : irregular, memory-dominated, weak big-core advantage.
//   PARSEC-like  : multi-threaded floating-point kernels (2T / 4T).
//
// A policy trained only on the MiBench region of counter space mispredicts
// the optimal configuration in the other regions — reproducing Table II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "soc/snippet.h"

namespace oal::workloads {

enum class Suite { kMiBench, kCortex, kParsec };

std::string suite_name(Suite s);

/// One execution phase: snippets wander around `mean` with relative
/// AR(1)-correlated noise of magnitude `rel_sigma`.
struct Phase {
  soc::SnippetDescriptor mean;
  double rel_sigma = 0.05;
  double weight = 1.0;  ///< fraction of the app spent in this phase
};

struct AppSpec {
  std::string name;
  Suite suite = Suite::kMiBench;
  std::vector<Phase> phases;
  std::size_t default_snippets = 240;
  std::uint32_t app_id = 0;
};

class CpuBenchmarks {
 public:
  /// All 16 applications in the paper's Fig. 4 order.
  static const std::vector<AppSpec>& all();
  static const AppSpec& by_name(const std::string& name);
  static std::vector<AppSpec> of_suite(Suite s);

  /// Generates a snippet trace for an app: phases in order, each taking its
  /// weight share of n snippets, with AR(1) wandering inside each phase.
  static std::vector<soc::SnippetDescriptor> trace(const AppSpec& app, std::size_t n,
                                                   common::Rng& rng);
  static std::vector<soc::SnippetDescriptor> trace(const AppSpec& app, common::Rng& rng);

  /// Concatenates traces of several apps (the "sequence of applications"
  /// protocol of Fig. 3); returns per-snippet descriptors and fills
  /// `boundaries` with the first snippet index of each app.
  static std::vector<soc::SnippetDescriptor> sequence(const std::vector<AppSpec>& apps,
                                                      common::Rng& rng,
                                                      std::vector<std::size_t>* boundaries = nullptr);
};

}  // namespace oal::workloads
