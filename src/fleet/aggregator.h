// Streaming population aggregation for fleet-scale sweeps.
//
// A fleet sweep must report population-level distributions (E/Oracle,
// clamp rate, skin violations) over thousands of devices without ever
// holding all their results — the whole point of the streaming engine is
// that peak result memory is one shard.  PopulationAggregator is the sink
// side of that contract: every accumulator is fixed-capacity.
//
//  * count / mean / min / max and the integer totals (devices, snippets,
//    clamps, violations) are exact over the whole population
//    (common::RunningStats Welford + counters).
//  * p50/p99 come from a deterministic fixed-size window of the most
//    recent `capacity` samples (a ring, exactly core::DecisionTimer's
//    scheme) evaluated with the repo-wide common::percentile_sorted rule —
//    exact whenever the population fits the window, deterministic always,
//    because the streaming engine delivers results in id order regardless
//    of thread count.
//  * The worst-N tail-device table keeps N rows, ordered worst-first by
//    energy ratio with the device id as the deterministic tie-break.
//
// Cohorts are recovered from the device id alone
// (DevicePopulation::cohort_of_id), so the aggregator needs nothing beyond
// the AnyResult stream the engine sink provides.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/domain.h"

namespace oal::fleet {

/// Fixed-capacity streaming accumulator: exact count/mean/min/max, ring
/// window for percentiles.  The per-sample add path never allocates;
/// percentile() sorts a copy of the window at report time.
class StreamingMetric {
 public:
  explicit StreamingMetric(std::size_t capacity = 4096);

  void add(double x);
  const common::RunningStats& stats() const { return stats_; }
  /// Samples currently retained for percentiles (= min(count, capacity)).
  std::size_t window() const;
  /// Percentile over the retained window via common::percentile_sorted
  /// (the repo-wide rule); throws std::invalid_argument while empty.
  double percentile(double p) const;

 private:
  common::RunningStats stats_;
  std::vector<double> window_;  ///< ring over the most recent samples
  std::size_t count_ = 0;
};

/// One row of the worst-N tail-device table.
struct TailDevice {
  std::string id;
  double energy_ratio = 0.0;
  double clamp_rate = 0.0;
  double peak_skin_c = 0.0;
};

/// Distribution summary of one cohort (or of the whole population).
struct CohortStats {
  explicit CohortStats(std::size_t window_capacity = 4096);

  std::size_t devices = 0;          ///< exact
  std::size_t snippets = 0;         ///< exact total
  std::size_t clamped = 0;          ///< exact total clamped decisions
  std::size_t skin_violations = 0;  ///< devices with peak skin > limit (exact)
  StreamingMetric energy_ratio;     ///< E/Oracle per device
  StreamingMetric clamp_rate;       ///< clamped / snippets per device
  StreamingMetric peak_skin_c;      ///< per-device peak skin temperature
};

class PopulationAggregator {
 public:
  explicit PopulationAggregator(double t_max_skin_c, std::size_t worst_n = 10,
                                std::size_t window_capacity = 4096);

  /// Folds one device result (a fleet ThermalDrmScenario arm) in.  Call in
  /// the engine sink; delivery order is deterministic, so the aggregate is
  /// identical serial vs N-thread.
  void add(const core::AnyResult& result);

  std::size_t devices() const { return population_.devices; }
  const CohortStats& population() const { return population_; }
  /// Cohort key -> stats, ordered (std::map) for deterministic reporting.
  const std::map<std::string, CohortStats>& cohorts() const { return cohorts_; }
  /// Worst-first tail devices (highest energy ratio; id tie-break).
  const std::vector<TailDevice>& worst() const { return worst_; }

 private:
  void fold(CohortStats& into, std::size_t snippets, std::size_t clamped, double energy_ratio,
            double clamp_rate, double peak_skin_c) const;

  double t_max_skin_c_;
  std::size_t worst_n_;
  std::size_t window_capacity_;
  CohortStats population_;
  std::map<std::string, CohortStats> cohorts_;
  std::vector<TailDevice> worst_;  ///< sorted worst-first, <= worst_n_ rows
};

}  // namespace oal::fleet
