#include "fleet/aggregator.h"

#include <algorithm>
#include <stdexcept>

#include "fleet/device_population.h"

namespace oal::fleet {

StreamingMetric::StreamingMetric(std::size_t capacity) : window_(capacity, 0.0) {
  if (capacity == 0) throw std::invalid_argument("StreamingMetric: capacity must be > 0");
}

void StreamingMetric::add(double x) {
  stats_.add(x);
  window_[count_ % window_.size()] = x;
  ++count_;
}

std::size_t StreamingMetric::window() const { return std::min(count_, window_.size()); }

double StreamingMetric::percentile(double p) const {
  const std::size_t n = window();
  if (n == 0) throw std::invalid_argument("StreamingMetric: percentile of empty window");
  std::vector<double> sorted(window_.begin(), window_.begin() + static_cast<std::ptrdiff_t>(n));
  std::sort(sorted.begin(), sorted.end());
  return common::percentile_sorted(sorted.data(), n, p);
}

CohortStats::CohortStats(std::size_t window_capacity)
    : energy_ratio(window_capacity), clamp_rate(window_capacity), peak_skin_c(window_capacity) {}

PopulationAggregator::PopulationAggregator(double t_max_skin_c, std::size_t worst_n,
                                           std::size_t window_capacity)
    : t_max_skin_c_(t_max_skin_c),
      worst_n_(worst_n),
      window_capacity_(window_capacity),
      population_(window_capacity) {
  worst_.reserve(worst_n_ + 1);
}

void PopulationAggregator::fold(CohortStats& into, std::size_t snippets, std::size_t clamped,
                                double energy_ratio, double clamp_rate,
                                double peak_skin_c) const {
  into.devices += 1;
  into.snippets += snippets;
  into.clamped += clamped;
  if (peak_skin_c > t_max_skin_c_) into.skin_violations += 1;
  into.energy_ratio.add(energy_ratio);
  into.clamp_rate.add(clamp_rate);
  into.peak_skin_c.add(peak_skin_c);
}

void PopulationAggregator::add(const core::AnyResult& result) {
  const auto snippets = static_cast<std::size_t>(result.metric("snippets"));
  const auto clamped = static_cast<std::size_t>(result.metric("clamped_snippets"));
  const double energy_ratio = result.has_metric("energy_ratio") ? result.metric("energy_ratio")
                                                                : 1.0;  // oracle disabled
  const double clamp_rate =
      snippets == 0 ? 0.0 : static_cast<double>(clamped) / static_cast<double>(snippets);
  const double peak_skin_c = result.metric("peak_skin_c");

  fold(population_, snippets, clamped, energy_ratio, clamp_rate, peak_skin_c);
  const std::string cohort = DevicePopulation::cohort_of_id(result.id());
  auto [it, inserted] = cohorts_.try_emplace(cohort, window_capacity_);
  (void)inserted;
  fold(it->second, snippets, clamped, energy_ratio, clamp_rate, peak_skin_c);

  if (worst_n_ == 0) return;
  // Insertion sort into the fixed-size tail table: worst first by energy
  // ratio, id as the deterministic tie-break.
  TailDevice row{result.id(), energy_ratio, clamp_rate, peak_skin_c};
  const auto pos = std::upper_bound(worst_.begin(), worst_.end(), row,
                                    [](const TailDevice& a, const TailDevice& b) {
                                      if (a.energy_ratio != b.energy_ratio)
                                        return a.energy_ratio > b.energy_ratio;
                                      return a.id < b.id;
                                    });
  if (pos == worst_.end() && worst_.size() >= worst_n_) return;
  worst_.insert(pos, std::move(row));
  if (worst_.size() > worst_n_) worst_.pop_back();
}

}  // namespace oal::fleet
