#include "fleet/device_population.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "core/scenario_factories.h"
#include "soc/thermal_platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::fleet {

namespace {

// Quantized silicon corners: a handful of discrete (leakage, Ceff) points
// instead of a continuous draw, so the fleet spans few distinct
// PlatformParams and every device in a corner shares the corner's Oracle
// searches (the cache keys on the platform fingerprint).
struct Corner {
  const char* name;
  double leak_mul;  ///< on leak_{little,big}_w_per_v
  double ceff_mul;  ///< on ceff_{little,big}_nf
};
constexpr Corner kCorners[] = {
    {"slow", 0.72, 1.06},  // slow silicon: low leakage, higher Ceff
    {"typ", 1.00, 1.00},
    {"fast", 1.38, 0.94},  // fast silicon: leaky, slightly lower Ceff
};

// OPP voltage bins: binning-time guardband spread applied to both clusters'
// voltage endpoints (the convex OPP curve between them shifts with it).
struct VoltageBin {
  const char* name;
  double v_mul;
};
constexpr VoltageBin kVbins[] = {
    {"vlow", 0.960},
    {"vnom", 1.000},
    {"vhigh", 1.045},
};

// Typ-heavy categorical weights for both quantized axes (the middle of a
// binned normal).
const std::vector<double> kCornerWeights{1.0, 2.0, 1.0};
const std::vector<double> kVbinWeights{1.0, 2.0, 1.0};

const char* ambient_bin(double ambient_c) {
  if (ambient_c < 18.0) return "cool";
  if (ambient_c < 32.0) return "temperate";
  return "hot";
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
}

}  // namespace

DevicePopulation::DevicePopulation(PopulationConfig cfg,
                                   std::shared_ptr<core::OracleCache> oracle_cache)
    : cfg_(cfg), oracle_cache_(std::move(oracle_cache)) {
  if (cfg_.devices == 0) throw std::invalid_argument("fleet: devices must be > 0");
  if (cfg_.snippets_per_device == 0)
    throw std::invalid_argument("fleet: snippets_per_device must be > 0");
  if (cfg_.snippets_per_device > cfg_.canonical_snippets_per_app)
    throw std::invalid_argument(
        "fleet: snippets_per_device must fit inside one canonical app trace");
  // Canonical per-app traces: one fixed trace per app, derived from the
  // population seed alone, so every device window is a view into the same
  // bounded snippet pool (bounded Oracle search count).
  auto canonical = std::make_shared<std::vector<std::vector<soc::SnippetDescriptor>>>();
  const auto& apps = workloads::CpuBenchmarks::all();
  canonical->reserve(apps.size());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    common::Rng app_rng(mix_seed(cfg_.seed * 0x100000001b3ULL, a));
    canonical->push_back(
        workloads::CpuBenchmarks::trace(apps[a], cfg_.canonical_snippets_per_app, app_rng));
  }
  canonical_ = std::move(canonical);
}

DeviceSpec DevicePopulation::spec(std::size_t index) const {
  if (index >= cfg_.devices) throw std::out_of_range("fleet: device index out of range");
  DeviceSpec d;
  d.index = index;
  // Per-device stream derived from (seed, index) only: specs are identical
  // regardless of generation order or which subset is generated.
  common::Rng rng(mix_seed(cfg_.seed, index));

  d.corner = rng.categorical(kCornerWeights);
  d.vbin = rng.categorical(kVbinWeights);
  const Corner& corner = kCorners[d.corner];
  const VoltageBin& vbin = kVbins[d.vbin];
  d.platform.leak_little_w_per_v *= corner.leak_mul;
  d.platform.leak_big_w_per_v *= corner.leak_mul;
  d.platform.ceff_little_nf *= corner.ceff_mul;
  d.platform.ceff_big_nf *= corner.ceff_mul;
  d.platform.v_min_little *= vbin.v_mul;
  d.platform.v_max_little *= vbin.v_mul;
  d.platform.v_min_big *= vbin.v_mul;
  d.platform.v_max_big *= vbin.v_mul;

  // Enclosure/ambient spread: continuous (it never enters the Oracle key),
  // binned only for the cohort name.  The hot tail sits close to the skin
  // limit, where the steady-state budget binds and clamping concentrates.
  double ambient = rng.normal(29.0, 8.0);
  if (ambient < 5.0) ambient = 5.0;
  if (ambient > 42.0) ambient = 42.0;
  d.ambient_c = ambient;

  // Workload mix: 1-3 apps, each a contiguous window of its canonical trace.
  const auto& canonical = *canonical_;
  const std::size_t napps = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const std::size_t base_len = cfg_.snippets_per_device / napps;
  d.trace.reserve(cfg_.snippets_per_device);
  for (std::size_t k = 0; k < napps; ++k) {
    const std::size_t len =
        (k + 1 == napps) ? cfg_.snippets_per_device - base_len * k : base_len;
    const auto app = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(canonical.size()) - 1));
    const std::vector<soc::SnippetDescriptor>& trace = canonical[app];
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(trace.size() - len)));
    d.trace.insert(d.trace.end(), trace.begin() + static_cast<std::ptrdiff_t>(start),
                   trace.begin() + static_cast<std::ptrdiff_t>(start + len));
  }

  char leaf[16];
  std::snprintf(leaf, sizeof leaf, "d%05zu", index);
  d.cohort = std::string(corner.name) + "/" + vbin.name + "/" + ambient_bin(d.ambient_c);
  d.id = "fleet/" + d.cohort + "/" + leaf;
  return d;
}

core::AnyScenario DevicePopulation::scenario(const DeviceSpec& spec) const {
  core::Scenario s;
  s.id = spec.id;
  s.platform = spec.platform;
  s.platform_noise_seed = mix_seed(cfg_.seed * 0x517cc1b727220a95ULL, spec.index);
  s.trace = spec.trace;
  s.make_controller = core::governor_factory("ondemand");
  s.oracle_cache = oracle_cache_;

  soc::ThermalConstraintParams thermal;
  thermal.limits.t_max_junction_c = cfg_.t_max_junction_c;
  thermal.limits.t_max_skin_c = cfg_.t_max_skin_c;
  thermal.ambient_c = spec.ambient_c;
  thermal.horizon_s = 0.0;  // steady-state max-sustainable-power budget
  return core::AnyScenario(core::ThermalDrmScenario{std::move(s), thermal});
}

core::AnyScenario DevicePopulation::scenario(std::size_t index) const {
  return scenario(spec(index));
}

core::ExperimentEngine::AnyGenerator DevicePopulation::generator() const {
  auto self = std::make_shared<DevicePopulation>(*this);  // shares canonical_
  auto next = std::make_shared<std::size_t>(0);
  return [self, next]() -> std::optional<core::AnyScenario> {
    if (*next >= self->size()) return std::nullopt;
    return self->scenario((*next)++);
  };
}

std::string DevicePopulation::cohort_of_id(const std::string& device_id) {
  const std::string root = "fleet/";
  const std::size_t leaf = device_id.rfind('/');
  if (device_id.compare(0, root.size(), root) != 0 || leaf == std::string::npos ||
      leaf <= root.size())
    throw std::invalid_argument("fleet: id outside the fleet scheme: '" + device_id + "'");
  return device_id.substr(root.size(), leaf - root.size());
}

const std::vector<std::string>& DevicePopulation::corner_names() {
  static const std::vector<std::string> names{kCorners[0].name, kCorners[1].name,
                                              kCorners[2].name};
  return names;
}

const std::vector<std::string>& DevicePopulation::vbin_names() {
  static const std::vector<std::string> names{kVbins[0].name, kVbins[1].name, kVbins[2].name};
  return names;
}

const std::vector<std::string>& DevicePopulation::ambient_names() {
  static const std::vector<std::string> names{"cool", "temperate", "hot"};
  return names;
}

}  // namespace oal::fleet
