// Seeded device-population generator for fleet-scale sweeps.
//
// The paper evaluates one device; the "millions of users" direction needs
// thousands of *distinct* simulated devices whose variation mirrors a real
// fleet: silicon process spread, enclosure/ambient temperature spread, and
// per-user workload mixes.  DevicePopulation turns a (seed, device count)
// pair into that fleet deterministically — spec(i) is a pure function of the
// config, so any subset of devices can be generated in any order (the lazy
// generator() feeds ExperimentEngine::run_any_streaming one shard at a
// time without ever materializing the population).
//
// Two modeling choices keep a multi-thousand-device sweep tractable:
//
//  * Process variation is QUANTIZED into a small set of corners (leakage /
//    Ceff multipliers x OPP voltage bins) instead of a continuous draw, so
//    the fleet spans only a handful of distinct soc::PlatformParams.  The
//    Oracle cache keys on the platform fingerprint, so every device in a
//    corner shares the corner's per-snippet Oracle searches — total search
//    cost is bounded by (corners x distinct snippets), independent of the
//    device count, and --store warm passes skip all of it.
//  * Workload mixes are stitched from CANONICAL per-app traces (one fixed
//    trace per app, generated once from the population seed): a device picks
//    1-3 apps and a contiguous window of each, so the distinct-snippet set
//    is bounded by (apps x canonical trace length) while devices still get
//    individual mixes, lengths, and phase alignments.
//
// Ambient temperature is a continuous per-device draw (it feeds the thermal
// adapter, not the Oracle key) binned into named cohorts.  The device id
// embeds its cohort — "fleet/<corner>/<vbin>/<ambient>/dNNNNN" — so '/'
// -prefix selection cuts the fleet by cohort and the streaming aggregator
// recovers the cohort from the id alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/domain.h"
#include "core/experiment.h"
#include "core/oracle.h"
#include "soc/platform.h"
#include "soc/snippet.h"

namespace oal::fleet {

struct PopulationConfig {
  std::size_t devices = 200;
  std::uint64_t seed = 909;  ///< master seed; the whole fleet derives from it
  /// Per-device trace length (split across the device's 1-3 app windows).
  std::size_t snippets_per_device = 36;
  /// Length of each app's canonical trace (the window pool).
  std::size_t canonical_snippets_per_app = 96;
  /// Fleet-wide thermal limits (the skin limit also defines a "violation").
  double t_max_junction_c = 55.0;
  double t_max_skin_c = 43.0;
};

/// Everything that makes device `index` itself; pure function of the config.
struct DeviceSpec {
  std::size_t index = 0;
  std::string id;      ///< "fleet/<corner>/<vbin>/<ambient-bin>/dNNNNN"
  std::string cohort;  ///< "<corner>/<vbin>/<ambient-bin>"
  std::size_t corner = 0;   ///< process-corner index (corner_names())
  std::size_t vbin = 0;     ///< OPP voltage-bin index (vbin_names())
  double ambient_c = 25.0;  ///< continuous per-device draw
  soc::PlatformParams platform;  ///< quantized corner parameters
  std::vector<soc::SnippetDescriptor> trace;  ///< stitched app windows
};

class DevicePopulation {
 public:
  explicit DevicePopulation(PopulationConfig cfg,
                            std::shared_ptr<core::OracleCache> oracle_cache = nullptr);

  std::size_t size() const { return cfg_.devices; }
  const PopulationConfig& config() const { return cfg_; }

  /// Device `index`'s spec; deterministic and order-independent.
  DeviceSpec spec(std::size_t index) const;

  /// Device `index` as a runnable arm: an "ondemand"-governed DRM run of the
  /// device's trace on its corner platform under the fleet thermal limits at
  /// the device's ambient (soc::ThermalSocAdapter clamping every decision),
  /// with the Oracle computed through the shared cache.
  core::AnyScenario scenario(std::size_t index) const;
  core::AnyScenario scenario(const DeviceSpec& spec) const;

  /// Lazy source over the whole fleet in index order, for
  /// ExperimentEngine::run_any_streaming (index order == id order within
  /// every cohort-uniform shard is NOT guaranteed across cohorts; the
  /// engine's per-shard id-order delivery is what downstream code relies
  /// on).  The generator holds a private cursor; it may outlive `this`.
  core::ExperimentEngine::AnyGenerator generator() const;

  /// Cohort key of a fleet device id: strips the "fleet/" root and the
  /// "/dNNNNN" leaf ("fleet/typ/vnom/hot/d00042" -> "typ/vnom/hot").
  /// Throws std::invalid_argument on ids outside the fleet scheme.
  static std::string cohort_of_id(const std::string& device_id);

  static const std::vector<std::string>& corner_names();  ///< {"slow","typ","fast"}
  static const std::vector<std::string>& vbin_names();    ///< {"vlow","vnom","vhigh"}
  static const std::vector<std::string>& ambient_names(); ///< {"cool","temperate","hot"}

 private:
  PopulationConfig cfg_;
  std::shared_ptr<core::OracleCache> oracle_cache_;
  /// Canonical per-app traces, shared (read-only) by every device closure.
  std::shared_ptr<const std::vector<std::vector<soc::SnippetDescriptor>>> canonical_;
};

}  // namespace oal::fleet
