// Model-guided online imitation learning (paper Section IV-A3).
//
// The controller combines three elements, exactly following the paper:
//  1. Online power/performance models (OnlineSocModels) updated after every
//     snippet from the Table-I counters.
//  2. A runtime approximation of the Oracle: before each decision, the
//     models score all candidate configurations in a local neighborhood of
//     the current configuration (plus the policy's own suggestion); the
//     argmin is both the next applied configuration and the supervision
//     label.
//  3. An aggregation buffer: (state, label) pairs accumulate; when the
//     buffer reaches capacity (default 100, the paper's "100 epochs ...
//     <20 KB" setting) the policy is retrained by backpropagation on the
//     aggregated data and the buffer is reset.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>

#include "core/controller.h"
#include "core/il_policy.h"
#include "core/models.h"

namespace oal::core {

struct OnlineIlConfig {
  std::size_t buffer_capacity = 100;   ///< decisions between policy updates
  std::size_t update_epochs = 15;      ///< backprop epochs per update
  std::size_t aggregate_capacity = 1600;  ///< DAgger-style dataset cap
  int neighborhood_radius = 1;
  int max_changed_knobs = 4;
  /// Also score per-cluster (cores x frequency) joint sweeps; single-knob
  /// moves cannot cross the off-cluster/on-cluster energy valley.
  bool include_cluster_sweeps = true;
  bool include_policy_candidate = true;
  /// Occasional exploratory configuration (epsilon-greedy over the candidate
  /// set) keeps the online models informative outside the current operating
  /// point; without it model-guided search can lock into self-confirming
  /// states it has never observed alternatives to.
  double explore_init = 0.10;
  double explore_min = 0.03;
  double explore_decay = 0.995;
  /// When the time model's a-priori innovation exceeds this (log space, i.e.
  /// ~20% relative error), a workload change is assumed and exploration is
  /// re-armed to explore_rearm so the models re-learn the new region quickly.
  double innovation_reset_threshold = 0.20;
  double explore_rearm = 0.25;
  std::uint64_t seed = 2021;
  /// Thermal-aware mode: the policy state carries the runner's telemetry
  /// (temperatures + budget, see soc::ThermalTelemetry) and the runtime
  /// Oracle search is restricted to candidates whose *predicted* power fits
  /// the published budget — the controller proposes budget-feasible configs
  /// instead of being clamped after the fact, and the supervision labels
  /// teach the policy the same behavior.  Off (default): bitwise-identical
  /// to the blind controller, telemetry ignored.
  bool thermal_aware = false;
  /// Network/training configuration for arms whose scenario factory builds
  /// the policy (optimizer, learning rate, batch size — swappable per arm).
  /// thermal_aware above wins over policy.thermal_aware.
  IlPolicyConfig policy{};
};

class OnlineIlController : public DrmController {
 public:
  /// Takes ownership of nothing: policy and models are injected so the same
  /// offline artifacts can be shared across experiment arms.
  OnlineIlController(const soc::ConfigSpace& space, IlPolicy& policy, OnlineSocModels& models,
                     OnlineIlConfig cfg = {});

  std::string name() const override {
    return cfg_.thermal_aware ? "Online-IL (thermal)" : "Online-IL";
  }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;
  std::optional<soc::SocConfig> last_policy_decision() const override { return last_policy_; }
  void observe_telemetry(const soc::ThermalTelemetry& telemetry) override;
  /// Resets the telemetry snapshot to neutral (learned state is kept): a
  /// reused controller must not carry a previous run's thermal regime into
  /// a run with no telemetry source.
  void begin_run(const soc::SocConfig& initial) override;

  std::size_t policy_updates() const { return policy_updates_; }
  std::size_t buffer_fill() const { return buffer_states_.size(); }
  double exploration_rate() const { return explore_; }
  /// Wall-time the injected policy has spent in backprop so far (seconds).
  double policy_train_time_s() const { return policy_->train_time_s(); }
  /// Final-epoch loss of the policy's most recent (re)training.
  double policy_train_loss() const { return policy_->last_train_loss(); }

 private:
  const soc::ConfigSpace* space_;
  IlPolicy* policy_;
  OnlineSocModels* models_;
  FeatureExtractor fx_;
  OnlineIlConfig cfg_;
  common::Rng rng_;

  std::vector<common::Vec> buffer_states_;
  std::vector<soc::SocConfig> buffer_labels_;
  std::deque<common::Vec> agg_states_;
  std::deque<soc::SocConfig> agg_labels_;
  std::optional<soc::SocConfig> last_policy_;
  std::size_t policy_updates_ = 0;
  double explore_ = 0.0;
  bool last_was_exploratory_ = false;
  double innov_ewma_ = 0.0;
  soc::ThermalTelemetry telemetry_;  ///< latest runner snapshot (neutral until published)

  // Per-decision scratch, sized on the first step and reused after.  The
  // periodic retrain still allocates (it is amortized over buffer_capacity
  // decisions), but the per-step feature extraction, policy inference, and
  // candidate search run out of these buffers.
  common::Vec state_buf_;
  common::Vec phi_buf_;
  IlPolicy::Scratch policy_scratch_;
  std::vector<soc::SocConfig> candidates_;
  std::vector<soc::SocConfig> sweeps_;
  std::vector<soc::SocConfig> explore_pool_;
};

/// Pure offline-IL controller: applies the frozen policy with no adaptation
/// (the Table II arm).
class OfflineIlController : public DrmController {
 public:
  OfflineIlController(const soc::ConfigSpace& space, const IlPolicy& policy);

  std::string name() const override { return "Offline-IL"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;
  std::optional<soc::SocConfig> last_policy_decision() const override { return last_policy_; }

 private:
  const IlPolicy* policy_;
  FeatureExtractor fx_;
  std::optional<soc::SocConfig> last_policy_;
  common::Vec state_buf_;          ///< per-step feature scratch
  IlPolicy::Scratch policy_scratch_;
};

}  // namespace oal::core
