// Stock controller factories for ExperimentEngine scenarios.
//
// Benches and examples share the same handful of controller setups (frozen
// offline-IL policy, adaptive online-IL with per-scenario artifact copies,
// per-arm offline collection); keeping them here means a change to the
// setup protocol lands everywhere at once instead of in four hand-synced
// lambdas.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "core/online_il.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {

/// Frozen offline policy, shared read-only across scenarios
/// (OfflineIlController never mutates it).
ControllerFactory offline_il_factory(std::shared_ptr<const IlPolicy> policy);

/// Adaptive online-IL from a shared offline dataset: each scenario trains
/// its own policy copy (seeded by train_seed) and bootstraps its own models
/// — the controller mutates both in place.
ControllerFactory online_il_factory(std::shared_ptr<const OfflineData> off,
                                    std::uint64_t train_seed, OnlineIlConfig cfg = {});

/// Like online_il_factory, but the offline dataset is also collected inside
/// the factory on the scenario's own platform, labeled by the scenario's
/// objective (the per-arm ablation protocol, where collection noise is part
/// of the arm).
ControllerFactory online_il_collect_factory(std::vector<workloads::AppSpec> offline_apps,
                                            std::size_t snippets_per_app,
                                            std::size_t configs_per_snippet,
                                            std::uint64_t collect_seed, std::uint64_t train_seed,
                                            OnlineIlConfig cfg = {});

}  // namespace oal::core
