// Stock controller factories for ExperimentEngine scenarios.
//
// Benches and examples share the same handful of controller setups (frozen
// offline-IL policy, adaptive online-IL with per-scenario artifact copies,
// per-arm offline collection, NMPC/ENMPC over per-scenario bootstrapped GPU
// models); keeping them here means a change to the setup protocol lands
// everywhere at once instead of in hand-synced lambdas.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/domain.h"
#include "core/experiment.h"
#include "core/nmpc.h"
#include "core/online_il.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {

/// Linux-style heuristic governor by name ("ondemand", "interactive",
/// "performance", "powersave") — the baselines every DRM study compares
/// against.  Throws std::invalid_argument on unknown names.
ControllerFactory governor_factory(const std::string& name);

/// Frozen offline policy, shared read-only across scenarios
/// (OfflineIlController never mutates it).
ControllerFactory offline_il_factory(std::shared_ptr<const IlPolicy> policy);

/// Adaptive online-IL from a shared offline dataset: each scenario trains
/// its own policy copy (seeded by train_seed) and bootstraps its own models
/// — the controller mutates both in place.  With cfg.thermal_aware the
/// dataset must have been collected in the thermal-aware feature space
/// (collect_offline_data's thermal_aware flag), or the policy input
/// dimensions will not match.
ControllerFactory online_il_factory(std::shared_ptr<const OfflineData> off,
                                    std::uint64_t train_seed, OnlineIlConfig cfg = {});

/// Like online_il_factory, but the offline dataset is also collected inside
/// the factory on the scenario's own platform, labeled by the scenario's
/// objective (the per-arm ablation protocol, where collection noise is part
/// of the arm).  `oracle_cache`, when set, memoizes the per-snippet Oracle
/// labeling across arms collecting identical traces.
ControllerFactory online_il_collect_factory(std::vector<workloads::AppSpec> offline_apps,
                                            std::size_t snippets_per_app,
                                            std::size_t configs_per_snippet,
                                            std::uint64_t collect_seed, std::uint64_t train_seed,
                                            OnlineIlConfig cfg = {},
                                            std::shared_ptr<OracleCache> oracle_cache = nullptr);

// ---- GPU-ENMPC domain (GpuScenario factories) -----------------------------

/// The paper's baseline busy-threshold governor (all slices on).
GpuControllerFactory gpu_baseline_factory();

/// Implicit NMPC over models bootstrapped on the scenario's own platform
/// (the bootstrap renders are part of the arm, as offline profiling would be).
GpuControllerFactory gpu_nmpc_factory(NmpcConfig cfg, std::size_t bootstrap_frames = 400,
                                      std::uint64_t bootstrap_seed = 7);

/// Explicit NMPC: bootstraps models, then fits the explicit law by Sobol
/// sampling the NMPC solution inside the factory (i.e. on the worker).
GpuControllerFactory gpu_enmpc_factory(NmpcConfig cfg, std::size_t law_samples = 1500,
                                       std::size_t bootstrap_frames = 400,
                                       std::uint64_t bootstrap_seed = 7,
                                       std::uint64_t law_seed = 2017);

}  // namespace oal::core
