// Feature extraction from Table-I performance counters.
//
// Two feature views are derived from the same counters:
//  * policy features — the state vector fed to IL/RL policies;
//  * model features  — the regressors of the online RLS power/performance
//    models, parameterized by a *candidate* configuration so the models can
//    score configurations that were not executed (paper Section IV-A3:
//    counters observed at the current configuration are reused to
//    approximate other configurations).
#pragma once

#include <utility>

#include "common/matrix.h"
#include "soc/config_space.h"
#include "soc/counters.h"
#include "soc/thermal_telemetry.h"

namespace oal::core {

/// Configuration-independent workload summary computed from counters.
struct WorkloadFeatures {
  double mpki = 0.0;          ///< L2 misses per kilo-instruction
  double bmpki = 0.0;         ///< branch mispredicts per kilo-instruction
  double mem_ai = 0.0;        ///< data memory accesses per instruction
  double ext_per_inst = 0.0;  ///< external memory requests per instruction
  double pf_proxy = 0.0;      ///< estimated parallel fraction in [0, 1]
  double cpi_obs = 0.0;       ///< observed cycles per instruction
  double runnable = 1.0;      ///< average run-queue depth (>= 1)
};

WorkloadFeatures workload_features(const soc::PerfCounters& k, const soc::SocConfig& c);

class FeatureExtractor {
 public:
  /// Stores the (small) configuration space by value, so extractors never
  /// dangle when constructed from a temporary space.  `thermal_aware`
  /// appends thermal-telemetry features to the policy state; the default
  /// (blind) extractor emits bitwise-identical vectors to the pre-telemetry
  /// pipeline, so existing policies and datasets are unaffected.
  explicit FeatureExtractor(soc::ConfigSpace space = {}, bool thermal_aware = false)
      : space_(std::move(space)), thermal_aware_(thermal_aware) {}

  /// Policy state: workload features + normalized current-config knobs.
  /// When thermal-aware, also: junction/skin proximity to their throttle
  /// limits and normalized budget headroom (neutral telemetry — the default
  /// argument — encodes a cool, unconstrained device).
  common::Vec policy_features(const soc::PerfCounters& k, const soc::SocConfig& current,
                              const soc::ThermalTelemetry& telemetry = {}) const;
  /// Allocation-free variant: writes the same state (bitwise identical, same
  /// expression order) into `out`, which keeps its capacity across calls —
  /// zero steady-state heap traffic once it has grown to policy_dim().
  void policy_features_into(const soc::PerfCounters& k, const soc::SocConfig& current,
                            common::Vec& out, const soc::ThermalTelemetry& telemetry = {}) const;
  std::size_t policy_dim() const { return thermal_aware_ ? 12 + kThermalDims : 12; }
  bool thermal_aware() const { return thermal_aware_; }

  /// Thermal features appended to the policy state in thermal-aware mode.
  static constexpr std::size_t kThermalDims = 3;

  /// Regressors for the online models: smooth functions of the candidate
  /// configuration crossed with workload features.  Targets are log(time per
  /// instruction) and log(power), which are close to linear in this basis.
  common::Vec model_features(const WorkloadFeatures& w, const soc::SocConfig& candidate) const;
  /// Allocation-free variant of model_features (same values, same order)
  /// into a caller-reused buffer — the per-candidate hot path of the
  /// online-IL neighborhood sweep and the NMPC solvers.
  void model_features_into(const WorkloadFeatures& w, const soc::SocConfig& candidate,
                           common::Vec& out) const;
  std::size_t model_dim() const;

 private:
  soc::ConfigSpace space_;
  bool thermal_aware_ = false;
};

}  // namespace oal::core
