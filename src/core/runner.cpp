#include "core/runner.h"

#include <cmath>
#include <stdexcept>

namespace oal::core {

double RunResult::total_energy_j() const {
  double e = 0.0;
  for (const auto& r : records) e += r.energy_j;
  return e;
}

double RunResult::oracle_energy_j() const {
  double e = 0.0;
  for (const auto& r : records) e += r.oracle_energy_j;
  return e;
}

double RunResult::total_time_s() const {
  double t = 0.0;
  for (const auto& r : records) t += r.exec_time_s;
  return t;
}

double RunResult::energy_ratio() const {
  const double oe = oracle_energy_j();
  if (oe <= 0.0) throw std::logic_error("RunResult::energy_ratio: no oracle energies");
  return total_energy_j() / oe;
}

double RunResult::energy_ratio_for_app(std::uint32_t app_id) const {
  double e = 0.0, oe = 0.0;
  for (const auto& r : records) {
    if (r.app_id != app_id) continue;
    e += r.energy_j;
    oe += r.oracle_energy_j;
  }
  if (oe <= 0.0) throw std::invalid_argument("energy_ratio_for_app: app not in run");
  return e / oe;
}

double RunResult::big_freq_accuracy(std::size_t begin, std::size_t end,
                                    int tolerance_steps) const {
  if (begin >= end || end > records.size())
    throw std::invalid_argument("big_freq_accuracy: bad range");
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const soc::SocConfig d = records[i].policy_decision.value_or(records[i].applied);
    if (std::abs(d.big_freq_idx - records[i].oracle.big_freq_idx) <= tolerance_steps) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

double RunResult::config_accuracy(std::size_t begin, std::size_t end) const {
  if (begin >= end || end > records.size())
    throw std::invalid_argument("config_accuracy: bad range");
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const soc::SocConfig d = records[i].policy_decision.value_or(records[i].applied);
    if (d == records[i].oracle) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

DrmRunner::DrmRunner(soc::BigLittlePlatform& platform, RunnerOptions opts)
    : platform_(&platform), opts_(opts) {}

RunResult DrmRunner::run(const std::vector<soc::SnippetDescriptor>& trace,
                         DrmController& controller, const soc::SocConfig& initial) {
  RunResult out;
  out.records.reserve(trace.size());
  controller.begin_run(initial);
  soc::SocConfig current = initial;
  DecisionTimer timer;
  double clock = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const soc::SnippetDescriptor& s = trace[i];
    if (opts_.arbiter) current = opts_.arbiter(s, current);
    const soc::SnippetResult r = platform_->execute(s, current);

    SnippetRecord rec;
    rec.index = i;
    rec.app_id = s.app_id;
    rec.start_time_s = clock;
    rec.applied = current;
    rec.energy_j = r.energy_j;
    rec.exec_time_s = r.exec_time_s;
    if (opts_.compute_oracle) {
      rec.oracle = opts_.oracle_cache ? opts_.oracle_cache->config(*platform_, s, opts_.objective)
                                      : oracle_config(*platform_, s, opts_.objective);
      rec.oracle_energy_j = platform_->execute_ideal(s, rec.oracle).energy_j;
    }

    if (opts_.observer) opts_.observer(s, current, r);
    if (opts_.telemetry) controller.observe_telemetry(opts_.telemetry());
    const auto t0 = timer.start();
    current = controller.step(r, current);
    timer.stop(t0);
    rec.policy_decision = controller.last_policy_decision();
    out.records.push_back(rec);
    clock += r.exec_time_s;
  }
  out.decision_latency = timer.stats();
  return out;
}

}  // namespace oal::core
