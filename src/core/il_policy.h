// Imitation-learning policy (paper Section IV-A).
//
// A multi-head neural network (one softmax head per control knob) that
// approximates the Oracle: state -> (num little, num big, f_little, f_big).
// The whole network fits in a few kilobytes — the paper stresses that the
// runtime policy, unlike the Oracle, must be small enough for an OS governor
// or firmware (<20 KB including the online training buffer).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/oracle.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "soc/config_space.h"
#include "soc/counters.h"

namespace oal::core {

struct IlPolicyConfig {
  std::vector<std::size_t> hidden{24, 24};
  /// One optimizer step per minibatch: the policy takes batch_size-x fewer
  /// (but smoother) steps per epoch than the old per-sample trainer, so the
  /// default rate is correspondingly larger.  batch_size 16 / lr 2.5e-2
  /// reproduces the pre-batching fig3 convergence point (t = 7.4 s) exactly
  /// at a fraction of the optimizer-step cost.
  double learning_rate = 2.5e-2;
  double l2 = 1e-5;
  std::size_t offline_epochs = 40;
  std::size_t batch_size = 16;  ///< minibatch rows per optimizer step
  std::uint64_t seed = 42;
  /// Sizes the input layer for the thermal-aware policy state (see
  /// FeatureExtractor); must match the extractor that produced the training
  /// states.  The default (blind) network is unchanged.
  bool thermal_aware = false;
  /// Update rule (ml/optimizer.h); benches can swap it per arm.
  ml::OptimizerConfig optimizer{};
  /// Optional pool for shard-parallel gradient computation (bitwise-identical
  /// results; must not be a pool this policy is trained *on*).
  common::ThreadPool* pool = nullptr;
};

class IlPolicy {
 public:
  IlPolicy(const soc::ConfigSpace& space, IlPolicyConfig cfg = {});

  /// Offline training: fits the feature scaler and the network on an
  /// Oracle-labeled dataset.  Returns final-epoch mean cross-entropy.
  double train_offline(const PolicyDataset& data, common::Rng& rng);

  /// Incremental training on aggregated runtime data (scaler stays frozen so
  /// the input space of the deployed network is stable).
  double train_incremental(const PolicyDataset& data, std::size_t epochs, common::Rng& rng);

  /// Greedy policy decision from a raw (unscaled) state vector.
  soc::SocConfig decide(const common::Vec& state) const;

  /// Caller-owned scratch for the allocation-free decision path.  The
  /// buffers grow to the policy dimensions on first use and are then stable,
  /// so each decide(state, scratch) performs zero heap allocations.  The
  /// scratch is caller-owned (not a policy member) because one const
  /// IlPolicy is shared read-only across parallel scenario arms — each arm
  /// brings its own scratch and the policy stays thread-safe.
  struct Scratch {
    ml::StandardScaler::TransformCache scaler;
    common::Vec z;                              ///< scaled state
    ml::MultiHeadClassifier::InferScratch net;  ///< trunk/logit buffers
    std::vector<std::size_t> cls;               ///< per-head argmax
  };
  /// Allocation-free decide: same scaling arithmetic, argmax taken from the
  /// head logits (softmax skipped — monotone).  Decisions are bitwise
  /// identical to decide(state); asserted in tests/test_hot_path_alloc.cpp.
  soc::SocConfig decide(const common::Vec& state, Scratch& scratch) const;

  bool trained() const { return trained_; }
  std::size_t num_params() const { return net_.num_params(); }
  std::size_t storage_bytes() const { return net_.storage_bytes(); }

  /// Cumulative wall-time spent in train_offline/train_incremental (seconds).
  double train_time_s() const { return train_time_s_; }
  /// Mean cross-entropy of the most recent training call's final epoch.
  double last_train_loss() const { return last_train_loss_; }

  /// Flattens everything a warm process needs to skip train_offline: scaler
  /// state, network weights, and the training bookkeeping (train_time_s,
  /// last_train_loss — preserved so JSONL records emitted from a restored
  /// policy bitwise-match the cold run that stored it).
  std::vector<double> export_artifact() const;
  /// Restores what export_artifact produced into an identically-configured
  /// policy; false (policy unchanged) on shape mismatch or truncation.
  bool import_artifact(const std::vector<double>& in);

 private:
  double train(const PolicyDataset& data, std::size_t epochs, common::Rng& rng);

  IlPolicyConfig cfg_;
  ml::StandardScaler scaler_;
  ml::MultiHeadClassifier net_;
  bool trained_ = false;
  double train_time_s_ = 0.0;
  double last_train_loss_ = 0.0;
};

}  // namespace oal::core
