// DRM experiment runner.
//
// Executes a snippet trace on the platform under a controller, recording per
// snippet: the applied configuration, the controller's bare-policy decision
// (if any), the Oracle configuration and both energies.  The benches derive
// every row of Table II and every curve of Figs. 3-4 from these records.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/controller.h"
#include "core/decision_timer.h"
#include "core/objectives.h"
#include "core/oracle.h"
#include "soc/platform.h"

namespace oal::core {

struct SnippetRecord {
  std::size_t index = 0;
  std::uint32_t app_id = 0;
  double start_time_s = 0.0;   ///< wall-clock time at snippet start
  soc::SocConfig applied;
  std::optional<soc::SocConfig> policy_decision;
  soc::SocConfig oracle;
  double energy_j = 0.0;        ///< measured energy at the applied config
  double oracle_energy_j = 0.0; ///< ground-truth energy at the Oracle config
  double exec_time_s = 0.0;
};

struct RunResult {
  std::vector<SnippetRecord> records;
  /// Wall-clock latency of the controller's step() calls, timed by the
  /// runner around exactly the decision (model update + policy inference +
  /// candidate search — not platform execution or Oracle computation).
  DecisionLatencyStats decision_latency;

  double total_energy_j() const;
  double oracle_energy_j() const;
  double total_time_s() const;
  /// Total energy normalized to the Oracle (the metric of Table II / Fig. 4).
  double energy_ratio() const;
  /// Energy ratio restricted to snippets of one app.
  double energy_ratio_for_app(std::uint32_t app_id) const;

  /// Fraction of records in [begin, end) whose policy decision matches the
  /// Oracle on the big-cluster frequency (the Fig. 3 metric).  Records with
  /// no policy decision fall back to the applied configuration.
  double big_freq_accuracy(std::size_t begin, std::size_t end, int tolerance_steps = 0) const;
  /// Same, over full configurations.
  double config_accuracy(std::size_t begin, std::size_t end) const;
};

/// Hook invoked before each snippet executes; may veto/clamp the pending
/// configuration (the controller's decision, or the initial config for the
/// first snippet) — e.g. thermal power budgeting.  The returned config is
/// what actually executes and is recorded as `applied`.
using ConfigArbiter =
    std::function<soc::SocConfig(const soc::SnippetDescriptor&, const soc::SocConfig&)>;

/// Hook observing each executed snippet (applied config + measured result) —
/// e.g. advancing a thermal model from the power trace.
using SnippetObserver = std::function<void(const soc::SnippetDescriptor&, const soc::SocConfig&,
                                           const soc::SnippetResult&)>;

/// Read-only channel publishing the current thermal state (temperatures +
/// power budget) to the controller before each decision.  Sampled after the
/// observer hook, so the controller sees the state the just-executed snippet
/// produced.  Must be side-effect free: blind controllers ignore the
/// snapshot and their runs stay bitwise identical with or without it.
using ThermalTelemetrySource = std::function<soc::ThermalTelemetry()>;

struct RunnerOptions {
  Objective objective = Objective::kEnergy;
  bool compute_oracle = true;  ///< disable for speed when ratios are not needed
  /// Optional shared memoization of the exhaustive Oracle search (see
  /// core::OracleCache; keyed by platform params + snippet + objective).
  std::shared_ptr<OracleCache> oracle_cache;
  ConfigArbiter arbiter;    ///< empty = controller decisions apply verbatim
  SnippetObserver observer; ///< empty = no per-snippet observation
  ThermalTelemetrySource telemetry;  ///< empty = controllers run thermally blind
};

class DrmRunner {
 public:
  DrmRunner(soc::BigLittlePlatform& platform, RunnerOptions opts = {});

  RunResult run(const std::vector<soc::SnippetDescriptor>& trace, DrmController& controller,
                const soc::SocConfig& initial);

 private:
  soc::BigLittlePlatform* platform_;
  RunnerOptions opts_;
};

}  // namespace oal::core
