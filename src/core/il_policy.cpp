#include "core/il_policy.h"

#include <chrono>
#include <stdexcept>

namespace oal::core {

namespace {
ml::MlpConfig make_net_config(const IlPolicyConfig& cfg) {
  ml::MlpConfig m;
  m.hidden = cfg.hidden;
  m.activation = ml::Activation::kTanh;
  m.learning_rate = cfg.learning_rate;
  m.l2 = cfg.l2;
  m.seed = cfg.seed;
  m.optimizer = cfg.optimizer;
  m.pool = cfg.pool;
  return m;
}
}  // namespace

IlPolicy::IlPolicy(const soc::ConfigSpace& space, IlPolicyConfig cfg)
    : cfg_(cfg),
      net_(FeatureExtractor(space, cfg.thermal_aware).policy_dim(), space.knob_cardinalities(),
           make_net_config(cfg)) {}

double IlPolicy::train(const PolicyDataset& data, std::size_t epochs, common::Rng& rng) {
  std::vector<common::Vec> xs;
  std::vector<std::vector<std::size_t>> ys;
  xs.reserve(data.states.size());
  ys.reserve(data.labels.size());
  for (std::size_t i = 0; i < data.states.size(); ++i) {
    xs.push_back(scaler_.transform(data.states[i]));
    ys.push_back(labels_of(data.labels[i]));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const double loss = net_.train(xs, ys, epochs, cfg_.batch_size, rng);
  train_time_s_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  last_train_loss_ = loss;
  return loss;
}

double IlPolicy::train_offline(const PolicyDataset& data, common::Rng& rng) {
  if (data.states.empty() || data.states.size() != data.labels.size())
    throw std::invalid_argument("IlPolicy::train_offline: bad dataset");
  scaler_ = ml::StandardScaler();
  scaler_.fit(data.states);
  const double loss = train(data, cfg_.offline_epochs, rng);
  trained_ = true;
  return loss;
}

double IlPolicy::train_incremental(const PolicyDataset& data, std::size_t epochs,
                                   common::Rng& rng) {
  if (!trained_) throw std::logic_error("IlPolicy::train_incremental before train_offline");
  if (data.states.empty() || data.states.size() != data.labels.size())
    throw std::invalid_argument("IlPolicy::train_incremental: bad dataset");
  return train(data, epochs, rng);
}

soc::SocConfig IlPolicy::decide(const common::Vec& state) const {
  if (!trained_) throw std::logic_error("IlPolicy::decide before training");
  return config_of(net_.predict(scaler_.transform(state)));
}

// oal-lint: hot-path
soc::SocConfig IlPolicy::decide(const common::Vec& state, Scratch& s) const {
  if (!trained_) throw std::logic_error("IlPolicy::decide before training");
  scaler_.transform_into(state, s.z, s.scaler);
  net_.predict_into(s.z, s.cls, s.net);
  // Same knob-label decoding as config_of, minus the intermediate vector.
  return soc::SocConfig{static_cast<int>(s.cls[0]) + 1, static_cast<int>(s.cls[1]),
                        static_cast<int>(s.cls[2]), static_cast<int>(s.cls[3])};
}
// oal-lint: hot-path-end

std::vector<double> IlPolicy::export_artifact() const {
  std::vector<double> out;
  out.push_back(trained_ ? 1.0 : 0.0);
  out.push_back(train_time_s_);
  out.push_back(last_train_loss_);
  scaler_.export_state(out);
  net_.export_params(out);
  return out;
}

bool IlPolicy::import_artifact(const std::vector<double>& in) {
  if (in.size() < 3) return false;
  // Stage into copies so a truncated/mismatched artifact leaves *this intact.
  ml::StandardScaler scaler = scaler_;
  ml::MultiHeadClassifier net = net_;
  std::size_t pos = 3;
  if (!scaler.import_state(in, pos)) return false;
  if (!net.import_params(in, pos)) return false;
  if (pos != in.size()) return false;  // trailing garbage: not our artifact
  trained_ = in[0] != 0.0;
  train_time_s_ = in[1];
  last_train_loss_ = in[2];
  scaler_ = std::move(scaler);
  net_ = std::move(net);
  return true;
}

}  // namespace oal::core
