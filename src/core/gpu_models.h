// Online GPU frame-time and energy models (paper Sections III-B, IV-B).
//
// Frame time on the slice-gated GPU obeys
//     t = work / (f * eff(n)) + theta_mem * mem_bytes
// which is linear in unknowns given the observable work proxy, so an RLS (or
// STAFF) estimator tracks it online across DVFS/slice changes — this is the
// Fig. 2 predictor.  Per-period energy at scope s is likewise linear in
// switched-capacitance/leakage features once busy time is predicted, giving
// the NMPC its predictive energy models.  Sensitivities (the derivative of
// predicted time/energy w.r.t. frequency) fall out of the same models in
// closed form — the "predictive sensitivity models" of the ENMPC technique.
#pragma once

#include "common/matrix.h"
#include "gpu/gpu_model.h"
#include "ml/rls.h"
#include "ml/staff.h"

namespace oal::core {

/// Workload observables carried between frames (content predictor state).
struct GpuWorkloadState {
  double work_cycles = 5e6;  ///< EWMA of slice-normalized render work
  double mem_bytes = 5e6;    ///< EWMA of frame memory traffic
  double cpu_cycles = 2e6;   ///< EWMA of producer-side work

  void observe(const gpu::FrameResult& r, double slice_eff, double alpha = 0.6);
};

class GpuOnlineModels {
 public:
  explicit GpuOnlineModels(const gpu::GpuPlatform& platform);

  /// Multi-slice efficiency used to normalize observed busy cycles.
  double slice_eff(int n) const;

  /// Predicted frame time for a candidate configuration.
  double predict_frame_time_s(const GpuWorkloadState& w, const gpu::GpuConfig& c) const;
  /// d(frame time)/d(frequency in GHz): the DVFS sensitivity model.
  double frame_time_freq_sensitivity(const GpuWorkloadState& w, const gpu::GpuConfig& c) const;
  /// Predicted GPU-scope energy over one deadline period.
  double predict_gpu_energy_j(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                              double period_s) const;
  /// Producer-side (PKG+DRAM minus GPU scope) energy over one period, from
  /// the platform's deterministic power parameters and the workload state:
  /// CPU frame work, package base rail, DRAM traffic + static power.  This
  /// is config-independent, so it is the additive term that lifts the
  /// learned GPU-energy prediction to the PKG+DRAM scope the thermal
  /// budgeter arbitrates on.  Design-time prior only — at runtime the NMPC
  /// controllers anchor it to the measured per-frame producer energy.
  double producer_energy_prior_j(const GpuWorkloadState& w, double period_s) const;

  /// Reusable buffers for the allocation-free update overload: the feature
  /// basis plus the RLS temporaries, shared by both refits (phi and the RLS
  /// buffers grow to the energy-model dim on first use, then stop
  /// allocating).
  struct UpdateScratch {
    common::Vec phi;                        ///< feature basis (time, then energy)
    ml::RecursiveLeastSquares::Scratch rls; ///< K / Px temporaries
  };

  /// Adapt both models from an executed frame.
  void update(const GpuWorkloadState& w_before, const gpu::GpuConfig& c, double period_s,
              const gpu::FrameResult& observed);

  /// Allocation-free update: identical arithmetic (bitwise) to the by-value
  /// form, with every temporary parked in `scratch` — this makes the full
  /// per-frame NMPC/online-IL *step* (decide + refit) steady-state
  /// allocation-free, not just the decide half.
  void update(const GpuWorkloadState& w_before, const gpu::GpuConfig& c, double period_s,
              const gpu::FrameResult& observed, UpdateScratch& scratch);

  std::size_t updates() const { return time_model_.updates(); }

  /// Scratch overloads: identical arithmetic, the feature basis built into
  /// the caller-owned phi buffer.  The NMPC candidate loops call these many
  /// times per decision and reuse one buffer throughout.
  double predict_frame_time_s(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                              common::Vec& phi) const;
  double predict_gpu_energy_j(const GpuWorkloadState& w, const gpu::GpuConfig& c, double period_s,
                              common::Vec& phi) const;

  /// Feature maps (exposed for the explicit-NMPC sampler and tests).
  common::Vec time_features(const GpuWorkloadState& w, const gpu::GpuConfig& c) const;
  common::Vec energy_features(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                              double period_s) const;
  /// Buffer-reusing forms of the feature maps (cleared, then filled in the
  /// identical order — same values as the by-value forms).
  void time_features_into(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                          common::Vec& phi) const;
  void energy_features_into(const GpuWorkloadState& w, const gpu::GpuConfig& c, double period_s,
                            common::Vec& phi) const;

 private:
  const gpu::GpuPlatform* platform_;
  ml::RecursiveLeastSquares time_model_;    // target: frame time (s)
  ml::RecursiveLeastSquares energy_model_;  // target: GPU energy per period (J)
};

/// Standalone STAFF-based frame-time predictor used by the Fig. 2 experiment:
/// same physics features plus deliberately irrelevant inputs, demonstrating
/// the adaptive forgetting factor and online feature selection.
class StaffFrameTimePredictor {
 public:
  explicit StaffFrameTimePredictor(const gpu::GpuPlatform& platform, ml::StaffConfig cfg = {});

  double predict_ms(const GpuWorkloadState& w, const gpu::GpuConfig& c) const;
  /// Returns the a-priori relative error of this update.
  double update(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                const gpu::FrameResult& observed);
  const ml::StaffModel& model() const { return staff_; }

 private:
  common::Vec features(const GpuWorkloadState& w, const gpu::GpuConfig& c) const;
  const gpu::GpuPlatform* platform_;
  ml::StaffModel staff_;
};

}  // namespace oal::core
