// Runtime DRM controller interface.
//
// A controller observes the result of the snippet that just executed (the
// Table-I counters at the applied configuration — never ground-truth
// descriptors) and returns the configuration for the next snippet.
#pragma once

#include <optional>
#include <string>

#include "soc/config_space.h"
#include "soc/counters.h"
#include "soc/thermal_telemetry.h"

namespace oal::core {

class DrmController {
 public:
  virtual ~DrmController() = default;

  virtual std::string name() const = 0;

  /// Observe the just-finished snippet and choose the next configuration.
  virtual soc::SocConfig step(const soc::SnippetResult& result,
                              const soc::SocConfig& executed) = 0;

  /// Read-only thermal telemetry, published by DrmRunner before each step()
  /// when a telemetry source is bound (e.g. a thermal budgeter).  The default
  /// controller is thermally blind and ignores it, so binding a source never
  /// changes a blind controller's decisions.
  virtual void observe_telemetry(const soc::ThermalTelemetry& /*telemetry*/) {}

  /// What the *bare learned policy* chose during the last step(), when the
  /// controller has one (used for the Fig. 3 accuracy-vs-Oracle curves).
  virtual std::optional<soc::SocConfig> last_policy_decision() const { return std::nullopt; }

  /// Called once before a run starts (reset transient state if any).
  virtual void begin_run(const soc::SocConfig& /*initial*/) {}
};

}  // namespace oal::core
