#include "core/features.h"

#include <algorithm>
#include <cmath>

namespace oal::core {

WorkloadFeatures workload_features(const soc::PerfCounters& k, const soc::SocConfig& c) {
  WorkloadFeatures w;
  const double instr = std::max(k.instructions_retired, 1.0);
  w.mpki = k.l2_cache_misses / instr * 1000.0;
  w.bmpki = k.branch_mispredictions / instr * 1000.0;
  w.mem_ai = k.data_memory_accesses / instr;
  w.ext_per_inst = k.noncache_external_requests / instr;
  w.cpi_obs = k.cpu_cycles / instr;
  // Parallel-fraction proxy from cluster utilizations: total busy core-time
  // above one core's worth, normalized by the remaining cores.
  const double n_total = static_cast<double>(c.num_little + c.num_big);
  const double busy_cores = k.little_cluster_utilization * static_cast<double>(c.num_little) +
                            k.big_cluster_utilization * static_cast<double>(c.num_big);
  w.pf_proxy = n_total > 1.0 ? std::clamp((busy_cores - 1.0) / (n_total - 1.0), 0.0, 1.0) : 0.0;
  w.runnable = std::max(k.avg_runnable_threads, 1.0);
  return w;
}

common::Vec FeatureExtractor::policy_features(const soc::PerfCounters& k,
                                              const soc::SocConfig& current,
                                              const soc::ThermalTelemetry& telemetry) const {
  const WorkloadFeatures w = workload_features(k, current);
  const double fl_norm = static_cast<double>(current.little_freq_idx) /
                         static_cast<double>(space_.little_freqs().size() - 1);
  const double fb_norm = static_cast<double>(current.big_freq_idx) /
                         static_cast<double>(space_.big_freqs().size() - 1);
  common::Vec v{w.mpki,
                w.bmpki,
                w.mem_ai,
                w.ext_per_inst,
                w.pf_proxy,
                w.cpi_obs,
                w.runnable / 4.0,
                k.little_cluster_utilization,
                k.big_cluster_utilization,
                static_cast<double>(current.num_little) / 4.0,
                static_cast<double>(current.num_big) / 4.0,
                0.5 * (fl_norm + fb_norm)};
  if (thermal_aware_) {
    // Proximity of each thermal limit (0 = at ambient, 1 = at the throttle
    // limit; can exceed 1 transiently) and the budget normalized by the
    // neutral "no budget binds" level.  All three are ~[0, 1] scaled, like
    // the knob features, and take their neutral values (0, 0, 1) from a
    // default-constructed telemetry so blind-collected datasets stay usable.
    const auto proximity = [](double t_c, double limit_c, double ambient_c) {
      const double span = std::max(limit_c - ambient_c, 1.0);
      return std::clamp((t_c - ambient_c) / span, 0.0, 1.5);
    };
    v.push_back(proximity(telemetry.junction_c, telemetry.junction_limit_c, telemetry.ambient_c));
    v.push_back(proximity(telemetry.skin_c, telemetry.skin_limit_c, telemetry.ambient_c));
    v.push_back(std::clamp(telemetry.budget_w / soc::ThermalTelemetry::kUnconstrainedBudgetW,
                           0.0, 1.0));
  }
  return v;
}

// oal-lint: hot-path
void FeatureExtractor::policy_features_into(const soc::PerfCounters& k,
                                            const soc::SocConfig& current, common::Vec& out,
                                            const soc::ThermalTelemetry& telemetry) const {
  const WorkloadFeatures w = workload_features(k, current);
  const double fl_norm = static_cast<double>(current.little_freq_idx) /
                         static_cast<double>(space_.little_freqs().size() - 1);
  const double fb_norm = static_cast<double>(current.big_freq_idx) /
                         static_cast<double>(space_.big_freqs().size() - 1);
  // Indexed writes into a fixed-size buffer: resize reaches policy_dim()
  // once, then is a no-op — and the per-element push_back branches are gone.
  // oal-lint: allow(hot-path-alloc)
  out.resize(policy_dim());
  std::size_t i = 0;
  out[i++] = w.mpki;
  out[i++] = w.bmpki;
  out[i++] = w.mem_ai;
  out[i++] = w.ext_per_inst;
  out[i++] = w.pf_proxy;
  out[i++] = w.cpi_obs;
  out[i++] = w.runnable / 4.0;
  out[i++] = k.little_cluster_utilization;
  out[i++] = k.big_cluster_utilization;
  out[i++] = static_cast<double>(current.num_little) / 4.0;
  out[i++] = static_cast<double>(current.num_big) / 4.0;
  out[i++] = 0.5 * (fl_norm + fb_norm);
  if (thermal_aware_) {
    const auto proximity = [](double t_c, double limit_c, double ambient_c) {
      const double span = std::max(limit_c - ambient_c, 1.0);
      return std::clamp((t_c - ambient_c) / span, 0.0, 1.5);
    };
    out[i++] = proximity(telemetry.junction_c, telemetry.junction_limit_c, telemetry.ambient_c);
    out[i++] = proximity(telemetry.skin_c, telemetry.skin_limit_c, telemetry.ambient_c);
    out[i++] =
        std::clamp(telemetry.budget_w / soc::ThermalTelemetry::kUnconstrainedBudgetW, 0.0, 1.0);
  }
}
// oal-lint: hot-path-end

common::Vec FeatureExtractor::model_features(const WorkloadFeatures& w,
                                             const soc::SocConfig& c) const {
  // Physically-motivated basis.  Let f_l, f_b be GHz, n_l, n_b core counts.
  // log(t/I) of the analytic platform is approximately affine in:
  //   log-speeds of the two clusters, memory-intensity crossings, and the
  //   parallel-width terms.  Keeping everything smooth and bounded keeps the
  //   RLS covariance well conditioned.
  const double f_l = space_.little_freq_mhz(c) / 1000.0;  // GHz
  const double f_b = space_.big_freq_mhz(c) / 1000.0;
  const double n_l = static_cast<double>(c.num_little);
  const double n_b = static_cast<double>(c.num_big);
  const bool big_on = c.num_big >= 1;
  const double log_fl = std::log(f_l);
  const double log_fb = big_on ? std::log(f_b) : 0.0;
  const double mpki = w.mpki;
  // Parallel-fraction estimate from the run-queue depth (robust even when a
  // single core is active, unlike the utilization-based proxy).
  const double pf = w.runnable > 1.0
                        ? std::clamp((w.runnable - 1.0) / w.runnable, 0.0, 1.0)
                        : w.pf_proxy;
  // Usable parallel width: software threads cap hardware width.
  const double w_eff =
      std::min(std::max(w.runnable, 1.0), n_l + (big_on ? n_b : 0.0));
  const double width = std::log(std::max(w_eff, 1.0) );

  return {1.0,
          log_fl,
          log_fb,
          big_on ? 1.0 : 0.0,
          mpki,
          mpki * f_l,
          mpki * (big_on ? f_b : 0.0),
          w.bmpki,
          pf,
          pf * width,
          n_l,
          big_on ? n_b : 0.0,
          f_l,
          big_on ? f_b : 0.0,
          f_l * f_l,
          big_on ? f_b * f_b : 0.0,
          pf * log_fl,
          pf * log_fb,
          w.mem_ai,
          w.ext_per_inst,
          w_eff,
          pf * w_eff,
          pf / std::max(w_eff, 1.0)};
}

// oal-lint: hot-path
void FeatureExtractor::model_features_into(const WorkloadFeatures& w, const soc::SocConfig& c,
                                           common::Vec& out) const {
  // Same basis as model_features, written into a reused buffer.
  const double f_l = space_.little_freq_mhz(c) / 1000.0;  // GHz
  const double f_b = space_.big_freq_mhz(c) / 1000.0;
  const double n_l = static_cast<double>(c.num_little);
  const double n_b = static_cast<double>(c.num_big);
  const bool big_on = c.num_big >= 1;
  const double log_fl = std::log(f_l);
  const double log_fb = big_on ? std::log(f_b) : 0.0;
  const double mpki = w.mpki;
  const double pf = w.runnable > 1.0 ? std::clamp((w.runnable - 1.0) / w.runnable, 0.0, 1.0)
                                     : w.pf_proxy;
  const double w_eff = std::min(std::max(w.runnable, 1.0), n_l + (big_on ? n_b : 0.0));
  const double width = std::log(std::max(w_eff, 1.0));

  // Indexed writes into a fixed-size buffer: resize reaches model_dim()
  // once, then is a no-op — and the per-element push_back branches are gone.
  // oal-lint: allow(hot-path-alloc)
  out.resize(model_dim());
  std::size_t i = 0;
  out[i++] = 1.0;
  out[i++] = log_fl;
  out[i++] = log_fb;
  out[i++] = big_on ? 1.0 : 0.0;
  out[i++] = mpki;
  out[i++] = mpki * f_l;
  out[i++] = mpki * (big_on ? f_b : 0.0);
  out[i++] = w.bmpki;
  out[i++] = pf;
  out[i++] = pf * width;
  out[i++] = n_l;
  out[i++] = big_on ? n_b : 0.0;
  out[i++] = f_l;
  out[i++] = big_on ? f_b : 0.0;
  out[i++] = f_l * f_l;
  out[i++] = big_on ? f_b * f_b : 0.0;
  out[i++] = pf * log_fl;
  out[i++] = pf * log_fb;
  out[i++] = w.mem_ai;
  out[i++] = w.ext_per_inst;
  out[i++] = w_eff;
  out[i++] = pf * w_eff;
  out[i++] = pf / std::max(w_eff, 1.0);
}
// oal-lint: hot-path-end

std::size_t FeatureExtractor::model_dim() const { return 23; }

}  // namespace oal::core
