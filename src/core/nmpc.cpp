#include "core/nmpc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/sobol.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::core {

// ---- Implicit NMPC ----------------------------------------------------------

NmpcGpuController::NmpcGpuController(const gpu::GpuPlatform& platform, GpuOnlineModels& models,
                                     NmpcConfig cfg)
    : platform_(&platform), models_(&models), cfg_(cfg) {}

void NmpcGpuController::begin_run(const gpu::GpuConfig& initial) {
  slow_cfg_ = initial;
  state_ = GpuWorkloadState{};
}

gpu::GpuConfig NmpcGpuController::solve_slow(const GpuWorkloadState& w,
                                             const gpu::GpuConfig& current,
                                             std::size_t* eval_counter) const {
  const double period = 1.0 / cfg_.fps_target;
  const double deadline = period * (1.0 - cfg_.deadline_margin);
  const double h = static_cast<double>(cfg_.horizon_periods * cfg_.slow_period_frames);

  gpu::GpuConfig best = current;
  double best_cost = std::numeric_limits<double>::infinity();
  gpu::GpuConfig fastest = current;
  double fastest_t = std::numeric_limits<double>::infinity();
  bool any_feasible = false;

  for (int n = 1; n <= platform_->params().max_slices; ++n) {
    for (int fi = 0; fi < static_cast<int>(platform_->num_freqs()); ++fi) {
      const gpu::GpuConfig c{fi, n};
      const double t = models_->predict_frame_time_s(w, c);
      const double e = models_->predict_gpu_energy_j(w, c, period);
      if (eval_counter != nullptr) *eval_counter += 2;
      if (t < fastest_t) {
        fastest_t = t;
        fastest = c;
      }
      if (t > deadline) continue;
      // Horizon energy (workload forecast: EWMA held over the horizon) plus
      // one-time actuation cost amortized across the horizon.
      const auto tc = platform_->transition_cost(current, c);
      const double cost = e * h + tc.energy_j;
      if (!any_feasible || cost < best_cost) {
        any_feasible = true;
        best_cost = cost;
        best = c;
      }
    }
  }
  return any_feasible ? best : fastest;
}

gpu::GpuConfig NmpcGpuController::fast_trim(const GpuWorkloadState& w,
                                            const gpu::GpuConfig& current,
                                            std::size_t* eval_counter) const {
  const double period = 1.0 / cfg_.fps_target;
  const double deadline = period * (1.0 - cfg_.deadline_margin);
  const double target = period * cfg_.fast_target_busy * (1.0 - cfg_.deadline_margin);
  gpu::GpuConfig c = current;
  const double t = models_->predict_frame_time_s(w, c);
  const double sens = models_->frame_time_freq_sensitivity(w, c);  // s per GHz (negative)
  if (eval_counter != nullptr) *eval_counter += 2;
  if (std::abs(sens) < 1e-12) return c;
  // Deadbeat step toward the target busy time using the learned sensitivity.
  const double df_ghz = (target - t) / sens;  // GHz change needed
  int steps = static_cast<int>(std::lround(df_ghz * 1000.0 / 50.0));  // 50 MHz bins
  steps = std::clamp(steps, -cfg_.fast_max_step, cfg_.fast_max_step);
  // Never trim below the deadline: verify the trimmed config still fits.
  c.freq_idx = std::clamp(current.freq_idx + steps, 0,
                          static_cast<int>(platform_->num_freqs()) - 1);
  while (c.freq_idx < static_cast<int>(platform_->num_freqs()) - 1 &&
         models_->predict_frame_time_s(w, c) > deadline) {
    ++c.freq_idx;
    if (eval_counter != nullptr) *eval_counter += 1;
  }
  return c;
}

gpu::GpuConfig NmpcGpuController::step(const gpu::FrameResult& result,
                                       const gpu::GpuConfig& current, std::size_t frame_index) {
  const double period = 1.0 / cfg_.fps_target;
  const GpuWorkloadState before = state_;
  models_->update(before, current, period, result);
  state_.observe(result, models_->slice_eff(current.num_slices));

  if (frame_index % cfg_.slow_period_frames == 0) {
    slow_cfg_ = solve_slow(state_, current, &evals_);
    return slow_cfg_;
  }
  gpu::GpuConfig c = fast_trim(state_, current, &evals_);
  c.num_slices = slow_cfg_.num_slices;  // fast loop never touches slices
  if (!result.deadline_met) {
    // Hard feedback: an observed miss overrides the model and escalates.
    c.freq_idx = std::min(c.freq_idx + cfg_.fast_max_step,
                          static_cast<int>(platform_->num_freqs()) - 1);
  }
  return c;
}

// ---- Explicit NMPC ----------------------------------------------------------

ExplicitNmpcGpuController::ExplicitNmpcGpuController(const gpu::GpuPlatform& platform,
                                                     GpuOnlineModels& models, NmpcConfig cfg,
                                                     std::size_t num_samples, std::uint64_t seed)
    : platform_(&platform), models_(&models), cfg_(cfg) {
  // ---- Offline phase: sample the NMPC law on a Sobol grid ----------------
  // State: (work cycles, mem bytes, current freq idx, current slices).
  NmpcGpuController reference(platform, models, cfg);
  const double max_f = platform.freq_mhz(static_cast<int>(platform.num_freqs()) - 1) * 1e6;
  const double period = 1.0 / cfg.fps_target;
  // Work range: up to what the fastest configuration can retire per period.
  const double max_work = max_f * 4.0 * period;
  const std::vector<double> lo{0.02 * max_work, 1e6, 0.0, 1.0};
  const std::vector<double> hi{0.95 * max_work, 60e6, static_cast<double>(platform.num_freqs()) - 1.0,
                               static_cast<double>(platform.params().max_slices)};
  const auto grid = common::sobol_grid(num_samples, lo, hi);
  (void)seed;

  std::vector<common::Vec> xs;
  std::vector<double> f_targets;
  std::vector<std::size_t> s_targets;
  xs.reserve(grid.size());
  for (const auto& p : grid) {
    GpuWorkloadState w;
    w.work_cycles = p[0];
    w.mem_bytes = p[1];
    const gpu::GpuConfig cur{static_cast<int>(std::lround(p[2])),
                             static_cast<int>(std::lround(p[3]))};
    const gpu::GpuConfig sol = reference.solve_slow(w, cur, &offline_evals_);
    xs.push_back(ml::quadratic_features(law_features(w, cur)));
    f_targets.push_back(static_cast<double>(sol.freq_idx));
    s_targets.push_back(static_cast<std::size_t>(sol.num_slices - 1));
  }
  freq_law_ = ml::RidgeRegression(1e-6);
  freq_law_.fit(xs, f_targets);
  ml::TreeConfig tree_cfg;
  tree_cfg.max_depth = 10;
  tree_cfg.min_samples_leaf = 3;
  tree_cfg.min_samples_split = 6;
  slice_law_ = ml::ClassificationTree(tree_cfg);
  slice_law_.fit(xs, s_targets, static_cast<std::size_t>(platform.params().max_slices));
}

common::Vec ExplicitNmpcGpuController::law_features(const GpuWorkloadState& w,
                                                    const gpu::GpuConfig& current) const {
  const double max_f = platform_->freq_mhz(static_cast<int>(platform_->num_freqs()) - 1) * 1e6;
  const double period = 1.0 / cfg_.fps_target;
  const double max_work = max_f * 4.0 * period;
  return {w.work_cycles / max_work, w.mem_bytes * 1e-8,
          static_cast<double>(current.freq_idx) / (static_cast<double>(platform_->num_freqs()) - 1.0),
          static_cast<double>(current.num_slices) / static_cast<double>(platform_->params().max_slices)};
}

void ExplicitNmpcGpuController::begin_run(const gpu::GpuConfig& initial) {
  slow_cfg_ = initial;
  state_ = GpuWorkloadState{};
}

gpu::GpuConfig ExplicitNmpcGpuController::step(const gpu::FrameResult& result,
                                               const gpu::GpuConfig& current,
                                               std::size_t frame_index) {
  const double period = 1.0 / cfg_.fps_target;
  const GpuWorkloadState before = state_;
  models_->update(before, current, period, result);
  state_.observe(result, models_->slice_eff(current.num_slices));

  if (frame_index % cfg_.slow_period_frames == 0) {
    // Evaluate the explicit law: two regressor lookups, O(features) work.
    const common::Vec x = ml::quadratic_features(law_features(state_, current));
    const int max_idx = static_cast<int>(platform_->num_freqs()) - 1;
    int fi = static_cast<int>(std::lround(freq_law_.predict(x)));
    fi = std::clamp(fi, 0, max_idx);
    int slices = static_cast<int>(slice_law_.predict(x)) + 1;
    slices = std::clamp(slices, 1, platform_->params().max_slices);
    evals_ += 2;
    slow_cfg_ = gpu::GpuConfig{fi, slices};
    // Safety: if the law's pick predictably misses the deadline, escalate
    // frequency (the learned surface is an approximation).
    const double deadline = period * (1.0 - cfg_.deadline_margin);
    while (slow_cfg_.freq_idx < max_idx &&
           models_->predict_frame_time_s(state_, slow_cfg_) > deadline) {
      ++slow_cfg_.freq_idx;
      ++evals_;
    }
    return slow_cfg_;
  }
  // Fast rate: identical adaptive sensitivity trim as the implicit NMPC.
  NmpcGpuController helper(*platform_, *models_, cfg_);
  gpu::GpuConfig c = helper.fast_trim(state_, current, &evals_);
  c.num_slices = slow_cfg_.num_slices;
  if (!result.deadline_met) {
    c.freq_idx = std::min(c.freq_idx + cfg_.fast_max_step,
                          static_cast<int>(platform_->num_freqs()) - 1);
  }
  return c;
}

// ---- Offline model bootstrap -------------------------------------------------

void bootstrap_gpu_models(gpu::GpuPlatform& platform, GpuOnlineModels& models, double period_s,
                          std::size_t frames, common::Rng& rng) {
  // Generic design-time content mix: one representative mid-intensity
  // workload swept across random configurations.
  const auto& suite = workloads::GpuBenchmarks::fig5_suite();
  for (std::size_t i = 0; i < frames; ++i) {
    const auto& spec = suite[i % suite.size()];
    common::Rng frame_rng = rng.fork();
    const auto trace = workloads::GpuBenchmarks::trace(spec, 1, frame_rng);
    const gpu::GpuConfig c{rng.uniform_int(0, static_cast<int>(platform.num_freqs()) - 1),
                           rng.uniform_int(1, platform.params().max_slices)};
    const auto r = platform.render(trace[0], c, period_s);
    // At design time the frame content is known exactly, so the models are
    // trained against the true per-frame descriptors (profiling, not
    // prediction).
    GpuWorkloadState w;
    w.work_cycles = trace[0].render_cycles;
    w.mem_bytes = trace[0].mem_bytes;
    w.cpu_cycles = trace[0].cpu_cycles;
    models.update(w, c, period_s, r);
  }
}

}  // namespace oal::core
