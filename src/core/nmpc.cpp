#include "core/nmpc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/sobol.h"
#include "soc/thermal_platform.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::core {

namespace {

/// Budget context from the last telemetry snapshot: unconstrained while
/// blind (cfg.thermal_aware off) or while no budgeter publishes telemetry.
/// The producer-side energy is the measured non-GPU EWMA once one frame has
/// been observed; before that, the design-time prior from the platform's
/// power parameters.
GpuBudgetState make_budget_state(const NmpcConfig& cfg, const soc::ThermalTelemetry& telemetry,
                                 double producer_energy_j, const GpuOnlineModels& models,
                                 const GpuWorkloadState& w) {
  GpuBudgetState b;
  if (!cfg.thermal_aware || !telemetry.constrained) return b;
  b.constrained = true;
  b.budget_w = telemetry.budget_w * (1.0 - cfg.budget_margin);
  b.other_energy_j = producer_energy_j >= 0.0
                         ? producer_energy_j
                         : models.producer_energy_prior_j(w, 1.0 / cfg.fps_target);
  return b;
}

/// EWMA of the measured per-frame non-GPU producer energy (PKG+DRAM minus
/// GPU scope) — the runtime anchor of the budget predicate.  Tracked only
/// when thermal-aware, so blind controllers carry zero extra state.
void track_producer_energy(const NmpcConfig& cfg, const gpu::FrameResult& r, double& acc) {
  if (!cfg.thermal_aware) return;
  const double other = std::max(r.pkg_dram_energy_j - r.gpu_energy_j, 0.0);
  acc = acc < 0.0 ? other : 0.6 * other + 0.4 * acc;
}

/// Predicted producer power at the arbitrated PKG+DRAM scope.
double pkg_dram_power_w(const GpuOnlineModels& models, const GpuWorkloadState& w,
                        const gpu::GpuConfig& c, double period_s,
                        const GpuBudgetState& budget, common::Vec& phi) {
  return (models.predict_gpu_energy_j(w, c, period_s, phi) + budget.other_energy_j) / period_s;
}

/// Highest frequency at or below c.freq_idx whose predicted PKG+DRAM power
/// fits the budget (slices untouched — they belong to the slow loop); c
/// itself when unconstrained or at minimum frequency.  Shared by both
/// controllers' fast paths so the cap semantics cannot drift.
gpu::GpuConfig cap_freq_to_budget(const GpuOnlineModels& models, const GpuWorkloadState& w,
                                  gpu::GpuConfig c, double period_s,
                                  const GpuBudgetState& budget, std::size_t* eval_counter,
                                  common::Vec& phi) {
  if (!budget.constrained) return c;
  while (c.freq_idx > 0) {
    const double power = pkg_dram_power_w(models, w, c, period_s, budget, phi);
    if (eval_counter != nullptr) *eval_counter += 1;
    if (power <= budget.budget_w) break;
    --c.freq_idx;
  }
  return c;
}

/// Descend the shared firmware ladder (soc::gpu_throttle_step — the same
/// one the arbiter uses) until the predicted power fits the budget or the
/// floor is reached.  Shared by the implicit fallback and the explicit
/// law's safety pass so the two cannot drift.
gpu::GpuConfig ladder_to_budget(const GpuOnlineModels& models, const GpuWorkloadState& w,
                                gpu::GpuConfig c, double period_s,
                                const GpuBudgetState& budget, std::size_t* eval_counter,
                                common::Vec& phi) {
  if (!budget.constrained) return c;
  for (;;) {
    const double power = pkg_dram_power_w(models, w, c, period_s, budget, phi);
    if (eval_counter != nullptr) *eval_counter += 1;
    if (power <= budget.budget_w) break;
    if (!soc::gpu_throttle_step(c)) break;
  }
  return c;
}

}  // namespace

// ---- Implicit NMPC ----------------------------------------------------------

NmpcGpuController::NmpcGpuController(const gpu::GpuPlatform& platform, GpuOnlineModels& models,
                                     NmpcConfig cfg)
    : platform_(&platform), models_(&models), cfg_(cfg) {}

void NmpcGpuController::begin_run(const gpu::GpuConfig& initial) {
  slow_cfg_ = initial;
  state_ = GpuWorkloadState{};
  // Reset the thermal regime: a reused controller must not carry a stale
  // snapshot or power anchor into a fresh run.
  telemetry_ = soc::ThermalTelemetry{};
  producer_energy_j_ = -1.0;
}

void NmpcGpuController::observe_telemetry(const soc::ThermalTelemetry& telemetry) {
  if (cfg_.thermal_aware) telemetry_ = telemetry;
}

GpuBudgetState NmpcGpuController::budget_state() const {
  return make_budget_state(cfg_, telemetry_, producer_energy_j_, *models_, state_);
}

gpu::GpuConfig NmpcGpuController::solve_slow(const GpuWorkloadState& w,
                                             const gpu::GpuConfig& current,
                                             std::size_t* eval_counter,
                                             const GpuBudgetState& budget) const {
  const double period = 1.0 / cfg_.fps_target;
  const double deadline = period * (1.0 - cfg_.deadline_margin);
  const double h = static_cast<double>(cfg_.horizon_periods * cfg_.slow_period_frames);

  gpu::GpuConfig best = current;
  double best_cost = std::numeric_limits<double>::infinity();
  gpu::GpuConfig fastest = current;
  double fastest_t = std::numeric_limits<double>::infinity();
  gpu::GpuConfig least_over = current;
  double least_over_w = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  bool any_deadline = false;

  for (int n = 1; n <= platform_->params().max_slices; ++n) {
    for (int fi = 0; fi < static_cast<int>(platform_->num_freqs()); ++fi) {
      const gpu::GpuConfig c{fi, n};
      const double t = models_->predict_frame_time_s(w, c, phi_buf_);
      const double e = models_->predict_gpu_energy_j(w, c, period, phi_buf_);
      if (eval_counter != nullptr) *eval_counter += 2;
      if (t < fastest_t) {
        fastest_t = t;
        fastest = c;
      }
      if (t > deadline) continue;
      if (budget.constrained) {
        const double power = (e + budget.other_energy_j) / period;
        if (!any_deadline || power < least_over_w) {
          any_deadline = true;
          least_over_w = power;
          least_over = c;
        }
        // Second feasibility predicate: the config must also fit the power
        // budget the arbiter will hold it to.
        if (power > budget.budget_w) continue;
      }
      // Horizon energy (workload forecast: EWMA held over the horizon) plus
      // one-time actuation cost amortized across the horizon.
      const auto tc = platform_->transition_cost(current, c);
      const double cost = e * h + tc.energy_j;
      if (!any_feasible || cost < best_cost) {
        any_feasible = true;
        best_cost = cost;
        best = c;
      }
    }
  }
  if (any_feasible) return best;
  // Infeasible fallback: the least-over-budget deadline-feasible config
  // (instead of the fastest), then down the same firmware throttle ladder
  // the arbiter descends until the predicted power fits — proposing what the
  // budgeter would grant anyway instead of being corrected by it.  Without a
  // budget (or with nothing deadline-feasible) the legacy fastest pick
  // stands.
  const gpu::GpuConfig fallback = any_deadline ? least_over : fastest;
  return ladder_to_budget(*models_, w, fallback, period, budget, eval_counter, phi_buf_);
}

// oal-lint: hot-path
gpu::GpuConfig NmpcGpuController::fast_trim(const GpuWorkloadState& w,
                                            const gpu::GpuConfig& current,
                                            std::size_t* eval_counter,
                                            const GpuBudgetState& budget) const {
  const double period = 1.0 / cfg_.fps_target;
  const double deadline = period * (1.0 - cfg_.deadline_margin);
  const double target = period * cfg_.fast_target_busy * (1.0 - cfg_.deadline_margin);
  gpu::GpuConfig c = current;
  const double t = models_->predict_frame_time_s(w, c, phi_buf_);
  const double sens = models_->frame_time_freq_sensitivity(w, c);  // s per GHz (negative)
  if (eval_counter != nullptr) *eval_counter += 2;
  if (std::abs(sens) < 1e-12)
    return cap_freq_to_budget(*models_, w, c, period, budget, eval_counter, phi_buf_);
  // Deadbeat step toward the target busy time using the learned sensitivity.
  const double df_ghz = (target - t) / sens;  // GHz change needed
  int steps = static_cast<int>(std::lround(df_ghz * 1000.0 / 50.0));  // 50 MHz bins
  steps = std::clamp(steps, -cfg_.fast_max_step, cfg_.fast_max_step);
  // Never trim below the deadline: verify the trimmed config still fits.
  c.freq_idx = std::clamp(current.freq_idx + steps, 0,
                          static_cast<int>(platform_->num_freqs()) - 1);
  // Never trim *up* through the power budget, and track a tightened budget
  // downward (frequency only — slices belong to the slow loop): the arbiter
  // would claw anything above the budget back and count a clamp.
  c = cap_freq_to_budget(*models_, w, c, period, budget, eval_counter, phi_buf_);
  while (c.freq_idx < static_cast<int>(platform_->num_freqs()) - 1 &&
         models_->predict_frame_time_s(w, c, phi_buf_) > deadline) {
    if (budget.constrained) {
      const gpu::GpuConfig up{c.freq_idx + 1, c.num_slices};
      if (eval_counter != nullptr) *eval_counter += 1;
      if (pkg_dram_power_w(*models_, w, up, period, budget, phi_buf_) > budget.budget_w)
        break;  // deadline escalation stops at the budget
    }
    ++c.freq_idx;
    if (eval_counter != nullptr) *eval_counter += 1;
  }
  return c;
}
// oal-lint: hot-path-end

gpu::GpuConfig NmpcGpuController::step(const gpu::FrameResult& result,
                                       const gpu::GpuConfig& current, std::size_t frame_index) {
  const double period = 1.0 / cfg_.fps_target;
  const GpuWorkloadState before = state_;
  models_->update(before, current, period, result, update_scratch_);
  state_.observe(result, models_->slice_eff(current.num_slices));
  track_producer_energy(cfg_, result, producer_energy_j_);
  const GpuBudgetState budget = budget_state();

  if (frame_index % cfg_.slow_period_frames == 0) {
    slow_cfg_ = solve_slow(state_, current, &evals_, budget);
    return slow_cfg_;
  }
  gpu::GpuConfig c = fast_trim(state_, current, &evals_, budget);
  c.num_slices = slow_cfg_.num_slices;  // fast loop never touches slices
  if (!result.deadline_met) {
    // Hard feedback: an observed miss overrides the model and escalates —
    // but never through the budget (the miss is the budget's price, and an
    // over-budget escalation would only bounce off the arbiter).
    c.freq_idx = std::min(c.freq_idx + cfg_.fast_max_step,
                          static_cast<int>(platform_->num_freqs()) - 1);
    c = cap_freq_to_budget(*models_, state_, c, period, budget, &evals_, phi_buf_);
  }
  return c;
}

// ---- Explicit NMPC ----------------------------------------------------------

ExplicitNmpcGpuController::ExplicitNmpcGpuController(const gpu::GpuPlatform& platform,
                                                     GpuOnlineModels& models, NmpcConfig cfg,
                                                     std::size_t num_samples, std::uint64_t seed)
    : platform_(&platform), models_(&models), cfg_(cfg),
      fast_helper_(platform, models, cfg) {
  // ---- Offline phase: sample the NMPC law on a Sobol grid ----------------
  // State: (work cycles, mem bytes, current freq idx, current slices), plus
  // a power-budget dimension when thermal-aware so the fitted law stays
  // valid under throttling (spanning floor-binding budgets up to the neutral
  // unconstrained value).
  NmpcGpuController reference(platform, models, cfg);
  const double max_f = platform.freq_mhz(static_cast<int>(platform.num_freqs()) - 1) * 1e6;
  const double period = 1.0 / cfg.fps_target;
  // Work range: up to what the fastest configuration can retire per period.
  const double max_work = max_f * 4.0 * period;
  std::vector<double> lo{0.02 * max_work, 1e6, 0.0, 1.0};
  std::vector<double> hi{0.95 * max_work, 60e6, static_cast<double>(platform.num_freqs()) - 1.0,
                         static_cast<double>(platform.params().max_slices)};
  if (cfg.thermal_aware) {
    lo.push_back(0.5);
    hi.push_back(soc::ThermalTelemetry::kUnconstrainedBudgetW);
  }
  const auto grid = common::sobol_grid(num_samples, lo, hi);
  (void)seed;

  std::vector<common::Vec> xs;
  std::vector<double> f_targets;
  std::vector<std::size_t> s_targets;
  xs.reserve(grid.size());
  for (const auto& p : grid) {
    GpuWorkloadState w;
    w.work_cycles = p[0];
    w.mem_bytes = p[1];
    const gpu::GpuConfig cur{static_cast<int>(std::lround(p[2])),
                             static_cast<int>(std::lround(p[3]))};
    GpuBudgetState b;
    double budget_w = soc::ThermalTelemetry::kUnconstrainedBudgetW;
    if (cfg.thermal_aware) {
      budget_w = p[4];  // the telemetry-visible budget is the law feature
      b.constrained = true;
      b.budget_w = budget_w * (1.0 - cfg.budget_margin);
      // Design time has no measurements: the producer-side prior stands in.
      b.other_energy_j = models.producer_energy_prior_j(w, period);
    }
    const gpu::GpuConfig sol = reference.solve_slow(w, cur, &offline_evals_, b);
    xs.push_back(ml::quadratic_features(law_features(w, cur, budget_w)));
    f_targets.push_back(static_cast<double>(sol.freq_idx));
    s_targets.push_back(static_cast<std::size_t>(sol.num_slices - 1));
  }
  freq_law_ = ml::RidgeRegression(1e-6);
  freq_law_.fit(xs, f_targets);
  ml::TreeConfig tree_cfg;
  tree_cfg.max_depth = 10;
  tree_cfg.min_samples_leaf = 3;
  tree_cfg.min_samples_split = 6;
  slice_law_ = ml::ClassificationTree(tree_cfg);
  slice_law_.fit(xs, s_targets, static_cast<std::size_t>(platform.params().max_slices));
}

common::Vec ExplicitNmpcGpuController::law_features(const GpuWorkloadState& w,
                                                    const gpu::GpuConfig& current,
                                                    double budget_w) const {
  const double max_f = platform_->freq_mhz(static_cast<int>(platform_->num_freqs()) - 1) * 1e6;
  const double period = 1.0 / cfg_.fps_target;
  const double max_work = max_f * 4.0 * period;
  common::Vec x{w.work_cycles / max_work, w.mem_bytes * 1e-8,
                static_cast<double>(current.freq_idx) /
                    (static_cast<double>(platform_->num_freqs()) - 1.0),
                static_cast<double>(current.num_slices) /
                    static_cast<double>(platform_->params().max_slices)};
  if (cfg_.thermal_aware) x.push_back(budget_w / soc::ThermalTelemetry::kUnconstrainedBudgetW);
  return x;
}

void ExplicitNmpcGpuController::begin_run(const gpu::GpuConfig& initial) {
  slow_cfg_ = initial;
  state_ = GpuWorkloadState{};
  telemetry_ = soc::ThermalTelemetry{};
  producer_energy_j_ = -1.0;
}

void ExplicitNmpcGpuController::observe_telemetry(const soc::ThermalTelemetry& telemetry) {
  if (cfg_.thermal_aware) telemetry_ = telemetry;
}

GpuBudgetState ExplicitNmpcGpuController::budget_state() const {
  return make_budget_state(cfg_, telemetry_, producer_energy_j_, *models_, state_);
}

gpu::GpuConfig ExplicitNmpcGpuController::step(const gpu::FrameResult& result,
                                               const gpu::GpuConfig& current,
                                               std::size_t frame_index) {
  const double period = 1.0 / cfg_.fps_target;
  const GpuWorkloadState before = state_;
  models_->update(before, current, period, result, update_scratch_);
  state_.observe(result, models_->slice_eff(current.num_slices));
  track_producer_energy(cfg_, result, producer_energy_j_);
  const GpuBudgetState budget = budget_state();

  if (frame_index % cfg_.slow_period_frames == 0) {
    // Evaluate the explicit law: two regressor lookups, O(features) work.
    // The law feature is the *telemetry-visible* budget — the same value the
    // sampler used — not the margined one the solver constrains against.
    const double budget_feature = telemetry_.constrained
                                      ? telemetry_.budget_w
                                      : soc::ThermalTelemetry::kUnconstrainedBudgetW;
    const common::Vec x =
        ml::quadratic_features(law_features(state_, current, budget_feature));
    const int max_idx = static_cast<int>(platform_->num_freqs()) - 1;
    int fi = static_cast<int>(std::lround(freq_law_.predict(x)));
    fi = std::clamp(fi, 0, max_idx);
    int slices = static_cast<int>(slice_law_.predict(x)) + 1;
    slices = std::clamp(slices, 1, platform_->params().max_slices);
    evals_ += 2;
    slow_cfg_ = gpu::GpuConfig{fi, slices};
    // Safety: if the law's pick predictably misses the deadline, escalate
    // frequency (the learned surface is an approximation) — but never
    // through the power budget the arbiter will hold it to.
    const double deadline = period * (1.0 - cfg_.deadline_margin);
    while (slow_cfg_.freq_idx < max_idx &&
           models_->predict_frame_time_s(state_, slow_cfg_, phi_buf_) > deadline) {
      if (budget.constrained) {
        const gpu::GpuConfig up{slow_cfg_.freq_idx + 1, slow_cfg_.num_slices};
        ++evals_;
        if (pkg_dram_power_w(*models_, state_, up, period, budget, phi_buf_) > budget.budget_w)
          break;
      }
      ++slow_cfg_.freq_idx;
      ++evals_;
    }
    // The law approximates the budget-constrained solve; if its pick still
    // predicts over budget, descend the shared firmware ladder like the
    // implicit fallback (and the arbiter) would.
    slow_cfg_ = ladder_to_budget(*models_, state_, slow_cfg_, period, budget, &evals_, phi_buf_);
    return slow_cfg_;
  }
  // Fast rate: identical adaptive sensitivity trim as the implicit NMPC,
  // through the persistent helper (fast_trim is const and stateless w.r.t.
  // the helper's run state).
  gpu::GpuConfig c = fast_helper_.fast_trim(state_, current, &evals_, budget);
  c.num_slices = slow_cfg_.num_slices;
  if (!result.deadline_met) {
    // Miss escalation, capped at the budget ceiling like the implicit NMPC.
    c.freq_idx = std::min(c.freq_idx + cfg_.fast_max_step,
                          static_cast<int>(platform_->num_freqs()) - 1);
    c = cap_freq_to_budget(*models_, state_, c, period, budget, &evals_, phi_buf_);
  }
  return c;
}

// ---- Offline model bootstrap -------------------------------------------------

void bootstrap_gpu_models(gpu::GpuPlatform& platform, GpuOnlineModels& models, double period_s,
                          std::size_t frames, common::Rng& rng) {
  // Generic design-time content mix: one representative mid-intensity
  // workload swept across random configurations.
  const auto& suite = workloads::GpuBenchmarks::fig5_suite();
  for (std::size_t i = 0; i < frames; ++i) {
    const auto& spec = suite[i % suite.size()];
    common::Rng frame_rng = rng.fork();
    const auto trace = workloads::GpuBenchmarks::trace(spec, 1, frame_rng);
    const gpu::GpuConfig c{rng.uniform_int(0, static_cast<int>(platform.num_freqs()) - 1),
                           rng.uniform_int(1, platform.params().max_slices)};
    const auto r = platform.render(trace[0], c, period_s);
    // At design time the frame content is known exactly, so the models are
    // trained against the true per-frame descriptors (profiling, not
    // prediction).
    GpuWorkloadState w;
    w.work_cycles = trace[0].render_cycles;
    w.mem_bytes = trace[0].mem_bytes;
    w.cpu_cycles = trace[0].cpu_cycles;
    models.update(w, c, period_s, r);
  }
}

}  // namespace oal::core
