// Reinforcement-learning DRM baselines (paper Section IV-A2).
//
// Both RL variants act on *relative* knob moves (one knob +/-1 per step, or
// hold), learn from a negative-energy-per-instruction reward, and explore
// epsilon-greedily.  These are the baselines whose slow convergence Figs. 3
// and 4 contrast with model-guided online IL:
//  * QLearningController — table-based (paper: "not practical due to the
//    large storage requirement"; the table grows with every visited state).
//  * DqnController — deep-Q (paper: needs a reward function and a large
//    data-set due to trial-and-error learning).
#pragma once

#include <cstdint>

#include "core/controller.h"
#include "core/features.h"
#include "ml/dqn.h"
#include "ml/qlearn.h"

namespace oal::core {

/// 9 actions: hold, or +/-1 on one of the four knobs.
constexpr std::size_t kNumRlActions = 9;
soc::SocConfig apply_rl_action(const soc::ConfigSpace& space, const soc::SocConfig& c,
                               std::size_t action);

struct RlRewardScale {
  /// reward = -(energy / instructions) * scale, roughly in [-3, 0].
  double nj_per_inst_scale = 1.0e9;
};

class QLearningController : public DrmController {
 public:
  /// `thermal_aware` folds a budget-headroom bucket into the discretized RL
  /// state (published by the runner's telemetry channel), so the table can
  /// learn different actions for throttled and unthrottled regimes.
  QLearningController(const soc::ConfigSpace& space, ml::QLearnConfig cfg = {},
                      RlRewardScale scale = {}, bool thermal_aware = false);

  std::string name() const override { return "RL (tabular Q)"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;
  void begin_run(const soc::SocConfig& initial) override;
  void observe_telemetry(const soc::ThermalTelemetry& telemetry) override;

  std::size_t table_states() const { return q_.num_states_visited(); }
  std::size_t storage_bytes() const { return q_.storage_bytes(); }

  /// Persists / restores the learned Q-table plus exploration state (the
  /// ml::TabularQ wire format), letting a warm process skip a pretraining
  /// run: the restored controller's next run is bitwise identical to the
  /// original's.  Per-run state (prev state/action) is excluded — begin_run
  /// resets it anyway.
  std::vector<double> export_state() const;
  bool import_state(const std::vector<double>& in);

 private:
  std::uint64_t discretize(const soc::PerfCounters& k, const soc::SocConfig& c) const;

  const soc::ConfigSpace* space_;
  ml::TabularQ q_;
  RlRewardScale scale_;
  bool thermal_aware_ = false;
  bool has_prev_ = false;
  std::uint64_t prev_state_ = 0;
  std::size_t prev_action_ = 0;
  soc::ThermalTelemetry telemetry_;
};

class DqnController : public DrmController {
 public:
  /// `thermal_aware` extends the network input with the thermal-telemetry
  /// features (see FeatureExtractor), so the Q-network conditions on
  /// temperature/budget headroom.
  DqnController(const soc::ConfigSpace& space, ml::DqnConfig cfg = {}, RlRewardScale scale = {},
                bool thermal_aware = false);

  std::string name() const override { return "RL (DQN)"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;
  void begin_run(const soc::SocConfig& initial) override;
  void observe_telemetry(const soc::ThermalTelemetry& telemetry) override;

 private:
  const soc::ConfigSpace* space_;
  FeatureExtractor fx_;
  ml::Dqn dqn_;
  RlRewardScale scale_;
  bool has_prev_ = false;
  common::Vec prev_state_;
  /// Per-step feature scratch: sized once on the first step, then reused so
  /// steady-state decide() never allocates.
  common::Vec state_buf_;
  std::size_t prev_action_ = 0;
  soc::ThermalTelemetry telemetry_;
};

}  // namespace oal::core
