#include "core/oracle.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/artifact_store.h"

namespace oal::core {

void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a: folds one 64-bit value into the running hash byte by byte.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

std::uint64_t fnv1a_doubles(std::initializer_list<double> values) {
  std::uint64_t h = kFnvOffsetBasis;
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv1a_mix(h, bits);
  }
  return h;
}

std::uint64_t platform_fingerprint(const soc::PlatformParams& p) {
  return fnv1a_doubles({p.v_min_little, p.v_max_little, p.v_min_big, p.v_max_big, p.v_exponent,
                        p.ceff_little_nf, p.ceff_big_nf, p.leak_little_w_per_v,
                        p.leak_big_w_per_v, p.base_power_w, p.mem_latency_ns, p.mem_bw_gbps,
                        p.dram_energy_nj_per_byte, p.dram_static_w, p.cache_line_bytes,
                        p.writeback_factor, p.stall_exposed_little, p.stall_exposed_big,
                        p.branch_penalty_little, p.branch_penalty_big, p.sync_overhead});
}

namespace {

/// Configs per shard of the pooled sweep.  Fixed, so shard boundaries — and
/// therefore the reduction order — depend only on the space size, never on
/// how many workers the pool happens to have.
constexpr std::size_t kShardConfigs = 256;

/// Serial argmin over [lo, hi): strict < keeps the lowest index on ties.
std::pair<double, std::size_t> argmin_range(const soc::BigLittlePlatform& plat,
                                            const soc::SnippetDescriptor& s, Objective obj,
                                            std::size_t lo, std::size_t hi) {
  const soc::ConfigSpace& space = plat.space();
  double best_cost = std::numeric_limits<double>::infinity();
  std::size_t best_i = lo;
  for (std::size_t i = lo; i < hi; ++i) {
    const double cost = objective_cost(plat.execute_ideal(s, space.config_at(i)), obj);
    if (cost < best_cost) {
      best_cost = cost;
      best_i = i;
    }
  }
  return {best_cost, best_i};
}

}  // namespace

std::pair<soc::SocConfig, double> oracle_search(const soc::BigLittlePlatform& plat,
                                                const soc::SnippetDescriptor& s, Objective obj,
                                                common::ThreadPool* pool) {
  const soc::ConfigSpace& space = plat.space();
  const std::size_t n = space.size();
  std::pair<double, std::size_t> best;
  if (pool == nullptr || n <= kShardConfigs) {
    best = argmin_range(plat, s, obj, 0, n);
  } else {
    const std::size_t num_shards = (n + kShardConfigs - 1) / kShardConfigs;
    std::vector<std::pair<double, std::size_t>> shard_best(num_shards);
    // run_helping (not run_indexed): the caller may itself be a pool worker
    // (nested parallel labeling inside an engine scenario).
    pool->run_helping(num_shards, [&](std::size_t sh) {
      const std::size_t lo = sh * kShardConfigs;
      shard_best[sh] = argmin_range(plat, s, obj, lo, std::min(n, lo + kShardConfigs));
    });
    // Ascending shard order + strict < reproduces the serial lowest-index
    // tie-break exactly: bitwise-identical cost and argmin.
    best = {std::numeric_limits<double>::infinity(), 0};
    for (const auto& sb : shard_best)
      if (sb.first < best.first) best = sb;
  }
  if (best.first == std::numeric_limits<double>::infinity()) return {soc::SocConfig{}, best.first};
  return {space.config_at(best.second), best.first};
}

soc::SocConfig oracle_config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                             Objective obj) {
  return oracle_search(plat, s, obj).first;
}

double oracle_cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                   Objective obj) {
  return oracle_search(plat, s, obj).second;
}

bool OracleCache::Key::operator==(const Key& o) const {
  return platform_fingerprint == o.platform_fingerprint &&
         std::memcmp(fields, o.fields, sizeof(fields)) == 0 && max_threads == o.max_threads &&
         objective == o.objective;
}

std::size_t OracleCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the raw bit patterns: descriptors from identical Rng draws
  // are bit-identical, so exact matching is the right equivalence.
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, k.platform_fingerprint);
  for (double f : k.fields) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    fnv1a_mix(h, bits);
  }
  fnv1a_mix(h, static_cast<std::uint64_t>(k.max_threads));
  fnv1a_mix(h, static_cast<std::uint64_t>(k.objective));
  return static_cast<std::size_t>(h);
}

OracleCache::OracleCache(std::shared_ptr<ArtifactStore> store, common::ThreadPool* search_pool)
    : store_(std::move(store)), search_pool_(search_pool) {
  if (!store_) return;
  for (const OracleStoreEntry& e : store_->load_oracle_entries()) {
    Key key;
    key.platform_fingerprint = e.platform_fingerprint;
    std::memcpy(key.fields, e.fields, sizeof(key.fields));
    key.max_threads = e.max_threads;
    key.objective = e.objective;
    const Entry entry{
        soc::SocConfig{e.config[0], e.config[1], e.config[2], e.config[3]}, e.cost};
    if (stripe_of(key).entries.emplace(key, entry).second) ++store_loaded_;
  }
}

OracleCache::~OracleCache() {
  try {
    flush();
  } catch (...) {
    // Best-effort: a failed spill only costs the next process a recompute.
  }
}

OracleCache::Stripe& OracleCache::stripe_of(const Key& key) const {
  return stripes_[KeyHash{}(key) % kNumStripes];
}

OracleCache::Key OracleCache::key_of(const soc::BigLittlePlatform& plat,
                                     const soc::SnippetDescriptor& s, Objective obj) {
  return Key{platform_fingerprint(plat.params()),
             {s.instructions, s.base_cpi_little, s.base_cpi_big, s.l2_mpki, s.branch_mpki,
              s.mem_access_per_inst, s.parallel_fraction},
             s.max_threads,
             static_cast<int>(obj)};
}

OracleCache::Entry OracleCache::lookup(const soc::BigLittlePlatform& plat,
                                       const soc::SnippetDescriptor& s, Objective obj) {
  const Key key = key_of(plat, s, obj);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripe_of(key);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.entries.find(key);
    if (it != stripe.entries.end()) return it->second;
    const auto fit = stripe.in_flight.find(key);
    if (fit != stripe.in_flight.end()) {
      flight = fit->second;
    } else {
      flight = std::make_shared<InFlight>();
      stripe.in_flight.emplace(key, flight);
      owner = true;
    }
  }
  if (!owner) {
    // Another thread is already sweeping this exact key: wait for its result
    // instead of duplicating 4940 evaluations.  Safe even when this thread
    // is a pool worker — the owner's sweep participates via run_helping and
    // never blocks on the pool, so it always completes independently.
    std::unique_lock<std::mutex> fl(flight->mutex);
    flight->cv.wait(fl, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->result;
  }
  // Owner path: search outside all stripe locks — the sweep must not
  // serialize the worker pool.
  searches_.fetch_add(1, std::memory_order_relaxed);
  Entry entry;
  std::exception_ptr error;
  try {
    const auto [config, cost] = oracle_search(plat, s, obj, search_pool_);
    entry = Entry{config, cost};
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (!error) stripe.entries.emplace(key, entry);
    stripe.in_flight.erase(key);
  }
  {
    std::lock_guard<std::mutex> fl(flight->mutex);
    flight->result = entry;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return entry;
}

soc::SocConfig OracleCache::config(const soc::BigLittlePlatform& plat,
                                   const soc::SnippetDescriptor& s, Objective obj) {
  return lookup(plat, s, obj).config;
}

double OracleCache::cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                         Objective obj) {
  return lookup(plat, s, obj).cost;
}

std::size_t OracleCache::flush() {
  if (!store_) return 0;
  std::vector<OracleStoreEntry> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    // Hash order is fine here: merge_oracle_entries dedups by full key and
    // writes each bucket key-sorted, so the on-disk bytes are order-free.
    // oal-lint: allow(unordered-iter)
    for (const auto& [key, entry] : stripe.entries) {
      OracleStoreEntry e;
      e.platform_fingerprint = key.platform_fingerprint;
      std::memcpy(e.fields, key.fields, sizeof(e.fields));
      e.max_threads = key.max_threads;
      e.objective = key.objective;
      e.config[0] = entry.config.num_little;
      e.config[1] = entry.config.num_big;
      e.config[2] = entry.config.little_freq_idx;
      e.config[3] = entry.config.big_freq_idx;
      e.cost = entry.cost;
      out.push_back(e);
    }
  }
  return store_->merge_oracle_entries(out);
}

std::size_t OracleCache::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.entries.size();
  }
  return total;
}

std::uint64_t offline_data_key(const soc::PlatformParams& params, Objective obj,
                               std::size_t snippets_per_app, std::size_t configs_per_snippet,
                               std::uint64_t collect_seed, bool thermal_aware) {
  std::uint64_t key = platform_fingerprint(params);
  fnv1a_mix(key, static_cast<std::uint64_t>(obj));
  fnv1a_mix(key, snippets_per_app);
  fnv1a_mix(key, configs_per_snippet);
  fnv1a_mix(key, collect_seed);
  fnv1a_mix(key, thermal_aware ? 1 : 0);
  return key;
}

namespace {

/// Four knobs per config, in SocConfig field order.
constexpr std::size_t kConfigDoubles = 4;
/// WorkloadFeatures (7) + config (4) + {time_s, instructions, power_w}.
constexpr std::size_t kSampleDoubles = 7 + kConfigDoubles + 3;

void push_config(const soc::SocConfig& c, std::vector<double>& out) {
  out.push_back(c.num_little);
  out.push_back(c.num_big);
  out.push_back(c.little_freq_idx);
  out.push_back(c.big_freq_idx);
}

soc::SocConfig read_config(const double* p) {
  return soc::SocConfig{static_cast<int>(p[0]), static_cast<int>(p[1]), static_cast<int>(p[2]),
                        static_cast<int>(p[3])};
}

}  // namespace

void export_offline_data(const OfflineData& data, std::vector<double>& out) {
  const std::size_t state_dim = data.policy.states.empty() ? 0 : data.policy.states[0].size();
  out.clear();
  out.reserve(3 + data.policy.states.size() * (state_dim + kConfigDoubles) +
              data.model_samples.size() * kSampleDoubles);
  out.push_back(static_cast<double>(state_dim));
  out.push_back(static_cast<double>(data.policy.states.size()));
  out.push_back(static_cast<double>(data.model_samples.size()));
  for (const common::Vec& s : data.policy.states) out.insert(out.end(), s.begin(), s.end());
  for (const soc::SocConfig& c : data.policy.labels) push_config(c, out);
  for (const ModelSample& m : data.model_samples) {
    out.push_back(m.workload.mpki);
    out.push_back(m.workload.bmpki);
    out.push_back(m.workload.mem_ai);
    out.push_back(m.workload.ext_per_inst);
    out.push_back(m.workload.pf_proxy);
    out.push_back(m.workload.cpi_obs);
    out.push_back(m.workload.runnable);
    push_config(m.config, out);
    out.push_back(m.time_s);
    out.push_back(m.instructions);
    out.push_back(m.power_w);
  }
}

bool import_offline_data(const std::vector<double>& in, OfflineData& out) {
  out = OfflineData{};
  if (in.size() < 3) return false;
  const auto state_dim = static_cast<std::size_t>(in[0]);
  const auto num_states = static_cast<std::size_t>(in[1]);
  const auto num_samples = static_cast<std::size_t>(in[2]);
  if (in.size() != 3 + num_states * (state_dim + kConfigDoubles) + num_samples * kSampleDoubles)
    return false;
  const double* p = in.data() + 3;
  out.policy.states.reserve(num_states);
  for (std::size_t i = 0; i < num_states; ++i, p += state_dim)
    out.policy.states.emplace_back(p, p + state_dim);
  out.policy.labels.reserve(num_states);
  for (std::size_t i = 0; i < num_states; ++i, p += kConfigDoubles)
    out.policy.labels.push_back(read_config(p));
  out.model_samples.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i, p += kSampleDoubles) {
    ModelSample m;
    m.workload.mpki = p[0];
    m.workload.bmpki = p[1];
    m.workload.mem_ai = p[2];
    m.workload.ext_per_inst = p[3];
    m.workload.pf_proxy = p[4];
    m.workload.cpi_obs = p[5];
    m.workload.runnable = p[6];
    m.config = read_config(p + 7);
    m.time_s = p[11];
    m.instructions = p[12];
    m.power_w = p[13];
    out.model_samples.push_back(std::move(m));
  }
  return true;
}

std::vector<std::size_t> labels_of(const soc::SocConfig& c) {
  return {static_cast<std::size_t>(c.num_little - 1), static_cast<std::size_t>(c.num_big),
          static_cast<std::size_t>(c.little_freq_idx), static_cast<std::size_t>(c.big_freq_idx)};
}

soc::SocConfig config_of(const std::vector<std::size_t>& labels) {
  if (labels.size() != 4) throw std::invalid_argument("config_of: need 4 labels");
  return soc::SocConfig{static_cast<int>(labels[0]) + 1, static_cast<int>(labels[1]),
                        static_cast<int>(labels[2]), static_cast<int>(labels[3])};
}

OfflineData collect_offline_data(soc::BigLittlePlatform& plat,
                                 const std::vector<workloads::AppSpec>& apps, Objective obj,
                                 std::size_t snippets_per_app, std::size_t configs_per_snippet,
                                 common::Rng& rng, OracleCache* cache, bool thermal_aware,
                                 common::ThreadPool* pool) {
  OfflineData data;
  const soc::ConfigSpace& space = plat.space();
  // Design-time profiling runs on a cool, unconstrained device: thermal-aware
  // states carry the neutral telemetry values (appended by the extractor).
  const FeatureExtractor fx(space, thermal_aware);

  // Phase 1 (serial): every rng draw — trace generation and the random
  // observation configs — happens here in the exact order the single-pass
  // loop made them (trace(app), then per snippet its k >= 1 configs; the
  // k == 0 Oracle observation draws nothing).
  struct PendingSnippet {
    soc::SnippetDescriptor snip;
    std::vector<soc::SocConfig> observe_at;  ///< configs for k = 1..configs_per_snippet
  };
  std::vector<PendingSnippet> pending;
  pending.reserve(apps.size() * snippets_per_app);
  for (const auto& app : apps) {
    const auto trace = workloads::CpuBenchmarks::trace(app, snippets_per_app, rng);
    for (const auto& snip : trace) {
      PendingSnippet p;
      p.snip = snip;
      p.observe_at.reserve(configs_per_snippet);
      for (std::size_t k = 1; k <= configs_per_snippet; ++k)
        p.observe_at.push_back(space.config_at(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(space.size()) - 1))));
      pending.push_back(std::move(p));
    }
  }

  // Phase 2: Oracle labeling — pure (execute_ideal), no rng — one task per
  // snippet across the pool.  labels[i] depends only on pending[i], so the
  // result is identical regardless of scheduling.
  std::vector<soc::SocConfig> labels(pending.size());
  const auto label_one = [&](std::size_t i) {
    labels[i] = cache ? cache->config(plat, pending[i].snip, obj)
                      : oracle_config(plat, pending[i].snip, obj);
  };
  if (pool != nullptr) {
    pool->run_helping(pending.size(), label_one);
  } else {
    for (std::size_t i = 0; i < pending.size(); ++i) label_one(i);
  }

  // Phase 3 (serial): noisy observations in the original snippet order, so
  // the platform's measurement-noise rng stream is byte-for-byte the same
  // as the single-pass implementation's.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const soc::SnippetDescriptor& snip = pending[i].snip;
    const soc::SocConfig label = labels[i];
    for (std::size_t k = 0; k <= configs_per_snippet; ++k) {
      // k == 0 observes at the Oracle configuration itself (the state the
      // converged policy will actually see); the rest at random configs so
      // the policy is robust to arbitrary starting points.
      const soc::SocConfig at = k == 0 ? label : pending[i].observe_at[k - 1];
      const soc::SnippetResult r = plat.execute(snip, at);
      data.policy.states.push_back(fx.policy_features(r.counters, at));
      data.policy.labels.push_back(label);
      data.model_samples.push_back(ModelSample{workload_features(r.counters, at), at,
                                               r.exec_time_s, r.counters.instructions_retired,
                                               r.avg_power_w});
    }
  }
  return data;
}

}  // namespace oal::core
