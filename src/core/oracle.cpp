#include "core/oracle.h"

#include <limits>
#include <stdexcept>

namespace oal::core {

soc::SocConfig oracle_config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                             Objective obj) {
  const soc::ConfigSpace& space = plat.space();
  soc::SocConfig best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const soc::SocConfig c = space.config_at(i);
    const double cost = objective_cost(plat.execute_ideal(s, c), obj);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

double oracle_cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                   Objective obj) {
  return objective_cost(plat.execute_ideal(s, oracle_config(plat, s, obj)), obj);
}

std::vector<std::size_t> labels_of(const soc::SocConfig& c) {
  return {static_cast<std::size_t>(c.num_little - 1), static_cast<std::size_t>(c.num_big),
          static_cast<std::size_t>(c.little_freq_idx), static_cast<std::size_t>(c.big_freq_idx)};
}

soc::SocConfig config_of(const std::vector<std::size_t>& labels) {
  if (labels.size() != 4) throw std::invalid_argument("config_of: need 4 labels");
  return soc::SocConfig{static_cast<int>(labels[0]) + 1, static_cast<int>(labels[1]),
                        static_cast<int>(labels[2]), static_cast<int>(labels[3])};
}

OfflineData collect_offline_data(soc::BigLittlePlatform& plat,
                                 const std::vector<workloads::AppSpec>& apps, Objective obj,
                                 std::size_t snippets_per_app, std::size_t configs_per_snippet,
                                 common::Rng& rng) {
  OfflineData data;
  const soc::ConfigSpace& space = plat.space();
  const FeatureExtractor fx(space);
  for (const auto& app : apps) {
    const auto trace = workloads::CpuBenchmarks::trace(app, snippets_per_app, rng);
    for (const auto& snip : trace) {
      const soc::SocConfig label = oracle_config(plat, snip, obj);
      for (std::size_t k = 0; k <= configs_per_snippet; ++k) {
        // k == 0 observes at the Oracle configuration itself (the state the
        // converged policy will actually see); the rest at random configs so
        // the policy is robust to arbitrary starting points.
        const soc::SocConfig at =
            k == 0 ? label
                   : space.config_at(static_cast<std::size_t>(
                         rng.uniform_int(0, static_cast<int>(space.size()) - 1)));
        const soc::SnippetResult r = plat.execute(snip, at);
        data.policy.states.push_back(fx.policy_features(r.counters, at));
        data.policy.labels.push_back(label);
        data.model_samples.push_back(ModelSample{workload_features(r.counters, at), at,
                                                 r.exec_time_s, r.counters.instructions_retired,
                                                 r.avg_power_w});
      }
    }
  }
  return data;
}

}  // namespace oal::core
