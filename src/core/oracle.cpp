#include "core/oracle.h"

#include <cstring>
#include <initializer_list>
#include <limits>
#include <stdexcept>

namespace oal::core {

namespace {

/// Single exhaustive pass returning both the argmin and its cost.
std::pair<soc::SocConfig, double> oracle_search(const soc::BigLittlePlatform& plat,
                                                const soc::SnippetDescriptor& s, Objective obj) {
  const soc::ConfigSpace& space = plat.space();
  soc::SocConfig best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const soc::SocConfig c = space.config_at(i);
    const double cost = objective_cost(plat.execute_ideal(s, c), obj);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return {best, best_cost};
}

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/// FNV-1a: folds one 64-bit value into the running hash byte by byte.
void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

/// FNV-1a over a sequence of doubles' bit patterns.
std::uint64_t fnv1a_doubles(std::initializer_list<double> values) {
  std::uint64_t h = kFnvOffsetBasis;
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv1a_mix(h, bits);
  }
  return h;
}

/// Fingerprint of every PlatformParams field the power/performance model
/// reads — two platforms with equal fingerprints produce identical Oracles.
std::uint64_t platform_fingerprint(const soc::PlatformParams& p) {
  return fnv1a_doubles({p.v_min_little, p.v_max_little, p.v_min_big, p.v_max_big, p.v_exponent,
                        p.ceff_little_nf, p.ceff_big_nf, p.leak_little_w_per_v,
                        p.leak_big_w_per_v, p.base_power_w, p.mem_latency_ns, p.mem_bw_gbps,
                        p.dram_energy_nj_per_byte, p.dram_static_w, p.cache_line_bytes,
                        p.writeback_factor, p.stall_exposed_little, p.stall_exposed_big,
                        p.branch_penalty_little, p.branch_penalty_big, p.sync_overhead});
}

}  // namespace

soc::SocConfig oracle_config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                             Objective obj) {
  return oracle_search(plat, s, obj).first;
}

double oracle_cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                   Objective obj) {
  return oracle_search(plat, s, obj).second;
}

bool OracleCache::Key::operator==(const Key& o) const {
  return platform_fingerprint == o.platform_fingerprint &&
         std::memcmp(fields, o.fields, sizeof(fields)) == 0 && max_threads == o.max_threads &&
         objective == o.objective;
}

std::size_t OracleCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the raw bit patterns: descriptors from identical Rng draws
  // are bit-identical, so exact matching is the right equivalence.
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, k.platform_fingerprint);
  for (double f : k.fields) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    fnv1a_mix(h, bits);
  }
  fnv1a_mix(h, static_cast<std::uint64_t>(k.max_threads));
  fnv1a_mix(h, static_cast<std::uint64_t>(k.objective));
  return static_cast<std::size_t>(h);
}

OracleCache::Entry OracleCache::lookup(const soc::BigLittlePlatform& plat,
                                       const soc::SnippetDescriptor& s, Objective obj) {
  const Key key{platform_fingerprint(plat.params()),
                {s.instructions, s.base_cpi_little, s.base_cpi_big, s.l2_mpki, s.branch_mpki,
                 s.mem_access_per_inst, s.parallel_fraction},
                s.max_threads,
                static_cast<int>(obj)};
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Search outside the lock: the 4940-config sweep must not serialize the
  // worker pool.  A concurrent duplicate computes identical bytes
  // (execute_ideal is pure), so whichever insert lands is equivalent.
  const auto [config, cost] = oracle_search(plat, s, obj);
  const Entry entry{config, cost};
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, entry);
  return entry;
}

soc::SocConfig OracleCache::config(const soc::BigLittlePlatform& plat,
                                   const soc::SnippetDescriptor& s, Objective obj) {
  return lookup(plat, s, obj).config;
}

double OracleCache::cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                         Objective obj) {
  return lookup(plat, s, obj).cost;
}

std::size_t OracleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::size_t> labels_of(const soc::SocConfig& c) {
  return {static_cast<std::size_t>(c.num_little - 1), static_cast<std::size_t>(c.num_big),
          static_cast<std::size_t>(c.little_freq_idx), static_cast<std::size_t>(c.big_freq_idx)};
}

soc::SocConfig config_of(const std::vector<std::size_t>& labels) {
  if (labels.size() != 4) throw std::invalid_argument("config_of: need 4 labels");
  return soc::SocConfig{static_cast<int>(labels[0]) + 1, static_cast<int>(labels[1]),
                        static_cast<int>(labels[2]), static_cast<int>(labels[3])};
}

OfflineData collect_offline_data(soc::BigLittlePlatform& plat,
                                 const std::vector<workloads::AppSpec>& apps, Objective obj,
                                 std::size_t snippets_per_app, std::size_t configs_per_snippet,
                                 common::Rng& rng, OracleCache* cache, bool thermal_aware) {
  OfflineData data;
  const soc::ConfigSpace& space = plat.space();
  // Design-time profiling runs on a cool, unconstrained device: thermal-aware
  // states carry the neutral telemetry values (appended by the extractor).
  const FeatureExtractor fx(space, thermal_aware);
  for (const auto& app : apps) {
    const auto trace = workloads::CpuBenchmarks::trace(app, snippets_per_app, rng);
    for (const auto& snip : trace) {
      const soc::SocConfig label =
          cache ? cache->config(plat, snip, obj) : oracle_config(plat, snip, obj);
      for (std::size_t k = 0; k <= configs_per_snippet; ++k) {
        // k == 0 observes at the Oracle configuration itself (the state the
        // converged policy will actually see); the rest at random configs so
        // the policy is robust to arbitrary starting points.
        const soc::SocConfig at =
            k == 0 ? label
                   : space.config_at(static_cast<std::size_t>(
                         rng.uniform_int(0, static_cast<int>(space.size()) - 1)));
        const soc::SnippetResult r = plat.execute(snip, at);
        data.policy.states.push_back(fx.policy_features(r.counters, at));
        data.policy.labels.push_back(label);
        data.model_samples.push_back(ModelSample{workload_features(r.counters, at), at,
                                                 r.exec_time_s, r.counters.instructions_retired,
                                                 r.avg_power_w});
      }
    }
  }
  return data;
}

}  // namespace oal::core
