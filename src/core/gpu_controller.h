// GPU power-management controller interface + the baseline governor, and the
// frame-loop runner that evaluates controllers on graphics workloads.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/decision_timer.h"
#include "gpu/frame.h"
#include "gpu/gpu_model.h"
#include "soc/thermal_telemetry.h"

namespace oal::core {

class GpuController {
 public:
  virtual ~GpuController() = default;
  virtual std::string name() const = 0;
  /// Observe the just-rendered frame, return the configuration for the next.
  virtual gpu::GpuConfig step(const gpu::FrameResult& result, const gpu::GpuConfig& current,
                              std::size_t frame_index) = 0;
  /// Read-only thermal telemetry, published by GpuRunner before each step()
  /// when a telemetry source is bound (e.g. a thermal budgeter) — the mirror
  /// of DrmController::observe_telemetry.  The default controller is
  /// thermally blind and ignores it, so binding a source never changes a
  /// blind controller's decisions.
  virtual void observe_telemetry(const soc::ThermalTelemetry& /*telemetry*/) {}
  virtual void begin_run(const gpu::GpuConfig& /*initial*/) {}
  /// Cumulative count of model/optimizer evaluations (overhead accounting).
  virtual std::size_t decision_evals() const { return 0; }
};

/// The paper's baseline: a busy-threshold frequency governor with all slices
/// permanently active (slice gating was the novelty of the ENMPC work, so
/// production baselines of the time did not exercise it).
class BaselineGpuGovernor : public GpuController {
 public:
  explicit BaselineGpuGovernor(const gpu::GpuPlatform& platform, double up_threshold = 0.92,
                               double down_threshold = 0.70, double target_busy = 0.85);
  std::string name() const override { return "baseline"; }
  gpu::GpuConfig step(const gpu::FrameResult& result, const gpu::GpuConfig& current,
                      std::size_t frame_index) override;

 private:
  const gpu::GpuPlatform* platform_;
  double up_threshold_;
  double down_threshold_;
  double target_busy_;
};

/// Pin frequency and slices at maximum (reference upper bound on power).
class MaxGpuGovernor : public GpuController {
 public:
  explicit MaxGpuGovernor(const gpu::GpuPlatform& platform) : platform_(&platform) {}
  std::string name() const override { return "max"; }
  gpu::GpuConfig step(const gpu::FrameResult&, const gpu::GpuConfig&, std::size_t) override {
    return gpu::GpuConfig{static_cast<int>(platform_->num_freqs()) - 1,
                          platform_->params().max_slices};
  }

 private:
  const gpu::GpuPlatform* platform_;
};

/// Result of running a frame trace under a controller.
struct GpuRunResult {
  double gpu_energy_j = 0.0;
  double pkg_energy_j = 0.0;
  double pkg_dram_energy_j = 0.0;
  std::size_t frames = 0;
  std::size_t deadline_misses = 0;
  std::size_t freq_changes = 0;
  std::size_t slice_changes = 0;
  double transition_energy_j = 0.0;
  std::size_t decision_evals = 0;
  /// Wall-clock latency of the controller's step() calls (see DrmRunner's
  /// RunResult::decision_latency — same contract).
  DecisionLatencyStats decision_latency;
  /// Per-frame log for prediction-accuracy studies (Fig. 2).
  std::vector<double> frame_times_s;
  std::vector<gpu::GpuConfig> configs;

  double miss_rate() const {
    return frames == 0 ? 0.0 : static_cast<double>(deadline_misses) / static_cast<double>(frames);
  }
};

/// Hook invoked before a configuration takes effect (the initial config, and
/// each controller decision); may veto/clamp it — e.g. thermal power
/// budgeting.  Receives the descriptor of the next frame to render.
using GpuConfigArbiter =
    std::function<gpu::GpuConfig(const gpu::FrameDescriptor&, const gpu::GpuConfig&)>;

/// Hook observing each rendered frame (applied config + measured result) —
/// e.g. advancing a thermal model from the frame power trace.
using GpuFrameObserver = std::function<void(const gpu::FrameDescriptor&, const gpu::GpuConfig&,
                                            const gpu::FrameResult&)>;

/// Read-only channel publishing the current thermal state (temperatures +
/// power budget) to the controller before each decision.  Sampled after the
/// observer hook, so the controller sees the state the just-rendered frame
/// produced.  Must be side-effect free: blind controllers ignore the
/// snapshot and their runs stay bitwise identical with or without it.
using GpuThermalTelemetrySource = std::function<soc::ThermalTelemetry()>;

/// Optional runner hooks, mirroring DrmRunner's arbiter/observer/telemetry
/// contract.
struct GpuRunnerHooks {
  GpuConfigArbiter arbiter;    ///< empty = controller decisions apply verbatim
  GpuFrameObserver observer;   ///< empty = no per-frame observation
  GpuThermalTelemetrySource telemetry;  ///< empty = controllers run thermally blind
};

class GpuRunner {
 public:
  GpuRunner(gpu::GpuPlatform& platform, double fps_target = 30.0, GpuRunnerHooks hooks = {});

  GpuRunResult run(const std::vector<gpu::FrameDescriptor>& trace, GpuController& controller,
                   const gpu::GpuConfig& initial);

  double period_s() const { return period_s_; }

 private:
  gpu::GpuPlatform* platform_;
  double period_s_;
  GpuRunnerHooks hooks_;
};

}  // namespace oal::core
