#include "core/results_io.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace oal::core {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // Through unsigned char: a plain (signed) char would sign-extend
          // high-bit bytes into a huge %x value if one ever reached here.
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/inf
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_path_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) throw std::invalid_argument("--json requires a path argument");
      return argv[i + 1];
    }
  }
  return "";
}

JsonlWriter::JsonlWriter(const std::string& path, Mode mode) {
  if (path.empty()) return;
  out_.open(path, std::ios::out | (mode == Mode::kAppend ? std::ios::app : std::ios::trunc));
  if (!out_) throw std::runtime_error("JsonlWriter: cannot open '" + path + "'");
}

void JsonlWriter::write_metrics(const std::string& bench, const std::string& id,
                                const Metrics& metrics) {
  if (!enabled()) return;
  out_ << "{\"bench\":\"" << json_escape(bench) << "\",\"id\":\"" << json_escape(id)
       << "\",\"metrics\":{";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i) out_ << ",";
    out_ << "\"" << json_escape(metrics[i].first) << "\":" << json_number(metrics[i].second);
  }
  out_ << "}}\n";
  out_.flush();
}

void JsonlWriter::write(const std::string& bench, const AnyResult& result) {
  write_metrics(bench, result.id(), result.metrics());
}

void JsonlWriter::write(const std::string& bench, const std::vector<AnyResult>& results) {
  for (const AnyResult& r : results) write(bench, r);
}

}  // namespace oal::core
