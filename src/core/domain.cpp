#include "core/domain.h"

#include <cmath>

namespace oal::core {

double AnyResult::metric(const std::string& name) const {
  for (const Metric& m : metrics_)
    if (m.first == name) return m.second;
  throw std::invalid_argument("AnyResult::metric: '" + id_ + "' has no metric '" + name + "'");
}

bool AnyResult::has_metric(const std::string& name) const {
  for (const Metric& m : metrics_)
    if (m.first == name) return true;
  return false;
}

Metrics drm_metrics(const RunResult& run) {
  Metrics m;
  m.emplace_back("snippets", static_cast<double>(run.records.size()));
  m.emplace_back("total_energy_j", run.total_energy_j());
  m.emplace_back("total_time_s", run.total_time_s());
  const double oracle_e = run.oracle_energy_j();
  if (oracle_e > 0.0) {
    m.emplace_back("oracle_energy_j", oracle_e);
    m.emplace_back("energy_ratio", run.energy_ratio());
  }
  return m;
}

namespace {

Metrics gpu_metrics(const GpuRunResult& run) {
  return {{"frames", static_cast<double>(run.frames)},
          {"gpu_energy_j", run.gpu_energy_j},
          {"pkg_energy_j", run.pkg_energy_j},
          {"pkg_dram_energy_j", run.pkg_dram_energy_j},
          {"miss_rate", run.miss_rate()},
          {"freq_changes", static_cast<double>(run.freq_changes)},
          {"slice_changes", static_cast<double>(run.slice_changes)},
          {"transition_energy_j", run.transition_energy_j},
          {"decision_evals", static_cast<double>(run.decision_evals)}};
}

Metrics noc_metrics(const NocScenario& s, const NocRunResult& run) {
  Metrics m;
  if (s.run_simulation) {
    m.emplace_back("sim_avg_latency_cycles", run.sim.avg_latency_cycles);
    m.emplace_back("sim_p95_latency_cycles", run.sim.p95_latency_cycles);
    m.emplace_back("sim_avg_hops", run.sim.avg_hops);
    m.emplace_back("sim_packets_measured", static_cast<double>(run.sim.packets_measured));
    m.emplace_back("sim_delivered_rate", run.sim.delivered_rate);
  }
  if (s.run_analytical) {
    m.emplace_back("ana_avg_latency_cycles", run.analytical.avg_latency_cycles);
    m.emplace_back("ana_max_link_utilization", run.analytical.max_link_utilization);
    m.emplace_back("ana_saturated", run.analytical.saturated ? 1.0 : 0.0);
  }
  if (s.run_simulation && s.run_analytical && run.sim.avg_latency_cycles > 0.0) {
    m.emplace_back("ana_error_pct",
                   100.0 *
                       std::abs(run.analytical.avg_latency_cycles - run.sim.avg_latency_cycles) /
                       run.sim.avg_latency_cycles);
  }
  return m;
}

/// Shared GPU frame-loop protocol (factory checks, scenario-private platform
/// + Rng, on_complete); `customize` binds hooks to this scenario's platform
/// instance — the GPU analogue of ExperimentEngine::run_scenario's
/// RunCustomizer.
using GpuRunCustomizer = std::function<void(gpu::GpuPlatform&, GpuRunnerHooks&)>;
GpuRunResult run_gpu_with_hooks(const GpuScenario& s, const GpuRunCustomizer& customize) {
  if (!s.make_controller)
    throw std::invalid_argument("ExperimentEngine: GPU scenario '" + s.id + "' has no factory");
  gpu::GpuPlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  GpuScenarioContext ctx{s, platform, rng};
  GpuControllerInstance instance = s.make_controller(ctx);
  if (!instance.controller)
    throw std::invalid_argument("ExperimentEngine: GPU factory for '" + s.id +
                                "' returned no controller");
  GpuRunnerHooks hooks;
  if (customize) customize(platform, hooks);
  GpuRunner runner(platform, s.fps_target, std::move(hooks));
  GpuRunResult run = runner.run(s.trace, *instance.controller, s.initial);
  if (s.on_complete) s.on_complete(*instance.controller, run);
  return run;
}

AnyResult run_gpu_scenario(const GpuScenario& s) {
  GpuRunResult run = run_gpu_with_hooks(s, nullptr);
  Metrics m = gpu_metrics(run);
  return AnyResult(s.id, std::move(run), std::move(m));
}

AnyResult run_thermal_gpu_scenario(const ThermalGpuScenario& s) {
  std::shared_ptr<soc::ThermalGpuAdapter> adapter;
  GpuRunResult base_run = run_gpu_with_hooks(
      s.base, [&adapter, &s](gpu::GpuPlatform& platform, GpuRunnerHooks& hooks) {
        adapter = std::make_shared<soc::ThermalGpuAdapter>(platform, 1.0 / s.base.fps_target,
                                                           s.thermal);
        hooks.arbiter = [adapter](const gpu::FrameDescriptor& f, const gpu::GpuConfig& proposed) {
          return adapter->arbitrate(f, proposed);
        };
        hooks.observer = [adapter](const gpu::FrameDescriptor& f, const gpu::GpuConfig& applied,
                                   const gpu::FrameResult& r) { adapter->observe(f, applied, r); };
        // Read-only channel: thermal-aware controllers (NmpcConfig::
        // thermal_aware) observe it; blind controllers ignore it, keeping
        // their runs bitwise identical.
        hooks.telemetry = [adapter] { return adapter->telemetry(); };
      });

  ThermalGpuRunResult result;
  result.run = std::move(base_run);
  result.clamped_frames = adapter->clamped_frames();
  result.peak_junction_c = adapter->peak_junction_c();
  result.peak_skin_c = adapter->peak_skin_c();
  result.final_budget_w = adapter->budget_w();

  Metrics m = gpu_metrics(result.run);
  m.emplace_back("clamped_frames", static_cast<double>(result.clamped_frames));
  m.emplace_back("peak_junction_c", result.peak_junction_c);
  m.emplace_back("peak_skin_c", result.peak_skin_c);
  m.emplace_back("final_budget_w", result.final_budget_w);
  return AnyResult(s.base.id, std::move(result), std::move(m));
}

AnyResult run_noc_scenario(const NocScenario& s) {
  const noc::Mesh mesh(s.mesh_cols, s.mesh_rows);
  NocRunResult run;
  if (s.run_simulation) {
    const noc::NocSimulator sim(mesh, s.params);
    run.sim = sim.simulate(s.traffic, s.sim);
  }
  if (s.run_analytical) {
    const noc::AnalyticalNocModel model(mesh, s.params);
    run.analytical = model.evaluate(s.traffic);
  }
  Metrics m = noc_metrics(s, run);
  return AnyResult(s.id, std::move(run), std::move(m));
}

AnyResult run_thermal_scenario(const ThermalDrmScenario& s) {
  // Reuses run_scenario's full protocol (factory checks, warmup — which
  // stays unconstrained — options wiring); the customizer binds a
  // scenario-private thermal adapter to the platform run_scenario builds.
  std::shared_ptr<soc::ThermalSocAdapter> adapter;
  ScenarioResult base_result = ExperimentEngine::run_scenario(
      s.base, [&adapter, &s](soc::BigLittlePlatform& platform, RunnerOptions& opts) {
        adapter = std::make_shared<soc::ThermalSocAdapter>(platform, s.thermal);
        opts.arbiter = [adapter](const soc::SnippetDescriptor& snip,
                                 const soc::SocConfig& proposed) {
          return adapter->arbitrate(snip, proposed);
        };
        opts.observer = [adapter](const soc::SnippetDescriptor& snip,
                                  const soc::SocConfig& applied, const soc::SnippetResult& r) {
          adapter->observe(snip, applied, r);
        };
        // Read-only channel: thermal-aware controllers observe it; blind
        // controllers ignore it, keeping their runs bitwise identical.
        opts.telemetry = [adapter] { return adapter->telemetry(); };
      });

  ThermalRunResult result;
  result.run = std::move(base_result.run);
  result.clamped_snippets = adapter->clamped_snippets();
  result.peak_junction_c = adapter->peak_junction_c();
  result.peak_skin_c = adapter->peak_skin_c();
  result.final_budget_w = adapter->budget_w();

  Metrics m = drm_metrics(result.run);
  m.emplace_back("clamped_snippets", static_cast<double>(result.clamped_snippets));
  m.emplace_back("peak_junction_c", result.peak_junction_c);
  m.emplace_back("peak_skin_c", result.peak_skin_c);
  m.emplace_back("final_budget_w", result.final_budget_w);
  for (Metric& e : base_result.extra) m.push_back(std::move(e));
  return AnyResult(s.base.id, std::move(result), std::move(m));
}

}  // namespace

AnyScenario::AnyScenario(std::string id, std::function<AnyResult()> run)
    : id_(std::move(id)), run_(std::move(run)) {}

AnyScenario::AnyScenario(Scenario s) : id_(s.id) {
  auto sp = std::make_shared<const Scenario>(std::move(s));
  run_ = [sp] {
    ScenarioResult r = ExperimentEngine::run_scenario(*sp);
    Metrics m = drm_metrics(r.run);
    for (Metric& e : r.extra) m.push_back(std::move(e));
    return AnyResult(r.id, std::move(r.run), std::move(m));
  };
}

AnyScenario::AnyScenario(GpuScenario s) : id_(s.id) {
  auto sp = std::make_shared<const GpuScenario>(std::move(s));
  run_ = [sp] { return run_gpu_scenario(*sp); };
}

AnyScenario::AnyScenario(NocScenario s) : id_(s.id) {
  auto sp = std::make_shared<const NocScenario>(std::move(s));
  run_ = [sp] { return run_noc_scenario(*sp); };
}

AnyScenario::AnyScenario(ThermalDrmScenario s) : id_(s.base.id) {
  auto sp = std::make_shared<const ThermalDrmScenario>(std::move(s));
  run_ = [sp] { return run_thermal_scenario(*sp); };
}

AnyScenario::AnyScenario(ThermalGpuScenario s) : id_(s.base.id) {
  auto sp = std::make_shared<const ThermalGpuScenario>(std::move(s));
  run_ = [sp] { return run_thermal_gpu_scenario(*sp); };
}

AnyScenario AnyScenario::renamed(std::string id) const {
  AnyScenario out;
  out.id_ = id;
  if (run_) {
    // The inner closure bakes the original id into its AnyResult; rewrite it
    // on the way out so callers only ever see the imposed name.
    out.run_ = [inner = run_, id = std::move(id)] {
      AnyResult r = inner();
      r.id_ = id;
      return r;
    };
  }
  return out;
}

AnyResult AnyScenario::run() const {
  if (!run_) throw std::logic_error("AnyScenario::run: empty scenario");
  return run_();
}

}  // namespace oal::core
