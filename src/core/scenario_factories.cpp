#include "core/scenario_factories.h"

#include <stdexcept>

#include "core/governors.h"

namespace oal::core {

namespace {

/// Per-scenario copies of the offline artifacts the controller adapts.
struct OnlineIlDeps {
  IlPolicy policy;
  OnlineSocModels models;
  OnlineIlDeps(const soc::ConfigSpace& space, IlPolicyConfig policy_cfg)
      : policy(space, policy_cfg), models(space) {}
};

ControllerInstance make_online_il(ScenarioContext& ctx, const OfflineData& off,
                                  std::uint64_t train_seed, const OnlineIlConfig& cfg) {
  IlPolicyConfig policy_cfg = cfg.policy;
  policy_cfg.thermal_aware = cfg.thermal_aware;
  auto deps = std::make_shared<OnlineIlDeps>(ctx.platform.space(), policy_cfg);
  common::Rng train_rng(train_seed);
  deps->policy.train_offline(off.policy, train_rng);
  deps->models.bootstrap(off.model_samples);
  auto ctl = std::make_unique<OnlineIlController>(ctx.platform.space(), deps->policy,
                                                  deps->models, cfg);
  return ControllerInstance{std::move(ctl), deps};
}

}  // namespace

ControllerFactory governor_factory(const std::string& name) {
  if (name == "ondemand") {
    return [](ScenarioContext& ctx) {
      return ControllerInstance{std::make_unique<OndemandGovernor>(ctx.platform.space()),
                                nullptr};
    };
  }
  if (name == "interactive") {
    return [](ScenarioContext& ctx) {
      return ControllerInstance{std::make_unique<InteractiveGovernor>(ctx.platform.space()),
                                nullptr};
    };
  }
  if (name == "performance") {
    return [](ScenarioContext& ctx) {
      return ControllerInstance{std::make_unique<PerformanceGovernor>(ctx.platform.space()),
                                nullptr};
    };
  }
  if (name == "powersave") {
    return [](ScenarioContext&) {
      return ControllerInstance{std::make_unique<PowersaveGovernor>(), nullptr};
    };
  }
  throw std::invalid_argument("governor_factory: unknown governor '" + name + "'");
}

ControllerFactory offline_il_factory(std::shared_ptr<const IlPolicy> policy) {
  return [policy](ScenarioContext& ctx) {
    return ControllerInstance{
        std::make_unique<OfflineIlController>(ctx.platform.space(), *policy), policy};
  };
}

ControllerFactory online_il_factory(std::shared_ptr<const OfflineData> off,
                                    std::uint64_t train_seed, OnlineIlConfig cfg) {
  return [off, train_seed, cfg](ScenarioContext& ctx) {
    return make_online_il(ctx, *off, train_seed, cfg);
  };
}

ControllerFactory online_il_collect_factory(std::vector<workloads::AppSpec> offline_apps,
                                            std::size_t snippets_per_app,
                                            std::size_t configs_per_snippet,
                                            std::uint64_t collect_seed, std::uint64_t train_seed,
                                            OnlineIlConfig cfg,
                                            std::shared_ptr<OracleCache> oracle_cache) {
  return [offline_apps = std::move(offline_apps), snippets_per_app, configs_per_snippet,
          collect_seed, train_seed, cfg, oracle_cache](ScenarioContext& ctx) {
    common::Rng collect_rng(collect_seed);
    const OfflineData off =
        collect_offline_data(ctx.platform, offline_apps, ctx.scenario.objective,
                             snippets_per_app, configs_per_snippet, collect_rng,
                             oracle_cache.get(), cfg.thermal_aware);
    return make_online_il(ctx, off, train_seed, cfg);
  };
}

// ---- GPU-ENMPC domain -----------------------------------------------------

namespace {

/// Per-scenario online models the NMPC controllers adapt in place.
struct GpuNmpcDeps {
  GpuOnlineModels models;
  explicit GpuNmpcDeps(const gpu::GpuPlatform& platform) : models(platform) {}
};

std::shared_ptr<GpuNmpcDeps> bootstrap_deps(GpuScenarioContext& ctx, std::size_t bootstrap_frames,
                                            std::uint64_t bootstrap_seed) {
  auto deps = std::make_shared<GpuNmpcDeps>(ctx.platform);
  common::Rng boot_rng(bootstrap_seed);
  bootstrap_gpu_models(ctx.platform, deps->models, 1.0 / ctx.scenario.fps_target,
                       bootstrap_frames, boot_rng);
  return deps;
}

}  // namespace

GpuControllerFactory gpu_baseline_factory() {
  return [](GpuScenarioContext& ctx) {
    return GpuControllerInstance{std::make_unique<BaselineGpuGovernor>(ctx.platform), nullptr};
  };
}

GpuControllerFactory gpu_nmpc_factory(NmpcConfig cfg, std::size_t bootstrap_frames,
                                      std::uint64_t bootstrap_seed) {
  return [cfg, bootstrap_frames, bootstrap_seed](GpuScenarioContext& ctx) {
    auto deps = bootstrap_deps(ctx, bootstrap_frames, bootstrap_seed);
    auto ctl = std::make_unique<NmpcGpuController>(ctx.platform, deps->models, cfg);
    return GpuControllerInstance{std::move(ctl), deps};
  };
}

GpuControllerFactory gpu_enmpc_factory(NmpcConfig cfg, std::size_t law_samples,
                                       std::size_t bootstrap_frames, std::uint64_t bootstrap_seed,
                                       std::uint64_t law_seed) {
  return [cfg, law_samples, bootstrap_frames, bootstrap_seed, law_seed](GpuScenarioContext& ctx) {
    auto deps = bootstrap_deps(ctx, bootstrap_frames, bootstrap_seed);
    auto ctl = std::make_unique<ExplicitNmpcGpuController>(ctx.platform, deps->models, cfg,
                                                           law_samples, law_seed);
    return GpuControllerInstance{std::move(ctl), deps};
  };
}

}  // namespace oal::core
