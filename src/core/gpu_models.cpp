#include "core/gpu_models.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::core {

void GpuWorkloadState::observe(const gpu::FrameResult& r, double slice_eff, double alpha) {
  // busy_cycles reported by the platform are render_cycles / eff; multiply
  // back to get a configuration-independent content measure.
  const double work = r.busy_cycles * slice_eff;
  work_cycles = alpha * work + (1.0 - alpha) * work_cycles;
  mem_bytes = alpha * r.mem_bytes + (1.0 - alpha) * mem_bytes;
}

GpuOnlineModels::GpuOnlineModels(const gpu::GpuPlatform& platform)
    : platform_(&platform),
      time_model_(4, ml::RlsConfig{0.99, 1e2, 0.0}),
      energy_model_(6, ml::RlsConfig{0.99, 1e2, 0.0}) {}

double GpuOnlineModels::slice_eff(int n) const {
  const double nn = static_cast<double>(n);
  return nn / (1.0 + platform_->params().slice_sync_overhead * (nn - 1.0));
}

common::Vec GpuOnlineModels::time_features(const GpuWorkloadState& w,
                                           const gpu::GpuConfig& c) const {
  common::Vec phi;
  time_features_into(w, c, phi);
  return phi;
}

void GpuOnlineModels::time_features_into(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                         common::Vec& phi) const {
  const double f = platform_->freq_mhz(c.freq_idx) * 1e6;
  const double inv_speed = w.work_cycles / (f * slice_eff(c.num_slices));
  phi.clear();
  phi.push_back(inv_speed);
  phi.push_back(w.mem_bytes * 1e-9);
  phi.push_back(w.work_cycles * 1e-9);
  phi.push_back(1.0);
}

common::Vec GpuOnlineModels::energy_features(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                             double period_s) const {
  common::Vec phi;
  energy_features_into(w, c, period_s, phi);
  return phi;
}

void GpuOnlineModels::energy_features_into(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                           double period_s, common::Vec& phi) const {
  const double f = platform_->freq_mhz(c.freq_idx) * 1e6;
  const double v = platform_->voltage(platform_->freq_mhz(c.freq_idx));
  const double n = static_cast<double>(c.num_slices);
  // phi doubles as the time-feature scratch for the busy-time prediction,
  // then is overwritten with the energy basis.
  const double busy = std::min(predict_frame_time_s(w, c, phi), period_s);
  const double idle = period_s - busy;
  phi.clear();
  phi.push_back(v * v * f * n * busy * 1e-9);  // active switching energy
  phi.push_back(v * v * f * n * idle * 1e-9);  // clock-gated residual switching
  phi.push_back(v * n * period_s);             // leakage
  phi.push_back(period_s);                     // uncore
  phi.push_back(w.mem_bytes * 1e-9);           // traffic-proportional term
  phi.push_back(busy);
}

double GpuOnlineModels::predict_frame_time_s(const GpuWorkloadState& w,
                                             const gpu::GpuConfig& c) const {
  return std::max(time_model_.predict(time_features(w, c)), 1e-6);
}

double GpuOnlineModels::predict_frame_time_s(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                             common::Vec& phi) const {
  time_features_into(w, c, phi);
  return std::max(time_model_.predict(phi), 1e-6);
}

double GpuOnlineModels::frame_time_freq_sensitivity(const GpuWorkloadState& w,
                                                    const gpu::GpuConfig& c) const {
  // d/df of theta_0 * work/(f*eff): analytic derivative of the learned model
  // (f in GHz for a usefully-scaled magnitude).
  const double f_ghz = platform_->freq_mhz(c.freq_idx) / 1000.0;
  const double theta0 = time_model_.weights()[0];
  const double inv_speed = w.work_cycles / (f_ghz * 1e9 * slice_eff(c.num_slices));
  return -theta0 * inv_speed / f_ghz;
}

double GpuOnlineModels::predict_gpu_energy_j(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                             double period_s) const {
  return std::max(energy_model_.predict(energy_features(w, c, period_s)), 1e-9);
}

double GpuOnlineModels::predict_gpu_energy_j(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                             double period_s, common::Vec& phi) const {
  energy_features_into(w, c, period_s, phi);
  return std::max(energy_model_.predict(phi), 1e-9);
}

double GpuOnlineModels::producer_energy_prior_j(const GpuWorkloadState& w,
                                                double period_s) const {
  const auto& p = platform_->params();
  const double t_cpu = w.cpu_cycles / (p.cpu_freq_ghz * 1e9);
  const double cpu_energy = p.cpu_dyn_w_at_busy * std::min(t_cpu, period_s);
  const double dram_energy =
      w.mem_bytes * p.dram_energy_nj_per_byte * 1e-9 + p.dram_static_w * period_s;
  return cpu_energy + p.pkg_base_w * period_s + dram_energy;
}

void GpuOnlineModels::update(const GpuWorkloadState& w_before, const gpu::GpuConfig& c,
                             double period_s, const gpu::FrameResult& observed) {
  UpdateScratch scratch;
  update(w_before, c, period_s, observed, scratch);
}

void GpuOnlineModels::update(const GpuWorkloadState& w_before, const gpu::GpuConfig& c,
                             double period_s, const gpu::FrameResult& observed,
                             UpdateScratch& scratch) {
  time_features_into(w_before, c, scratch.phi);
  time_model_.update(scratch.phi, observed.frame_time_s, scratch.rls);
  energy_features_into(w_before, c, period_s, scratch.phi);
  energy_model_.update(scratch.phi, observed.gpu_energy_j, scratch.rls);
}

StaffFrameTimePredictor::StaffFrameTimePredictor(const gpu::GpuPlatform& platform,
                                                 ml::StaffConfig cfg)
    : platform_(&platform), staff_(8, cfg) {}

common::Vec StaffFrameTimePredictor::features(const GpuWorkloadState& w,
                                              const gpu::GpuConfig& c) const {
  const double f = platform_->freq_mhz(c.freq_idx) * 1e6;
  const double n = static_cast<double>(c.num_slices);
  const double eff = n / (1.0 + platform_->params().slice_sync_overhead * (n - 1.0));
  return {w.work_cycles / (f * eff),       // the physical time term
          w.mem_bytes * 1e-9,              // exposed memory time
          1.0,                             // bias
          w.work_cycles * 1e-9,            // weak (frequency-blind) proxy
          1e9 / f,                         // period of one cycle — redundant
          w.cpu_cycles * 1e-9,             // irrelevant for GPU frame time
          n / 4.0,                         // raw slice count — redundant
          w.mem_bytes / (w.work_cycles + 1.0)};  // intensity ratio — weak
}

double StaffFrameTimePredictor::predict_ms(const GpuWorkloadState& w,
                                           const gpu::GpuConfig& c) const {
  return std::max(staff_.predict(features(w, c)), 1e-4) * 1e3;
}

double StaffFrameTimePredictor::update(const GpuWorkloadState& w, const gpu::GpuConfig& c,
                                       const gpu::FrameResult& observed) {
  const double err = staff_.update(features(w, c), observed.frame_time_s);
  return std::abs(err) / std::max(observed.frame_time_s, 1e-9);
}

}  // namespace oal::core
