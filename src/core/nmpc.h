// Multi-rate (explicit) nonlinear model-predictive GPU power management
// (paper Section IV-B, after Mercati et al. DAC'17 and Chakrabarty et al.).
//
// Two cooperating controllers manage the GPU under an FPS deadline:
//  * Slow-rate controller (every `slow_period_frames` frames): jointly picks
//    the number of active slices and a base frequency by minimizing the
//    predicted energy over a receding horizon, subject to the predicted
//    frame time meeting the deadline with a safety margin, including the
//    (asymmetric) actuation costs of slice changes.  Solved exactly by
//    enumerating the discrete control set — this is the NMPC reference.
//  * Fast-rate controller (every frame): state-space frequency trim around
//    the slow decision using the learned d(frame-time)/d(frequency)
//    sensitivity — cheap enough for per-frame firmware execution.
//
// The *explicit* variant replaces the slow-rate online optimization with
// regressors fitted offline to the NMPC law sampled on a Sobol
// low-discrepancy grid of the state space; at runtime the law is a handful
// of multiply-accumulates while the adaptive sensitivity models keep the
// fast loop application-specific.
//
// With NmpcConfig::thermal_aware both controllers additionally consume the
// runner's read-only thermal-telemetry channel: the power budget published
// by a thermal budgeter becomes a second feasibility predicate of the slow
// solve (next to the deadline) and a ceiling of the fast trim, so the
// controller proposes what the firmware budgeter would grant instead of
// being throttled after the fact — the GPU mirror of the thermal-aware DRM
// controllers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/gpu_controller.h"
#include "core/gpu_models.h"
#include "ml/linreg.h"
#include "ml/tree.h"

namespace oal::core {

struct NmpcConfig {
  double fps_target = 30.0;
  double deadline_margin = 0.06;     ///< keep t <= period * (1 - margin)
  std::size_t slow_period_frames = 30;
  std::size_t horizon_periods = 3;   ///< receding horizon of the slow loop
  int fast_max_step = 2;             ///< max freq steps per frame (fast loop)
  double fast_target_busy = 0.90;    ///< fast loop pulls busy toward this
  /// Fold the runner's thermal-telemetry channel into the optimization: the
  /// power budget becomes a feasibility predicate of the slow solve and a
  /// ceiling of the fast trim (the same anticipate-don't-get-corrected loop
  /// the DRM side closes with OnlineIlConfig::thermal_aware).  Off by
  /// default: blind controllers ignore a bound telemetry source and stay
  /// bitwise identical to the pre-telemetry behavior.
  bool thermal_aware = false;
  /// Fraction of the telemetry budget held back as slack for model error
  /// (learned energy model + EWMA workload forecast vs the arbiter's ideal
  /// model of the true next frame).  Without it the solver rides the exact
  /// ceiling and every small underprediction bounces off the arbiter.
  double budget_margin = 0.06;
};

/// Budget context of one slow/fast solve, derived from the last telemetry
/// snapshot.  `other_energy_j` lifts the learned GPU-scope energy prediction
/// to the PKG+DRAM scope the thermal budgeter (ThermalGpuAdapter) arbitrates
/// on: predicted producer power of config c over a period T is
/// (predict_gpu_energy_j(w, c, T) + other_energy_j) / T.  The default is the
/// unconstrained state (no predicate, legacy behavior).
struct GpuBudgetState {
  bool constrained = false;
  double budget_w = soc::ThermalTelemetry::kUnconstrainedBudgetW;
  double other_energy_j = 0.0;  ///< non-GPU producer energy per period (J)
};

/// Implicit NMPC: exact enumeration at every slow tick (the reference).
class NmpcGpuController : public GpuController {
 public:
  NmpcGpuController(const gpu::GpuPlatform& platform, GpuOnlineModels& models,
                    NmpcConfig cfg = {});

  std::string name() const override { return "NMPC"; }
  gpu::GpuConfig step(const gpu::FrameResult& result, const gpu::GpuConfig& current,
                      std::size_t frame_index) override;
  void observe_telemetry(const soc::ThermalTelemetry& telemetry) override;
  void begin_run(const gpu::GpuConfig& initial) override;
  std::size_t decision_evals() const override { return evals_; }

  const GpuWorkloadState& workload_state() const { return state_; }

  /// Budget context for the next solve, derived from the last telemetry
  /// snapshot (unconstrained while blind or with no source bound).
  GpuBudgetState budget_state() const;

  /// Exact slow-rate solve from an explicit state (shared with the sampler).
  /// Feasibility = deadline AND (under `budget`) predicted PKG+DRAM power
  /// within the budget; the infeasible fallback picks the least-over-budget
  /// deadline-feasible config (the fastest when none meets the deadline) and
  /// descends the firmware throttle ladder until the budget fits.
  gpu::GpuConfig solve_slow(const GpuWorkloadState& w, const gpu::GpuConfig& current,
                            std::size_t* eval_counter,
                            const GpuBudgetState& budget = {}) const;
  /// Fast-rate frequency trim at fixed slice count.  Under `budget` the trim
  /// never raises the frequency through the power budget, and tracks a
  /// tightened budget downward (what the arbiter would grant anyway).
  gpu::GpuConfig fast_trim(const GpuWorkloadState& w, const gpu::GpuConfig& current,
                           std::size_t* eval_counter,
                           const GpuBudgetState& budget = {}) const;

 private:
  const gpu::GpuPlatform* platform_;
  GpuOnlineModels* models_;
  NmpcConfig cfg_;
  GpuWorkloadState state_;
  gpu::GpuConfig slow_cfg_{0, 1};
  std::size_t evals_ = 0;
  soc::ThermalTelemetry telemetry_;   ///< last snapshot (neutral when blind)
  double producer_energy_j_ = -1.0;   ///< measured non-GPU EWMA; < 0 = none yet
  /// Feature scratch for the solve/trim candidate loops; mutable because the
  /// solvers are logically const.  A controller instance is single-owner
  /// (one runner), never shared across threads.
  mutable common::Vec phi_buf_;
  /// Scratch for the per-frame model refit, making the whole step
  /// allocation-free in steady state (PR-8 contract extended to update()).
  GpuOnlineModels::UpdateScratch update_scratch_;
};

/// Explicit NMPC: offline-fitted control law + online-adaptive fast loop.
class ExplicitNmpcGpuController : public GpuController {
 public:
  /// Fits the explicit law by sampling the NMPC slow-rate solution on
  /// `num_samples` Sobol points of the (work, mem, current-config) state
  /// space, using the provided (bootstrapped) models.  With
  /// cfg.thermal_aware the sampled state gains a power-budget dimension, so
  /// the fitted law stays valid under throttling: at runtime the budget
  /// feature comes from the telemetry channel (neutral = unconstrained).
  ExplicitNmpcGpuController(const gpu::GpuPlatform& platform, GpuOnlineModels& models,
                            NmpcConfig cfg = {}, std::size_t num_samples = 1500,
                            std::uint64_t seed = 2017);

  std::string name() const override { return "Explicit NMPC"; }
  gpu::GpuConfig step(const gpu::FrameResult& result, const gpu::GpuConfig& current,
                      std::size_t frame_index) override;
  void observe_telemetry(const soc::ThermalTelemetry& telemetry) override;
  void begin_run(const gpu::GpuConfig& initial) override;
  std::size_t decision_evals() const override { return evals_; }

  /// Budget context for the next decision (see NmpcGpuController).
  GpuBudgetState budget_state() const;

  /// Offline construction cost (NMPC solves during sampling) — reported by
  /// the ablation bench; not counted against runtime overhead.
  std::size_t offline_evals() const { return offline_evals_; }

 private:
  common::Vec law_features(const GpuWorkloadState& w, const gpu::GpuConfig& current,
                           double budget_w) const;

  const gpu::GpuPlatform* platform_;
  GpuOnlineModels* models_;
  NmpcConfig cfg_;
  /// Persistent implicit-NMPC helper for the per-frame fast trim (stateless
  /// w.r.t. the helper's own run state — fast_trim is const and works off
  /// the arguments), replacing a per-step construction.
  NmpcGpuController fast_helper_;
  GpuWorkloadState state_;
  gpu::GpuConfig slow_cfg_{0, 1};
  ml::RidgeRegression freq_law_;
  ml::ClassificationTree slice_law_;
  std::size_t evals_ = 0;
  std::size_t offline_evals_ = 0;
  soc::ThermalTelemetry telemetry_;   ///< last snapshot (neutral when blind)
  double producer_energy_j_ = -1.0;   ///< measured non-GPU EWMA; < 0 = none yet
  mutable common::Vec phi_buf_;       ///< see NmpcGpuController::phi_buf_
  GpuOnlineModels::UpdateScratch update_scratch_;  ///< per-frame refit scratch
};

/// Offline profiling pass: renders random-config frames of a generic content
/// mix to bootstrap the GPU time/energy models (the design-time data of the
/// paper's framework).
void bootstrap_gpu_models(gpu::GpuPlatform& platform, GpuOnlineModels& models, double period_s,
                          std::size_t frames, common::Rng& rng);

}  // namespace oal::core
