#include "core/governors.h"

#include <algorithm>
#include <cmath>

namespace oal::core {

namespace {

int clamp_idx(int idx, int max_idx) { return std::clamp(idx, 0, max_idx); }

}  // namespace

OndemandGovernor::OndemandGovernor(const soc::ConfigSpace& space, double up_threshold,
                                   double target_load)
    : space_(&space), up_threshold_(up_threshold), target_load_(target_load) {}

// oal-lint: hot-path
soc::SocConfig OndemandGovernor::step(const soc::SnippetResult& result,
                                      const soc::SocConfig& executed) {
  const soc::PerfCounters& k = result.counters;
  soc::SocConfig c = executed;
  c.num_little = 4;
  c.num_big = 4;

  const int max_l = static_cast<int>(space_->little_freqs().size()) - 1;
  const int max_b = static_cast<int>(space_->big_freqs().size()) - 1;
  auto next_idx = [&](double util, int cur, int max_idx) {
    if (util > up_threshold_) return max_idx;
    // f_target = f_cur * util / target_load, mapped back to the table.
    const double cur_f = 200.0 + 100.0 * cur;
    const double want = cur_f * util / target_load_;
    return clamp_idx(static_cast<int>(std::lround((want - 200.0) / 100.0)), max_idx);
  };
  c.little_freq_idx = next_idx(k.little_cluster_utilization, executed.little_freq_idx, max_l);
  c.big_freq_idx = next_idx(k.big_cluster_utilization, executed.big_freq_idx, max_b);
  return c;
}

InteractiveGovernor::InteractiveGovernor(const soc::ConfigSpace& space, double hispeed_load,
                                         int ramp_up_steps, int ramp_down_steps)
    : space_(&space), hispeed_load_(hispeed_load), ramp_up_steps_(ramp_up_steps),
      ramp_down_steps_(ramp_down_steps) {}

soc::SocConfig InteractiveGovernor::step(const soc::SnippetResult& result,
                                         const soc::SocConfig& executed) {
  const soc::PerfCounters& k = result.counters;
  soc::SocConfig c = executed;
  c.num_little = 4;
  c.num_big = 4;
  const int max_l = static_cast<int>(space_->little_freqs().size()) - 1;
  const int max_b = static_cast<int>(space_->big_freqs().size()) - 1;
  auto ramp = [&](double util, int cur, int max_idx) {
    if (util > hispeed_load_) return clamp_idx(cur + ramp_up_steps_, max_idx);
    if (util < 0.5 * hispeed_load_) return clamp_idx(cur - ramp_down_steps_, max_idx);
    return cur;
  };
  c.little_freq_idx = ramp(k.little_cluster_utilization, executed.little_freq_idx, max_l);
  c.big_freq_idx = ramp(k.big_cluster_utilization, executed.big_freq_idx, max_b);
  return c;
}

PerformanceGovernor::PerformanceGovernor(const soc::ConfigSpace& space) : space_(&space) {}

soc::SocConfig PerformanceGovernor::step(const soc::SnippetResult&, const soc::SocConfig&) {
  return soc::SocConfig{4, 4, static_cast<int>(space_->little_freqs().size()) - 1,
                        static_cast<int>(space_->big_freqs().size()) - 1};
}

soc::SocConfig PowersaveGovernor::step(const soc::SnippetResult&, const soc::SocConfig&) {
  return soc::SocConfig{4, 4, 0, 0};
}
// oal-lint: hot-path-end

}  // namespace oal::core
