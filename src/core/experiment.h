// Parallel experiment engine.
//
// Every bench and example in this repo boils down to "run a controller over
// a workload trace on a platform and report metrics against the Oracle" —
// repeated across controllers, workloads, seeds, and ablation arms.  A
// Scenario captures one such run as data: (platform config x workload trace
// x controller factory x seed x objective).  ExperimentEngine executes
// batches of scenarios on a work-stealing thread pool and aggregates the
// RunResults deterministically:
//
//  * Each scenario owns a private BigLittlePlatform (constructed from the
//    scenario's PlatformParams + noise seed) and a private common::Rng
//    stream seeded from Scenario::seed.  No state is shared between
//    scenarios, so a parallel batch is bitwise-identical to a serial one.
//  * Results are returned sorted by scenario id, independent of scheduling.
//  * If a controller factory (or run) throws, the exception of the
//    lowest-index scenario is rethrown after the batch drains.
//
// Controller factories run *inside* the worker, so expensive per-scenario
// setup (offline data collection, policy training, RL pre-training) is
// parallelized along with the runs.  Factories may capture shared immutable
// artifacts (e.g. an offline dataset behind a shared_ptr) but must copy
// anything the controller mutates.
//
// The result path is streaming-first: one shared scheduling/determinism core
// runs a materialized shard on the pool and delivers every result to a sink
// callback in id order, so a downstream aggregator sees the identical
// result stream regardless of thread count.  The vector-returning APIs are
// thin wrappers (sink = push_back) and run_any_streaming() feeds the same
// core from a lazy generator in fixed-size shards — peak result memory is
// one shard, not the population, which is what lets fleet-scale sweeps
// (thousands of device arms) run through the same engine and keep the
// parallel==serial bitwise contract per shard.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/controller.h"
#include "core/objectives.h"
#include "core/runner.h"
#include "soc/platform.h"

namespace oal::core {

struct Scenario;
class AnyScenario;  // core/domain.h: type-erased cross-domain scenario
class AnyResult;

/// Named scalar outputs of a run, in a deterministic (insertion) order.
using Metric = std::pair<std::string, double>;
using Metrics = std::vector<Metric>;

/// Scenario-private execution state handed to the controller factory.
struct ScenarioContext {
  const Scenario& scenario;
  soc::BigLittlePlatform& platform;  ///< this scenario's platform instance
  common::Rng& rng;                  ///< this scenario's deterministic stream
};

/// A controller plus whatever collaborators it references (policy, models);
/// `deps` keeps those alive for the duration of the run.
struct ControllerInstance {
  std::unique_ptr<DrmController> controller;
  std::shared_ptr<const void> deps;
};

using ControllerFactory = std::function<ControllerInstance(ScenarioContext&)>;

struct Scenario {
  std::string id;  ///< unique within a batch; results are ordered by id
  soc::PlatformParams platform;
  std::uint64_t platform_noise_seed = 2020;
  std::vector<soc::SnippetDescriptor> trace;
  /// Optional unrecorded prefix (no Oracle): e.g. RL pre-training.
  std::vector<soc::SnippetDescriptor> warmup;
  ControllerFactory make_controller;
  soc::SocConfig initial{4, 4, 8, 10};
  /// Seeds ScenarioContext::rng, the scenario-private stream handed to the
  /// controller factory.  It influences a run only insofar as the factory
  /// draws from it; the stock factories in scenario_factories.h use their
  /// own fixed seeds (paper-protocol fidelity) and ignore it.
  std::uint64_t seed = 0;
  Objective objective = Objective::kEnergy;
  bool compute_oracle = true;
  /// Optional shared Oracle memoization (see core::OracleCache).  Safe to
  /// share across a parallel batch — values are pure functions of
  /// (platform params, snippet, objective), all part of the cache key.
  std::shared_ptr<OracleCache> oracle_cache;
  /// Runs in the worker after the trace, while the controller is still
  /// alive — the place to harvest controller statistics (policy updates,
  /// table sizes).  Must touch scenario-local state only.
  std::function<void(DrmController&, const RunResult&)> on_complete;
  /// Like on_complete, but the returned metrics ride along in
  /// ScenarioResult::extra and are appended to the standard drm_metrics of
  /// the JSONL record (training wall-time, final loss, ...).
  std::function<Metrics(const DrmController&, const RunResult&)> extra_metrics;
};

struct ScenarioResult {
  std::string id;
  RunResult run;
  Metrics extra;  ///< Scenario::extra_metrics output (empty when unset)
};

struct ExperimentOptions {
  /// Worker count: 0 = hardware concurrency, 1 = serial execution (the
  /// reference order the determinism tests compare against).
  std::size_t num_threads = 0;
};

/// Geometry of a streaming sweep (run_any_streaming).
struct StreamOptions {
  /// Scenarios materialized and in flight at once.  Peak result memory of a
  /// streaming sweep is one shard — never the population — and the
  /// parallel==serial bitwise contract holds per shard (delivery order is a
  /// pure function of the shard's ids).  Changing the shard size regroups
  /// the sweep but never changes any per-scenario result; it reorders
  /// delivery only across shard boundaries.
  std::size_t shard_size = 256;
};

class ExperimentEngine {
 public:
  using Options = ExperimentOptions;

  /// Per-result delivery callback of the streaming core, invoked on the
  /// calling thread in id order (never concurrently).  A sink may throw:
  /// the exception propagates to the caller and undelivered results of the
  /// current shard are dropped.
  using AnySink = std::function<void(AnyResult&&)>;
  using ScenarioSink = std::function<void(ScenarioResult&&)>;
  /// Lazy scenario source for run_any_streaming: one scenario per call,
  /// std::nullopt when the population is exhausted.  Called on the engine's
  /// calling thread only (never concurrently), so a generator may hold
  /// mutable iteration state without synchronization.
  using AnyGenerator = std::function<std::optional<AnyScenario>()>;

  explicit ExperimentEngine(Options opts = Options());

  /// Executes the batch in parallel; returns results sorted by scenario id.
  /// Throws std::invalid_argument on empty/duplicate ids or a null factory.
  /// Same contract as run_any, implemented directly (no type erasure) so
  /// the all-DRM hot path avoids Scenario/RunResult copies.
  std::vector<ScenarioResult> run_batch(const std::vector<Scenario>& batch);

  /// Streaming form: delivers each ScenarioResult to `sink` in id order
  /// instead of collecting a vector.  The vector form is a thin wrapper
  /// over this (sink = push_back).
  void run_batch(const std::vector<Scenario>& batch, const ScenarioSink& sink);

  /// Domain-generic batch execution: DRM, GPU-ENMPC, NoC, thermally-
  /// constrained DRM, and custom scenarios mix freely (see core/domain.h).
  /// Same contract as run_batch: results sorted by id, parallel bitwise ==
  /// serial, lowest-index exception rethrown after the batch drains.
  std::vector<AnyResult> run_any(const std::vector<AnyScenario>& batch);

  /// Streaming form of run_any (sink called in id order; the vector form is
  /// a thin wrapper over this).
  void run_any(const std::vector<AnyScenario>& batch, const AnySink& sink);

  /// Sharded streaming sweep over a lazily-generated population: pulls up to
  /// StreamOptions::shard_size scenarios from `generator`, runs the shard on
  /// the pool (parallel bitwise == serial, lowest-index exception rethrown
  /// after the shard drains), delivers its results to `sink` in id order,
  /// drops the shard, and repeats until the generator is exhausted — peak
  /// result memory is one shard, not the population.  Ids must be unique
  /// across the whole stream (std::invalid_argument otherwise, as in
  /// run_any).  Returns the number of scenarios executed.
  std::size_t run_any_streaming(const AnyGenerator& generator, const AnySink& sink,
                                const StreamOptions& stream = {});

  /// Deterministic parallel map over arbitrary items (for sweeps that are
  /// not DRM runs, e.g. NoC design points): out[i] = fn(items[i], i).
  template <typename T, typename F>
  auto map(const std::vector<T>& items, F&& fn) {
    return pool_.parallel_map(items, std::forward<F>(fn));
  }

  common::ThreadPool& pool() { return pool_; }

  /// Customization point for domain adapters (e.g. thermal budgeting):
  /// invoked after the scenario's platform is constructed and the default
  /// RunnerOptions are built — but after any warmup trace, which always
  /// runs unhooked — so the adapter can bind arbiter/observer hooks to this
  /// scenario's platform instance.
  using RunCustomizer = std::function<void(soc::BigLittlePlatform&, RunnerOptions&)>;

  /// Executes one scenario in the calling thread (the serial building block).
  static ScenarioResult run_scenario(const Scenario& s, const RunCustomizer& customize = nullptr);

 private:
  common::ThreadPool pool_;
};

}  // namespace oal::core
