// Per-decision latency instrumentation for the decision hot path.
//
// The paper's central practicality claim is that the learned policies decide
// in microseconds (cheap enough for firmware); this header makes that number
// a first-class, continuously-measured metric instead of a one-off benchmark.
// DecisionTimer wraps exactly the controller's decide/step call inside the
// runners, accumulates nanosecond samples into a fixed-capacity reservoir
// (no allocation — the timer must not perturb the allocation-free hot path
// it measures), and reports p50/p99/max at run end.  The count and max are
// exact over all decisions; percentiles are computed over the most recent
// kCapacity samples (a full window for every bench in this repo).
//
// Latency values are wall-clock and therefore machine-dependent: the benches
// emit them into `decision_latency` JSONL records for tracking, but the CI
// gates compare only the decision *counts* — never the nanoseconds.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>

#include "common/stats.h"

namespace oal::core {

/// Summary of one run's decision latencies (see DecisionTimer).
struct DecisionLatencyStats {
  std::size_t decisions = 0;  ///< timed decisions (exact)
  double p50_ns = 0.0;        ///< median over the sample window
  double p99_ns = 0.0;        ///< 99th percentile over the sample window
  double max_ns = 0.0;        ///< exact maximum over all decisions
};

class DecisionTimer {
 public:
  using Clock = std::chrono::steady_clock;
  /// Sample window: large enough that every bench run in this repo keeps all
  /// of its decisions; longer runs keep the most recent kCapacity.
  static constexpr std::size_t kCapacity = 4096;

  Clock::time_point start() const { return Clock::now(); }

  void stop(Clock::time_point t0) {
    record(std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
  }

  void record(double ns) {
    samples_[count_ % kCapacity] = ns;
    ++count_;
    if (ns > max_ns_) max_ns_ = ns;
  }

  std::size_t count() const { return count_; }

  /// Percentiles over the retained window via the repo-wide
  /// common::stats::percentile_sorted rule (linear interpolation between
  /// order statistics — identical to common::stats::percentile and the
  /// fleet aggregator on the same samples); O(window log window) on a stack
  /// copy, intended for run end (never the per-decision path).
  DecisionLatencyStats stats() const {
    DecisionLatencyStats s;
    s.decisions = count_;
    s.max_ns = max_ns_;
    const std::size_t n = std::min(count_, kCapacity);
    if (n == 0) return s;
    std::array<double, kCapacity> sorted = samples_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    s.p50_ns = common::percentile_sorted(sorted.data(), n, 50.0);
    s.p99_ns = common::percentile_sorted(sorted.data(), n, 99.0);
    return s;
  }

 private:
  std::array<double, kCapacity> samples_{};
  std::size_t count_ = 0;
  double max_ns_ = 0.0;
};

}  // namespace oal::core
