// Online power & performance models (paper Sections III-B and IV-A3).
//
// Linear-in-parameters models over the FeatureExtractor basis, trained by
// recursive least squares with forgetting:
//   log(time per instruction) = theta_t' phi(w, c)
//   log(total power)          = theta_p' phi(w, c)
// where w are workload features from the *observed* counters and c is any
// candidate configuration.  Initial weights are bootstrapped offline with
// ridge regression on design-time data, then adapted online after every
// snippet — exactly the paper's "models constructed offline ... updated
// continuously at runtime" loop.  Predicted energy of a candidate is
// exp(log t + log P) * instructions.
#pragma once

#include <vector>

#include "core/features.h"
#include "ml/rls.h"
#include "soc/config_space.h"
#include "soc/counters.h"

namespace oal::core {

struct ModelSample {
  WorkloadFeatures workload;
  soc::SocConfig config;
  double time_s = 0.0;
  double instructions = 0.0;
  double power_w = 0.0;
};

class OnlineSocModels {
 public:
  OnlineSocModels(const soc::ConfigSpace& space, ml::RlsConfig rls_cfg = {0.995, 10.0, 0.0});

  /// Ridge-fits initial weights from offline samples and seeds the RLS.
  void bootstrap(const std::vector<ModelSample>& samples, double ridge_alpha = 1e-4);

  /// One online adaptation step from an executed snippet.  Returns the
  /// a-priori innovation of the time model in log space (|e| of 0.1 means
  /// roughly a 10% relative time mis-prediction) — a cheap workload-change
  /// detector for the controller.
  double update(const ModelSample& observed);

  double predict_time_s(const WorkloadFeatures& w, const soc::SocConfig& candidate,
                        double instructions) const;
  double predict_power_w(const WorkloadFeatures& w, const soc::SocConfig& candidate) const;
  double predict_energy_j(const WorkloadFeatures& w, const soc::SocConfig& candidate,
                          double instructions) const;
  /// log(t/I) + log(P): monotone in predicted energy; cheaper for argmin.
  double predict_log_cost(const WorkloadFeatures& w, const soc::SocConfig& candidate) const;

  /// Scratch overloads: identical arithmetic, but the feature basis is built
  /// into the caller-owned phi buffer — the online-IL candidate loop calls
  /// these hundreds of times per decision and reuses one buffer throughout.
  double update(const ModelSample& observed, common::Vec& phi);
  double predict_power_w(const WorkloadFeatures& w, const soc::SocConfig& candidate,
                         common::Vec& phi) const;
  double predict_log_cost(const WorkloadFeatures& w, const soc::SocConfig& candidate,
                          common::Vec& phi) const;

  bool bootstrapped() const { return bootstrapped_; }
  std::size_t online_updates() const { return time_model_.updates(); }

 private:
  FeatureExtractor fx_;
  ml::RecursiveLeastSquares time_model_;   // target: log(time per instruction)
  ml::RecursiveLeastSquares power_model_;  // target: log(power)
  bool bootstrapped_ = false;
};

}  // namespace oal::core
