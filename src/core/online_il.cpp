#include "core/online_il.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "soc/thermal_platform.h"

namespace oal::core {

OnlineIlController::OnlineIlController(const soc::ConfigSpace& space, IlPolicy& policy,
                                       OnlineSocModels& models, OnlineIlConfig cfg)
    : space_(&space), policy_(&policy), models_(&models), fx_(space, cfg.thermal_aware),
      cfg_(cfg), rng_(cfg.seed), explore_(cfg.explore_init) {
  buffer_states_.reserve(cfg_.buffer_capacity);
  buffer_labels_.reserve(cfg_.buffer_capacity);
}

void OnlineIlController::observe_telemetry(const soc::ThermalTelemetry& telemetry) {
  telemetry_ = telemetry;
}

void OnlineIlController::begin_run(const soc::SocConfig& /*initial*/) {
  telemetry_ = soc::ThermalTelemetry{};
}

soc::SocConfig OnlineIlController::step(const soc::SnippetResult& result,
                                        const soc::SocConfig& executed) {
  const soc::PerfCounters& k = result.counters;
  const WorkloadFeatures w = workload_features(k, executed);

  // 1. Adapt the online models with the new observation.  Sustained large
  //    innovation signals a workload change: re-arm exploration.  Innovation
  //    from a deliberately exploratory configuration is expected (the model
  //    has not seen that region) and must NOT re-arm, or exploration becomes
  //    self-sustaining.
  const double innovation = models_->update(
      ModelSample{w, executed, result.exec_time_s, k.instructions_retired, result.avg_power_w},
      phi_buf_);
  if (!last_was_exploratory_) {
    innov_ewma_ = 0.7 * innov_ewma_ + 0.3 * std::abs(innovation);
    if (innov_ewma_ > cfg_.innovation_reset_threshold) {
      explore_ = std::max(explore_, cfg_.explore_rearm);
      innov_ewma_ = 0.0;  // one re-arm per detected change
    }
  }

  // 2. Policy decision (recorded for accuracy-vs-Oracle tracking).
  fx_.policy_features_into(k, executed, state_buf_, telemetry_);
  const common::Vec& state = state_buf_;
  const soc::SocConfig policy_cfg = policy_->decide(state, policy_scratch_);
  last_policy_ = policy_cfg;

  // 3. Runtime Oracle approximation: models score the local neighborhood,
  //    the per-cluster sweeps, and the policy's suggestion (so a converged
  //    policy can jump directly).
  std::vector<soc::SocConfig>& candidates = candidates_;
  space_->neighborhood_into(executed, cfg_.neighborhood_radius, cfg_.max_changed_knobs,
                            candidates);
  if (cfg_.include_cluster_sweeps) {
    space_->cluster_sweeps_into(executed, sweeps_);
    candidates.insert(candidates.end(), sweeps_.begin(), sweeps_.end());
  }
  if (cfg_.include_policy_candidate) candidates.push_back(policy_cfg);

  // Thermal-aware mode under an active budget: internalize the budgeter.
  // Every candidate the power model predicts to exceed the published budget
  // is throttled down the same ladder the firmware arbiter uses (big
  // frequency, big cores, little frequency, little cores; floor 1 LITTLE
  // core at fmin) — but using the controller's own learned model, since
  // runtime policies never see the platform's ground-truth power.  The
  // search then optimizes over budget-feasible configurations *including*
  // the efficient boundary configs the clamp ladder would land on, so the
  // proposal (and the supervision label the policy trains on) avoids the
  // arbiter instead of fighting it.
  //
  // Candidate power is anchored to the *measured* power of the executed
  // configuration: predicted ratios between nearby configs are far more
  // accurate than predicted levels, so scaling the measurement by the
  // predicted ratio cancels the model's level error at the operating point
  // (exactly where feasibility is decided).
  std::vector<soc::SocConfig>& explore_pool = explore_pool_;  // aware mode: pre-throttle copy
  explore_pool.clear();  // member buffer: must start each step empty
  if (cfg_.thermal_aware && telemetry_.constrained) {
    // Exploration (below) draws from the *unthrottled* set: an over-budget
    // exploratory proposal is clamped by the real arbiter to the true power
    // boundary, which is the only way the controller can ever observe
    // boundary configurations its own model mis-ranks — the arbiter never
    // lets an over-budget config execute, so purely feasible exploration
    // would lock model errors in place.
    explore_pool.assign(candidates.begin(), candidates.end());
    const double anchor_pred_w = models_->predict_power_w(w, executed, phi_buf_);
    const double anchor_scale =
        (anchor_pred_w > 1e-9 && result.avg_power_w > 0.0) ? result.avg_power_w / anchor_pred_w
                                                           : 1.0;
    const auto candidate_power_w = [&](const soc::SocConfig& c) {
      return models_->predict_power_w(w, c, phi_buf_) * anchor_scale;
    };
    for (soc::SocConfig& c : candidates) {
      while (candidate_power_w(c) > telemetry_.budget_w) {
        if (!soc::throttle_step(c)) break;
      }
    }
  }

  soc::SocConfig best = executed;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const soc::SocConfig& c : candidates) {
    const double cost = models_->predict_log_cost(w, c, phi_buf_);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  // Near-ties (within ~1% predicted energy) are resolved toward the lowest
  // predicted power: among equal-energy configurations the cooler one is
  // preferable, and deterministic tie-breaking stabilizes the supervision
  // labels the policy is trained on.
  {
    double best_power = models_->predict_power_w(w, best, phi_buf_);
    for (const soc::SocConfig& c : candidates) {
      if (models_->predict_log_cost(w, c, phi_buf_) > best_cost + 0.01) continue;
      const double p = models_->predict_power_w(w, c, phi_buf_);
      if (p < best_power) {
        best_power = p;
        best = c;
      }
    }
  }

  // Epsilon-greedy exploration over the candidate set: keeps the online
  // models excited outside the current operating point.  The supervision
  // label below is always the argmin, never the exploratory config.
  soc::SocConfig applied = best;
  last_was_exploratory_ = rng_.bernoulli(explore_);
  if (last_was_exploratory_) {
    const std::vector<soc::SocConfig>& pool = explore_pool.empty() ? candidates : explore_pool;
    applied = pool[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(pool.size()) - 1))];
  }
  explore_ = std::max(cfg_.explore_min, explore_ * cfg_.explore_decay);

  // 4. Aggregate supervision and periodically retrain the policy.
  buffer_states_.push_back(state);
  buffer_labels_.push_back(best);
  if (buffer_states_.size() >= cfg_.buffer_capacity) {
    for (std::size_t i = 0; i < buffer_states_.size(); ++i) {
      agg_states_.push_back(buffer_states_[i]);
      agg_labels_.push_back(buffer_labels_[i]);
    }
    while (agg_states_.size() > cfg_.aggregate_capacity) {
      agg_states_.pop_front();
      agg_labels_.pop_front();
    }
    PolicyDataset ds;
    ds.states.assign(agg_states_.begin(), agg_states_.end());
    ds.labels.assign(agg_labels_.begin(), agg_labels_.end());
    policy_->train_incremental(ds, cfg_.update_epochs, rng_);
    ++policy_updates_;
    buffer_states_.clear();
    buffer_labels_.clear();
  }
  return applied;
}

OfflineIlController::OfflineIlController(const soc::ConfigSpace& space, const IlPolicy& policy)
    : policy_(&policy), fx_(space) {}

soc::SocConfig OfflineIlController::step(const soc::SnippetResult& result,
                                         const soc::SocConfig& executed) {
  fx_.policy_features_into(result.counters, executed, state_buf_);
  const soc::SocConfig c = policy_->decide(state_buf_, policy_scratch_);
  last_policy_ = c;
  return c;
}

}  // namespace oal::core
