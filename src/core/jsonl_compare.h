// JSONL bench-result comparison (ROADMAP "JSONL trend tracking").
//
// Benches emit one JSON record per scenario via core::JsonlWriter; this
// module reads those files back and diffs two runs (a checked-in baseline
// vs. a fresh run) metric-by-metric, flagging differences beyond a
// tolerance.  tools/jsonl_compare wraps it as the CLI that CI runs; the
// parser doubles as the round-trip check for JsonlWriter's escaping.
//
// The parser covers exactly the JSON subset the writer emits — objects,
// strings (with \", \\, \/, \b, \f, \n, \r, \t, \uXXXX escapes), finite
// numbers, and null (the writer's encoding for NaN/inf) — and rejects
// anything else loudly rather than guessing.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/domain.h"

namespace oal::core {

/// One parsed JSONL record: {"bench":...,"id":...,"metrics":{...}}.
/// Non-finite metrics (serialized as null) are dropped with a note in the
/// record, since they cannot be compared numerically.
struct JsonlRecord {
  std::string bench;
  std::string id;
  Metrics metrics;
  std::vector<std::string> null_metrics;  ///< metric names serialized as null
};

/// Parses one record line; throws std::invalid_argument with the offending
/// position on malformed input.
JsonlRecord parse_jsonl_record(const std::string& line);

/// Parses a whole stream/file (one record per non-empty line).  The file
/// variant throws std::runtime_error when the file cannot be opened.
std::vector<JsonlRecord> read_jsonl(std::istream& in);
std::vector<JsonlRecord> read_jsonl_file(const std::string& path);

struct JsonlCompareOptions {
  /// A metric difference is flagged when |cur - base| exceeds
  /// max(abs_tol, rel_tol * |base|) — direction-agnostic drift detection
  /// (metrics do not declare whether higher or lower is better).
  double rel_tol = 0.02;
  double abs_tol = 1e-9;
  /// When non-empty, only baseline metrics selected by these elements are
  /// gated (an element ending in '*' matches by prefix, otherwise exactly);
  /// everything else — including null baseline metrics — is ignored.  This
  /// is how benches with chaotic metrics (libm divergence across compilers)
  /// gate their stable subset.  An element that selects no metric present
  /// anywhere in the baseline is an error: a typo would otherwise silently
  /// gate nothing.
  std::vector<std::string> metrics;
  /// Per-metric-name tolerance overrides; keys are exact metric names (no
  /// '*' prefixes) and must be present in the baseline — unknown keys are
  /// errors so a typo cannot silently loosen nothing.
  std::map<std::string, double> rel_tol_for;
  std::map<std::string, double> abs_tol_for;
};

struct JsonlCompareResult {
  /// Human-readable findings, one per line; regressions and structural
  /// mismatches (missing records/metrics, duplicate ids) all land here.
  std::vector<std::string> issues;
  std::size_t records_compared = 0;
  std::size_t metrics_compared = 0;
  /// Records present only in `current` — informational growth, not a
  /// failure (new scenarios are expected as the repo grows; refresh the
  /// baseline to start tracking them).
  std::size_t records_only_in_current = 0;

  bool ok() const { return issues.empty(); }
};

/// Compares `current` against `baseline`.  Every baseline record/metric must
/// exist in `current` and agree within tolerance; a duplicated (bench, id)
/// in either file is an error (lookup would silently keep one of them and
/// the gate could pass on the wrong record).
JsonlCompareResult compare_jsonl(const std::vector<JsonlRecord>& baseline,
                                 const std::vector<JsonlRecord>& current,
                                 const JsonlCompareOptions& opts = {});

}  // namespace oal::core
