#include "core/scenario_registry.h"

#include <stdexcept>
#include <utility>

namespace oal::core {

namespace {

/// Prefix match on '/'-segment boundaries: a prefix selects a whole name or
/// a name it extends as `prefix + "/..."` — never a sibling that merely
/// shares leading characters ("fig1" must not select "fig10/...").
bool prefix_matches(const std::string& name, const std::string& prefix) {
  if (prefix.empty()) return true;
  if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) return false;
  return name.size() == prefix.size() || prefix.back() == '/' || name[prefix.size()] == '/';
}

}  // namespace

void ScenarioRegistry::add_entry(const std::string& name, Entry entry, bool have_builder) {
  if (name.empty()) throw std::invalid_argument("ScenarioRegistry::add: empty name");
  if (!have_builder)
    throw std::invalid_argument("ScenarioRegistry::add: null builder for " + name);
  if (!builders_.emplace(name, std::move(entry)).second)
    throw std::invalid_argument("ScenarioRegistry::add: duplicate name " + name);
}

void ScenarioRegistry::add(const std::string& name, Builder builder) {
  // Only `drm` is stored; build_any wraps it on the fly, so the builder's
  // captured state (per-arm traces can be large) is held once, not twice.
  const bool have = static_cast<bool>(builder);
  Entry entry;
  entry.drm = std::move(builder);
  add_entry(name, std::move(entry), have);
}

void ScenarioRegistry::add_any(const std::string& name, AnyBuilder builder) {
  const bool have = static_cast<bool>(builder);
  Entry entry;
  entry.any = std::move(builder);
  add_entry(name, std::move(entry), have);
}

std::vector<std::string> ScenarioRegistry::names(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : builders_)
    if (prefix_matches(name, prefix)) out.push_back(name);
  return out;
}

Scenario ScenarioRegistry::build(const std::string& name) const {
  const auto it = builders_.find(name);
  if (it == builders_.end())
    throw std::invalid_argument("ScenarioRegistry::build: unknown scenario " + name);
  if (!it->second.drm)
    throw std::invalid_argument("ScenarioRegistry::build: '" + name +
                                "' is a cross-domain scenario; use build_any");
  Scenario s = it->second.drm();
  s.id = name;
  return s;
}

AnyScenario ScenarioRegistry::build_any(const std::string& name) const {
  const auto it = builders_.find(name);
  if (it == builders_.end())
    throw std::invalid_argument("ScenarioRegistry::build_any: unknown scenario " + name);
  if (it->second.any) return it->second.any().renamed(name);
  return AnyScenario(it->second.drm()).renamed(name);
}

std::vector<Scenario> ScenarioRegistry::build_batch(const std::string& prefix) const {
  std::vector<Scenario> out;
  for (const std::string& name : names(prefix)) out.push_back(build(name));
  return out;
}

std::vector<AnyScenario> ScenarioRegistry::build_batch_any(const std::string& prefix) const {
  std::vector<AnyScenario> out;
  for (const std::string& name : names(prefix)) out.push_back(build_any(name));
  return out;
}

}  // namespace oal::core
