#include "core/scenario_registry.h"

#include <stdexcept>

namespace oal::core {

namespace {

/// Prefix match on '/'-segment boundaries: a prefix selects a whole name or
/// a name it extends as `prefix + "/..."` — never a sibling that merely
/// shares leading characters ("fig1" must not select "fig10/...").
bool prefix_matches(const std::string& name, const std::string& prefix) {
  if (prefix.empty()) return true;
  if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) return false;
  return name.size() == prefix.size() || prefix.back() == '/' || name[prefix.size()] == '/';
}

}  // namespace

void ScenarioRegistry::add(const std::string& name, Builder builder) {
  if (name.empty()) throw std::invalid_argument("ScenarioRegistry::add: empty name");
  if (!builder) throw std::invalid_argument("ScenarioRegistry::add: null builder for " + name);
  if (!builders_.emplace(name, std::move(builder)).second)
    throw std::invalid_argument("ScenarioRegistry::add: duplicate name " + name);
}

std::vector<std::string> ScenarioRegistry::names(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, builder] : builders_)
    if (prefix_matches(name, prefix)) out.push_back(name);
  return out;
}

Scenario ScenarioRegistry::build(const std::string& name) const {
  const auto it = builders_.find(name);
  if (it == builders_.end())
    throw std::invalid_argument("ScenarioRegistry::build: unknown scenario " + name);
  Scenario s = it->second();
  s.id = name;
  return s;
}

std::vector<Scenario> ScenarioRegistry::build_batch(const std::string& prefix) const {
  std::vector<Scenario> out;
  for (const std::string& name : names(prefix)) out.push_back(build(name));
  return out;
}

}  // namespace oal::core
