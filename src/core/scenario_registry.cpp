#include "core/scenario_registry.h"

#include <stdexcept>

namespace oal::core {

void ScenarioRegistry::add(const std::string& name, Builder builder) {
  if (name.empty()) throw std::invalid_argument("ScenarioRegistry::add: empty name");
  if (!builder) throw std::invalid_argument("ScenarioRegistry::add: null builder for " + name);
  if (!builders_.emplace(name, std::move(builder)).second)
    throw std::invalid_argument("ScenarioRegistry::add: duplicate name " + name);
}

std::vector<std::string> ScenarioRegistry::names(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, builder] : builders_)
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  return out;
}

Scenario ScenarioRegistry::build(const std::string& name) const {
  const auto it = builders_.find(name);
  if (it == builders_.end())
    throw std::invalid_argument("ScenarioRegistry::build: unknown scenario " + name);
  Scenario s = it->second();
  s.id = name;
  return s;
}

std::vector<Scenario> ScenarioRegistry::build_batch(const std::string& prefix) const {
  std::vector<Scenario> out;
  for (const std::string& name : names(prefix)) out.push_back(build(name));
  return out;
}

}  // namespace oal::core
