// Persistent content-addressed artifact store.
//
// Caches the products of expensive deterministic computation — exhaustive
// Oracle search results and pretrained model weights — across *processes*:
// a bench invoked twice with the same `--store` directory pays the
// 4940-config sweeps and offline training only once.  Everything in the
// store is derivable, so the store is a cache, never a source of truth:
// any file that fails validation (bad magic, version mismatch, truncation,
// checksum failure) is treated as absent and the caller recomputes.
//
// Addressing: file names embed an FNV-1a hash of the identifying content
// (platform fingerprint + objective for Oracle buckets; a caller-computed
// key for blobs), so distinct platforms/configurations never alias and a
// store directory can be shared freely — e.g. restored from a CI cache.
//
// File format (little-endian, fixed-width):
//   header  { magic u64, version u32, kind u32, count u64, checksum u64 }
//   payload — `count` records (Oracle) or `count` doubles (blob)
// checksum is FNV-1a over the payload bytes.  Writes go to a temp file in
// the same directory followed by an atomic rename, so readers never see a
// torn file and a crash mid-write leaves the previous version intact.
// Concurrent writers to the same bucket are last-writer-wins — acceptable
// for a cache of deterministic values (both writers hold identical bytes
// for any shared key).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace oal::core {

/// One memoized Oracle search: the full cache key (platform fingerprint,
/// the seven physical snippet fields, max_threads, objective) plus the
/// argmin configuration and its cost.  Fixed-width fields only.
struct OracleStoreEntry {
  std::uint64_t platform_fingerprint = 0;
  double fields[7] = {};
  std::int32_t max_threads = 0;
  std::int32_t objective = 0;
  std::int32_t config[4] = {};  ///< num_little, num_big, little_freq_idx, big_freq_idx
  double cost = 0.0;
};

class ArtifactStore {
 public:
  static constexpr std::uint64_t kMagic = 0x45524f54534c414fULL;  // "OALSTORE" LE
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kKindOracle = 1;
  static constexpr std::uint32_t kKindBlob = 2;

  /// Opens (creating if needed) the store rooted at `dir`.  Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Reads every valid Oracle bucket in the store.  Invalid files are
  /// silently skipped (they are someone's job to gc, not a read error).
  std::vector<OracleStoreEntry> load_oracle_entries() const;

  /// Merges entries into their per-(fingerprint, objective) bucket files,
  /// deduplicating by full key; existing entries win ties (both sides hold
  /// identical bytes for a shared key anyway).  Returns how many entries
  /// were newly added across all buckets.
  std::size_t merge_oracle_entries(const std::vector<OracleStoreEntry>& entries);

  /// Stores a named vector of doubles (model weights, scaler state, ...)
  /// under a caller-computed content key.  Overwrites atomically.
  void put_blob(const std::string& name, std::uint64_t key, const std::vector<double>& values);

  /// Fetches a blob; nullopt when absent or invalid.
  std::optional<std::vector<double>> get_blob(const std::string& name, std::uint64_t key) const;

  /// Per-file inventory for the inspect CLI and tests.
  struct FileInfo {
    std::string name;                  ///< basename within the store
    std::uint32_t kind = 0;            ///< kKindOracle / kKindBlob; 0 if unreadable
    bool valid = false;
    std::string detail;                ///< human-readable status / failure reason
    std::uint64_t payload_entries = 0; ///< Oracle records, or doubles for blobs
    std::uint64_t bytes = 0;           ///< file size on disk
  };
  std::vector<FileInfo> inspect() const;

  /// Deletes every invalid store file (leftover temp files included).
  /// Returns the number of files removed.
  std::size_t gc();

 private:
  std::string bucket_path(std::uint64_t fingerprint, std::int32_t objective) const;
  std::string blob_path(const std::string& name, std::uint64_t key) const;

  std::string dir_;
};

}  // namespace oal::core
