// Oracle construction and offline dataset generation (paper Section IV-A1).
//
// The Oracle maps a snippet to the configuration minimizing the chosen
// objective, found by exhaustively evaluating all 4940 configurations on the
// ground-truth platform model — the simulator equivalent of the paper's
// "each snippet ... executed at each configuration supported by the SoC".
// Oracle policies cannot ship (4940 evaluations / snippet and unbounded
// storage); they exist to (a) label IL training data and (b) normalize the
// energies reported in Table II and Figs. 3-4.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/features.h"
#include "core/models.h"
#include "core/objectives.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {

class ArtifactStore;

/// FNV-1a helpers shared by the Oracle cache keys, the artifact store's
/// content addresses, and the benches' pretrained-weight blob keys.
constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
void fnv1a_mix(std::uint64_t& h, std::uint64_t v);
std::uint64_t fnv1a_doubles(std::initializer_list<double> values);

/// Fingerprint of every PlatformParams field the power/performance model
/// reads — two platforms with equal fingerprints produce identical Oracles.
std::uint64_t platform_fingerprint(const soc::PlatformParams& p);

/// Single exhaustive pass returning both the argmin and its cost.  With a
/// pool, the sweep is sharded at *fixed geometry* (shard boundaries depend
/// only on the space size, never on pool width) and reduced in ascending
/// shard order with strict-< comparisons, so the pooled result — argmin
/// index included (lowest-index tie-break) — is bitwise identical to the
/// serial sweep.  Safe to call from inside a pool worker: sharding uses the
/// caller-participating ThreadPool::run_helping.
std::pair<soc::SocConfig, double> oracle_search(const soc::BigLittlePlatform& plat,
                                                const soc::SnippetDescriptor& s, Objective obj,
                                                common::ThreadPool* pool = nullptr);

/// Exhaustive ground-truth optimum for one snippet.
soc::SocConfig oracle_config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                             Objective obj);

/// Cost of the oracle configuration (used as the normalization denominator).
double oracle_cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                   Objective obj);

/// Thread-safe memoization of the exhaustive Oracle search, keyed by the
/// platform parameterization plus the snippet's physical descriptor (app_id
/// excluded — the Oracle depends only on workload physics) plus the
/// objective.  Benches whose arms evaluate identical traces (fig3/fig4:
/// one trace per app, shared by every controller arm) share one cache
/// behind a shared_ptr and pay the 4940-config search once per distinct
/// snippet instead of once per arm.
///
/// Concurrency: entries are sharded over 16 independently-locked stripes,
/// and cold keys are coalesced — the first thread to miss becomes the
/// owner and runs the search while concurrent missers of the *same* key
/// wait on its completion instead of duplicating the sweep.  Searches run
/// outside all stripe locks.
///
/// Persistence: constructed with an ArtifactStore, the cache preloads every
/// stored entry for this store (so a warm process performs zero searches
/// for previously-seen snippets) and flush() spills the in-memory entries
/// back.  Cached values come from execute_ideal (pure), so store round
/// trips preserve determinism bit for bit.  The platform fingerprint in
/// the key makes sharing one cache across differently-parameterized
/// platforms safe (entries never alias).
class OracleCache {
 public:
  struct Key {
    std::uint64_t platform_fingerprint;
    double fields[7];
    int max_threads;
    int objective;
    bool operator==(const Key& o) const;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    soc::SocConfig config;
    double cost = 0.0;
  };

  /// `store`, when non-null, backs the cache across processes: entries are
  /// preloaded on construction and spilled by flush() (and, best-effort, by
  /// the destructor).  `search_pool`, when non-null, shards each cold
  /// exhaustive search across the pool (bitwise identical to serial).
  explicit OracleCache(std::shared_ptr<ArtifactStore> store = nullptr,
                       common::ThreadPool* search_pool = nullptr);
  ~OracleCache();

  OracleCache(const OracleCache&) = delete;
  OracleCache& operator=(const OracleCache&) = delete;

  static Key key_of(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                    Objective obj);

  /// Memoized oracle_config.
  soc::SocConfig config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                        Objective obj);
  /// Memoized oracle_cost.
  double cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s, Objective obj);

  /// Spills every in-memory entry to the backing store (no-op without one).
  /// Returns the number of entries newly persisted.
  std::size_t flush();

  std::size_t size() const;
  std::size_t lookups() const { return lookups_.load(); }
  /// Exhaustive sweeps actually performed: one per distinct cold key, so
  /// deterministic run-to-run even under coalescing.
  std::size_t searches() const { return searches_.load(); }
  /// Lookups served without a sweep (memory hits + coalesced waits + store
  /// preloads).  Defined as lookups() - searches() so the value printed by
  /// benches never depends on thread timing.
  std::size_t hits() const { return lookups() - searches(); }
  /// Entries preloaded from the backing store at construction.
  std::size_t store_loaded() const { return store_loaded_; }

 private:
  /// A cold key's in-flight search: concurrent missers wait on `cv` while
  /// the owner sweeps; the result (or exception) is published through here.
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Entry result;
    std::exception_ptr error;
  };
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHash> in_flight;
  };
  static constexpr std::size_t kNumStripes = 16;

  Stripe& stripe_of(const Key& key) const;
  Entry lookup(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s, Objective obj);

  mutable Stripe stripes_[kNumStripes];
  std::shared_ptr<ArtifactStore> store_;
  common::ThreadPool* search_pool_ = nullptr;
  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> searches_{0};
  std::size_t store_loaded_ = 0;
};

/// Supervised IL dataset: policy states paired with Oracle configurations.
struct PolicyDataset {
  std::vector<common::Vec> states;
  std::vector<soc::SocConfig> labels;
};

/// Offline data-collection protocol: for each app, generate a snippet trace,
/// execute each snippet at `configs_per_snippet` random configurations plus
/// the Oracle configuration (with measurement noise, as a real profiling run
/// would see), and pair every observed state with the Oracle label.
/// Also returns the raw model samples for bootstrapping the online models.
struct OfflineData {
  PolicyDataset policy;
  std::vector<ModelSample> model_samples;
};
/// `cache`, when non-null, memoizes the per-snippet Oracle labeling — the
/// dominant cost when several arms collect over identical traces (identical
/// collect seeds), as in the ablation benches.  `thermal_aware` collects
/// policy states in the extended (thermal-telemetry) feature space, with the
/// neutral cool-device values — profiling runs unconstrained.  `pool`, when
/// non-null, labels the whole trace in parallel (one task per snippet);
/// every rng draw is made serially before labeling starts and every noisy
/// observation serially after, in the exact single-pass order, so the
/// returned dataset is bitwise identical with or without the pool.
OfflineData collect_offline_data(soc::BigLittlePlatform& plat,
                                 const std::vector<workloads::AppSpec>& apps, Objective obj,
                                 std::size_t snippets_per_app, std::size_t configs_per_snippet,
                                 common::Rng& rng, OracleCache* cache = nullptr,
                                 bool thermal_aware = false,
                                 common::ThreadPool* pool = nullptr);

/// Content address of an offline dataset blob: the dataset is a pure
/// function of the platform parameterization, the objective, the collection
/// geometry, the collect seed, and the feature space, so that is exactly
/// what the key hashes.  Benches that collect with identical arguments
/// (fig3/fig4/table2 all use MiBench, kEnergy, 40x6, seed 7, blind
/// features) share one blob.
std::uint64_t offline_data_key(const soc::PlatformParams& params, Objective obj,
                               std::size_t snippets_per_app, std::size_t configs_per_snippet,
                               std::uint64_t collect_seed, bool thermal_aware);

/// Flattens an offline dataset into the double vector ArtifactStore blobs
/// carry: a 3-double header {state_dim, num_states, num_samples}, then the
/// states (row-major), the labels (4 config knobs per state), and the model
/// samples (7 workload features + 4 config knobs + time/instructions/power).
/// Every field round-trips bitwise — doubles are stored verbatim and the
/// knob indices are small exact integers.
void export_offline_data(const OfflineData& data, std::vector<double>& out);

/// Inverse of export_offline_data.  Returns false (leaving `out` empty) on
/// any structural mismatch — the store is a cache, so the caller recollects.
bool import_offline_data(const std::vector<double>& in, OfflineData& out);

/// Knob-label encoding shared by the IL policy and dataset code:
/// {num_little-1, num_big, little_freq_idx, big_freq_idx}.
std::vector<std::size_t> labels_of(const soc::SocConfig& c);
soc::SocConfig config_of(const std::vector<std::size_t>& labels);

}  // namespace oal::core
