// Oracle construction and offline dataset generation (paper Section IV-A1).
//
// The Oracle maps a snippet to the configuration minimizing the chosen
// objective, found by exhaustively evaluating all 4940 configurations on the
// ground-truth platform model — the simulator equivalent of the paper's
// "each snippet ... executed at each configuration supported by the SoC".
// Oracle policies cannot ship (4940 evaluations / snippet and unbounded
// storage); they exist to (a) label IL training data and (b) normalize the
// energies reported in Table II and Figs. 3-4.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/features.h"
#include "core/models.h"
#include "core/objectives.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {

/// Exhaustive ground-truth optimum for one snippet.
soc::SocConfig oracle_config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                             Objective obj);

/// Cost of the oracle configuration (used as the normalization denominator).
double oracle_cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                   Objective obj);

/// Thread-safe memoization of the exhaustive Oracle search, keyed by the
/// platform parameterization plus the snippet's physical descriptor (app_id
/// excluded — the Oracle depends only on workload physics) plus the
/// objective.  Benches whose arms evaluate identical traces (fig3/fig4:
/// one trace per app, shared by every controller arm) share one cache
/// behind a shared_ptr and pay the 4940-config search once per distinct
/// snippet instead of once per arm.
///
/// Correctness notes: cached values come from execute_ideal (pure), so a
/// concurrent double-compute stores identical bytes and determinism is
/// preserved.  The platform fingerprint in the key makes sharing one cache
/// across differently-parameterized platforms safe (entries never alias).
class OracleCache {
 public:
  /// Memoized oracle_config.
  soc::SocConfig config(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s,
                        Objective obj);
  /// Memoized oracle_cost.
  double cost(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s, Objective obj);

  std::size_t size() const;
  std::size_t lookups() const { return lookups_.load(); }
  std::size_t hits() const { return hits_.load(); }

 private:
  struct Key {
    std::uint64_t platform_fingerprint;
    double fields[7];
    int max_threads;
    int objective;
    bool operator==(const Key& o) const;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    soc::SocConfig config;
    double cost = 0.0;
  };

  Entry lookup(const soc::BigLittlePlatform& plat, const soc::SnippetDescriptor& s, Objective obj);

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> hits_{0};
};

/// Supervised IL dataset: policy states paired with Oracle configurations.
struct PolicyDataset {
  std::vector<common::Vec> states;
  std::vector<soc::SocConfig> labels;
};

/// Offline data-collection protocol: for each app, generate a snippet trace,
/// execute each snippet at `configs_per_snippet` random configurations plus
/// the Oracle configuration (with measurement noise, as a real profiling run
/// would see), and pair every observed state with the Oracle label.
/// Also returns the raw model samples for bootstrapping the online models.
struct OfflineData {
  PolicyDataset policy;
  std::vector<ModelSample> model_samples;
};
/// `cache`, when non-null, memoizes the per-snippet Oracle labeling — the
/// dominant cost when several arms collect over identical traces (identical
/// collect seeds), as in the ablation benches.  `thermal_aware` collects
/// policy states in the extended (thermal-telemetry) feature space, with the
/// neutral cool-device values — profiling runs unconstrained.
OfflineData collect_offline_data(soc::BigLittlePlatform& plat,
                                 const std::vector<workloads::AppSpec>& apps, Objective obj,
                                 std::size_t snippets_per_app, std::size_t configs_per_snippet,
                                 common::Rng& rng, OracleCache* cache = nullptr,
                                 bool thermal_aware = false);

/// Knob-label encoding shared by the IL policy and dataset code:
/// {num_little-1, num_big, little_freq_idx, big_freq_idx}.
std::vector<std::size_t> labels_of(const soc::SocConfig& c);
soc::SocConfig config_of(const std::vector<std::size_t>& labels);

}  // namespace oal::core
