#include "core/models.h"

#include <cmath>
#include <stdexcept>

#include "ml/linreg.h"

namespace oal::core {

OnlineSocModels::OnlineSocModels(const soc::ConfigSpace& space, ml::RlsConfig rls_cfg)
    : fx_(space), time_model_(fx_.model_dim(), rls_cfg), power_model_(fx_.model_dim(), rls_cfg) {}

void OnlineSocModels::bootstrap(const std::vector<ModelSample>& samples, double ridge_alpha) {
  if (samples.empty()) throw std::invalid_argument("OnlineSocModels::bootstrap: no samples");
  std::vector<common::Vec> x;
  std::vector<double> log_tpi, log_p;
  x.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.time_s <= 0.0 || s.instructions <= 0.0 || s.power_w <= 0.0)
      throw std::invalid_argument("OnlineSocModels::bootstrap: non-positive sample");
    x.push_back(fx_.model_features(s.workload, s.config));
    log_tpi.push_back(std::log(s.time_s / s.instructions));
    log_p.push_back(std::log(s.power_w));
  }
  // The basis already contains an explicit 1.0 term, so the intercept is
  // folded into the weights (fit_intercept=false keeps dims aligned with RLS).
  ml::RidgeRegression rt(ridge_alpha), rp(ridge_alpha);
  rt.fit(x, log_tpi, /*fit_intercept=*/false);
  rp.fit(x, log_p, /*fit_intercept=*/false);
  time_model_.set_weights(rt.coefficients());
  power_model_.set_weights(rp.coefficients());
  bootstrapped_ = true;
}

double OnlineSocModels::update(const ModelSample& s) {
  if (s.time_s <= 0.0 || s.instructions <= 0.0 || s.power_w <= 0.0)
    throw std::invalid_argument("OnlineSocModels::update: non-positive sample");
  const common::Vec phi = fx_.model_features(s.workload, s.config);
  const double innovation = time_model_.update(phi, std::log(s.time_s / s.instructions));
  power_model_.update(phi, std::log(s.power_w));
  return innovation;
}

double OnlineSocModels::predict_time_s(const WorkloadFeatures& w, const soc::SocConfig& c,
                                       double instructions) const {
  return std::exp(time_model_.predict(fx_.model_features(w, c))) * instructions;
}

double OnlineSocModels::predict_power_w(const WorkloadFeatures& w, const soc::SocConfig& c) const {
  return std::exp(power_model_.predict(fx_.model_features(w, c)));
}

double OnlineSocModels::predict_energy_j(const WorkloadFeatures& w, const soc::SocConfig& c,
                                         double instructions) const {
  const common::Vec phi = fx_.model_features(w, c);
  return std::exp(time_model_.predict(phi) + power_model_.predict(phi)) * instructions;
}

double OnlineSocModels::predict_log_cost(const WorkloadFeatures& w, const soc::SocConfig& c) const {
  const common::Vec phi = fx_.model_features(w, c);
  return time_model_.predict(phi) + power_model_.predict(phi);
}

double OnlineSocModels::update(const ModelSample& s, common::Vec& phi) {
  if (s.time_s <= 0.0 || s.instructions <= 0.0 || s.power_w <= 0.0)
    throw std::invalid_argument("OnlineSocModels::update: non-positive sample");
  fx_.model_features_into(s.workload, s.config, phi);
  const double innovation = time_model_.update(phi, std::log(s.time_s / s.instructions));
  power_model_.update(phi, std::log(s.power_w));
  return innovation;
}

double OnlineSocModels::predict_power_w(const WorkloadFeatures& w, const soc::SocConfig& c,
                                        common::Vec& phi) const {
  fx_.model_features_into(w, c, phi);
  return std::exp(power_model_.predict(phi));
}

double OnlineSocModels::predict_log_cost(const WorkloadFeatures& w, const soc::SocConfig& c,
                                         common::Vec& phi) const {
  fx_.model_features_into(w, c, phi);
  return time_model_.predict(phi) + power_model_.predict(phi);
}

}  // namespace oal::core
