// Machine-readable experiment results (JSON lines).
//
// Engine-driven benches accept `--json <path>` and append one record per
// scenario:
//     {"bench":"fig5","id":"fig5/SharkDash/enmpc","metrics":{"gpu_energy_j":...}}
// so perf/accuracy trajectories can be tracked across PRs without scraping
// stdout tables.  Only AnyResult metrics are serialized — payloads stay
// in-process.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "core/domain.h"

namespace oal::core {

/// Value of a "--json <path>" argument pair; empty string when absent.
std::string json_path_arg(int argc, char** argv);

/// Append-per-call JSONL sink.  Constructing with an empty path disables all
/// writes (so benches can call it unconditionally); a bad path throws.
///
/// The default open mode is kAppend, matching the append-per-call contract
/// across processes: several benches pointed at one --json path each add
/// their records instead of the last bench truncating the earlier ones.
/// Pass kTruncate to start a file over (e.g. when refreshing a checked-in
/// baseline in place).
class JsonlWriter {
 public:
  enum class Mode { kAppend, kTruncate };

  explicit JsonlWriter(const std::string& path, Mode mode = Mode::kAppend);

  bool enabled() const { return out_.is_open(); }

  void write(const std::string& bench, const AnyResult& result);
  void write(const std::string& bench, const std::vector<AnyResult>& results);
  /// For benches that keep domain results rather than AnyResults.
  void write_metrics(const std::string& bench, const std::string& id, const Metrics& metrics);

 private:
  std::ofstream out_;
};

}  // namespace oal::core
