// Reference CPU frequency governors (paper Section I: "interactive and
// on-demand governors increase (or decrease) operating frequency of cores
// when the utilization of the cores goes above (or below) a predefined
// threshold").  These are the heuristics the learned policies improve upon;
// they keep all cores active and manage per-cluster frequency only.
#pragma once

#include "core/controller.h"

namespace oal::core {

/// Linux-style ondemand: jump to max above the up-threshold, otherwise scale
/// frequency proportionally to utilization.
class OndemandGovernor : public DrmController {
 public:
  explicit OndemandGovernor(const soc::ConfigSpace& space, double up_threshold = 0.90,
                            double target_load = 0.80);
  std::string name() const override { return "ondemand"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;

 private:
  const soc::ConfigSpace* space_;
  double up_threshold_;
  double target_load_;
};

/// Interactive-style: ramp quickly on load, decay slowly.
class InteractiveGovernor : public DrmController {
 public:
  explicit InteractiveGovernor(const soc::ConfigSpace& space, double hispeed_load = 0.85,
                               int ramp_up_steps = 4, int ramp_down_steps = 1);
  std::string name() const override { return "interactive"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;

 private:
  const soc::ConfigSpace* space_;
  double hispeed_load_;
  int ramp_up_steps_;
  int ramp_down_steps_;
};

/// Pin everything at maximum.
class PerformanceGovernor : public DrmController {
 public:
  explicit PerformanceGovernor(const soc::ConfigSpace& space);
  std::string name() const override { return "performance"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;

 private:
  const soc::ConfigSpace* space_;
};

/// Pin everything at minimum (all cores on, lowest frequencies).
class PowersaveGovernor : public DrmController {
 public:
  std::string name() const override { return "powersave"; }
  soc::SocConfig step(const soc::SnippetResult& result, const soc::SocConfig& executed) override;
};

/// Hold a fixed configuration forever (useful as an experimental control).
class StaticController : public DrmController {
 public:
  explicit StaticController(soc::SocConfig c) : config_(c) {}
  std::string name() const override { return "static"; }
  soc::SocConfig step(const soc::SnippetResult&, const soc::SocConfig&) override { return config_; }

 private:
  soc::SocConfig config_;
};

}  // namespace oal::core
