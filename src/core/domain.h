// Domain-generic scenarios for ExperimentEngine.
//
// The engine's determinism contract — a parallel batch is bitwise-identical
// to a serial one because every scenario owns its platform and Rng stream —
// is not specific to CPU DRM.  This header type-erases "one experiment run"
// behind AnyScenario/AnyResult so GPU-ENMPC frame runs, NoC sweep points,
// and thermally-constrained DRM runs are first-class batch members next to
// the original big.LITTLE scenarios:
//
//  * AnyScenario = (id, run closure).  The converting constructors from the
//    domain-typed scenario structs build closures that construct the
//    scenario's private platform (from params + noise seed) and private
//    common::Rng (from Scenario::seed) *inside the worker*, so the
//    per-scenario-ownership guarantee holds for every domain.
//  * AnyResult = (id, named scalar metrics, type-erased payload).  Metrics
//    are the machine-readable cross-domain surface (JSONL serialization,
//    bitwise determinism tests); the payload keeps the full domain result
//    (RunResult, GpuRunResult, ...) for domain-aware reporting.
//
// New domains need no engine changes: either add a scenario struct + wrapper
// here, or hand AnyScenario a custom closure directly (the closure is then
// responsible for the own-your-state determinism discipline).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/gpu_controller.h"
#include "gpu/gpu_model.h"
#include "noc/simulator.h"
#include "soc/thermal_platform.h"

namespace oal::core {

// Metric/Metrics (named scalar run outputs) live in core/experiment.h so
// Scenario::extra_metrics can name them without a circular include.

/// Standard metric set of a DRM RunResult (energy ratio only when Oracle
/// energies were recorded).  Shared by the DRM/thermal wrappers and by
/// benches that serialize Scenario-level batches.
Metrics drm_metrics(const RunResult& run);

/// Type-erased result of one scenario run.
class AnyResult {
 public:
  AnyResult() = default;

  template <typename T>
  AnyResult(std::string id, T payload, Metrics metrics)
      : id_(std::move(id)),
        metrics_(std::move(metrics)),
        payload_(std::make_shared<const T>(std::move(payload))),
        type_(&typeid(T)) {}

  const std::string& id() const { return id_; }
  const Metrics& metrics() const { return metrics_; }

  /// Metric value by name; throws std::invalid_argument when absent.
  double metric(const std::string& name) const;
  bool has_metric(const std::string& name) const;

  template <typename T>
  bool holds() const {
    return type_ != nullptr && *type_ == typeid(T);
  }

  /// Domain-typed payload; throws std::logic_error on a type mismatch.
  template <typename T>
  const T& as() const {
    if (!holds<T>())
      throw std::logic_error("AnyResult::as: '" + id_ + "' does not hold the requested type");
    return *static_cast<const T*>(payload_.get());
  }

 private:
  friend class AnyScenario;  // renamed(): registry names override payload ids

  std::string id_;
  Metrics metrics_;
  std::shared_ptr<const void> payload_;
  const std::type_info* type_ = nullptr;
};

// ---------------------------------------------------------------------------
// GPU-ENMPC domain (Fig. 2 / Fig. 5 substrate).
// ---------------------------------------------------------------------------

struct GpuScenario;

/// Scenario-private execution state handed to the GPU controller factory.
struct GpuScenarioContext {
  const GpuScenario& scenario;
  gpu::GpuPlatform& platform;  ///< this scenario's platform instance
  common::Rng& rng;            ///< this scenario's deterministic stream
};

struct GpuControllerInstance {
  std::unique_ptr<GpuController> controller;
  std::shared_ptr<const void> deps;
};

using GpuControllerFactory = std::function<GpuControllerInstance(GpuScenarioContext&)>;

/// One frame-loop run: platform params x frame trace x controller factory x
/// seed, mirroring the DRM Scenario contract (private platform + Rng).
struct GpuScenario {
  std::string id;
  gpu::GpuParams platform;
  std::uint64_t platform_noise_seed = 77;
  double fps_target = 30.0;
  std::vector<gpu::FrameDescriptor> trace;
  GpuControllerFactory make_controller;
  gpu::GpuConfig initial{9, 4};
  std::uint64_t seed = 0;
  /// Runs in the worker after the trace, while the controller is alive.
  std::function<void(GpuController&, const GpuRunResult&)> on_complete;
};

// ---------------------------------------------------------------------------
// NoC domain (Section III-C sweeps).
// ---------------------------------------------------------------------------

/// One NoC design/traffic point: packet-level simulation and/or analytical
/// evaluation of a traffic matrix on a mesh.
struct NocScenario {
  std::string id;
  std::size_t mesh_cols = 8;
  std::size_t mesh_rows = 8;
  noc::NocParams params;
  noc::TrafficMatrix traffic{64};
  noc::SimConfig sim;
  bool run_simulation = true;
  bool run_analytical = true;
};

struct NocRunResult {
  noc::SimResult sim;
  noc::AnalyticalLatency analytical;
};

// ---------------------------------------------------------------------------
// Thermally-constrained DRM domain (Section III-A coupled into the DRM loop).
// ---------------------------------------------------------------------------

/// A DRM scenario executed under a thermal power budget: a scenario-private
/// soc::ThermalSocAdapter advances the RC network from the platform's power
/// trace and clamps every controller decision to the sustainable/transient
/// budget (DrmRunner arbiter/observer hooks).  The adapter's telemetry is
/// published through the runner's read-only channel, so thermal-aware
/// controllers (OnlineIlConfig::thermal_aware, thermal-aware RL) observe
/// temperatures and budget headroom; blind controllers ignore the channel
/// and stay bitwise identical to the pre-telemetry behavior.
struct ThermalDrmScenario {
  Scenario base;
  soc::ThermalConstraintParams thermal;
};

struct ThermalRunResult {
  RunResult run;
  std::size_t clamped_snippets = 0;  ///< decisions changed by the budgeter
  double peak_junction_c = 0.0;
  double peak_skin_c = 0.0;
  double final_budget_w = 0.0;
};

/// A GPU-ENMPC frame loop executed under a thermal power budget: a
/// scenario-private soc::ThermalGpuAdapter maps frame energies onto the RC
/// network's GPU + PCB nodes and clamps controller decisions to the
/// skin/junction-derived budget (GpuRunner arbiter/observer hooks).  The
/// adapter's telemetry is published through the runner's read-only channel,
/// so budget-constrained NMPC controllers (NmpcConfig::thermal_aware)
/// observe the budget they will be held to; blind controllers ignore the
/// channel and stay bitwise identical to the pre-telemetry behavior.
struct ThermalGpuScenario {
  GpuScenario base;
  soc::ThermalGpuConstraintParams thermal;
};

struct ThermalGpuRunResult {
  GpuRunResult run;
  std::size_t clamped_frames = 0;  ///< decisions changed by the budgeter
  double peak_junction_c = 0.0;
  double peak_skin_c = 0.0;
  double final_budget_w = 0.0;
};

// ---------------------------------------------------------------------------
// The type-erased scenario.
// ---------------------------------------------------------------------------

class AnyScenario {
 public:
  AnyScenario() = default;

  /// Custom-domain escape hatch: the closure must follow the engine's
  /// determinism discipline (construct all mutable state inside the call).
  AnyScenario(std::string id, std::function<AnyResult()> run);

  // Converting wrappers for the built-in domains (implicit by design so
  // mixed batches can be brace-listed).
  AnyScenario(Scenario s);            // NOLINT(google-explicit-constructor)
  AnyScenario(GpuScenario s);         // NOLINT(google-explicit-constructor)
  AnyScenario(NocScenario s);         // NOLINT(google-explicit-constructor)
  AnyScenario(ThermalDrmScenario s);  // NOLINT(google-explicit-constructor)
  AnyScenario(ThermalGpuScenario s);  // NOLINT(google-explicit-constructor)

  const std::string& id() const { return id_; }
  bool runnable() const { return static_cast<bool>(run_); }

  /// Copy under a different id; run() results carry the new id too.  This is
  /// how ScenarioRegistry imposes its catalog name on a built scenario (the
  /// same contract as build() overriding Scenario::id).
  AnyScenario renamed(std::string id) const;

  /// Executes the scenario in the calling thread.
  AnyResult run() const;

 private:
  std::string id_;
  std::function<AnyResult()> run_;
};

}  // namespace oal::core
