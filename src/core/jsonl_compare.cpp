#include "core/jsonl_compare.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace oal::core {

namespace {

/// Minimal recursive-descent parser for the writer's record subset.
class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  JsonlRecord record() {
    JsonlRecord rec;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        const std::string key = string_value();
        expect(':');
        if (key == "bench") {
          rec.bench = string_value();
        } else if (key == "id") {
          rec.id = string_value();
        } else if (key == "metrics") {
          metrics_object(rec);
        } else {
          fail("unknown record key '" + key + "'");
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after record");
    return rec;
  }

 private:
  void metrics_object(JsonlRecord& rec) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string name = string_value();
      expect(':');
      skip_ws();
      if (s_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
        rec.null_metrics.push_back(name);
      } else {
        rec.metrics.emplace_back(name, number_value());
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += unicode_escape(); break;
        default: fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  /// \uXXXX, emitted as UTF-8 (the writer only produces control characters,
  /// but decode the full BMP for robustness; surrogate pairs are out of
  /// scope for bench ids and rejected).
  std::string unicode_escape() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escapes are not supported");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  double number_value() {
    // Scan the JSON number grammar ourselves instead of handing strtod the
    // raw tail: strtod also accepts inf/nan/hex/leading-'+' spellings JSON
    // forbids, and an inf-vs-inf comparison downstream would yield a NaN
    // diff that passes every tolerance check.
    skip_ws();
    const std::size_t start = pos_;
    const auto digits = [&] {
      const std::size_t d = pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      return pos_ > d;
    };
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (!digits()) fail("expected a number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("expected digits after decimal point");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) fail("expected exponent digits");
    }
    // The scanner above already validated [start, pos_) against the strict
    // JSON number grammar, so strtod cannot stop early or see garbage here.
    // oal-lint: allow(unchecked-parse)
    const double v = std::strtod(std::string(s_, start, pos_ - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("number overflows double");  // e.g. 1e999
    return v;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' || s_[pos_] == '\n'))
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) {
    // pos_ is a byte offset (std::size_t): to_string is exact on integers,
    // the float-precision hazard does not apply.
    // oal-lint: allow(float-format)
    const std::string at = std::to_string(pos_);
    throw std::invalid_argument("parse_jsonl_record: " + what + " at offset " + at);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonlRecord parse_jsonl_record(const std::string& line) { return Parser(line).record(); }

std::vector<JsonlRecord> read_jsonl(std::istream& in) {
  std::vector<JsonlRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(parse_jsonl_record(line));
  }
  return out;
}

std::vector<JsonlRecord> read_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_jsonl_file: cannot open '" + path + "'");
  return read_jsonl(in);
}

namespace {

/// '*'-terminated filter elements match by prefix, everything else exactly.
bool metric_selector_matches(const std::string& selector, const std::string& name) {
  if (!selector.empty() && selector.back() == '*')
    return name.compare(0, selector.size() - 1, selector, 0, selector.size() - 1) == 0;
  return name == selector;
}

}  // namespace

JsonlCompareResult compare_jsonl(const std::vector<JsonlRecord>& baseline,
                                 const std::vector<JsonlRecord>& current,
                                 const JsonlCompareOptions& opts) {
  JsonlCompareResult res;
  const auto key_of = [](const JsonlRecord& r) { return r.bench + "\x1f" + r.id; };

  // Validate the metric filter and the tolerance overrides against every
  // metric name the baseline mentions (finite or null): a name that matches
  // nothing is a typo that would silently gate nothing / override nothing.
  const auto known_metric = [&](const std::string& selector) {
    for (const JsonlRecord& r : baseline) {
      for (const Metric& m : r.metrics)
        if (metric_selector_matches(selector, m.first)) return true;
      for (const std::string& n : r.null_metrics)
        if (metric_selector_matches(selector, n)) return true;
    }
    return false;
  };
  for (const std::string& selector : opts.metrics)
    if (!known_metric(selector))
      res.issues.push_back("--metrics selector '" + selector +
                           "' matches no metric in the baseline");
  // Overrides are applied by exact name lookup, so validate them the same
  // way — a prefix-form key ("sim_*") would pass the selector check yet
  // silently override nothing.
  const auto known_exact = [&](const std::string& name) {
    for (const JsonlRecord& r : baseline) {
      for (const Metric& m : r.metrics)
        if (m.first == name) return true;
      for (const std::string& n : r.null_metrics)
        if (n == name) return true;
    }
    return false;
  };
  for (const auto* overrides : {&opts.rel_tol_for, &opts.abs_tol_for})
    for (const auto& [name, tol] : *overrides) {
      (void)tol;
      if (!known_exact(name))
        res.issues.push_back("tolerance override for unknown metric '" + name + "'");
    }

  const auto selected = [&](const std::string& name) {
    if (opts.metrics.empty()) return true;
    for (const std::string& selector : opts.metrics)
      if (metric_selector_matches(selector, name)) return true;
    return false;
  };
  const auto flag_duplicates = [&](const std::vector<JsonlRecord>& records, const char* which) {
    std::map<std::string, std::size_t> seen;
    for (const JsonlRecord& r : records) {
      if (++seen[key_of(r)] == 2)
        res.issues.push_back(std::string("duplicate record in ") + which + ": bench='" + r.bench +
                             "' id='" + r.id + "'");
    }
  };
  flag_duplicates(baseline, "baseline");
  flag_duplicates(current, "current");

  std::map<std::string, const JsonlRecord*> cur_by_key;
  for (const JsonlRecord& r : current) cur_by_key[key_of(r)] = &r;

  std::map<std::string, bool> base_keys;
  for (const JsonlRecord& r : baseline) base_keys[key_of(r)] = true;
  for (const JsonlRecord& r : current)
    if (!base_keys.count(key_of(r))) ++res.records_only_in_current;

  for (const JsonlRecord& base : baseline) {
    const auto it = cur_by_key.find(key_of(base));
    if (it == cur_by_key.end()) {
      res.issues.push_back("missing record: bench='" + base.bench + "' id='" + base.id + "'");
      continue;
    }
    const JsonlRecord& cur = *it->second;
    ++res.records_compared;
    // A null (non-finite) metric in the baseline cannot be gated — it would
    // be silently excluded from every future comparison, which is exactly
    // backwards for a metric that was broken on the day the baseline was
    // refreshed.  Surface it as a failure so the baseline gets fixed.
    for (const std::string& name : base.null_metrics)
      if (selected(name))
        res.issues.push_back(base.id + ": baseline metric '" + name +
                             "' is null (non-finite) — ungatable; fix the bench or refresh the "
                             "baseline");
    for (const Metric& bm : base.metrics) {
      if (!selected(bm.first)) continue;
      if (!cur.metrics.empty()) {
        // Metrics keep insertion order; look up by name.
        const Metric* found = nullptr;
        for (const Metric& cm : cur.metrics)
          if (cm.first == bm.first) {
            found = &cm;
            break;
          }
        if (found) {
          ++res.metrics_compared;
          const double diff = std::abs(found->second - bm.second);
          const auto rit = opts.rel_tol_for.find(bm.first);
          const auto ait = opts.abs_tol_for.find(bm.first);
          const double rel = rit != opts.rel_tol_for.end() ? rit->second : opts.rel_tol;
          const double abs = ait != opts.abs_tol_for.end() ? ait->second : opts.abs_tol;
          const double tol = std::max(abs, rel * std::abs(bm.second));
          if (diff > tol) {
            std::ostringstream msg;
            msg.precision(10);
            msg << base.id << ": " << bm.first << " drifted " << bm.second << " -> "
                << found->second << " (|diff| " << diff << " > tol " << tol << ")";
            res.issues.push_back(msg.str());
          }
          continue;
        }
      }
      res.issues.push_back(base.id + ": metric '" + bm.first + "' missing from current run");
    }
  }
  return res;
}

}  // namespace oal::core
