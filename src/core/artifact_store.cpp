#include "core/artifact_store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <system_error>

#include <unistd.h>

namespace fs = std::filesystem;

namespace oal::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_bytes(const unsigned char* p, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void append_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void append_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void append_i32(std::vector<unsigned char>& out, std::int32_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
}

void append_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

/// Bounds-checked little-endian reader; `ok` latches false on any overrun.
struct Reader {
  const unsigned char* p;
  std::size_t n;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    if (pos + 8 > n) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::uint32_t u32() {
    if (pos + 4 > n) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kOracleRecordBytes = 96;  // 8 + 7*8 + 4 + 4 + 4*4 + 8

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

void serialize_entry(std::vector<unsigned char>& out, const OracleStoreEntry& e) {
  append_u64(out, e.platform_fingerprint);
  for (double f : e.fields) append_f64(out, f);
  append_i32(out, e.max_threads);
  append_i32(out, e.objective);
  for (std::int32_t c : e.config) append_i32(out, c);
  append_f64(out, e.cost);
}

OracleStoreEntry deserialize_entry(Reader& r) {
  OracleStoreEntry e;
  e.platform_fingerprint = r.u64();
  for (double& f : e.fields) f = r.f64();
  e.max_threads = r.i32();
  e.objective = r.i32();
  for (std::int32_t& c : e.config) c = r.i32();
  e.cost = r.f64();
  return e;
}

/// The identifying prefix of an entry's bytes (everything but config+cost),
/// used as the dedup key during merges.
std::string entry_key_bytes(const OracleStoreEntry& e) {
  std::vector<unsigned char> buf;
  append_u64(buf, e.platform_fingerprint);
  for (double f : e.fields) append_f64(buf, f);
  append_i32(buf, e.max_threads);
  append_i32(buf, e.objective);
  return std::string(buf.begin(), buf.end());
}

struct ParsedFile {
  bool valid = false;
  std::uint32_t kind = 0;
  std::uint64_t count = 0;
  std::vector<unsigned char> payload;
  std::string detail;
};

ParsedFile parse_file(const std::string& path) {
  ParsedFile out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.detail = "unreadable";
    return out;
  }
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderBytes) {
    out.detail = "truncated header";
    return out;
  }
  Reader r{bytes.data(), bytes.size()};
  const std::uint64_t magic = r.u64();
  const std::uint32_t version = r.u32();
  out.kind = r.u32();
  out.count = r.u64();
  const std::uint64_t checksum = r.u64();
  if (magic != ArtifactStore::kMagic) {
    out.detail = "bad magic";
    return out;
  }
  if (version != ArtifactStore::kVersion) {
    out.detail = "version mismatch (file v" + std::to_string(version) + ", expected v" +
                 std::to_string(ArtifactStore::kVersion) + ")";
    return out;
  }
  std::size_t expected = 0;
  if (out.kind == ArtifactStore::kKindOracle) {
    expected = static_cast<std::size_t>(out.count) * kOracleRecordBytes;
  } else if (out.kind == ArtifactStore::kKindBlob) {
    expected = static_cast<std::size_t>(out.count) * 8;
  } else {
    out.detail = "unknown kind " + std::to_string(out.kind);
    return out;
  }
  if (bytes.size() - kHeaderBytes != expected) {
    out.detail = "truncated payload (" + std::to_string(bytes.size() - kHeaderBytes) + " of " +
                 std::to_string(expected) + " bytes)";
    return out;
  }
  if (fnv1a_bytes(bytes.data() + kHeaderBytes, expected) != checksum) {
    out.detail = "checksum mismatch";
    return out;
  }
  out.payload.assign(bytes.begin() + kHeaderBytes, bytes.end());
  out.valid = true;
  out.detail = "ok";
  return out;
}

/// Writes header + payload to `path` via temp-file + atomic rename.
void write_file_atomic(const std::string& path, std::uint32_t kind, std::uint64_t count,
                       const std::vector<unsigned char>& payload) {
  std::vector<unsigned char> buf;
  buf.reserve(kHeaderBytes + payload.size());
  append_u64(buf, ArtifactStore::kMagic);
  append_u32(buf, ArtifactStore::kVersion);
  append_u32(buf, kind);
  append_u64(buf, count);
  append_u64(buf, fnv1a_bytes(payload.data(), payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());

  // Unique temp name per writer (pid + process-wide serial): concurrent
  // writers to one target must not share a temp file, or the loser's rename
  // fails once the winner's rename has moved it away.  Leftover temps from a
  // crash are still *.tmp* files, which gc() sweeps.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_serial.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ArtifactStore: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("ArtifactStore: short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw std::runtime_error("ArtifactStore: rename to " + path + ": " + ec.message());
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("ArtifactStore: cannot create " + dir_ + ": " + ec.message());
}

std::string ArtifactStore::bucket_path(std::uint64_t fingerprint, std::int32_t objective) const {
  std::vector<unsigned char> id;
  append_u64(id, fingerprint);
  append_i32(id, objective);
  return dir_ + "/oracle-" + hex16(fnv1a_bytes(id.data(), id.size())) + ".bin";
}

std::string ArtifactStore::blob_path(const std::string& name, std::uint64_t key) const {
  return dir_ + "/blob-" + name + "-" + hex16(key) + ".bin";
}

std::vector<OracleStoreEntry> ArtifactStore::load_oracle_entries() const {
  std::vector<OracleStoreEntry> out;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file()) continue;
    const ParsedFile f = parse_file(de.path().string());
    if (!f.valid || f.kind != kKindOracle) continue;
    Reader r{f.payload.data(), f.payload.size()};
    for (std::uint64_t i = 0; i < f.count; ++i) out.push_back(deserialize_entry(r));
  }
  return out;
}

std::size_t ArtifactStore::merge_oracle_entries(const std::vector<OracleStoreEntry>& entries) {
  // Group incoming entries by bucket file.
  std::map<std::string, std::vector<OracleStoreEntry>> by_bucket;
  for (const auto& e : entries) by_bucket[bucket_path(e.platform_fingerprint, e.objective)].push_back(e);

  std::size_t added = 0;
  for (auto& [path, incoming] : by_bucket) {
    // Existing entries win ties: for a deterministic computation both sides
    // hold identical bytes anyway, and keeping the old record makes a merge
    // into an already-complete bucket a byte-level no-op candidate.
    std::map<std::string, OracleStoreEntry> merged;
    const ParsedFile f = parse_file(path);
    if (f.valid && f.kind == kKindOracle) {
      Reader r{f.payload.data(), f.payload.size()};
      for (std::uint64_t i = 0; i < f.count; ++i) {
        OracleStoreEntry e = deserialize_entry(r);
        merged.emplace(entry_key_bytes(e), e);
      }
    }
    const std::size_t before = merged.size();
    for (const auto& e : incoming) merged.emplace(entry_key_bytes(e), e);
    if (merged.size() == before && f.valid) continue;  // nothing new, keep file untouched
    added += merged.size() - before;

    std::vector<unsigned char> payload;
    payload.reserve(merged.size() * kOracleRecordBytes);
    for (const auto& [key, e] : merged) serialize_entry(payload, e);  // key-sorted: deterministic
    write_file_atomic(path, kKindOracle, merged.size(), payload);
  }
  return added;
}

void ArtifactStore::put_blob(const std::string& name, std::uint64_t key,
                             const std::vector<double>& values) {
  std::vector<unsigned char> payload;
  payload.reserve(values.size() * 8);
  for (double v : values) append_f64(payload, v);
  write_file_atomic(blob_path(name, key), kKindBlob, values.size(), payload);
}

std::optional<std::vector<double>> ArtifactStore::get_blob(const std::string& name,
                                                           std::uint64_t key) const {
  const ParsedFile f = parse_file(blob_path(name, key));
  if (!f.valid || f.kind != kKindBlob) return std::nullopt;
  std::vector<double> out;
  out.reserve(f.count);
  Reader r{f.payload.data(), f.payload.size()};
  for (std::uint64_t i = 0; i < f.count; ++i) out.push_back(r.f64());
  return out;
}

std::vector<ArtifactStore::FileInfo> ArtifactStore::inspect() const {
  std::vector<FileInfo> out;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file()) continue;
    FileInfo info;
    info.name = de.path().filename().string();
    std::error_code sec;
    info.bytes = static_cast<std::uint64_t>(fs::file_size(de.path(), sec));
    const ParsedFile f = parse_file(de.path().string());
    info.kind = f.kind;
    info.valid = f.valid;
    info.detail = f.detail;
    info.payload_entries = f.valid ? f.count : 0;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.name < b.name; });
  return out;
}

std::size_t ArtifactStore::gc() {
  std::size_t removed = 0;
  for (const auto& info : inspect()) {
    if (info.valid) continue;
    std::error_code ec;
    if (fs::remove(fs::path(dir_) / info.name, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace oal::core
