// Named scenario catalog across every experiment domain.
//
// Benches and examples describe their experiment arms as named scenario
// builders ("fig4/offline/FFT/il", "fig5/SharkDash/enmpc",
// "model/0/1", ...) registered here, then hand a prefix-selected batch to
// ExperimentEngine.  Names use '/'-separated segments so one registry can
// hold several scenario families and a batch can be cut by family prefix;
// builders run lazily at build time so registering a large catalog stays
// free (and --list never pays for a run).  Built scenarios get their
// registry name as their id, which is also the deterministic result order
// of ExperimentEngine::run_batch / run_any.
//
// Two builder flavors share one namespace:
//  * Builder (DRM-typed) keeps the copy-free run_batch path for all-DRM
//    catalogs and remains buildable through every accessor;
//  * AnyBuilder catalogs any domain core/domain.h erases (GPU-ENMPC frame
//    loops, NoC traffic points, thermally-constrained runs, custom
//    closures) and is what the shared bench driver consumes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/domain.h"
#include "core/experiment.h"

namespace oal::core {

class ScenarioRegistry {
 public:
  using Builder = std::function<Scenario()>;        ///< DRM-typed arm
  using AnyBuilder = std::function<AnyScenario()>;  ///< any-domain arm

  /// Registers a DRM builder under a unique name (throws on duplicates —
  /// the namespace is shared with add_any).  Entries registered here are
  /// reachable through both the Scenario and the AnyScenario accessors.
  void add(const std::string& name, Builder builder);

  /// Registers a cross-domain builder under a unique name.  Entries
  /// registered here are reachable through build_any()/build_batch_any()
  /// only; build() on them throws (there is no Scenario to return).
  void add_any(const std::string& name, AnyBuilder builder);

  bool contains(const std::string& name) const { return builders_.count(name) != 0; }
  std::size_t size() const { return builders_.size(); }

  /// All registered names selected by `prefix`, lexicographically sorted.
  /// Matching respects '/'-segment boundaries: `prefix` selects the name
  /// equal to it and names extending it as `prefix + "/..."` ("fig1" selects
  /// "fig1" and "fig1/a" but never "fig10/a"); a prefix ending in '/' plainly
  /// string-matches.  Empty selects everything.
  std::vector<std::string> names(const std::string& prefix = "") const;

  /// Builds one DRM scenario; its id is set to the registry name.  Throws
  /// std::invalid_argument for unknown names and for names registered
  /// through add_any.
  Scenario build(const std::string& name) const;

  /// Builds one scenario of any domain; its id is set to the registry name.
  /// Works for both builder flavors (DRM entries are wrapped on the fly).
  AnyScenario build_any(const std::string& name) const;

  /// Builds every DRM scenario `prefix` selects (same segment-boundary rules
  /// as names()), in name order — ready for ExperimentEngine::run_batch.
  std::vector<Scenario> build_batch(const std::string& prefix = "") const;

  /// Builds every scenario `prefix` selects regardless of domain, in name
  /// order — ready for ExperimentEngine::run_any.
  std::vector<AnyScenario> build_batch_any(const std::string& prefix = "") const;

 private:
  struct Entry {
    Builder drm;     ///< set for add() registrations (build_any wraps on the fly)
    AnyBuilder any;  ///< set for add_any() registrations
  };

  void add_entry(const std::string& name, Entry entry, bool have_builder);

  std::map<std::string, Entry> builders_;
};

}  // namespace oal::core
