// Named scenario catalog.
//
// Benches and examples describe their experiment arms as named Scenario
// builders ("fig4/offline/FFT/il", "governors/ondemand", ...) registered
// here, then hand a prefix-selected batch to ExperimentEngine.  Names use
// '/'-separated segments so one registry can hold several scenario families
// and a batch can be cut by family prefix; the builder runs lazily at
// build() time so registering a large catalog stays free.  Built scenarios
// get their registry name as Scenario::id, which is also the deterministic
// result order of ExperimentEngine::run_batch.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace oal::core {

class ScenarioRegistry {
 public:
  using Builder = std::function<Scenario()>;

  /// Registers a builder under a unique name (throws on duplicates).
  void add(const std::string& name, Builder builder);

  bool contains(const std::string& name) const { return builders_.count(name) != 0; }
  std::size_t size() const { return builders_.size(); }

  /// All registered names selected by `prefix`, lexicographically sorted.
  /// Matching respects '/'-segment boundaries: `prefix` selects the name
  /// equal to it and names extending it as `prefix + "/..."` ("fig1" selects
  /// "fig1" and "fig1/a" but never "fig10/a"); a prefix ending in '/' plainly
  /// string-matches.  Empty selects everything.
  std::vector<std::string> names(const std::string& prefix = "") const;

  /// Builds one scenario; its id is set to the registry name.
  Scenario build(const std::string& name) const;

  /// Builds every scenario `prefix` selects (same segment-boundary rules as
  /// names()), in name order — ready for ExperimentEngine::run_batch.
  std::vector<Scenario> build_batch(const std::string& prefix = "") const;

 private:
  std::map<std::string, Builder> builders_;
};

}  // namespace oal::core
