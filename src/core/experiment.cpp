#include "core/experiment.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/domain.h"

namespace oal::core {

ExperimentEngine::ExperimentEngine(Options opts) : pool_(opts.num_threads) {}

ScenarioResult ExperimentEngine::run_scenario(const Scenario& s, const RunCustomizer& customize) {
  if (!s.make_controller)
    throw std::invalid_argument("ExperimentEngine: scenario '" + s.id + "' has no factory");

  soc::BigLittlePlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  ScenarioContext ctx{s, platform, rng};
  ControllerInstance instance = s.make_controller(ctx);
  if (!instance.controller)
    throw std::invalid_argument("ExperimentEngine: factory for '" + s.id +
                                "' returned no controller");

  if (!s.warmup.empty()) {
    RunnerOptions warm;
    warm.objective = s.objective;
    warm.compute_oracle = false;
    DrmRunner warm_runner(platform, warm);
    (void)warm_runner.run(s.warmup, *instance.controller, s.initial);
  }

  RunnerOptions opts;
  opts.objective = s.objective;
  opts.compute_oracle = s.compute_oracle;
  opts.oracle_cache = s.oracle_cache;
  if (customize) customize(platform, opts);
  DrmRunner runner(platform, opts);
  ScenarioResult result{s.id, runner.run(s.trace, *instance.controller, s.initial), {}};
  if (s.on_complete) s.on_complete(*instance.controller, result.run);
  if (s.extra_metrics) result.extra = s.extra_metrics(*instance.controller, result.run);
  return result;
}

std::vector<AnyResult> ExperimentEngine::run_any(const std::vector<AnyScenario>& batch) {
  std::unordered_set<std::string> ids;
  for (const AnyScenario& s : batch) {
    if (s.id().empty()) throw std::invalid_argument("ExperimentEngine: scenario with empty id");
    if (!s.runnable())
      throw std::invalid_argument("ExperimentEngine: scenario '" + s.id() + "' is not runnable");
    if (!ids.insert(s.id()).second)
      throw std::invalid_argument("ExperimentEngine: duplicate scenario id '" + s.id() + "'");
  }

  std::vector<AnyResult> results(batch.size());
  pool_.run_indexed(batch.size(), [&](std::size_t i) { results[i] = batch[i].run(); });

  std::sort(results.begin(), results.end(),
            [](const AnyResult& a, const AnyResult& b) { return a.id() < b.id(); });
  return results;
}

std::vector<ScenarioResult> ExperimentEngine::run_batch(const std::vector<Scenario>& batch) {
  // Deliberately not routed through run_any: type erasure would copy every
  // Scenario in and deep-copy every RunResult out, pure overhead for the
  // all-DRM hot path.  Validation and execution semantics are identical.
  std::unordered_set<std::string> ids;
  for (const Scenario& s : batch) {
    if (s.id.empty()) throw std::invalid_argument("ExperimentEngine: scenario with empty id");
    if (!ids.insert(s.id).second)
      throw std::invalid_argument("ExperimentEngine: duplicate scenario id '" + s.id + "'");
  }

  std::vector<ScenarioResult> results(batch.size());
  pool_.run_indexed(batch.size(), [&](std::size_t i) { results[i] = run_scenario(batch[i]); });

  std::sort(results.begin(), results.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) { return a.id < b.id; });
  return results;
}

}  // namespace oal::core
