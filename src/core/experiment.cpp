#include "core/experiment.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace oal::core {

ExperimentEngine::ExperimentEngine(Options opts) : pool_(opts.num_threads) {}

ScenarioResult ExperimentEngine::run_scenario(const Scenario& s) {
  if (!s.make_controller)
    throw std::invalid_argument("ExperimentEngine: scenario '" + s.id + "' has no factory");

  soc::BigLittlePlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  ScenarioContext ctx{s, platform, rng};
  ControllerInstance instance = s.make_controller(ctx);
  if (!instance.controller)
    throw std::invalid_argument("ExperimentEngine: factory for '" + s.id +
                                "' returned no controller");

  if (!s.warmup.empty()) {
    RunnerOptions warm;
    warm.objective = s.objective;
    warm.compute_oracle = false;
    DrmRunner warm_runner(platform, warm);
    (void)warm_runner.run(s.warmup, *instance.controller, s.initial);
  }

  RunnerOptions opts;
  opts.objective = s.objective;
  opts.compute_oracle = s.compute_oracle;
  DrmRunner runner(platform, opts);
  ScenarioResult result{s.id, runner.run(s.trace, *instance.controller, s.initial)};
  if (s.on_complete) s.on_complete(*instance.controller, result.run);
  return result;
}

std::vector<ScenarioResult> ExperimentEngine::run_batch(const std::vector<Scenario>& batch) {
  std::unordered_set<std::string> ids;
  for (const Scenario& s : batch) {
    if (s.id.empty()) throw std::invalid_argument("ExperimentEngine: scenario with empty id");
    if (!ids.insert(s.id).second)
      throw std::invalid_argument("ExperimentEngine: duplicate scenario id '" + s.id + "'");
  }

  std::vector<ScenarioResult> results(batch.size());
  pool_.run_indexed(batch.size(), [&](std::size_t i) { results[i] = run_scenario(batch[i]); });

  std::sort(results.begin(), results.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) { return a.id < b.id; });
  return results;
}

}  // namespace oal::core
