#include "core/experiment.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "core/domain.h"

namespace oal::core {

namespace {

// The shared scheduling/determinism core behind every public entry point:
// run the n-element shard on the pool (each index independent; run_indexed
// rethrows the lowest-index exception after the shard drains), then deliver
// results to the sink in id order.  Delivery order is a pure function of
// the shard's ids — independent of thread count and scheduling — so a
// stateful sink aggregates the identical stream serial vs parallel.
template <typename ResultT, typename RunFn, typename IdFn, typename SinkT>
void run_shard_into_sink(common::ThreadPool& pool, std::size_t n, const RunFn& run_one,
                         const IdFn& id_of, const SinkT& sink) {
  std::vector<ResultT> results(n);
  pool.run_indexed(n, [&](std::size_t i) { results[i] = run_one(i); });
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return id_of(results[a]) < id_of(results[b]); });
  for (std::size_t i : order) sink(std::move(results[i]));
}

// Shared id/runnability validation; `ids` accumulates across shards so a
// streaming sweep rejects duplicates over the whole population.
void validate_any(const AnyScenario& s, std::unordered_set<std::string>& ids) {
  if (s.id().empty()) throw std::invalid_argument("ExperimentEngine: scenario with empty id");
  if (!s.runnable())
    throw std::invalid_argument("ExperimentEngine: scenario '" + s.id() + "' is not runnable");
  if (!ids.insert(s.id()).second)
    throw std::invalid_argument("ExperimentEngine: duplicate scenario id '" + s.id() + "'");
}

}  // namespace

ExperimentEngine::ExperimentEngine(Options opts) : pool_(opts.num_threads) {}

ScenarioResult ExperimentEngine::run_scenario(const Scenario& s, const RunCustomizer& customize) {
  if (!s.make_controller)
    throw std::invalid_argument("ExperimentEngine: scenario '" + s.id + "' has no factory");

  soc::BigLittlePlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  ScenarioContext ctx{s, platform, rng};
  ControllerInstance instance = s.make_controller(ctx);
  if (!instance.controller)
    throw std::invalid_argument("ExperimentEngine: factory for '" + s.id +
                                "' returned no controller");

  if (!s.warmup.empty()) {
    RunnerOptions warm;
    warm.objective = s.objective;
    warm.compute_oracle = false;
    DrmRunner warm_runner(platform, warm);
    (void)warm_runner.run(s.warmup, *instance.controller, s.initial);
  }

  RunnerOptions opts;
  opts.objective = s.objective;
  opts.compute_oracle = s.compute_oracle;
  opts.oracle_cache = s.oracle_cache;
  if (customize) customize(platform, opts);
  DrmRunner runner(platform, opts);
  ScenarioResult result{s.id, runner.run(s.trace, *instance.controller, s.initial), {}};
  if (s.on_complete) s.on_complete(*instance.controller, result.run);
  if (s.extra_metrics) result.extra = s.extra_metrics(*instance.controller, result.run);
  return result;
}

void ExperimentEngine::run_any(const std::vector<AnyScenario>& batch, const AnySink& sink) {
  if (!sink) throw std::invalid_argument("ExperimentEngine: null sink");
  std::unordered_set<std::string> ids;
  for (const AnyScenario& s : batch) validate_any(s, ids);
  run_shard_into_sink<AnyResult>(
      pool_, batch.size(), [&](std::size_t i) { return batch[i].run(); },
      [](const AnyResult& r) -> const std::string& { return r.id(); }, sink);
}

std::vector<AnyResult> ExperimentEngine::run_any(const std::vector<AnyScenario>& batch) {
  std::vector<AnyResult> results;
  results.reserve(batch.size());
  run_any(batch, [&](AnyResult&& r) { results.push_back(std::move(r)); });
  return results;
}

std::size_t ExperimentEngine::run_any_streaming(const AnyGenerator& generator, const AnySink& sink,
                                                const StreamOptions& stream) {
  if (!generator) throw std::invalid_argument("ExperimentEngine: null generator");
  if (!sink) throw std::invalid_argument("ExperimentEngine: null sink");
  if (stream.shard_size == 0)
    throw std::invalid_argument("ExperimentEngine: shard_size must be > 0");

  std::unordered_set<std::string> ids;
  std::vector<AnyScenario> shard;
  shard.reserve(stream.shard_size);
  std::size_t total = 0;
  bool exhausted = false;
  while (!exhausted) {
    shard.clear();
    while (shard.size() < stream.shard_size) {
      std::optional<AnyScenario> s = generator();
      if (!s.has_value()) {
        exhausted = true;
        break;
      }
      validate_any(*s, ids);
      shard.push_back(std::move(*s));
    }
    if (shard.empty()) break;
    run_shard_into_sink<AnyResult>(
        pool_, shard.size(), [&](std::size_t i) { return shard[i].run(); },
        [](const AnyResult& r) -> const std::string& { return r.id(); }, sink);
    total += shard.size();
  }
  return total;
}

void ExperimentEngine::run_batch(const std::vector<Scenario>& batch, const ScenarioSink& sink) {
  // Deliberately not routed through run_any: type erasure would copy every
  // Scenario in and deep-copy every RunResult out, pure overhead for the
  // all-DRM hot path.  Validation and execution semantics are identical,
  // and the scheduling/delivery core is the same template.
  if (!sink) throw std::invalid_argument("ExperimentEngine: null sink");
  std::unordered_set<std::string> ids;
  for (const Scenario& s : batch) {
    if (s.id.empty()) throw std::invalid_argument("ExperimentEngine: scenario with empty id");
    if (!ids.insert(s.id).second)
      throw std::invalid_argument("ExperimentEngine: duplicate scenario id '" + s.id + "'");
  }
  run_shard_into_sink<ScenarioResult>(
      pool_, batch.size(), [&](std::size_t i) { return run_scenario(batch[i]); },
      [](const ScenarioResult& r) -> const std::string& { return r.id; }, sink);
}

std::vector<ScenarioResult> ExperimentEngine::run_batch(const std::vector<Scenario>& batch) {
  std::vector<ScenarioResult> results;
  results.reserve(batch.size());
  run_batch(batch, [&](ScenarioResult&& r) { results.push_back(std::move(r)); });
  return results;
}

}  // namespace oal::core
