#include "core/gpu_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace oal::core {

BaselineGpuGovernor::BaselineGpuGovernor(const gpu::GpuPlatform& platform, double up_threshold,
                                         double down_threshold, double target_busy)
    : platform_(&platform), up_threshold_(up_threshold), down_threshold_(down_threshold),
      target_busy_(target_busy) {}

gpu::GpuConfig BaselineGpuGovernor::step(const gpu::FrameResult& result,
                                         const gpu::GpuConfig& current, std::size_t) {
  gpu::GpuConfig next = current;
  next.num_slices = platform_->params().max_slices;
  const int max_idx = static_cast<int>(platform_->num_freqs()) - 1;
  if (result.gpu_busy_frac > up_threshold_ || !result.deadline_met) {
    // Aggressive ramp-up (QoS first), as in the production step governors
    // the ENMPC paper compared against.
    next.freq_idx = std::min(current.freq_idx + 3, max_idx);
  } else if (result.gpu_busy_frac < down_threshold_) {
    // Conservative single-step decay: legacy governors scale down slowly to
    // avoid oscillation, which is precisely the inefficiency a predictive
    // controller removes.
    next.freq_idx = std::max(current.freq_idx - 1, 0);
  } else {
    (void)target_busy_;
  }
  return next;
}

GpuRunner::GpuRunner(gpu::GpuPlatform& platform, double fps_target, GpuRunnerHooks hooks)
    : platform_(&platform), period_s_(1.0 / fps_target), hooks_(std::move(hooks)) {
  if (fps_target <= 0.0) throw std::invalid_argument("GpuRunner: fps_target must be > 0");
}

GpuRunResult GpuRunner::run(const std::vector<gpu::FrameDescriptor>& trace,
                            GpuController& controller, const gpu::GpuConfig& initial) {
  GpuRunResult out;
  out.frame_times_s.reserve(trace.size());
  out.configs.reserve(trace.size());
  controller.begin_run(initial);
  gpu::GpuConfig current = initial;
  DecisionTimer timer;
  // The initial configuration passes the arbiter too (as in DrmRunner); no
  // transition cost is charged for it.
  if (hooks_.arbiter && !trace.empty()) current = hooks_.arbiter(trace.front(), current);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const gpu::FrameResult r = platform_->render(trace[i], current, period_s_);
    out.gpu_energy_j += r.gpu_energy_j;
    out.pkg_energy_j += r.pkg_energy_j;
    out.pkg_dram_energy_j += r.pkg_dram_energy_j;
    out.deadline_misses += r.deadline_met ? 0 : 1;
    out.frame_times_s.push_back(r.frame_time_s);
    out.configs.push_back(current);
    ++out.frames;

    if (hooks_.observer) hooks_.observer(trace[i], current, r);
    if (hooks_.telemetry) controller.observe_telemetry(hooks_.telemetry());
    const auto t0 = timer.start();
    gpu::GpuConfig next = controller.step(r, current, i);
    timer.stop(t0);
    if (!platform_->valid(next))
      throw std::logic_error("GpuRunner: controller returned invalid config");
    // Clamp before the transition is actuated, so transition costs and
    // change counts reflect what actually happens on the hardware.  The
    // post-final decision (i + 1 == trace.size()) is NOT arbitrated: no
    // frame follows, so the budgeter never grants or denies it, and exactly
    // one arbitration per rendered frame keeps clamp counts comparable to
    // the DRM runner's (<= frames).  Its transition cost is still charged
    // at the proposed config — the seed's accounting — a <= 1 mJ tail.
    if (hooks_.arbiter && i + 1 < trace.size()) next = hooks_.arbiter(trace[i + 1], next);
    if (next.freq_idx != current.freq_idx) ++out.freq_changes;
    if (next.num_slices != current.num_slices) ++out.slice_changes;
    const auto tc = platform_->transition_cost(current, next);
    out.transition_energy_j += tc.energy_j;
    // Transition energy is charged to every scope (it is real energy).
    out.gpu_energy_j += tc.energy_j;
    out.pkg_energy_j += tc.energy_j;
    out.pkg_dram_energy_j += tc.energy_j;
    current = next;
  }
  out.decision_evals = controller.decision_evals();
  out.decision_latency = timer.stats();
  return out;
}

}  // namespace oal::core
