// Optimization objectives for DRM policies (paper Section IV-A1: "Oracle
// policies which optimize different objectives (e.g., energy consumption,
// performance-per-watt)").
#pragma once

#include <stdexcept>
#include <string>

#include "soc/counters.h"

namespace oal::core {

enum class Objective {
  kEnergy,          ///< minimize energy per snippet
  kEdp,             ///< minimize energy-delay product
  kPerfPerWatt,     ///< maximize instructions / joule (minimize its negative)
};

inline std::string objective_name(Objective o) {
  switch (o) {
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "EDP";
    case Objective::kPerfPerWatt: return "perf-per-watt";
  }
  return "?";
}

/// Scalar cost (lower is better) of a snippet result under an objective.
inline double objective_cost(const soc::SnippetResult& r, Objective o) {
  switch (o) {
    case Objective::kEnergy: return r.energy_j;
    case Objective::kEdp: return r.energy_j * r.exec_time_s;
    case Objective::kPerfPerWatt: {
      if (r.energy_j <= 0.0) throw std::invalid_argument("objective_cost: non-positive energy");
      // instructions per joule, negated so lower is better.
      return -r.counters.instructions_retired / r.energy_j;
    }
  }
  throw std::logic_error("objective_cost: unknown objective");
}

}  // namespace oal::core
