#include "core/rl_controller.h"

#include <algorithm>
#include <cmath>

namespace oal::core {

soc::SocConfig apply_rl_action(const soc::ConfigSpace& space, const soc::SocConfig& c,
                               std::size_t action) {
  soc::SocConfig n = c;
  switch (action) {
    case 0: break;  // hold
    case 1: n.num_little += 1; break;
    case 2: n.num_little -= 1; break;
    case 3: n.num_big += 1; break;
    case 4: n.num_big -= 1; break;
    case 5: n.little_freq_idx += 1; break;
    case 6: n.little_freq_idx -= 1; break;
    case 7: n.big_freq_idx += 1; break;
    case 8: n.big_freq_idx -= 1; break;
    default: break;
  }
  // Clamp each knob to its legal range (an out-of-range move degrades to hold
  // on that knob, as a real governor interface would).
  n.num_little = std::clamp(n.num_little, 1, 4);
  n.num_big = std::clamp(n.num_big, 0, 4);
  n.little_freq_idx =
      std::clamp(n.little_freq_idx, 0, static_cast<int>(space.little_freqs().size()) - 1);
  n.big_freq_idx = std::clamp(n.big_freq_idx, 0, static_cast<int>(space.big_freqs().size()) - 1);
  return n;
}

namespace {

int bucket(double v, std::initializer_list<double> edges) {
  int b = 0;
  for (double e : edges) {
    if (v < e) return b;
    ++b;
  }
  return b;
}

double reward_of(const soc::SnippetResult& r, const RlRewardScale& s) {
  const double instr = std::max(r.counters.instructions_retired, 1.0);
  return -(r.energy_j / instr) * s.nj_per_inst_scale;
}

}  // namespace

QLearningController::QLearningController(const soc::ConfigSpace& space, ml::QLearnConfig cfg,
                                         RlRewardScale scale, bool thermal_aware)
    : space_(&space), q_(kNumRlActions, cfg), scale_(scale), thermal_aware_(thermal_aware) {}

void QLearningController::observe_telemetry(const soc::ThermalTelemetry& telemetry) {
  telemetry_ = telemetry;
}

std::uint64_t QLearningController::discretize(const soc::PerfCounters& k,
                                              const soc::SocConfig& c) const {
  const WorkloadFeatures w = workload_features(k, c);
  // Fixed array: the discretization runs on every decide() and must stay
  // allocation-free.  Component order matches the old vector form exactly.
  int comps[9];
  std::size_t n = 0;
  comps[n++] = bucket(w.mpki, {1.0, 3.0, 6.0, 10.0});
  comps[n++] = bucket(w.bmpki, {2.0, 5.0});
  comps[n++] = bucket(w.pf_proxy, {0.2, 0.5});
  comps[n++] = bucket(k.big_cluster_utilization, {0.05, 0.5});
  comps[n++] = c.num_little;
  comps[n++] = c.num_big;
  comps[n++] = c.little_freq_idx / 5;
  comps[n++] = c.big_freq_idx / 5;
  if (thermal_aware_) {
    // Budget-headroom regime: deep throttle / tight / slack / unconstrained.
    comps[n++] = telemetry_.constrained ? bucket(telemetry_.headroom_w(), {0.0, 0.5, 1.5}) : 4;
  }
  return ml::hash_state(comps, n);
}

void QLearningController::begin_run(const soc::SocConfig& /*initial*/) {
  has_prev_ = false;
  // Back to the neutral snapshot: a reused controller must not carry the
  // previous run's thermal regime into a run with no telemetry source.
  telemetry_ = soc::ThermalTelemetry{};
}

// oal-lint: hot-path
soc::SocConfig QLearningController::step(const soc::SnippetResult& result,
                                         const soc::SocConfig& executed) {
  const std::uint64_t state = discretize(result.counters, executed);
  if (has_prev_) q_.update(prev_state_, prev_action_, reward_of(result, scale_), state);
  const std::size_t action = q_.select_action(state);
  prev_state_ = state;
  prev_action_ = action;
  has_prev_ = true;
  return apply_rl_action(*space_, executed, action);
}
// oal-lint: hot-path-end

std::vector<double> QLearningController::export_state() const {
  std::vector<double> out;
  q_.export_state(out);
  return out;
}

bool QLearningController::import_state(const std::vector<double>& in) {
  std::size_t pos = 0;
  return q_.import_state(in, pos) && pos == in.size();
}

DqnController::DqnController(const soc::ConfigSpace& space, ml::DqnConfig cfg, RlRewardScale scale,
                             bool thermal_aware)
    : space_(&space), fx_(space, thermal_aware), dqn_(fx_.policy_dim(), kNumRlActions, cfg),
      scale_(scale) {}

void DqnController::observe_telemetry(const soc::ThermalTelemetry& telemetry) {
  telemetry_ = telemetry;
}

void DqnController::begin_run(const soc::SocConfig& /*initial*/) {
  has_prev_ = false;
  telemetry_ = soc::ThermalTelemetry{};  // see QLearningController::begin_run
}

// oal-lint: hot-path
soc::SocConfig DqnController::step(const soc::SnippetResult& result,
                                   const soc::SocConfig& executed) {
  fx_.policy_features_into(result.counters, executed, state_buf_, telemetry_);
  common::Vec& state = state_buf_;
  // Squash the unbounded counter-rate features for network stability.
  for (double& v : state) v = std::tanh(v * 0.2);
  if (has_prev_) dqn_.observe(prev_state_, prev_action_, reward_of(result, scale_), state);
  const std::size_t action = dqn_.select_action(state);
  prev_state_ = state;  // equal-size copy after the first step: no allocation
  prev_action_ = action;
  has_prev_ = true;
  return apply_rl_action(*space_, executed, action);
}
// oal-lint: hot-path-end

}  // namespace oal::core
