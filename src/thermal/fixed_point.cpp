#include "thermal/fixed_point.h"

#include <cmath>
#include <stdexcept>

namespace oal::thermal {

common::Vec LeakageModel::leakage(const common::Vec& temp_c) const {
  if (temp_c.size() != p0_w.size() || p0_w.size() != k_per_c.size())
    throw std::invalid_argument("LeakageModel: size mismatch");
  common::Vec p(temp_c.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = std::max(p0_w[i] * (1.0 + k_per_c[i] * (temp_c[i] - t0_c)), 0.0);
  return p;
}

FixedPointResult thermal_fixed_point(const RcThermalNetwork& net, const LeakageModel& leak,
                                     const common::Vec& dynamic_power_w) {
  const std::size_t n = net.num_nodes();
  if (dynamic_power_w.size() != n || leak.p0_w.size() != n)
    throw std::invalid_argument("thermal_fixed_point: size mismatch");

  FixedPointResult res;
  const common::Mat r = net.resistance_matrix();
  // Loop gain matrix: R * diag(p0 * k) — how strongly a temperature rise
  // feeds back into itself through leakage.
  common::Mat gain(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) gain(i, j) = r(i, j) * leak.p0_w[j] * leak.k_per_c[j];
  res.loop_gain = common::spectral_radius(gain);
  res.exists = res.loop_gain < 1.0;
  if (!res.exists) return res;

  // dT = R (P_dyn + p0 (1 + k (T_amb + dT - t0)))
  //  => (I - R diag(p0 k)) dT = R (P_dyn + p0 (1 + k (T_amb - t0)))
  common::Mat lhs = common::Mat::identity(n) - gain;
  common::Vec rhs_p(n);
  for (std::size_t i = 0; i < n; ++i)
    rhs_p[i] = dynamic_power_w[i] +
               leak.p0_w[i] * (1.0 + leak.k_per_c[i] * (net.ambient_c() - leak.t0_c));
  const common::Vec rhs = r * rhs_p;
  const common::Vec dt = common::lu_solve(lhs, rhs);
  res.temperature_c.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.temperature_c[i] = net.ambient_c() + dt[i];
  const common::Vec p_leak = leak.leakage(res.temperature_c);
  res.total_power_w.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.total_power_w[i] = dynamic_power_w[i] + p_leak[i];
  return res;
}

std::vector<common::Vec> fixed_point_iteration(const RcThermalNetwork& net,
                                               const LeakageModel& leak,
                                               const common::Vec& dynamic_power_w,
                                               std::size_t max_iters, double tol_c) {
  std::vector<common::Vec> trajectory;
  common::Vec temp(net.num_nodes(), net.ambient_c());
  trajectory.push_back(temp);
  for (std::size_t it = 0; it < max_iters; ++it) {
    const common::Vec p_leak = leak.leakage(temp);
    common::Vec total(p_leak.size());
    for (std::size_t i = 0; i < total.size(); ++i) total[i] = dynamic_power_w[i] + p_leak[i];
    const common::Vec next = net.steady_state(total);
    double delta = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) delta = std::max(delta, std::abs(next[i] - temp[i]));
    temp = next;
    trajectory.push_back(temp);
    if (delta < tol_c) break;
  }
  return trajectory;
}

}  // namespace oal::thermal
