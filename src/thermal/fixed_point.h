// Power-temperature fixed-point analysis (Bhat et al., ACM TECS 2017; paper
// Section III-A).
//
// Leakage power grows with temperature, and temperature grows with power:
//     T* = T_amb + R (P_dyn + P_leak(T*)),   P_leak(T) = P_0 (1 + k (T - T_0)).
// The *thermal fixed point* T* is the steady-state temperature under a given
// average dynamic power.  This module derives:
//   * existence & stability: the closed loop is a linear map with gain
//     matrix R * diag(p0 * k); a unique stable fixed point exists iff its
//     spectral radius is < 1 (otherwise thermal runaway);
//   * the fixed point itself (closed form via linear solve);
//   * a runtime iterative finder matching what firmware would run.
#pragma once

#include "common/matrix.h"
#include "thermal/rc_network.h"

namespace oal::thermal {

/// Per-node leakage model P_leak_i(T_i) = p0_i * (1 + k_i * (T_i - t0_c)).
struct LeakageModel {
  common::Vec p0_w;    ///< leakage at reference temperature
  common::Vec k_per_c; ///< relative leakage growth per degree
  double t0_c = 25.0;

  common::Vec leakage(const common::Vec& temp_c) const;
};

struct FixedPointResult {
  bool exists = false;          ///< loop gain < 1 (no thermal runaway)
  double loop_gain = 0.0;       ///< spectral radius of R diag(p0 k)
  common::Vec temperature_c;    ///< fixed-point temperatures (if exists)
  common::Vec total_power_w;    ///< dynamic + leakage at the fixed point
};

/// Closed-form fixed point: solve (G - diag(p0 k)) dT = P_dyn + P_leak(T_amb).
FixedPointResult thermal_fixed_point(const RcThermalNetwork& net, const LeakageModel& leak,
                                     const common::Vec& dynamic_power_w);

/// Runtime finder: repeated steady-state evaluation with leakage refresh
/// (what a firmware loop would do).  Returns the trajectory of iterates so
/// convergence behaviour is observable.
std::vector<common::Vec> fixed_point_iteration(const RcThermalNetwork& net,
                                               const LeakageModel& leak,
                                               const common::Vec& dynamic_power_w,
                                               std::size_t max_iters = 50, double tol_c = 1e-6);

}  // namespace oal::thermal
