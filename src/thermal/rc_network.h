// Compact RC thermal network (paper Section III-A substrate).
//
// Die/package/skin thermals are modeled as a linear state-space system
//     C dT/dt = -G (T - T_amb) + B P
// with heat capacities C (diagonal), conductance matrix G (SPD, graph
// Laplacian plus ambient legs), and power-injection matrix B.  This is the
// standard compact model (HotSpot-style) behind the cited thermal papers:
// temperature prediction, fixed-point analysis, and skin-temperature
// estimation all run on top of it.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace oal::thermal {

struct ThermalNodeSpec {
  std::string name;
  double capacitance_j_per_k = 5.0;
  double conductance_to_ambient_w_per_k = 0.05;
};

struct ThermalCoupling {
  std::size_t a = 0;
  std::size_t b = 0;
  double conductance_w_per_k = 0.5;
};

class RcThermalNetwork {
 public:
  RcThermalNetwork(std::vector<ThermalNodeSpec> nodes, std::vector<ThermalCoupling> couplings,
                   double ambient_c = 25.0);

  /// Mobile-SoC default: big cluster, little cluster, GPU, PCB, skin.
  static RcThermalNetwork mobile_soc(double ambient_c = 25.0);

  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<ThermalNodeSpec>& nodes() const { return nodes_; }
  double ambient_c() const { return ambient_c_; }

  /// Current temperatures (deg C).
  const common::Vec& temperatures() const { return temp_; }
  void set_temperatures(common::Vec t);
  void reset_to_ambient();

  /// Advance by dt seconds under constant node powers (W).  Internally uses
  /// sub-stepped forward Euler with a stability-bounded step.
  void step(const common::Vec& power_w, double dt_s);

  /// Steady-state temperatures for constant power: T = T_amb + G^{-1} P.
  common::Vec steady_state(const common::Vec& power_w) const;

  /// Continuous-time system matrix A = -C^{-1} G (for stability analysis).
  common::Mat system_matrix() const;
  /// Thermal resistance matrix R = G^{-1} (steady-state K/W).
  common::Mat resistance_matrix() const;

  /// Predicted temperatures after dt under constant power, without mutating
  /// the network state.
  common::Vec predict(const common::Vec& power_w, double dt_s) const;

 private:
  std::vector<ThermalNodeSpec> nodes_;
  common::Mat g_;        // conductance (including ambient legs on diagonal)
  common::Vec cap_;      // heat capacities
  common::Vec temp_;     // state (deg C)
  double ambient_c_;
};

}  // namespace oal::thermal
