// Thermal power budgeting (Bhat et al., IEEE TVLSI 2018; paper Section
// III-A): "computing the maximum power consumption that can be sustained
// before causing thermal violations.  Then, the power budget is used as a
// metric to throttle the frequency and number of operating cores."
#pragma once

#include "common/matrix.h"
#include "thermal/fixed_point.h"
#include "thermal/rc_network.h"

namespace oal::thermal {

struct PowerBudgetConfig {
  double t_max_junction_c = 85.0;  ///< die-node limit
  double t_max_skin_c = 45.0;      ///< skin-node limit (user comfort/safety)
  std::size_t skin_node = 4;       ///< index of the skin node
};

/// Maximum uniform scale s such that steady-state temperatures under
/// s * shape_w (plus temperature-dependent leakage) stay below the limits.
/// `shape_w` is the relative power distribution of the current workload.
/// Returns the scale and the binding node index.
struct PowerBudgetResult {
  double scale = 0.0;
  double total_power_w = 0.0;
  std::size_t binding_node = 0;
  bool skin_bound = false;  ///< true if the skin limit binds before junction
};

PowerBudgetResult max_sustainable_power(const RcThermalNetwork& net, const LeakageModel& leak,
                                        const common::Vec& shape_w,
                                        const PowerBudgetConfig& cfg = {});

/// Transient headroom: largest constant power scale that keeps all nodes
/// below their limits for the next `horizon_s` seconds starting from the
/// network's current state (bisection on the scale).
double transient_power_headroom(const RcThermalNetwork& net, const LeakageModel& leak,
                                const common::Vec& shape_w, double horizon_s,
                                const PowerBudgetConfig& cfg = {});

}  // namespace oal::thermal
