// Skin-temperature estimation and sensor selection (paper Section III-A).
//
// Device-skin temperature cannot be measured directly in production
// hardware; it is estimated from internal sensors (die/PCB thermistors) with
// a learned model (Egilmez et al. DATE'15; Chetoui & Reda).  Internal
// sensors are noisy and placement-limited, so a greedy sensor-selection pass
// (Zhang et al., Automatica 2017) picks the subset that minimizes estimation
// error under a budget.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ml/linreg.h"
#include "ml/rls.h"
#include "thermal/rc_network.h"

namespace oal::thermal {

/// Synthetic "internal sensor" readout: node temperatures of the RC network
/// (excluding the skin node) plus per-sensor bias and noise.
class SensorArray {
 public:
  /// sensor_nodes: indices of observable network nodes.
  SensorArray(std::vector<std::size_t> sensor_nodes, double noise_c = 0.2,
              std::uint64_t seed = 33);

  std::size_t num_sensors() const { return nodes_.size(); }
  const std::vector<std::size_t>& nodes() const { return nodes_; }

  /// Noisy readings of the given true temperature vector.
  common::Vec read(const common::Vec& true_temps_c);

 private:
  std::vector<std::size_t> nodes_;
  double noise_c_;
  common::Vec bias_c_;
  common::Rng rng_;
};

/// Offline-trained, online-adaptable skin estimator over sensor readings.
class SkinTemperatureEstimator {
 public:
  explicit SkinTemperatureEstimator(std::size_t num_sensors);

  /// Batch fit from (sensor readings, true skin temperature) pairs.
  void fit(const std::vector<common::Vec>& sensor_readings, const std::vector<double>& skin_c);
  /// RLS online refinement from a new labeled observation (e.g. factory
  /// calibration rig or occasional thermal-camera ground truth).
  void update(const common::Vec& sensor_reading, double skin_c);

  double estimate(const common::Vec& sensor_reading) const;
  bool fitted() const { return fitted_; }

 private:
  std::size_t dim_;
  ml::RecursiveLeastSquares rls_;
  bool fitted_ = false;
};

/// Greedy sensor subset selection: repeatedly adds the sensor whose addition
/// most reduces skin-estimation RMSE on a training set; stops at `budget`.
/// Returns selected indices (into the sensor vector), best-first.
std::vector<std::size_t> greedy_sensor_selection(const std::vector<common::Vec>& sensor_readings,
                                                 const std::vector<double>& skin_c,
                                                 std::size_t budget);

}  // namespace oal::thermal
