#include "thermal/skin_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.h"

namespace oal::thermal {

SensorArray::SensorArray(std::vector<std::size_t> sensor_nodes, double noise_c, std::uint64_t seed)
    : nodes_(std::move(sensor_nodes)), noise_c_(noise_c), rng_(seed) {
  if (nodes_.empty()) throw std::invalid_argument("SensorArray: no sensors");
  bias_c_.resize(nodes_.size());
  for (double& b : bias_c_) b = rng_.normal(0.0, 0.3);  // per-sensor calibration offset
}

common::Vec SensorArray::read(const common::Vec& true_temps_c) {
  common::Vec out(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] >= true_temps_c.size()) throw std::invalid_argument("SensorArray: bad node");
    out[i] = true_temps_c[nodes_[i]] + bias_c_[i] + rng_.normal(0.0, noise_c_);
  }
  return out;
}

namespace {
common::Vec with_bias(const common::Vec& x) {
  common::Vec f(x);
  f.push_back(1.0);
  return f;
}
}  // namespace

SkinTemperatureEstimator::SkinTemperatureEstimator(std::size_t num_sensors)
    : dim_(num_sensors + 1), rls_(num_sensors + 1, ml::RlsConfig{0.999, 1e2, 0.0}) {}

void SkinTemperatureEstimator::fit(const std::vector<common::Vec>& sensor_readings,
                                   const std::vector<double>& skin_c) {
  if (sensor_readings.empty() || sensor_readings.size() != skin_c.size())
    throw std::invalid_argument("SkinTemperatureEstimator::fit: bad data");
  std::vector<common::Vec> x;
  x.reserve(sensor_readings.size());
  for (const auto& s : sensor_readings) {
    if (s.size() + 1 != dim_) throw std::invalid_argument("fit: sensor dim mismatch");
    x.push_back(with_bias(s));
  }
  ml::RidgeRegression ridge(1e-6);
  ridge.fit(x, skin_c, /*fit_intercept=*/false);
  rls_.set_weights(ridge.coefficients());
  fitted_ = true;
}

void SkinTemperatureEstimator::update(const common::Vec& sensor_reading, double skin_c) {
  rls_.update(with_bias(sensor_reading), skin_c);
  fitted_ = true;
}

double SkinTemperatureEstimator::estimate(const common::Vec& sensor_reading) const {
  if (!fitted_) throw std::logic_error("SkinTemperatureEstimator::estimate before fit");
  return rls_.predict(with_bias(sensor_reading));
}

std::vector<std::size_t> greedy_sensor_selection(const std::vector<common::Vec>& sensor_readings,
                                                 const std::vector<double>& skin_c,
                                                 std::size_t budget) {
  if (sensor_readings.empty() || sensor_readings.size() != skin_c.size())
    throw std::invalid_argument("greedy_sensor_selection: bad data");
  const std::size_t total = sensor_readings.front().size();
  budget = std::min(budget, total);

  auto rmse_with = [&](const std::vector<std::size_t>& subset) {
    std::vector<common::Vec> x;
    x.reserve(sensor_readings.size());
    for (const auto& s : sensor_readings) {
      common::Vec f;
      f.reserve(subset.size());
      for (std::size_t idx : subset) f.push_back(s[idx]);
      x.push_back(std::move(f));
    }
    ml::RidgeRegression ridge(1e-6);
    ridge.fit(x, skin_c);
    std::vector<double> pred = ridge.predict(x);
    return common::rmse(skin_c, pred);
  };

  std::vector<std::size_t> selected;
  std::vector<bool> used(total, false);
  for (std::size_t round = 0; round < budget; ++round) {
    double best_err = std::numeric_limits<double>::infinity();
    std::size_t best_idx = total;
    for (std::size_t cand = 0; cand < total; ++cand) {
      if (used[cand]) continue;
      std::vector<std::size_t> trial = selected;
      trial.push_back(cand);
      const double err = rmse_with(trial);
      if (err < best_err) {
        best_err = err;
        best_idx = cand;
      }
    }
    selected.push_back(best_idx);
    used[best_idx] = true;
  }
  return selected;
}

}  // namespace oal::thermal
