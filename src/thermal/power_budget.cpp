#include "thermal/power_budget.h"

#include <cmath>
#include <stdexcept>

namespace oal::thermal {

namespace {

double node_limit(const PowerBudgetConfig& cfg, std::size_t node) {
  return node == cfg.skin_node ? cfg.t_max_skin_c : cfg.t_max_junction_c;
}

/// Max steady-state temperature violation margin at power scale s (deg C;
/// positive = violates).
double violation_at_scale(const RcThermalNetwork& net, const LeakageModel& leak,
                          const common::Vec& shape_w, double s, const PowerBudgetConfig& cfg,
                          std::size_t* worst_node) {
  common::Vec dyn(shape_w.size());
  for (std::size_t i = 0; i < dyn.size(); ++i) dyn[i] = s * shape_w[i];
  const FixedPointResult fp = thermal_fixed_point(net, leak, dyn);
  if (!fp.exists) return 1e9;  // runaway: treat as infinite violation
  double worst = -1e9;
  for (std::size_t i = 0; i < fp.temperature_c.size(); ++i) {
    const double v = fp.temperature_c[i] - node_limit(cfg, i);
    if (v > worst) {
      worst = v;
      if (worst_node != nullptr) *worst_node = i;
    }
  }
  return worst;
}

}  // namespace

PowerBudgetResult max_sustainable_power(const RcThermalNetwork& net, const LeakageModel& leak,
                                        const common::Vec& shape_w, const PowerBudgetConfig& cfg) {
  if (shape_w.size() != net.num_nodes())
    throw std::invalid_argument("max_sustainable_power: shape size mismatch");
  double total_shape = 0.0;
  for (double v : shape_w) total_shape += v;
  if (total_shape <= 0.0) throw std::invalid_argument("max_sustainable_power: zero shape");

  // Bisection on the scale.
  double lo = 0.0, hi = 1.0;
  std::size_t worst = 0;
  while (violation_at_scale(net, leak, shape_w, hi, cfg, &worst) < 0.0 && hi < 1e4) hi *= 2.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (violation_at_scale(net, leak, shape_w, mid, cfg, &worst) < 0.0)
      lo = mid;
    else
      hi = mid;
  }
  PowerBudgetResult res;
  res.scale = lo;
  res.total_power_w = lo * total_shape;
  (void)violation_at_scale(net, leak, shape_w, hi, cfg, &res.binding_node);
  res.skin_bound = res.binding_node == cfg.skin_node;
  return res;
}

double transient_power_headroom(const RcThermalNetwork& net, const LeakageModel& leak,
                                const common::Vec& shape_w, double horizon_s,
                                const PowerBudgetConfig& cfg) {
  if (horizon_s <= 0.0) throw std::invalid_argument("transient_power_headroom: bad horizon");
  auto violates = [&](double s) {
    RcThermalNetwork sim = net;  // do not disturb the caller's state
    // Simulate in 1 s ticks with leakage refreshed from the evolving temps.
    double t = 0.0;
    while (t < horizon_s) {
      const double dt = std::min(1.0, horizon_s - t);
      const common::Vec p_leak = leak.leakage(sim.temperatures());
      common::Vec total(shape_w.size());
      for (std::size_t i = 0; i < total.size(); ++i) total[i] = s * shape_w[i] + p_leak[i];
      sim.step(total, dt);
      for (std::size_t i = 0; i < sim.temperatures().size(); ++i)
        if (sim.temperatures()[i] > node_limit(cfg, i)) return true;
      t += dt;
    }
    return false;
  };
  double lo = 0.0, hi = 1.0;
  while (!violates(hi) && hi < 1e4) hi *= 2.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    (violates(mid) ? hi : lo) = mid;
  }
  return lo;
}

}  // namespace oal::thermal
