#include "thermal/rc_network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oal::thermal {

RcThermalNetwork::RcThermalNetwork(std::vector<ThermalNodeSpec> nodes,
                                   std::vector<ThermalCoupling> couplings, double ambient_c)
    : nodes_(std::move(nodes)), ambient_c_(ambient_c) {
  const std::size_t n = nodes_.size();
  if (n == 0) throw std::invalid_argument("RcThermalNetwork: no nodes");
  g_ = common::Mat(n, n);
  cap_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes_[i].capacitance_j_per_k <= 0.0)
      throw std::invalid_argument("RcThermalNetwork: capacitance must be > 0");
    cap_[i] = nodes_[i].capacitance_j_per_k;
    g_(i, i) = nodes_[i].conductance_to_ambient_w_per_k;
  }
  for (const auto& c : couplings) {
    if (c.a >= n || c.b >= n || c.a == c.b)
      throw std::invalid_argument("RcThermalNetwork: bad coupling");
    g_(c.a, c.a) += c.conductance_w_per_k;
    g_(c.b, c.b) += c.conductance_w_per_k;
    g_(c.a, c.b) -= c.conductance_w_per_k;
    g_(c.b, c.a) -= c.conductance_w_per_k;
  }
  temp_.assign(n, ambient_c_);
}

RcThermalNetwork RcThermalNetwork::mobile_soc(double ambient_c) {
  // Node order: 0 big cluster, 1 little cluster, 2 GPU, 3 PCB/battery,
  // 4 device skin.  Capacitances/conductances in the range of published
  // smartphone compact models: silicon nodes are fast (seconds), the PCB
  // and skin are slow (minutes).
  std::vector<ThermalNodeSpec> nodes{
      {"big", 6.0, 0.010},
      {"little", 4.0, 0.010},
      {"gpu", 5.0, 0.010},
      {"pcb", 120.0, 0.15},
      {"skin", 250.0, 0.55},
  };
  std::vector<ThermalCoupling> couplings{
      {0, 1, 0.80},  // big <-> little (shared die)
      {0, 2, 0.55},  // big <-> gpu
      {1, 2, 0.55},
      {0, 3, 0.45},  // die <-> pcb
      {1, 3, 0.40},
      {2, 3, 0.45},
      {3, 4, 0.60},  // pcb <-> skin
  };
  return RcThermalNetwork(std::move(nodes), std::move(couplings), ambient_c);
}

void RcThermalNetwork::set_temperatures(common::Vec t) {
  if (t.size() != temp_.size()) throw std::invalid_argument("set_temperatures: size mismatch");
  temp_ = std::move(t);
}

void RcThermalNetwork::reset_to_ambient() { std::fill(temp_.begin(), temp_.end(), ambient_c_); }

void RcThermalNetwork::step(const common::Vec& power_w, double dt_s) {
  if (power_w.size() != temp_.size()) throw std::invalid_argument("step: power size mismatch");
  if (dt_s <= 0.0) throw std::invalid_argument("step: dt must be > 0");
  // Stability bound for forward Euler: dt < 2 * min(C_i / G_ii); use 0.2x.
  double min_tau = 1e300;
  for (std::size_t i = 0; i < temp_.size(); ++i) min_tau = std::min(min_tau, cap_[i] / g_(i, i));
  const double h_max = 0.2 * min_tau;
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt_s / h_max)));
  const double h = dt_s / substeps;
  // C dT/dt = P - G (T - T_amb): G's diagonal carries ambient legs plus
  // coupling sums, off-diagonals are negated couplings (Laplacian form).
  for (int s = 0; s < substeps; ++s) {
    common::Vec dtemp(temp_.size(), 0.0);
    for (std::size_t i = 0; i < temp_.size(); ++i) {
      double flow = power_w[i];
      for (std::size_t j = 0; j < temp_.size(); ++j) flow -= g_(i, j) * (temp_[j] - ambient_c_);
      dtemp[i] = flow / cap_[i];
    }
    for (std::size_t i = 0; i < temp_.size(); ++i) temp_[i] += h * dtemp[i];
  }
}

common::Vec RcThermalNetwork::steady_state(const common::Vec& power_w) const {
  if (power_w.size() != temp_.size()) throw std::invalid_argument("steady_state: size mismatch");
  const common::Vec delta = common::cholesky_solve(g_, power_w);
  common::Vec t(delta.size());
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = ambient_c_ + delta[i];
  return t;
}

common::Mat RcThermalNetwork::system_matrix() const {
  const std::size_t n = temp_.size();
  common::Mat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = -g_(i, j) / cap_[i];
  return a;
}

common::Mat RcThermalNetwork::resistance_matrix() const { return common::inverse(g_); }

common::Vec RcThermalNetwork::predict(const common::Vec& power_w, double dt_s) const {
  RcThermalNetwork copy = *this;
  copy.step(power_w, dt_s);
  return copy.temperatures();
}

}  // namespace oal::thermal
