// Tests for the DRM experiment runner and its derived metrics.
#include <gtest/gtest.h>

#include "core/governors.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

TEST(Runner, RecordsOnePerSnippet) {
  soc::BigLittlePlatform plat;
  common::Rng rng(1);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("SHA"), 12, rng);
  DrmRunner runner(plat);
  StaticController ctl({2, 2, 8, 10});
  const auto res = runner.run(trace, ctl, {2, 2, 8, 10});
  ASSERT_EQ(res.records.size(), 12u);
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    EXPECT_EQ(res.records[i].index, i);
    EXPECT_GT(res.records[i].energy_j, 0.0);
    EXPECT_GT(res.records[i].oracle_energy_j, 0.0);
    EXPECT_EQ(res.records[i].applied, (soc::SocConfig{2, 2, 8, 10}));
  }
  // Start times strictly increase by execution time.
  for (std::size_t i = 1; i < res.records.size(); ++i)
    EXPECT_GT(res.records[i].start_time_s, res.records[i - 1].start_time_s);
}

TEST(Runner, EnergyRatioAtLeastOneForOracleConfigs) {
  // A controller that holds exactly the Oracle config of a constant workload
  // should achieve a ratio of ~1 (only measurement noise above).
  soc::BigLittlePlatform plat;
  common::Rng rng(2);
  auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("ADPCM"), 8, rng);
  // Make the trace exactly constant so one config is optimal throughout.
  for (auto& s : trace) s = trace[0];
  const soc::SocConfig best = oracle_config(plat, trace[0], Objective::kEnergy);
  DrmRunner runner(plat);
  StaticController ctl(best);
  const auto res = runner.run(trace, ctl, best);
  EXPECT_NEAR(res.energy_ratio(), 1.0, 0.05);
}

TEST(Runner, BadControllerHasRatioAboveOne) {
  soc::BigLittlePlatform plat;
  common::Rng rng(3);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Dijkstra"), 8, rng);
  DrmRunner runner(plat);
  PerformanceGovernor gov(plat.space());
  const auto res = runner.run(trace, gov, {4, 4, 12, 18});
  EXPECT_GT(res.energy_ratio(), 1.2);
}

TEST(Runner, PerAppRatios) {
  soc::BigLittlePlatform plat;
  common::Rng rng(4);
  const std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("SHA"),
                                             workloads::CpuBenchmarks::by_name("Kmeans")};
  std::vector<soc::SnippetDescriptor> trace;
  for (const auto& a : apps) {
    const auto t = workloads::CpuBenchmarks::trace(a, 6, rng);
    trace.insert(trace.end(), t.begin(), t.end());
  }
  DrmRunner runner(plat);
  StaticController ctl({4, 4, 8, 10});
  const auto res = runner.run(trace, ctl, {4, 4, 8, 10});
  const double r_sha = res.energy_ratio_for_app(workloads::CpuBenchmarks::by_name("SHA").app_id);
  const double r_km = res.energy_ratio_for_app(workloads::CpuBenchmarks::by_name("Kmeans").app_id);
  EXPECT_GT(r_sha, 1.0);
  EXPECT_GT(r_km, 1.0);
  EXPECT_THROW(res.energy_ratio_for_app(999), std::invalid_argument);
}

TEST(Runner, AccuracyMetrics) {
  soc::BigLittlePlatform plat;
  common::Rng rng(5);
  auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 6, rng);
  for (auto& s : trace) s = trace[0];
  const soc::SocConfig best = oracle_config(plat, trace[0], Objective::kEnergy);
  DrmRunner runner(plat);
  StaticController good(best);
  const auto res = runner.run(trace, good, best);
  EXPECT_DOUBLE_EQ(res.big_freq_accuracy(0, res.records.size()), 1.0);
  EXPECT_DOUBLE_EQ(res.config_accuracy(0, res.records.size()), 1.0);

  // A config whose big frequency is 2 steps away fails at tolerance 1 but
  // passes at tolerance 2.
  soc::SocConfig off = best;
  off.big_freq_idx = best.big_freq_idx >= 2 ? best.big_freq_idx - 2 : best.big_freq_idx + 2;
  StaticController shifted(off);
  const auto res2 = runner.run(trace, shifted, off);
  EXPECT_DOUBLE_EQ(res2.big_freq_accuracy(0, res2.records.size(), 1), 0.0);
  EXPECT_DOUBLE_EQ(res2.big_freq_accuracy(0, res2.records.size(), 2), 1.0);
  EXPECT_THROW(res2.big_freq_accuracy(3, 2), std::invalid_argument);
}

TEST(Runner, OracleSkippedWhenDisabled) {
  soc::BigLittlePlatform plat;
  common::Rng rng(6);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("SHA"), 4, rng);
  RunnerOptions opts;
  opts.compute_oracle = false;
  DrmRunner runner(plat, opts);
  StaticController ctl({1, 0, 0, 0});
  const auto res = runner.run(trace, ctl, {1, 0, 0, 0});
  EXPECT_THROW(res.energy_ratio(), std::logic_error);
  EXPECT_GT(res.total_energy_j(), 0.0);
  EXPECT_GT(res.total_time_s(), 0.0);
}

}  // namespace
}  // namespace oal::core
