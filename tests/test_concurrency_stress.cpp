// Concurrency stress tests for the shared subsystems, written to run both as
// ordinary ctests (deterministic assertions, no timing dependence) and under
// -DOAL_SANITIZE=thread, where they give TSan real contention to chew on:
//
//  * OracleCache cold-miss coalescing: many threads miss the same key at
//    once; exactly one exhaustive sweep may run.
//  * Nested run_helping: pool workers re-enter the pool (the sharded Oracle
//    search path) without deadlock and bitwise equal to serial.
//  * run_any_streaming: the generator/sink (caller thread) overlaps shard
//    execution (workers); the delivered stream is bitwise equal to serial.
//  * ArtifactStore: concurrent flush/preload/put/get on one directory; the
//    atomic-rename contract means readers see absent or complete, never torn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/artifact_store.h"
#include "core/domain.h"
#include "core/experiment.h"
#include "core/oracle.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

namespace fs = std::filesystem;

/// Fresh empty store directory under the gtest temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("oal-stress-" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<soc::SnippetDescriptor> test_trace(const char* app, std::size_t n,
                                               std::uint64_t seed) {
  common::Rng rng(seed);
  return workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name(app), n, rng);
}

/// Spin-gate so every thread hits the contended section together instead of
/// trickling in as std::thread construction staggers them.
class StartGate {
 public:
  explicit StartGate(int n) : waiting_(n) {}
  void arrive_and_wait() {
    waiting_.fetch_sub(1);
    while (waiting_.load() > 0) std::this_thread::yield();
  }

 private:
  std::atomic<int> waiting_;
};

// ---------------------------------------------------------------------------
// 1. OracleCache cold-miss coalescing under real contention.
// ---------------------------------------------------------------------------

TEST(ConcurrencyStress, OracleCacheColdMissCoalescing) {
  soc::BigLittlePlatform plat;
  const auto snippet = test_trace("FFT", 1, 11).front();
  OracleCache cache;
  const soc::SocConfig expected = oracle_config(plat, snippet, Objective::kEnergy);
  const double expected_cost = oracle_cost(plat, snippet, Objective::kEnergy);

  constexpr int kThreads = 8;
  StartGate gate(kThreads);
  std::vector<soc::SocConfig> configs(kThreads);
  std::vector<double> costs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      configs[static_cast<std::size_t>(t)] = cache.config(plat, snippet, Objective::kEnergy);
      costs[static_cast<std::size_t>(t)] = cache.cost(plat, snippet, Objective::kEnergy);
    });
  }
  for (auto& th : threads) th.join();

  // The whole point of coalescing: one sweep no matter how many missers.
  EXPECT_EQ(cache.searches(), 1u);
  EXPECT_EQ(cache.lookups(), static_cast<std::size_t>(2 * kThreads));
  EXPECT_EQ(cache.size(), 1u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(configs[static_cast<std::size_t>(t)], expected);
    EXPECT_EQ(costs[static_cast<std::size_t>(t)], expected_cost);
  }
}

TEST(ConcurrencyStress, OracleCacheDistinctKeysUnderContention) {
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("Qsort", 4, 5);
  OracleCache cache;

  // Every thread resolves every snippet; each distinct key still costs
  // exactly one sweep, and every thread sees the serial answer.
  std::vector<soc::SocConfig> expected;
  expected.reserve(trace.size());
  for (const auto& s : trace) expected.push_back(oracle_config(plat, s, Objective::kEnergy));

  constexpr int kThreads = 6;
  StartGate gate(kThreads);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      // Stagger starting offsets so different threads own different keys.
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::size_t j = (i + static_cast<std::size_t>(t)) % trace.size();
        if (!(cache.config(plat, trace[j], Objective::kEnergy) == expected[j]))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.searches(), trace.size());
  EXPECT_EQ(cache.size(), trace.size());
}

// ---------------------------------------------------------------------------
// 2. Nested run_helping: pool workers re-entering the pool.
// ---------------------------------------------------------------------------

TEST(ConcurrencyStress, NestedRunHelpingFromPoolWorkers) {
  common::ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::uint64_t> cell(kOuter * kInner, 0);
  pool.run_helping(kOuter, [&](std::size_t i) {
    // Each outer task re-enters the pool — the same shape as a pooled batch
    // whose scenarios run the sharded Oracle search internally.
    pool.run_helping(kInner, [&, i](std::size_t j) { cell[i * kInner + j] = i * 1000 + j; });
  });
  for (std::size_t i = 0; i < kOuter; ++i)
    for (std::size_t j = 0; j < kInner; ++j) EXPECT_EQ(cell[i * kInner + j], i * 1000 + j);
}

TEST(ConcurrencyStress, ShardedOracleSearchFromPoolWorkers) {
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("SHA", 3, 17);
  common::ThreadPool pool(3);

  // Serial reference, then the same searches run *inside* pool workers with
  // the search itself sharded on the same pool (nested run_helping).
  std::vector<std::pair<soc::SocConfig, double>> serial;
  serial.reserve(trace.size());
  for (const auto& s : trace)
    serial.push_back(oracle_search(plat, s, Objective::kEnergy, nullptr));

  std::vector<std::pair<soc::SocConfig, double>> pooled(trace.size());
  pool.run_helping(trace.size(), [&](std::size_t i) {
    pooled[i] = oracle_search(plat, trace[i], Objective::kEnergy, &pool);
  });

  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(pooled[i].first, serial[i].first) << "snippet " << i;
    EXPECT_EQ(pooled[i].second, serial[i].second) << "snippet " << i;
  }
}

// ---------------------------------------------------------------------------
// 3. run_any_streaming: generator/sink on the caller thread vs. workers.
// ---------------------------------------------------------------------------

/// Deterministic per-scenario "work": a few rounds of FNV mixing, so the
/// result depends only on the index, never on scheduling.
std::uint64_t stream_value(std::uint64_t i) {
  std::uint64_t h = kFnvOffsetBasis;
  for (int round = 0; round < 64; ++round) fnv1a_mix(h, i + static_cast<std::uint64_t>(round));
  return h;
}

/// Runs a streaming sweep of `n` scenarios and folds the delivered stream
/// (ids + values, in delivery order) into one order-sensitive checksum.
std::uint64_t stream_checksum(std::size_t threads, std::size_t n, std::size_t shard_size) {
  ExperimentEngine engine(ExperimentOptions{threads});
  std::size_t next = 0;
  const auto generator = [&]() -> std::optional<AnyScenario> {
    if (next >= n) return std::nullopt;
    const std::uint64_t i = next++;
    char id[32];
    std::snprintf(id, sizeof id, "s%04llu", static_cast<unsigned long long>(i));
    return AnyScenario(id, [i, sid = std::string(id)] {
      const double v = static_cast<double>(stream_value(i) >> 11);  // exact in a double
      return AnyResult(sid, i, Metrics{{"v", v}});
    });
  };
  std::uint64_t checksum = kFnvOffsetBasis;
  std::size_t delivered = 0;
  const auto sink = [&](AnyResult&& r) {
    ++delivered;
    for (char c : r.id()) fnv1a_mix(checksum, static_cast<std::uint64_t>(c));
    fnv1a_mix(checksum, static_cast<std::uint64_t>(r.metric("v")));
  };
  EXPECT_EQ(engine.run_any_streaming(generator, sink, StreamOptions{shard_size}), n);
  EXPECT_EQ(delivered, n);
  return checksum;
}

TEST(ConcurrencyStress, StreamingSweepBitwiseEqualSerialVsParallel) {
  constexpr std::size_t kPopulation = 96;
  constexpr std::size_t kShard = 8;
  const std::uint64_t serial = stream_checksum(1, kPopulation, kShard);
  // Several worker counts, several repeats: the delivered stream (order
  // included) must be the serial stream exactly, every time.
  for (const std::size_t threads : {2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 3; ++repeat)
      EXPECT_EQ(stream_checksum(threads, kPopulation, kShard), serial)
          << threads << " threads, repeat " << repeat;
  }
}

// ---------------------------------------------------------------------------
// 4. ArtifactStore: concurrent flush / preload / put / get on one directory.
// ---------------------------------------------------------------------------

TEST(ConcurrencyStress, ArtifactStoreConcurrentFlushAndPreload) {
  const fs::path dir = fresh_dir("flush");
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("FFT", 3, 11);
  OracleCache cache(std::make_shared<ArtifactStore>(dir.string()));

  // Writers resolve snippets (filling stripes) and flush mid-stream while
  // readers open the same directory and preload whatever is durable yet.
  // The atomic-rename write contract makes every preloaded entry complete
  // and bitwise equal to the writer's value; the count only grows.
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  StartGate gate(kWriters + kReaders);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (std::size_t i = 0; i < trace.size(); ++i) {
        cache.config(plat, trace[(i + static_cast<std::size_t>(t)) % trace.size()],
                     Objective::kEnergy);
        cache.flush();
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      gate.arrive_and_wait();
      for (int round = 0; round < 4; ++round) {
        const ArtifactStore reader(dir.string());
        if (reader.load_oracle_entries().size() > trace.size()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  cache.flush();
  EXPECT_EQ(cache.searches(), trace.size());

  // A warm process sees exactly the flushed entries and repays zero sweeps.
  OracleCache warm(std::make_shared<ArtifactStore>(dir.string()));
  EXPECT_EQ(warm.store_loaded(), trace.size());
  for (const auto& s : trace) {
    EXPECT_EQ(warm.config(plat, s, Objective::kEnergy), cache.config(plat, s, Objective::kEnergy));
  }
  EXPECT_EQ(warm.searches(), 0u);
}

TEST(ConcurrencyStress, ArtifactStoreConcurrentBlobPutGet) {
  const fs::path dir = fresh_dir("blob");
  ArtifactStore store(dir.string());
  std::vector<double> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<double>(i) * 0.5 - 3.0;

  // All writers store identical bytes under one (name, key) — the store's
  // last-writer-wins contract for deterministic values.  Readers must only
  // ever observe "absent" or the complete payload, never a torn file.
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  StartGate gate(kWriters + kReaders);
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      gate.arrive_and_wait();
      for (int round = 0; round < 8; ++round) store.put_blob("weights", 42, payload);
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      gate.arrive_and_wait();
      bool seen = false;
      while (!seen) {
        const auto got = store.get_blob("weights", 42);
        if (!got.has_value()) continue;  // not yet durable: allowed
        if (*got != payload) torn.fetch_add(1);
        seen = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(store.get_blob("weights", 42), payload);
}

}  // namespace
}  // namespace oal::core
