// Tests for table formatting and the Sobol low-discrepancy sequence.
#include <gtest/gtest.h>

#include <cmath>

#include "common/sobol.h"
#include "common/table.h"

namespace oal::common {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "1"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Sobol, PointsInUnitCube) {
  SobolSequence s(5);
  for (int i = 0; i < 200; ++i) {
    const auto p = s.next();
    ASSERT_EQ(p.size(), 5u);
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Sobol, FirstNontrivialPointsAreHalves) {
  SobolSequence s(2);
  s.skip(1);  // drop all-zeros
  const auto p = s.next();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(Sobol, LowDiscrepancyBeatsGridOnMean) {
  // The mean of the first n points should converge to 0.5 quickly.
  SobolSequence s(3);
  s.skip(1);
  double sum0 = 0.0, sum1 = 0.0, sum2 = 0.0;
  const int n = 256;
  for (int i = 0; i < n; ++i) {
    const auto p = s.next();
    sum0 += p[0];
    sum1 += p[1];
    sum2 += p[2];
  }
  EXPECT_NEAR(sum0 / n, 0.5, 0.01);
  EXPECT_NEAR(sum1 / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n, 0.5, 0.01);
}

TEST(Sobol, StratificationIn1D) {
  // The first 2^k points of a Sobol sequence hit every dyadic interval once.
  SobolSequence s(1);
  std::vector<int> bucket(16, 0);
  s.skip(1);
  for (int i = 0; i < 16; ++i) {
    const auto p = s.next();
    bucket[static_cast<std::size_t>(p[0] * 16.0)]++;
  }
  int occupied = 0;
  for (int b : bucket) occupied += b > 0;
  EXPECT_GE(occupied, 15);  // near-perfect stratification
}

TEST(Sobol, DimensionLimits) {
  EXPECT_THROW(SobolSequence(0), std::invalid_argument);
  EXPECT_THROW(SobolSequence(17), std::invalid_argument);
  EXPECT_NO_THROW(SobolSequence(16));
}

TEST(SobolGrid, ScalesToBox) {
  const auto pts = sobol_grid(64, {-1.0, 10.0}, {1.0, 20.0});
  ASSERT_EQ(pts.size(), 64u);
  for (const auto& p : pts) {
    EXPECT_GE(p[0], -1.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 10.0);
    EXPECT_LE(p[1], 20.0);
  }
}

TEST(SobolGrid, MismatchedBoundsThrow) {
  EXPECT_THROW(sobol_grid(4, {0.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace oal::common
