// Tests for the synthetic CPU and GPU benchmark generators.
#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::workloads {
namespace {

TEST(CpuBenchmarks, SixteenAppsInPaperOrder) {
  const auto& all = CpuBenchmarks::all();
  ASSERT_EQ(all.size(), 16u);
  EXPECT_EQ(all.front().name, "BML");
  EXPECT_EQ(all.back().name, "Blkschls-4T");
  EXPECT_EQ(CpuBenchmarks::of_suite(Suite::kMiBench).size(), 10u);
  EXPECT_EQ(CpuBenchmarks::of_suite(Suite::kCortex).size(), 4u);
  EXPECT_EQ(CpuBenchmarks::of_suite(Suite::kParsec).size(), 2u);
}

TEST(CpuBenchmarks, AppIdsUniqueAndStable) {
  std::set<std::uint32_t> ids;
  for (const auto& a : CpuBenchmarks::all()) ids.insert(a.app_id);
  EXPECT_EQ(ids.size(), 16u);
  EXPECT_EQ(CpuBenchmarks::by_name("Kmeans").suite, Suite::kCortex);
  EXPECT_THROW(CpuBenchmarks::by_name("nope"), std::invalid_argument);
}

TEST(CpuBenchmarks, TraceLengthAndAppId) {
  common::Rng rng(1);
  const auto& app = CpuBenchmarks::by_name("FFT");
  const auto t = CpuBenchmarks::trace(app, 100, rng);
  ASSERT_EQ(t.size(), 100u);
  for (const auto& s : t) EXPECT_EQ(s.app_id, app.app_id);
}

TEST(CpuBenchmarks, TraceIsDeterministicGivenSeed) {
  const auto& app = CpuBenchmarks::by_name("Qsort");
  common::Rng r1(9), r2(9);
  const auto a = CpuBenchmarks::trace(app, 50, r1);
  const auto b = CpuBenchmarks::trace(app, 50, r2);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a[i].l2_mpki, b[i].l2_mpki);
    EXPECT_DOUBLE_EQ(a[i].base_cpi_little, b[i].base_cpi_little);
  }
}

TEST(CpuBenchmarks, SnippetsVaryButStayNearPhaseMean) {
  common::Rng rng(2);
  const auto& app = CpuBenchmarks::by_name("Kmeans");
  const auto t = CpuBenchmarks::trace(app, 200, rng);
  std::vector<double> mpki;
  for (const auto& s : t) mpki.push_back(s.l2_mpki);
  EXPECT_GT(common::stddev(mpki), 0.05);          // not constant
  EXPECT_GT(common::mean(mpki), 4.0);             // stays memory-bound
  EXPECT_LT(common::mean(mpki), 14.0);
}

TEST(CpuBenchmarks, SuiteDistributionShiftExists) {
  // The premise of Table II: MiBench occupies a different region of
  // descriptor space than Cortex (memory intensity) and PARSEC (parallelism).
  common::Rng rng(3);
  auto suite_mean_mpki = [&](Suite s) {
    double total = 0.0;
    int n = 0;
    for (const auto& app : CpuBenchmarks::of_suite(s)) {
      for (const auto& snip : CpuBenchmarks::trace(app, 40, rng)) {
        total += snip.l2_mpki;
        ++n;
      }
    }
    return total / n;
  };
  EXPECT_LT(suite_mean_mpki(Suite::kMiBench), 3.0);
  EXPECT_GT(suite_mean_mpki(Suite::kCortex), 4.0);

  for (const auto& app : CpuBenchmarks::of_suite(Suite::kParsec)) {
    for (const auto& snip : CpuBenchmarks::trace(app, 20, rng))
      EXPECT_GT(snip.parallel_fraction, 0.8);
  }
  for (const auto& app : CpuBenchmarks::of_suite(Suite::kMiBench)) {
    for (const auto& snip : CpuBenchmarks::trace(app, 20, rng))
      EXPECT_LT(snip.parallel_fraction, 0.2);
  }
}

TEST(CpuBenchmarks, ThreadCountsDistinguishParsecVariants) {
  EXPECT_EQ(CpuBenchmarks::by_name("Blkschls-2T").phases[0].mean.max_threads, 2);
  EXPECT_EQ(CpuBenchmarks::by_name("Blkschls-4T").phases[0].mean.max_threads, 4);
}

TEST(CpuBenchmarks, SequenceConcatenatesWithBoundaries) {
  common::Rng rng(4);
  const std::vector<AppSpec> apps{CpuBenchmarks::by_name("SHA"),
                                  CpuBenchmarks::by_name("Kmeans")};
  std::vector<std::size_t> bounds;
  const auto seq = CpuBenchmarks::sequence(apps, rng, &bounds);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], apps[0].default_snippets);
  EXPECT_EQ(seq.size(), apps[0].default_snippets + apps[1].default_snippets);
  EXPECT_EQ(seq[bounds[1]].app_id, apps[1].app_id);
}

TEST(GpuBenchmarks, TenFig5Workloads) {
  const auto& suite = GpuBenchmarks::fig5_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[1].name, "AngryBirds");
  EXPECT_EQ(suite[7].name, "SharkDash");
  // Intensity ordering that drives the Fig. 5 savings spread.
  EXPECT_GT(GpuBenchmarks::by_name("AngryBirds").mean_render_cycles,
            GpuBenchmarks::by_name("SharkDash").mean_render_cycles * 5.0);
  EXPECT_THROW(GpuBenchmarks::by_name("nope"), std::invalid_argument);
}

TEST(GpuBenchmarks, TraceStatistics) {
  common::Rng rng(5);
  const auto& spec = GpuBenchmarks::by_name("EpicCitadel");
  const auto frames = GpuBenchmarks::trace(spec, 600, rng);
  ASSERT_EQ(frames.size(), 600u);
  std::vector<double> cycles;
  for (const auto& f : frames) {
    EXPECT_GT(f.render_cycles, 0.0);
    EXPECT_GT(f.mem_bytes, 0.0);
    EXPECT_EQ(f.workload_id, spec.id);
    cycles.push_back(f.render_cycles);
  }
  const double m = common::mean(cycles);
  EXPECT_NEAR(m, spec.mean_render_cycles, spec.mean_render_cycles * 0.25);
  EXPECT_GT(common::stddev(cycles) / m, 0.05);  // scene dynamics present
}

TEST(GpuBenchmarks, Nenamark2HasStrongDynamics) {
  common::Rng rng(6);
  const auto frames = GpuBenchmarks::nenamark2(800, rng);
  std::vector<double> cycles;
  for (const auto& f : frames) cycles.push_back(f.render_cycles);
  EXPECT_GT(common::stddev(cycles) / common::mean(cycles), 0.15);
}

TEST(GpuBenchmarks, DeterministicTraces) {
  common::Rng r1(7), r2(7);
  const auto a = GpuBenchmarks::nenamark2(50, r1);
  const auto b = GpuBenchmarks::nenamark2(50, r2);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a[i].render_cycles, b[i].render_cycles);
}

}  // namespace
}  // namespace oal::workloads
