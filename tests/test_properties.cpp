// Parameterized property tests: invariants that must hold across sweeps of
// workloads, configurations and model dimensions — not just hand-picked
// examples.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "ml/rls.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal {
namespace {

// ---- Platform invariants over a workload-descriptor grid --------------------

struct WorkloadPoint {
  double cpi_l;
  double cpi_b;
  double mpki;
  double pf;
  int threads;
};

class PlatformProperties : public ::testing::TestWithParam<WorkloadPoint> {
 protected:
  soc::SnippetDescriptor make_snippet() const {
    const WorkloadPoint& p = GetParam();
    soc::SnippetDescriptor s;
    s.instructions = 20e6;
    s.base_cpi_little = p.cpi_l;
    s.base_cpi_big = p.cpi_b;
    s.l2_mpki = p.mpki;
    s.branch_mpki = 2.0;
    s.parallel_fraction = p.pf;
    s.max_threads = p.threads;
    return s;
  }
  soc::BigLittlePlatform plat_;
};

TEST_P(PlatformProperties, EnergyTimePowerConsistentEverywhere) {
  const auto s = make_snippet();
  for (std::size_t i = 0; i < plat_.space().size(); i += 331) {
    const auto r = plat_.execute_ideal(s, plat_.space().config_at(i));
    EXPECT_GT(r.exec_time_s, 0.0);
    EXPECT_GT(r.avg_power_w, 0.0);
    EXPECT_NEAR(r.energy_j, r.avg_power_w * r.exec_time_s, 1e-12);
    EXPECT_GE(r.counters.little_cluster_utilization, 0.0);
    EXPECT_LE(r.counters.big_cluster_utilization, 1.0);
    EXPECT_GE(r.counters.avg_runnable_threads, 1.0);
  }
}

TEST_P(PlatformProperties, FrequencyMonotoneInTimeAtFixedCores) {
  const auto s = make_snippet();
  // With cores fixed, raising the serving cluster's frequency can never slow
  // execution down.
  for (int nb : {0, 2}) {
    double prev_t = 1e300;
    for (int fb = 0; fb < 19; fb += 3) {
      const soc::SocConfig c{2, nb, 6, fb};
      const double t = plat_.execute_ideal(s, c).exec_time_s;
      if (nb > 0) {
        EXPECT_LE(t, prev_t * (1.0 + 1e-9));
      }
      prev_t = t;
    }
  }
  double prev_t = 1e300;
  for (int fl = 0; fl < 13; fl += 2) {
    const soc::SocConfig c{2, 0, fl, 0};
    const double t = plat_.execute_ideal(s, c).exec_time_s;
    EXPECT_LE(t, prev_t * (1.0 + 1e-9));
    prev_t = t;
  }
}

TEST_P(PlatformProperties, MoreCoresNeverSlower) {
  const auto s = make_snippet();
  for (int nl = 1; nl < 4; ++nl) {
    const double t_less = plat_.execute_ideal(s, {nl, 1, 8, 10}).exec_time_s;
    const double t_more = plat_.execute_ideal(s, {nl + 1, 1, 8, 10}).exec_time_s;
    EXPECT_LE(t_more, t_less * (1.0 + 1e-9));
  }
}

TEST_P(PlatformProperties, BigFrequencyInertWhenGated) {
  const auto s = make_snippet();
  const auto a = plat_.execute_ideal(s, {2, 0, 6, 2});
  const auto b = plat_.execute_ideal(s, {2, 0, 6, 17});
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST_P(PlatformProperties, OracleBeatsEveryProbe) {
  const auto s = make_snippet();
  const double best = plat_.execute_ideal(s, plat_.best_energy_config(s)).energy_j;
  common::Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const auto c = plat_.space().config_at(
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(plat_.space().size()) - 1)));
    EXPECT_LE(best, plat_.execute_ideal(s, c).energy_j + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, PlatformProperties,
    ::testing::Values(WorkloadPoint{1.3, 0.7, 0.2, 0.02, 1},   // ILP-rich serial
                      WorkloadPoint{1.8, 1.1, 2.5, 0.05, 1},   // branchy
                      WorkloadPoint{2.1, 1.1, 9.0, 0.05, 1},   // memory-bound serial
                      WorkloadPoint{1.5, 0.8, 0.8, 0.92, 2},   // parallel 2T
                      WorkloadPoint{1.5, 0.8, 0.9, 0.95, 4},   // parallel 4T
                      WorkloadPoint{2.3, 1.5, 14.0, 0.5, 4},   // extreme memory + mixed
                      WorkloadPoint{1.2, 0.6, 0.05, 0.0, 1})); // pure compute

// ---- Config-space bijection over index ranges -------------------------------

class ConfigRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConfigRoundTrip, IndexOfConfigAtIsIdentity) {
  soc::ConfigSpace space;
  const std::size_t base = GetParam();
  for (std::size_t i = base; i < std::min(base + 494, space.size()); ++i) {
    EXPECT_EQ(space.index_of(space.config_at(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBlocks, ConfigRoundTrip,
                         ::testing::Values(0u, 494u, 988u, 1482u, 1976u, 2470u, 2964u, 3458u,
                                           3952u, 4446u));

// ---- RLS recovery across dimensions and forgetting factors ------------------

class RlsRecovery : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RlsRecovery, RecoversRandomLinearMap) {
  const auto [dim, lambda] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(dim * 1000 + static_cast<int>(lambda * 100)));
  common::Vec truth(static_cast<std::size_t>(dim));
  for (double& v : truth) v = rng.uniform(-3.0, 3.0);
  ml::RecursiveLeastSquares rls(static_cast<std::size_t>(dim), {lambda, 1e3, 0.0});
  for (int i = 0; i < 200 * dim; ++i) {
    common::Vec x(static_cast<std::size_t>(dim));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    rls.update(x, common::dot(truth, x) + rng.normal(0.0, 0.001));
  }
  common::Vec probe(static_cast<std::size_t>(dim));
  for (double& v : probe) v = rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(rls.predict(probe), common::dot(truth, probe), 0.05);
}

INSTANTIATE_TEST_SUITE_P(DimLambdaGrid, RlsRecovery,
                         ::testing::Combine(::testing::Values(2, 5, 10, 20),
                                            ::testing::Values(0.97, 0.99, 1.0)));

// ---- Workload generator invariants over all 16 apps -------------------------

class AppTraceProperties : public ::testing::TestWithParam<int> {};

TEST_P(AppTraceProperties, DescriptorsStayPhysical) {
  const auto& app = workloads::CpuBenchmarks::all()[static_cast<std::size_t>(GetParam())];
  common::Rng rng(7);
  for (const auto& s : workloads::CpuBenchmarks::trace(app, 120, rng)) {
    EXPECT_GT(s.base_cpi_little, 0.3);
    EXPECT_LT(s.base_cpi_little, 10.0);
    EXPECT_GT(s.base_cpi_big, 0.2);
    EXPECT_LE(s.base_cpi_big, s.base_cpi_little);  // OoO never slower per instr
    EXPECT_GE(s.l2_mpki, 0.0);
    EXPECT_LT(s.l2_mpki, 60.0);
    EXPECT_GE(s.parallel_fraction, 0.0);
    EXPECT_LE(s.parallel_fraction, 0.98);
    EXPECT_GE(s.max_threads, 1);
    EXPECT_EQ(s.app_id, app.app_id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, AppTraceProperties, ::testing::Range(0, 16));

}  // namespace
}  // namespace oal
