// Known-bad fixture: container growth inside a marked hot-path region.
// The steady-state decide path runs on preallocated scratch (PR 8); a
// push_back here would reallocate under the allocation guard and regress
// the per-decision latency contract.  Setup code outside the region (the
// constructor reserve below) is exempt.
// lint-expect: hot-path-alloc=1
#include <vector>

struct Decider {
  std::vector<double> scratch;

  Decider() { scratch.reserve(64); }  // setup: outside the region, exempt

  // oal-lint: hot-path
  int decide(double x) {
    scratch.push_back(x);  // growth in steady state: flagged
    return static_cast<int>(scratch.size());
  }
  // oal-lint: hot-path-end
};
