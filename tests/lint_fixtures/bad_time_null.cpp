// Known-bad fixture: time(nullptr) is the classic nondeterministic seed
// source; nothing in the tree may depend on wall-clock identity.
// lint-expect: nondet-seed=1
#include <ctime>

long stamp() { return static_cast<long>(time(nullptr)); }
