// Escape-hatch fixture: one would-be violation of each class, every one
// carrying an `// oal-lint: allow(<rule>)` with a reason — the scan of this
// file must report nothing.  (The selftest also proves allows are *load-
// bearing*: the bad_* twins of these snippets do fire.)
// lint-expect:
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <unordered_map>
#include <vector>

double tolerance(const char* text) {
  // Demonstration only — real code must check the end pointer.
  // oal-lint: allow(unchecked-parse)
  return std::atof(text);
}

int entropy() {
  return std::rand();  // oal-lint: allow(nondet-rand) demonstration only
}

long stamp() {
  return static_cast<long>(time(nullptr));  // oal-lint: allow(nondet-seed) log stamp, not a seed
}

double sum(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  // Addition order is not bitwise-stable across hash orders in general; this
  // demonstration pretends the caller tolerates that.
  // oal-lint: allow(unordered-iter)
  for (const auto& [k, v] : m) total += v;
  return total;
}

struct Grower {
  std::vector<double> scratch;
  // oal-lint: hot-path
  void warm(double x) {
    scratch.push_back(x);  // oal-lint: allow(hot-path-alloc) one-time warmup inside the region
  }
  // oal-lint: hot-path-end
};

void write_record(double energy_j) {
  // oal-lint: allow(float-format) demonstration of the suppression form
  std::printf("{\"bench\":\"demo\",\"metrics\":{\"energy_j\":%g}}\n", energy_j);
}
