// Known-bad fixture: seeding an engine from the wall clock makes every run
// unique — the determinism contract (parallel == serial, warm == cold)
// cannot hold when seeds drift with time.
// lint-expect: nondet-seed=1
#include <chrono>

struct Rng {
  explicit Rng(unsigned long long seed);
};

Rng make_rng() {
  return Rng(static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
}
