// Known-bad fixture: std::rand draws from hidden global state — parallel
// scenarios would race on it and no run could reproduce bitwise.  All
// randomness flows through common::Rng with an explicit seed.
// lint-expect: nondet-rand=1
#include <cstdlib>

int noisy_choice(int n) { return std::rand() % n; }
