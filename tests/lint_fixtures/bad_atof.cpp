// Known-bad fixture: the atoi/atof family reports no errors at all — a typo
// in a tolerance flag parses to 0.0 and turns a 5% gate into a bitwise one
// (the exact bug fixed in PR 4's jsonl_compare hardening).
// lint-expect: unchecked-parse=1
#include <cstdlib>

double parse_tolerance(const char* text) { return std::atof(text); }
