// Known-bad fixture: strtod with a null end pointer silently maps garbage
// to 0.0 — indistinguishable from a real parse of "0".  The checked form
// (non-null end pointer, inspected by the caller) passes the rule.
// lint-expect: unchecked-parse=1
#include <cstdlib>

double parse_bad(const char* text) { return std::strtod(text, nullptr); }

double parse_good(const char* text, bool& ok) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  ok = end != text && *end == '\0';
  return v;
}
