// Known-bad fixture: iterating an unordered_map in hash order and printing
// the visit order — the JSONL/stdout byte-identity gates break whenever the
// standard library (or just the allocation pattern) changes bucket order.
// Sort keys first, as TabularQ::export_state and OracleCache::flush do.
// lint-expect: unordered-iter=1
#include <cstdio>
#include <string>
#include <unordered_map>

void dump(const std::unordered_map<std::string, double>& metrics) {
  for (const auto& [name, value] : metrics) {
    std::printf("%s=%.17g\n", name.c_str(), value);
  }
}
