// Clean reference fixture: the compliant spelling of every pattern the bad_*
// fixtures violate.  Scanning this file must report nothing — it pins the
// rules' false-positive floor (checked strto*, seeded Rng, sorted unordered
// iteration, scratch-reusing hot path, %.17g formatting).
// lint-expect:
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

double tolerance(const char* text, bool& ok) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  ok = end != text && *end == '\0';
  return v;
}

struct Rng {
  explicit Rng(unsigned long long seed);
};

Rng reproducible_rng() { return Rng(2020); }

void dump_sorted(const std::unordered_map<int, double>& metrics) {
  std::vector<int> keys;
  keys.reserve(metrics.size());
  for (const auto& [k, v] : metrics) keys.push_back(k);  // oal-lint: allow(unordered-iter) sorted below
  std::sort(keys.begin(), keys.end());
  for (int k : keys) std::printf("%d=%.17g\n", k, metrics.at(k));
}

struct Decider {
  std::vector<double> scratch;

  explicit Decider(std::size_t capacity) : scratch(capacity) {}

  // oal-lint: hot-path
  double decide(double x) {
    double best = x;
    for (double& slot : scratch) best = std::max(best, slot *= 0.5);
    return best;
  }
  // oal-lint: hot-path-end
};

void write_record(double energy_j) {
  std::printf("{\"bench\":\"demo\",\"metrics\":{\"energy_j\":%.17g}}\n", energy_j);
}
