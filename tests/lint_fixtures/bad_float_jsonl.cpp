// Known-bad fixture: JSONL-adjacent code (this file hand-builds a raw
// "metrics" record) printing a double at the printf default 6 significant
// digits.  Gated baselines compare %.17g strings; default precision
// truncates and the gate sees a phantom regression.
// lint-expect: float-format=1
#include <cstdio>

void write_record(double energy_j) {
  std::printf("{\"bench\":\"demo\",\"metrics\":{\"energy_j\":%g}}\n", energy_j);
}
