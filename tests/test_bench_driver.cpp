// Tests for the shared bench CLI driver: flag parsing (exit 2 with usage on
// unknown arguments), --list, prefix selection through the registry, size
// options, --json wiring, and the subset-tolerant ResultIndex.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "core/domain.h"
#include "core/experiment.h"
#include "core/jsonl_compare.h"
#include "core/scenario_registry.h"

namespace oal::bench {
namespace {

using core::AnyResult;
using core::AnyScenario;
using core::Metrics;
using core::ScenarioRegistry;

/// argv shim: parse() takes char** but never mutates the strings.
struct Args {
  explicit Args(std::vector<std::string> words) : storage(std::move(words)) {
    ptrs.push_back(const_cast<char*>("bench_test"));
    for (const std::string& w : storage) ptrs.push_back(const_cast<char*>(w.c_str()));
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

/// A tiny two-family catalog of pure closures.
ScenarioRegistry tiny_registry() {
  ScenarioRegistry reg;
  for (const char* name : {"fam/a", "fam/b", "other/c"}) {
    reg.add_any(name, [name] {
      return AnyScenario(name, [name] {
        return AnyResult(name, 0, Metrics{{"value", 1.0}});
      });
    });
  }
  return reg;
}

TEST(BenchDriver, DefaultsRunEverything) {
  BenchDriver driver("bench_test");
  Args args({});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  EXPECT_FALSE(driver.listing());
  EXPECT_TRUE(driver.prefixes().empty());
  EXPECT_FALSE(driver.json().enabled());

  const auto batch = driver.select(tiny_registry());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id(), "fam/a");
  EXPECT_EQ(batch[2].id(), "other/c");
}

TEST(BenchDriver, UnknownFlagExitsTwoWithUsage) {
  BenchDriver driver("bench_test");
  Args args({"--bogus"});
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(driver.parse(args.argc(), args.argv()));
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(driver.exit_code(), 2);
  EXPECT_NE(err.find("unknown flag '--bogus'"), std::string::npos);
  EXPECT_NE(err.find("usage: bench_test"), std::string::npos);
}

TEST(BenchDriver, HelpExitsZero) {
  BenchDriver driver("bench_test");
  Args args({"--help"});
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(driver.parse(args.argc(), args.argv()));
  EXPECT_EQ(driver.exit_code(), 0);
  EXPECT_NE(::testing::internal::GetCapturedStdout().find("usage: bench_test"),
            std::string::npos);
}

TEST(BenchDriver, SizeOptionsParseAndValidate) {
  {
    BenchDriver driver("bench_test");
    std::size_t frames = 100;
    driver.add_size_option("--frames", &frames, "trace length");
    Args args({"--frames", "640"});
    ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
    EXPECT_EQ(frames, 640u);
  }
  for (const char* bad : {"0", "-3", "abc", "12x"}) {
    BenchDriver driver("bench_test");
    std::size_t frames = 100;
    driver.add_size_option("--frames", &frames, "trace length");
    Args args({"--frames", bad});
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(driver.parse(args.argc(), args.argv())) << bad;
    (void)::testing::internal::GetCapturedStderr();
    EXPECT_EQ(driver.exit_code(), 2);
    EXPECT_EQ(frames, 100u);  // untouched on error
  }
  {
    BenchDriver driver("bench_test");
    std::size_t frames = 100;
    driver.add_size_option("--frames", &frames, "trace length");
    Args args({"--frames"});
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(driver.parse(args.argc(), args.argv()));
    (void)::testing::internal::GetCapturedStderr();
    EXPECT_EQ(driver.exit_code(), 2);
  }
}

TEST(BenchDriver, SizeOptionOverflowIsRejectedNotTruncated) {
  // strtoull silently saturates (sets ERANGE) on values past 2^64; a fleet
  // sweep invoked with --devices 99999999999999999999 must exit 2 with
  // usage, not run some wrapped/truncated population size.
  for (const char* huge : {"99999999999999999999", "18446744073709551616",
                           "340282366920938463463374607431768211456"}) {
    BenchDriver driver("bench_test");
    std::size_t devices = 200;
    driver.add_size_option("--devices", &devices, "population size");
    Args args({"--devices", huge});
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(driver.parse(args.argc(), args.argv())) << huge;
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(driver.exit_code(), 2) << huge;
    EXPECT_NE(err.find("out of range"), std::string::npos) << huge;
    EXPECT_NE(err.find("usage: bench_test"), std::string::npos) << huge;
    EXPECT_EQ(devices, 200u) << huge;  // untouched on error
  }
  // The exact maximum still parses (no off-by-one at the boundary).
  BenchDriver driver("bench_test");
  std::size_t devices = 200;
  driver.add_size_option("--devices", &devices, "population size");
  Args args({"--devices", "18446744073709551615"});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  EXPECT_EQ(devices, 18446744073709551615ull);
}

TEST(BenchDriver, PrefixSelectionUnionIsDeduplicatedAndOrdered) {
  BenchDriver driver("bench_test");
  Args args({"other", "fam/a", "other/c"});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  const auto batch = driver.select(tiny_registry());
  ASSERT_EQ(batch.size(), 2u);  // other/c selected twice, counted once
  EXPECT_EQ(batch[0].id(), "fam/a");
  EXPECT_EQ(batch[1].id(), "other/c");
}

TEST(BenchDriver, ListPrintsSelectedNames) {
  BenchDriver driver("bench_test");
  Args args({"--list", "fam"});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  EXPECT_TRUE(driver.listing());
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(driver.list(tiny_registry()), 0);
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), "fam/a\nfam/b\n");
}

TEST(BenchDriver, ListWithUnknownPrefixFails) {
  BenchDriver driver("bench_test");
  Args args({"--list", "fam/a/deeper"});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(driver.list(tiny_registry()), 2);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("selects no arm"), std::string::npos);
}

TEST(BenchDriver, SelectWithUnknownPrefixExitsTwo) {
  EXPECT_EXIT(
      {
        BenchDriver driver("bench_test");
        Args args({"nope"});
        if (!driver.parse(args.argc(), args.argv())) std::exit(3);
        (void)driver.select(tiny_registry());
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "selects no arm");
}

TEST(BenchDriver, JsonFlagBindsAppendingWriter) {
  const std::string path = std::string(::testing::TempDir()) + "driver_json.jsonl";
  std::remove(path.c_str());
  for (int round = 0; round < 2; ++round) {
    BenchDriver driver("bench_test");
    Args args({"--json", path});
    ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
    ASSERT_TRUE(driver.json().enabled());
    driver.json().write_metrics(driver.bench_name(), "arm/" + std::to_string(round),
                                Metrics{{"m", 1.0 + round}});
  }
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::istringstream text(ss.str());
  const auto recs = core::read_jsonl(text);
  ASSERT_EQ(recs.size(), 2u);  // both driver invocations' records survive
  EXPECT_EQ(recs[0].id, "arm/0");
  EXPECT_EQ(recs[1].id, "arm/1");
  std::remove(path.c_str());
}

TEST(BenchDriver, SelectedBatchRunsOnEngine) {
  BenchDriver driver("bench_test");
  Args args({"fam"});
  ASSERT_TRUE(driver.parse(args.argc(), args.argv()));
  core::ExperimentEngine engine(core::ExperimentOptions{2});
  const auto results = engine.run_any(driver.select(tiny_registry()));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id(), "fam/a");
  EXPECT_EQ(results[0].metric("value"), 1.0);
}

TEST(ResultIndex, FindsByIdAndToleratesSubsets) {
  std::vector<AnyResult> results;
  results.emplace_back("a/0", 0, Metrics{{"m", 1.0}});
  results.emplace_back("a/1", 0, Metrics{{"m", 2.0}});
  const ResultIndex index(results);
  ASSERT_NE(index.find("a/0"), nullptr);
  EXPECT_EQ(index.find("a/0")->metric("m"), 1.0);
  EXPECT_EQ(index.find("missing"), nullptr);
  EXPECT_TRUE(index.has("a/1"));
  EXPECT_TRUE(index.has_all({"a/0", "a/1"}));
  EXPECT_FALSE(index.has_all({"a/0", "missing"}));
}

}  // namespace
}  // namespace oal::bench
