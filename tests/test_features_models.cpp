// Tests for feature extraction and the online power/performance models.
#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "core/models.h"
#include "core/oracle.h"
#include "ml/scaler.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

soc::SnippetDescriptor sample_snippet() {
  soc::SnippetDescriptor s;
  s.instructions = 20e6;
  s.base_cpi_little = 1.7;
  s.base_cpi_big = 1.0;
  s.l2_mpki = 4.0;
  s.branch_mpki = 3.0;
  s.parallel_fraction = 0.3;
  s.max_threads = 4;
  return s;
}

TEST(WorkloadFeatures, RatesMatchDescriptors) {
  soc::BigLittlePlatform plat;
  const auto s = sample_snippet();
  const soc::SocConfig c{2, 2, 8, 10};
  const auto r = plat.execute_ideal(s, c);
  const WorkloadFeatures w = workload_features(r.counters, c);
  EXPECT_NEAR(w.mpki, s.l2_mpki, 0.01);
  EXPECT_NEAR(w.bmpki, s.branch_mpki, 0.01);
  EXPECT_NEAR(w.mem_ai, s.mem_access_per_inst, 0.01);
  EXPECT_GT(w.cpi_obs, 0.0);
  EXPECT_GE(w.pf_proxy, 0.0);
  EXPECT_LE(w.pf_proxy, 1.0);
  EXPECT_GE(w.runnable, 1.0);
}

TEST(WorkloadFeatures, ParallelismVisibleThroughRunnable) {
  soc::BigLittlePlatform plat;
  auto par = sample_snippet();
  par.parallel_fraction = 0.9;
  auto ser = sample_snippet();
  ser.parallel_fraction = 0.0;
  ser.max_threads = 1;
  const soc::SocConfig one_core{1, 0, 8, 0};
  const auto wp = workload_features(plat.execute_ideal(par, one_core).counters, one_core);
  const auto ws = workload_features(plat.execute_ideal(ser, one_core).counters, one_core);
  EXPECT_GT(wp.runnable, ws.runnable + 1.0);
}

TEST(FeatureExtractor, PolicyFeatureDimension) {
  soc::BigLittlePlatform plat;
  const FeatureExtractor fx(plat.space());
  const auto r = plat.execute_ideal(sample_snippet(), {2, 2, 8, 10});
  const auto f = fx.policy_features(r.counters, {2, 2, 8, 10});
  EXPECT_EQ(f.size(), fx.policy_dim());
}

TEST(FeatureExtractor, ThermalAwareAppendsWithoutPerturbingBlindFeatures) {
  soc::BigLittlePlatform plat;
  const FeatureExtractor blind(plat.space());
  const FeatureExtractor aware(plat.space(), /*thermal_aware=*/true);
  EXPECT_EQ(aware.policy_dim(), blind.policy_dim() + FeatureExtractor::kThermalDims);

  const soc::SocConfig c{2, 2, 8, 10};
  const auto r = plat.execute_ideal(sample_snippet(), c);

  soc::ThermalTelemetry hot;
  hot.constrained = true;
  hot.junction_c = 55.0;
  hot.skin_c = 41.0;
  hot.junction_limit_c = 85.0;
  hot.skin_limit_c = 45.0;
  hot.ambient_c = 25.0;
  hot.budget_w = 2.0;

  // A blind extractor must be bitwise-insensitive to telemetry: the blind
  // training/runtime path stays byte-identical whether or not a telemetry
  // source is bound.
  const auto f_blind = blind.policy_features(r.counters, c);
  const auto f_blind_hot = blind.policy_features(r.counters, c, hot);
  ASSERT_EQ(f_blind.size(), blind.policy_dim());
  ASSERT_EQ(f_blind_hot.size(), f_blind.size());
  for (std::size_t i = 0; i < f_blind.size(); ++i)
    EXPECT_DOUBLE_EQ(f_blind[i], f_blind_hot[i]);

  // Aware features: the blind prefix is unchanged, thermal dims appended.
  const auto f_aware_hot = aware.policy_features(r.counters, c, hot);
  ASSERT_EQ(f_aware_hot.size(), aware.policy_dim());
  for (std::size_t i = 0; i < f_blind.size(); ++i)
    EXPECT_DOUBLE_EQ(f_aware_hot[i], f_blind[i]);
  const std::size_t base = blind.policy_dim();
  EXPECT_NEAR(f_aware_hot[base + 0], (55.0 - 25.0) / (85.0 - 25.0), 1e-12);
  EXPECT_NEAR(f_aware_hot[base + 1], (41.0 - 25.0) / (45.0 - 25.0), 1e-12);
  EXPECT_NEAR(f_aware_hot[base + 2], 2.0 / soc::ThermalTelemetry::kUnconstrainedBudgetW, 1e-12);

  // Neutral (default) telemetry encodes a cool, unconstrained device.
  const auto f_aware_neutral = aware.policy_features(r.counters, c);
  EXPECT_DOUBLE_EQ(f_aware_neutral[base + 0], 0.0);
  EXPECT_DOUBLE_EQ(f_aware_neutral[base + 1], 0.0);
  EXPECT_DOUBLE_EQ(f_aware_neutral[base + 2], 1.0);
}

TEST(StandardScaler, ConstantFeaturesAreCenteredNotAmplified) {
  // The neutral thermal features are constant across an offline dataset; the
  // scaler must give them scale 1.0 (sklearn behavior), not divide by a ~0
  // std that would launch any runtime deviation to ~1e9.
  ml::StandardScaler scaler;
  scaler.fit({{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}});
  const auto s = scaler.stds();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_GT(s[0], 0.5);  // real variance: standardized normally
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  const auto z = scaler.transform({2.0, 0.75});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 0.75);  // centered at the constant, unscaled

  // Near-constant (but not exactly constant) features are floored, not
  // amplified through a ~0 std: amplification is bounded by 1/kMinScale.
  ml::StandardScaler near;
  near.fit({{0.0}, {1e-5}, {0.0}, {1e-5}});
  EXPECT_DOUBLE_EQ(near.stds()[0], 1e-2);
  EXPECT_LE(std::abs(near.transform({0.75})[0]), 100.0);
}

TEST(OfflineData, ThermalAwareCollectionMatchesPolicyDim) {
  soc::BigLittlePlatform plat;
  common::Rng rng(3);
  const std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("SHA")};
  const OfflineData off = collect_offline_data(plat, apps, Objective::kEnergy, 2, 2, rng,
                                               nullptr, /*thermal_aware=*/true);
  ASSERT_FALSE(off.policy.states.empty());
  const FeatureExtractor aware(plat.space(), true);
  for (const auto& s : off.policy.states) EXPECT_EQ(s.size(), aware.policy_dim());
}

TEST(FeatureExtractor, ModelFeatureDimension) {
  soc::BigLittlePlatform plat;
  const FeatureExtractor fx(plat.space());
  const WorkloadFeatures w;
  EXPECT_EQ(fx.model_features(w, {1, 0, 0, 0}).size(), fx.model_dim());
  EXPECT_EQ(fx.model_features(w, {4, 4, 12, 18}).size(), fx.model_dim());
}

TEST(FeatureExtractor, BigKnobsInertWhenClusterOff) {
  soc::BigLittlePlatform plat;
  const FeatureExtractor fx(plat.space());
  WorkloadFeatures w;
  w.mpki = 3.0;
  const auto a = fx.model_features(w, {2, 0, 5, 3});
  const auto b = fx.model_features(w, {2, 0, 5, 15});
  // With the big cluster gated, its frequency must not change any feature.
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

class ModelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(11);
    const auto apps = workloads::CpuBenchmarks::all();  // train on everything
    data_ = collect_offline_data(plat_, apps, Objective::kEnergy, 10, 5, rng);
    models_.bootstrap(data_.model_samples);
  }
  soc::BigLittlePlatform plat_;
  OnlineSocModels models_{plat_.space()};
  OfflineData data_;
};

TEST_F(ModelFixture, BootstrapPredictsInDistribution) {
  // On the training distribution the bootstrapped models should predict
  // time within ~30% and power within ~25% on most samples.  (The offline
  // fit is a global linear-in-features model over all 4940 configurations;
  // the online RLS updates are what sharpen it around the operating point —
  // covered by OnlineUpdatesReduceErrorOnNewWorkload below.)
  common::Rng rng(12);
  int good_t = 0, good_p = 0, total = 0;
  for (std::size_t i = 0; i < data_.model_samples.size(); i += 13) {
    const auto& s = data_.model_samples[i];
    const double tp = models_.predict_time_s(s.workload, s.config, s.instructions);
    const double pp = models_.predict_power_w(s.workload, s.config);
    good_t += std::abs(tp - s.time_s) / s.time_s < 0.30;
    good_p += std::abs(pp - s.power_w) / s.power_w < 0.25;
    ++total;
  }
  EXPECT_GT(static_cast<double>(good_t) / total, 0.75);
  EXPECT_GT(static_cast<double>(good_p) / total, 0.8);
}

TEST_F(ModelFixture, OnlineUpdatesReduceErrorOnNewWorkload) {
  // Synthetic workload far from anything in training.
  soc::SnippetDescriptor s;
  s.instructions = 20e6;
  s.base_cpi_little = 2.6;
  s.base_cpi_big = 2.1;
  s.l2_mpki = 16.0;
  s.branch_mpki = 8.0;
  s.parallel_fraction = 0.5;
  s.max_threads = 4;
  const soc::SocConfig c{3, 1, 10, 8};
  soc::BigLittlePlatform plat;
  double first_err = -1.0, last_err = 0.0;
  for (int i = 0; i < 60; ++i) {
    const auto r = plat.execute_ideal(s, c);
    const auto w = workload_features(r.counters, c);
    const double pred = models_.predict_time_s(w, c, s.instructions);
    const double err = std::abs(pred - r.exec_time_s) / r.exec_time_s;
    if (first_err < 0.0) first_err = err;
    last_err = err;
    models_.update(ModelSample{w, c, r.exec_time_s, 20e6, r.avg_power_w});
  }
  EXPECT_LT(last_err, 0.05);
  EXPECT_LE(last_err, first_err + 1e-9);
}

TEST_F(ModelFixture, CandidateRankingMatchesGroundTruthLocally) {
  // The models' purpose: rank a local neighborhood like ground truth does.
  soc::BigLittlePlatform plat;
  common::Rng rng(13);
  const auto& app = workloads::CpuBenchmarks::by_name("FFT");
  const auto trace = workloads::CpuBenchmarks::trace(app, 5, rng);
  const soc::SocConfig current{2, 1, 8, 10};
  const auto r = plat.execute_ideal(trace[2], current);
  const auto w = workload_features(r.counters, current);
  const auto cands = plat.space().neighborhood(current, 1, 2);
  // Find predicted and true argmin.
  double best_pred = 1e300, best_true = 1e300;
  soc::SocConfig cp, ct;
  for (const auto& c : cands) {
    const double pe = models_.predict_energy_j(w, c, trace[2].instructions);
    const double te = plat.execute_ideal(trace[2], c).energy_j;
    if (pe < best_pred) { best_pred = pe; cp = c; }
    if (te < best_true) { best_true = te; ct = c; }
  }
  // The config the models pick must be within 5% of the truly best energy.
  const double chosen_true_e = plat.execute_ideal(trace[2], cp).energy_j;
  EXPECT_LT(chosen_true_e / best_true, 1.05);
}

TEST_F(ModelFixture, LogCostMonotoneWithEnergy) {
  const auto& s = data_.model_samples.front();
  const soc::SocConfig a{1, 0, 0, 0};
  const soc::SocConfig b{4, 4, 12, 18};
  const double ea = models_.predict_energy_j(s.workload, a, 20e6);
  const double eb = models_.predict_energy_j(s.workload, b, 20e6);
  const double ca = models_.predict_log_cost(s.workload, a);
  const double cb = models_.predict_log_cost(s.workload, b);
  EXPECT_EQ(ea < eb, ca < cb);
}

TEST(OnlineSocModels, RejectsBadSamples) {
  soc::BigLittlePlatform plat;
  OnlineSocModels m(plat.space());
  EXPECT_THROW(m.bootstrap({}), std::invalid_argument);
  ModelSample s;
  s.time_s = 0.0;
  s.instructions = 1.0;
  s.power_w = 1.0;
  EXPECT_THROW(m.update(s), std::invalid_argument);
}

}  // namespace
}  // namespace oal::core
