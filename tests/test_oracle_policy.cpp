// Tests for Oracle construction, label encoding, dataset collection and the
// offline IL policy.
#include <gtest/gtest.h>

#include "core/il_policy.h"
#include "core/oracle.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

TEST(LabelEncoding, RoundTripsAllKnobs) {
  soc::ConfigSpace space;
  for (std::size_t i = 0; i < space.size(); i += 101) {
    const soc::SocConfig c = space.config_at(i);
    EXPECT_EQ(config_of(labels_of(c)), c);
  }
  EXPECT_THROW(config_of({1, 2, 3}), std::invalid_argument);
}

TEST(Oracle, MatchesExhaustivePlatformSearch) {
  soc::BigLittlePlatform plat;
  common::Rng rng(1);
  const auto& app = workloads::CpuBenchmarks::by_name("SHA");
  const auto trace = workloads::CpuBenchmarks::trace(app, 3, rng);
  const soc::SocConfig via_oracle = oracle_config(plat, trace[0], Objective::kEnergy);
  const soc::SocConfig via_platform = plat.best_energy_config(trace[0]);
  EXPECT_EQ(via_oracle, via_platform);
}

TEST(OracleCache, MatchesUncachedAndCountsHits) {
  soc::BigLittlePlatform plat;
  common::Rng rng(3);
  const auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 3,
                                                     rng);
  OracleCache cache;
  for (const auto& s : trace) {
    EXPECT_EQ(cache.config(plat, s, Objective::kEnergy), oracle_config(plat, s, Objective::kEnergy));
    // cost() reuses the entry config() just created: one miss per snippet.
    EXPECT_EQ(cache.cost(plat, s, Objective::kEnergy), oracle_cost(plat, s, Objective::kEnergy));
  }
  EXPECT_EQ(cache.size(), trace.size());
  EXPECT_EQ(cache.hits(), trace.size());
  // Second pass: all hits, identical values.
  const std::size_t lookups_before = cache.lookups();
  for (const auto& s : trace)
    EXPECT_EQ(cache.config(plat, s, Objective::kEnergy), oracle_config(plat, s, Objective::kEnergy));
  EXPECT_EQ(cache.size(), trace.size());
  EXPECT_EQ(cache.hits(), 2 * trace.size());
  EXPECT_EQ(cache.lookups(), lookups_before + trace.size());
}

TEST(OracleCache, KeyedByObjective) {
  // Same snippet under different objectives must not collide.
  soc::BigLittlePlatform plat;
  common::Rng rng(4);
  const auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Kmeans"),
                                                     1, rng);
  OracleCache cache;
  const auto c_e = cache.config(plat, trace[0], Objective::kEnergy);
  const auto c_p = cache.config(plat, trace[0], Objective::kPerfPerWatt);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(c_e, oracle_config(plat, trace[0], Objective::kEnergy));
  EXPECT_EQ(c_p, oracle_config(plat, trace[0], Objective::kPerfPerWatt));
}

TEST(OracleCache, KeyedByPlatformParams) {
  // One cache may serve differently-parameterized platforms: entries must
  // not alias across them.
  soc::BigLittlePlatform plat_a;
  soc::PlatformParams heavy;
  heavy.ceff_big_nf *= 3.0;  // big cores much more expensive -> different Oracle
  soc::BigLittlePlatform plat_b(heavy);
  common::Rng rng(6);
  const auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 1,
                                                     rng);
  OracleCache cache;
  const auto c_a = cache.config(plat_a, trace[0], Objective::kEnergy);
  const auto c_b = cache.config(plat_b, trace[0], Objective::kEnergy);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(c_a, oracle_config(plat_a, trace[0], Objective::kEnergy));
  EXPECT_EQ(c_b, oracle_config(plat_b, trace[0], Objective::kEnergy));
}

TEST(OracleCache, IgnoresAppIdBookkeeping) {
  // app_id is bookkeeping, not physics: two descriptors differing only in
  // app_id share one entry.
  soc::BigLittlePlatform plat;
  common::Rng rng(5);
  auto trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("SHA"), 1, rng);
  OracleCache cache;
  (void)cache.config(plat, trace[0], Objective::kEnergy);
  trace[0].app_id += 17;
  (void)cache.config(plat, trace[0], Objective::kEnergy);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Oracle, ObjectivesDiffer) {
  // EDP weighs delay more than energy: its optimum must be at least as fast.
  soc::BigLittlePlatform plat;
  common::Rng rng(2);
  const auto& app = workloads::CpuBenchmarks::by_name("Kmeans");
  const auto trace = workloads::CpuBenchmarks::trace(app, 2, rng);
  const auto c_e = oracle_config(plat, trace[0], Objective::kEnergy);
  const auto c_edp = oracle_config(plat, trace[0], Objective::kEdp);
  const double t_e = plat.execute_ideal(trace[0], c_e).exec_time_s;
  const double t_edp = plat.execute_ideal(trace[0], c_edp).exec_time_s;
  EXPECT_LE(t_edp, t_e + 1e-12);
}

TEST(Oracle, CostIsMinimal) {
  soc::BigLittlePlatform plat;
  common::Rng rng(3);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 2, rng);
  const double c = oracle_cost(plat, trace[0], Objective::kEnergy);
  for (std::size_t i = 0; i < plat.space().size(); i += 199) {
    const auto r = plat.execute_ideal(trace[0], plat.space().config_at(i));
    EXPECT_LE(c, objective_cost(r, Objective::kEnergy) + 1e-12);
  }
}

TEST(ObjectiveCost, PerfPerWattIsNegatedThroughput) {
  soc::SnippetResult r;
  r.energy_j = 2.0;
  r.counters.instructions_retired = 10.0;
  EXPECT_DOUBLE_EQ(objective_cost(r, Objective::kPerfPerWatt), -5.0);
  r.energy_j = 0.0;
  EXPECT_THROW(objective_cost(r, Objective::kPerfPerWatt), std::invalid_argument);
}

class OfflineIlFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(7);
    const auto apps = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
    data_ = collect_offline_data(plat_, apps, Objective::kEnergy, 15, 4, rng);
  }
  soc::BigLittlePlatform plat_;
  OfflineData data_;
};

TEST_F(OfflineIlFixture, DatasetShape) {
  // 10 apps x 15 snippets x (1 oracle + 4 random) observations.
  EXPECT_EQ(data_.policy.states.size(), 10u * 15u * 5u);
  EXPECT_EQ(data_.policy.states.size(), data_.policy.labels.size());
  EXPECT_EQ(data_.model_samples.size(), data_.policy.states.size());
  for (const auto& s : data_.policy.states) EXPECT_EQ(s.size(), 12u);
  for (const auto& l : data_.policy.labels) EXPECT_TRUE(plat_.space().valid(l));
}

TEST_F(OfflineIlFixture, DatasetBlobRoundTripsBitwise) {
  std::vector<double> blob;
  export_offline_data(data_, blob);
  OfflineData back;
  ASSERT_TRUE(import_offline_data(blob, back));
  ASSERT_EQ(back.policy.states.size(), data_.policy.states.size());
  ASSERT_EQ(back.policy.labels.size(), data_.policy.labels.size());
  ASSERT_EQ(back.model_samples.size(), data_.model_samples.size());
  for (std::size_t i = 0; i < data_.policy.states.size(); ++i) {
    EXPECT_EQ(back.policy.states[i], data_.policy.states[i]);  // bitwise: doubles verbatim
    EXPECT_EQ(back.policy.labels[i], data_.policy.labels[i]);
  }
  for (std::size_t i = 0; i < data_.model_samples.size(); ++i) {
    const ModelSample& a = data_.model_samples[i];
    const ModelSample& b = back.model_samples[i];
    EXPECT_EQ(b.config, a.config);
    EXPECT_EQ(b.time_s, a.time_s);
    EXPECT_EQ(b.instructions, a.instructions);
    EXPECT_EQ(b.power_w, a.power_w);
    EXPECT_EQ(b.workload.mpki, a.workload.mpki);
    EXPECT_EQ(b.workload.bmpki, a.workload.bmpki);
    EXPECT_EQ(b.workload.mem_ai, a.workload.mem_ai);
    EXPECT_EQ(b.workload.ext_per_inst, a.workload.ext_per_inst);
    EXPECT_EQ(b.workload.pf_proxy, a.workload.pf_proxy);
    EXPECT_EQ(b.workload.cpi_obs, a.workload.cpi_obs);
    EXPECT_EQ(b.workload.runnable, a.workload.runnable);
  }
  // A truncated or padded blob is structurally invalid: the store is a
  // cache, so import must reject it rather than guess.
  std::vector<double> bad = blob;
  bad.pop_back();
  EXPECT_FALSE(import_offline_data(bad, back));
  bad = blob;
  bad.push_back(0.0);
  EXPECT_FALSE(import_offline_data(bad, back));
  EXPECT_FALSE(import_offline_data({}, back));
}

TEST(OfflineDataKey, SensitiveToEveryArgument) {
  const soc::PlatformParams p;
  const std::uint64_t base = offline_data_key(p, Objective::kEnergy, 40, 6, 7, false);
  EXPECT_EQ(offline_data_key(p, Objective::kEnergy, 40, 6, 7, false), base);
  EXPECT_NE(offline_data_key(p, Objective::kEdp, 40, 6, 7, false), base);
  EXPECT_NE(offline_data_key(p, Objective::kEnergy, 41, 6, 7, false), base);
  EXPECT_NE(offline_data_key(p, Objective::kEnergy, 40, 5, 7, false), base);
  EXPECT_NE(offline_data_key(p, Objective::kEnergy, 40, 6, 8, false), base);
  EXPECT_NE(offline_data_key(p, Objective::kEnergy, 40, 6, 7, true), base);
  soc::PlatformParams heavy = p;
  heavy.ceff_big_nf *= 2.0;
  EXPECT_NE(offline_data_key(heavy, Objective::kEnergy, 40, 6, 7, false), base);
}

TEST_F(OfflineIlFixture, PolicyLearnsTrainingDistribution) {
  common::Rng rng(8);
  IlPolicy policy(plat_.space());
  policy.train_offline(data_.policy, rng);
  EXPECT_TRUE(policy.trained());
  // In-distribution decisions should match the Oracle labels almost always.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data_.policy.states.size(); i += 3) {
    hits += policy.decide(data_.policy.states[i]) == data_.policy.labels[i];
  }
  const double acc =
      static_cast<double>(hits) / static_cast<double>((data_.policy.states.size() + 2) / 3);
  EXPECT_GT(acc, 0.9);
}

TEST_F(OfflineIlFixture, PolicyFitsFirmwareBudget) {
  IlPolicy policy(plat_.space());
  // Paper: policy + training buffer below 20 KB.
  EXPECT_LT(policy.storage_bytes(), 20u * 1024u);
}

TEST_F(OfflineIlFixture, IncrementalTrainingMovesPolicy) {
  common::Rng rng(9);
  IlPolicy policy(plat_.space());
  policy.train_offline(data_.policy, rng);
  // Build a tiny runtime dataset pointing all states to one fixed label.
  PolicyDataset ds;
  const soc::SocConfig target{4, 0, 12, 0};
  for (std::size_t i = 0; i < 100; ++i) {
    ds.states.push_back(data_.policy.states[i]);
    ds.labels.push_back(target);
  }
  policy.train_incremental(ds, 30, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 100; ++i) hits += policy.decide(ds.states[i]) == target;
  EXPECT_GT(hits, 80u);
}

TEST(IlPolicy, UntrainedUseThrows) {
  soc::ConfigSpace space;
  IlPolicy policy(space);
  EXPECT_THROW(policy.decide(common::Vec(12, 0.0)), std::logic_error);
  PolicyDataset empty;
  common::Rng rng(1);
  EXPECT_THROW(policy.train_offline(empty, rng), std::invalid_argument);
  PolicyDataset ds;
  ds.states.push_back(common::Vec(12, 0.0));
  ds.labels.push_back(soc::SocConfig{1, 0, 0, 0});
  EXPECT_THROW(policy.train_incremental(ds, 1, rng), std::logic_error);
}

}  // namespace
}  // namespace oal::core
