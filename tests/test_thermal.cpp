// Tests for the thermal substrate: RC network physics, fixed-point analysis,
// skin estimation, sensor selection and power budgeting.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/stats.h"
#include "gpu/gpu_model.h"
#include "soc/platform.h"
#include "soc/thermal_platform.h"
#include "thermal/fixed_point.h"
#include "thermal/power_budget.h"
#include "thermal/rc_network.h"
#include "thermal/skin_estimator.h"

namespace oal::thermal {
namespace {

LeakageModel default_leak() {
  LeakageModel l;
  l.p0_w = {0.35, 0.08, 0.25, 0.0, 0.0};
  l.k_per_c = {0.025, 0.02, 0.025, 0.0, 0.0};
  l.t0_c = 25.0;
  return l;
}

TEST(RcNetwork, StartsAtAmbient) {
  auto net = RcThermalNetwork::mobile_soc(25.0);
  for (double t : net.temperatures()) EXPECT_DOUBLE_EQ(t, 25.0);
  EXPECT_EQ(net.num_nodes(), 5u);
}

TEST(RcNetwork, HeatsUnderPowerAndCoolsWithoutIt) {
  auto net = RcThermalNetwork::mobile_soc();
  net.step({3.0, 0.5, 1.0, 0.0, 0.0}, 180.0);
  const double hot = net.temperatures()[0];
  EXPECT_GT(hot, 30.0);
  net.step({0.0, 0.0, 0.0, 0.0, 0.0}, 1500.0);
  EXPECT_LT(net.temperatures()[0], hot);
  EXPECT_NEAR(net.temperatures()[0], 25.0, 2.0);  // cooled nearly to ambient
}

TEST(RcNetwork, ConvergesToSteadyState) {
  auto net = RcThermalNetwork::mobile_soc();
  const common::Vec p{2.0, 0.4, 1.2, 0.0, 0.0};
  const common::Vec ss = net.steady_state(p);
  net.step(p, 5000.0);
  for (std::size_t i = 0; i < ss.size(); ++i) EXPECT_NEAR(net.temperatures()[i], ss[i], 0.3);
}

TEST(RcNetwork, SteadyStateSuperposition) {
  // Linear system: steady state of a+b equals sum of responses above ambient.
  auto net = RcThermalNetwork::mobile_soc();
  const common::Vec pa{1.0, 0.0, 0.0, 0.0, 0.0};
  const common::Vec pb{0.0, 0.0, 2.0, 0.0, 0.0};
  common::Vec pab(5);
  for (int i = 0; i < 5; ++i) pab[i] = pa[i] + pb[i];
  const auto ta = net.steady_state(pa);
  const auto tb = net.steady_state(pb);
  const auto tab = net.steady_state(pab);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(tab[i] - net.ambient_c(), (ta[i] - 25.0) + (tb[i] - 25.0), 1e-9);
}

TEST(RcNetwork, HeatSpreadsToNeighbors) {
  auto net = RcThermalNetwork::mobile_soc();
  net.step({4.0, 0.0, 0.0, 0.0, 0.0}, 60.0);
  // Heating only the big cluster must raise every node above ambient, with
  // the big cluster hottest and the skin slowest/coolest.
  const auto& t = net.temperatures();
  for (double v : t) EXPECT_GT(v, 25.0);
  EXPECT_GT(t[0], t[1]);
  EXPECT_GT(t[0], t[4]);
}

TEST(RcNetwork, SystemMatrixIsStable) {
  auto net = RcThermalNetwork::mobile_soc();
  const auto ev = common::eigenvalues(net.system_matrix());
  for (double re : ev.real) EXPECT_LT(re, 0.0);  // all modes decay
}

TEST(RcNetwork, PredictDoesNotMutate) {
  auto net = RcThermalNetwork::mobile_soc();
  const auto before = net.temperatures();
  const auto pred = net.predict({3.0, 0.5, 1.0, 0.0, 0.0}, 10.0);
  EXPECT_EQ(net.temperatures(), before);
  EXPECT_GT(pred[0], before[0]);
}

TEST(RcNetwork, InvalidInputsThrow) {
  auto net = RcThermalNetwork::mobile_soc();
  EXPECT_THROW(net.step({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(net.step(common::Vec(5, 0.0), -1.0), std::invalid_argument);
  EXPECT_THROW(RcThermalNetwork({}, {}), std::invalid_argument);
}

TEST(FixedPoint, ExistsAtModerateLeakage) {
  auto net = RcThermalNetwork::mobile_soc();
  const auto fp = thermal_fixed_point(net, default_leak(), {2.0, 0.4, 1.0, 0.0, 0.0});
  EXPECT_TRUE(fp.exists);
  EXPECT_LT(fp.loop_gain, 1.0);
  EXPECT_GT(fp.temperature_c[0], 25.0);
  // Fixed point is self-consistent: steady state of total power returns it.
  const auto check = net.steady_state(fp.total_power_w);
  for (std::size_t i = 0; i < check.size(); ++i) EXPECT_NEAR(check[i], fp.temperature_c[i], 1e-6);
}

TEST(FixedPoint, RunawayDetectedAtHighLeakage) {
  auto net = RcThermalNetwork::mobile_soc();
  LeakageModel hot = default_leak();
  hot.p0_w = {3.5, 0.8, 2.5, 0.0, 0.0};
  hot.k_per_c = {0.12, 0.1, 0.12, 0.0, 0.0};
  const auto fp = thermal_fixed_point(net, hot, {3.0, 0.8, 2.0, 0.0, 0.0});
  EXPECT_FALSE(fp.exists);
  EXPECT_GE(fp.loop_gain, 1.0);
}

TEST(FixedPoint, IterationConvergesToClosedForm) {
  auto net = RcThermalNetwork::mobile_soc();
  const common::Vec dyn{2.5, 0.5, 1.5, 0.0, 0.0};
  const auto fp = thermal_fixed_point(net, default_leak(), dyn);
  const auto traj = fixed_point_iteration(net, default_leak(), dyn);
  ASSERT_TRUE(fp.exists);
  ASSERT_GE(traj.size(), 2u);
  const auto& last = traj.back();
  for (std::size_t i = 0; i < last.size(); ++i) EXPECT_NEAR(last[i], fp.temperature_c[i], 1e-3);
}

TEST(FixedPoint, MorePowerMeansHotterFixedPoint) {
  auto net = RcThermalNetwork::mobile_soc();
  const auto lo = thermal_fixed_point(net, default_leak(), {1.0, 0.2, 0.5, 0.0, 0.0});
  const auto hi = thermal_fixed_point(net, default_leak(), {3.0, 0.6, 2.0, 0.0, 0.0});
  ASSERT_TRUE(lo.exists && hi.exists);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_GT(hi.temperature_c[i], lo.temperature_c[i]);
}

TEST(SkinEstimator, RecoversSkinFromInternalSensors) {
  auto net = RcThermalNetwork::mobile_soc();
  SensorArray sensors({0, 1, 2, 3}, 0.15, 33);
  common::Rng rng(3);
  std::vector<common::Vec> readings;
  std::vector<double> skin;
  common::Vec p(5, 0.0);
  for (int i = 0; i < 600; ++i) {
    if (i % 50 == 0)
      p = {rng.uniform(0.2, 4.0), rng.uniform(0.1, 1.0), rng.uniform(0.1, 2.5), 0.0, 0.0};
    net.step(p, 1.0);
    readings.push_back(sensors.read(net.temperatures()));
    skin.push_back(net.temperatures()[4]);
  }
  SkinTemperatureEstimator est(4);
  est.fit({readings.begin(), readings.begin() + 400}, {skin.begin(), skin.begin() + 400});
  std::vector<double> pred, truth;
  for (std::size_t i = 400; i < readings.size(); ++i) {
    pred.push_back(est.estimate(readings[i]));
    truth.push_back(skin[i]);
  }
  EXPECT_LT(common::rmse(truth, pred), 0.6);
}

TEST(SkinEstimator, OnlineUpdateTracksBiasDrift) {
  SkinTemperatureEstimator est(1);
  // True relation: skin = 0.5 * sensor + 10.
  for (int i = 0; i < 200; ++i) {
    const double s = 30.0 + (i % 17);
    est.update({s}, 0.5 * s + 10.0);
  }
  EXPECT_NEAR(est.estimate({40.0}), 30.0, 0.5);
  // Drifted relation (aged device): estimator follows.
  for (int i = 0; i < 400; ++i) {
    const double s = 30.0 + (i % 17);
    est.update({s}, 0.5 * s + 13.0);
  }
  EXPECT_NEAR(est.estimate({40.0}), 33.0, 1.0);
}

TEST(SensorSelection, PicksInformativeSensorsFirst) {
  common::Rng rng(5);
  // Sensor 2 is the skin-adjacent one (highly informative); sensor 0 is pure noise.
  std::vector<common::Vec> readings;
  std::vector<double> skin;
  for (int i = 0; i < 300; ++i) {
    const double true_skin = rng.uniform(30.0, 42.0);
    readings.push_back({rng.uniform(0.0, 100.0),              // noise
                        true_skin * 0.2 + rng.normal(20, 2),  // weak
                        true_skin * 0.9 + rng.normal(3, 0.1), // strong
                        rng.uniform(0.0, 1.0)});              // noise
    skin.push_back(true_skin);
  }
  const auto order = greedy_sensor_selection(readings, skin, 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
}

TEST(PowerBudget, SustainableScaleRespectsLimits) {
  auto net = RcThermalNetwork::mobile_soc();
  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};
  const auto budget = max_sustainable_power(net, default_leak(), shape);
  EXPECT_GT(budget.total_power_w, 0.0);
  // At the budget, the fixed point must be within limits (with tolerance).
  common::Vec dyn(5, 0.0);
  for (int i = 0; i < 5; ++i) dyn[i] = budget.scale * shape[i];
  const auto fp = thermal_fixed_point(net, default_leak(), dyn);
  ASSERT_TRUE(fp.exists);
  EXPECT_LE(fp.temperature_c[0], 85.0 + 0.1);
  EXPECT_LE(fp.temperature_c[4], 45.0 + 0.1);
}

TEST(PowerBudget, TransientHeadroomExceedsSustainable) {
  auto net = RcThermalNetwork::mobile_soc();
  const common::Vec shape{0.55, 0.1, 0.35, 0.0, 0.0};
  const auto sustained = max_sustainable_power(net, default_leak(), shape);
  const double burst_scale = transient_power_headroom(net, default_leak(), shape, 5.0);
  EXPECT_GT(burst_scale, sustained.scale);
}

// ---- Thermal budget adapters (soc layer) ----------------------------------

/// Hot-enclosure params whose steady-state budget binds against the
/// platform's top configurations (the bench_thermal_model setting).
soc::ThermalConstraintParams binding_soc_params() {
  soc::ThermalConstraintParams p;
  p.limits.t_max_junction_c = 55.0;
  p.limits.t_max_skin_c = 43.0;
  p.ambient_c = 40.0;
  p.horizon_s = 0.0;
  return p;
}

TEST(ThermalSocAdapter, ThrottleLadderOrder) {
  soc::BigLittlePlatform plat;
  soc::ThermalSocAdapter adapter(plat, binding_soc_params());
  const soc::SnippetDescriptor snip;  // default: compute-heavy enough to bind
  const soc::SocConfig proposed{4, 4, 12, 18};  // maximum configuration
  const soc::SocConfig clamped = adapter.arbitrate(snip, proposed);

  ASSERT_TRUE(clamped != proposed);
  EXPECT_LE(plat.execute_ideal(snip, clamped).avg_power_w, adapter.budget_w());
  EXPECT_EQ(adapter.clamped_snippets(), 1u);

  // Ladder order: big frequency first, then big cores, then little
  // frequency, then little cores.  A knob may only have moved if every knob
  // earlier in the ladder is already at its floor.
  if (clamped.num_big != proposed.num_big) {
    EXPECT_EQ(clamped.big_freq_idx, 0);
  }
  if (clamped.little_freq_idx != proposed.little_freq_idx) {
    EXPECT_EQ(clamped.big_freq_idx, 0);
    EXPECT_EQ(clamped.num_big, 0);
  }
  if (clamped.num_little != proposed.num_little) {
    EXPECT_EQ(clamped.num_big, 0);
    EXPECT_EQ(clamped.little_freq_idx, 0);
  }

  // The clamp must land exactly where the reference ladder lands.
  soc::SocConfig expected = proposed;
  while (plat.execute_ideal(snip, expected).avg_power_w > adapter.budget_w()) {
    if (expected.num_big > 0) {
      if (expected.big_freq_idx > 0) {
        --expected.big_freq_idx;
      } else {
        --expected.num_big;
      }
    } else if (expected.little_freq_idx > 0) {
      --expected.little_freq_idx;
    } else if (expected.num_little > 1) {
      --expected.num_little;
    } else {
      break;
    }
  }
  EXPECT_EQ(clamped, expected);
}

TEST(ThermalSocAdapter, InfeasibleBudgetBottomsOutAtFloor) {
  soc::BigLittlePlatform plat;
  soc::ThermalConstraintParams p = binding_soc_params();
  p.limits.t_max_skin_c = p.ambient_c + 0.05;  // budget below base power
  soc::ThermalSocAdapter adapter(plat, p);
  const soc::SnippetDescriptor snip;
  const soc::SocConfig floor = adapter.arbitrate(snip, soc::SocConfig{4, 4, 12, 18});
  EXPECT_EQ(floor.num_little, 1);
  EXPECT_EQ(floor.num_big, 0);
  EXPECT_EQ(floor.little_freq_idx, 0);
  EXPECT_EQ(floor.big_freq_idx, 0);
}

TEST(ThermalSocAdapter, SlackBudgetLeavesConfigUntouched) {
  soc::BigLittlePlatform plat;
  soc::ThermalConstraintParams p;  // default cool limits: budget is slack
  soc::ThermalSocAdapter adapter(plat, p);
  const soc::SnippetDescriptor snip;
  const soc::SocConfig proposed{2, 1, 5, 8};
  EXPECT_EQ(adapter.arbitrate(snip, proposed), proposed);
  EXPECT_EQ(adapter.clamped_snippets(), 0u);
}

TEST(ThermalSocAdapter, RejectsWrongSizeNodeVectors) {
  soc::BigLittlePlatform plat;
  {
    soc::ThermalConstraintParams p;
    p.leakage.p0_w = {0.1, 0.1};  // 2 entries, network has 5 nodes
    try {
      soc::ThermalSocAdapter adapter(plat, p);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("leakage.p0_w"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
    }
  }
  {
    soc::ThermalConstraintParams p;
    p.leakage.k_per_c = {0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
    try {
      soc::ThermalSocAdapter adapter(plat, p);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("leakage.k_per_c"), std::string::npos);
    }
  }
  {
    soc::ThermalConstraintParams p;
    p.initial_temperature_c = {40.0, 40.0};
    try {
      soc::ThermalSocAdapter adapter(plat, p);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("initial_temperature_c"), std::string::npos);
    }
  }
}

TEST(ThermalSocAdapter, TelemetrySnapshotReflectsAdapterState) {
  soc::BigLittlePlatform plat;
  const soc::ThermalConstraintParams p = binding_soc_params();
  soc::ThermalSocAdapter adapter(plat, p);
  const soc::ThermalTelemetry t = adapter.telemetry();
  EXPECT_TRUE(t.constrained);
  EXPECT_DOUBLE_EQ(t.budget_w, adapter.budget_w());
  EXPECT_DOUBLE_EQ(t.junction_limit_c, p.limits.t_max_junction_c);
  EXPECT_DOUBLE_EQ(t.skin_limit_c, p.limits.t_max_skin_c);
  EXPECT_DOUBLE_EQ(t.ambient_c, p.ambient_c);
  EXPECT_NEAR(t.junction_c, p.ambient_c, 1e-9);  // nothing executed yet
  // A default-constructed telemetry is the neutral (unconstrained) snapshot.
  const soc::ThermalTelemetry neutral;
  EXPECT_FALSE(neutral.constrained);
  EXPECT_GT(neutral.headroom_w(), 0.0);
}

TEST(ThermalGpuAdapter, ThrottleLadderFrequencyThenSlices) {
  gpu::GpuPlatform plat;
  const double period_s = 1.0 / 30.0;
  soc::ThermalGpuConstraintParams p;
  p.ambient_c = 35.0;
  p.limits.t_max_skin_c = 39.0;
  p.limits.t_max_junction_c = 75.0;
  p.horizon_s = 0.0;
  soc::ThermalGpuAdapter adapter(plat, period_s, p);

  gpu::FrameDescriptor heavy;
  heavy.render_cycles = 70e6;
  heavy.mem_bytes = 40e6;
  heavy.cpu_cycles = 12e6;
  heavy.mem_exposed = 0.10;
  const gpu::GpuConfig proposed{static_cast<int>(plat.num_freqs()) - 1,
                                plat.params().max_slices};
  const gpu::GpuConfig clamped = adapter.arbitrate(heavy, proposed);

  ASSERT_TRUE(clamped != proposed);
  EXPECT_LE(plat.render_ideal(heavy, clamped, period_s).pkg_dram_energy_j / period_s,
            adapter.budget_w());
  // Frequency throttles before slice gating.
  if (clamped.num_slices != proposed.num_slices) {
    EXPECT_EQ(clamped.freq_idx, 0);
  }

  // Infeasible budget bottoms out at 1 slice at minimum frequency.
  soc::ThermalGpuConstraintParams brutal = p;
  brutal.limits.t_max_skin_c = p.ambient_c + 0.02;
  soc::ThermalGpuAdapter floor_adapter(plat, period_s, brutal);
  const gpu::GpuConfig floor = floor_adapter.arbitrate(heavy, proposed);
  EXPECT_EQ(floor.freq_idx, 0);
  EXPECT_EQ(floor.num_slices, 1);
}

TEST(ThermalGpuAdapter, RejectsBadConstruction) {
  gpu::GpuPlatform plat;
  EXPECT_THROW(soc::ThermalGpuAdapter(plat, 0.0), std::invalid_argument);
  soc::ThermalGpuConstraintParams p;
  p.leakage.p0_w = {0.1};
  EXPECT_THROW(soc::ThermalGpuAdapter(plat, 1.0 / 30.0, p), std::invalid_argument);
}

TEST(ThermalGpuAdapter, TelemetrySnapshotReflectsAdapterState) {
  gpu::GpuPlatform plat;
  soc::ThermalGpuConstraintParams p;
  p.ambient_c = 35.0;
  p.limits.t_max_skin_c = 39.0;
  p.limits.t_max_junction_c = 75.0;
  p.horizon_s = 0.0;
  soc::ThermalGpuAdapter adapter(plat, 1.0 / 30.0, p);
  const soc::ThermalTelemetry t = adapter.telemetry();
  EXPECT_TRUE(t.constrained);
  EXPECT_DOUBLE_EQ(t.budget_w, adapter.budget_w());
  EXPECT_DOUBLE_EQ(t.junction_limit_c, p.limits.t_max_junction_c);
  EXPECT_DOUBLE_EQ(t.skin_limit_c, p.limits.t_max_skin_c);
  EXPECT_DOUBLE_EQ(t.ambient_c, p.ambient_c);
  EXPECT_NEAR(t.junction_c, p.ambient_c, 1e-9);  // nothing rendered yet
}

TEST(ThermalGpuAdapter, TelemetryTracksMovingBudgetAcrossFrames) {
  // A preheated device under a transient_power_headroom horizon with the
  // budget recomputed every frame: heavy frames heat the RC network and the
  // published budget tightens frame over frame; once throttled to the floor
  // the network cools and the budget relaxes again.  The telemetry snapshot
  // must track both directions.
  gpu::GpuPlatform plat;
  const double period_s = 1.0 / 30.0;
  soc::ThermalGpuConstraintParams p;
  p.ambient_c = 35.0;
  p.limits.t_max_skin_c = 40.0;
  p.limits.t_max_junction_c = 75.0;
  p.horizon_s = 120.0;
  p.budget_interval_s = period_s;  // refresh every frame
  p.initial_temperature_c = {48.0, 46.0, 58.0, 45.0, 39.5};  // preheated
  soc::ThermalGpuAdapter adapter(plat, period_s, p);

  gpu::FrameDescriptor heavy;
  heavy.render_cycles = 70e6;
  heavy.mem_bytes = 40e6;
  heavy.cpu_cycles = 12e6;
  heavy.mem_exposed = 0.10;
  const gpu::GpuConfig hot{static_cast<int>(plat.num_freqs()) - 1, plat.params().max_slices};

  // Phase 1: render hot frames — the budget must tighten every frame.  (The
  // first frame of each phase also swaps the observed power shape, so the
  // monotonicity check starts at the second.)
  double prev = 0.0;
  for (int i = 0; i < 8; ++i) {
    adapter.observe(heavy, hot, plat.render_ideal(heavy, hot, period_s));
    const double now = adapter.telemetry().budget_w;
    if (i > 0) {
      EXPECT_LT(now, prev) << "frame " << i << ": budget must tighten while heating";
    }
    prev = now;
  }

  // Phase 2: floor-config frames — cooling relaxes the budget every frame.
  gpu::FrameDescriptor light;
  light.render_cycles = 2e6;
  light.mem_bytes = 1e6;
  light.cpu_cycles = 1e6;
  const gpu::GpuConfig floor{0, 1};
  for (int i = 0; i < 8; ++i) {
    adapter.observe(light, floor, plat.render_ideal(light, floor, period_s));
    const double now = adapter.telemetry().budget_w;
    if (i > 0) {
      EXPECT_GT(now, prev) << "frame " << i << ": budget must relax while cooling";
    }
    prev = now;
  }
}

}  // namespace
}  // namespace oal::thermal
