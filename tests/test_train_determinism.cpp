// Bitwise reproducibility of minibatch training across executors.
//
// The training contract (ml/mlp.h): gradient shards have a fixed geometry —
// shard s always covers rows [s*8, s*8+8) of the minibatch — and are reduced
// in ascending shard order, so a ThreadPool only changes who computes a
// shard, never the arithmetic.  Serial, 1-thread, and N-thread training must
// therefore produce bit-identical parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/mlp.h"

namespace oal::ml {
namespace {

using common::Mat;
using common::Rng;
using common::Vec;

Mat random_batch(std::size_t rows, std::size_t cols, Rng& rng) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.5, 1.5);
  return m;
}

/// Trains one Mlp on a fixed deterministic curriculum and probes it.
Vec train_and_probe_mlp(common::ThreadPool* pool) {
  MlpConfig cfg;
  cfg.hidden = {12, 8};
  cfg.learning_rate = 3e-3;
  cfg.l2 = 1e-5;
  cfg.seed = 7;
  cfg.pool = pool;
  Mlp net(4, 2, cfg);
  Rng data_rng(11);
  for (int step = 0; step < 12; ++step) {
    // 20 rows = 3 shards (8 + 8 + 4): exercises the partial tail shard.
    const Mat x = random_batch(20, 4, data_rng);
    Mat t(20, 2);
    for (std::size_t r = 0; r < t.rows(); ++r) {
      t(r, 0) = std::sin(x(r, 0)) + x(r, 1);
      t(r, 1) = x(r, 2) * x(r, 3);
    }
    net.train_batch(x, t);
  }
  Rng probe_rng(13);
  const Mat probes = random_batch(5, 4, probe_rng);
  const Mat y = net.forward_batch(probes);
  Vec flat;
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c) flat.push_back(y(r, c));
  return flat;
}

/// Trains one MultiHeadClassifier over shuffled epochs and probes it.
Vec train_and_probe_multihead(common::ThreadPool* pool) {
  MlpConfig cfg;
  cfg.hidden = {10};
  cfg.learning_rate = 1e-2;
  cfg.seed = 17;
  cfg.pool = pool;
  MultiHeadClassifier net(3, {2, 4}, cfg);
  Rng data_rng(19);
  std::vector<Vec> xs;
  std::vector<std::vector<std::size_t>> labels;
  for (int i = 0; i < 64; ++i) {
    const double a = data_rng.uniform(-1, 1), b = data_rng.uniform(-1, 1),
                 c = data_rng.uniform(-1, 1);
    xs.push_back({a, b, c});
    labels.push_back({a > 0 ? 1u : 0u, (b > 0 ? 1u : 0u) + (c > 0 ? 2u : 0u)});
  }
  Rng train_rng(23);  // same seed everywhere: identical shuffles by contract
  net.train(xs, labels, 4, 24, train_rng);
  Vec flat;
  for (int i = 0; i < 5; ++i) {
    const auto probs = net.predict_proba({0.2 * i - 0.5, 0.3, -0.1 * i});
    for (const Vec& p : probs)
      for (double v : p) flat.push_back(v);
  }
  return flat;
}

TEST(TrainDeterminism, MlpBitwiseIdenticalAcrossThreadCounts) {
  const Vec serial = train_and_probe_mlp(nullptr);
  common::ThreadPool pool1(1);
  const Vec one = train_and_probe_mlp(&pool1);
  common::ThreadPool pool4(4);
  const Vec four = train_and_probe_mlp(&pool4);
  ASSERT_EQ(serial.size(), one.size());
  ASSERT_EQ(serial.size(), four.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], one[i]) << "serial vs 1-thread, output " << i;
    EXPECT_DOUBLE_EQ(serial[i], four[i]) << "serial vs 4-thread, output " << i;
  }
}

TEST(TrainDeterminism, MultiHeadBitwiseIdenticalAcrossThreadCounts) {
  const Vec serial = train_and_probe_multihead(nullptr);
  common::ThreadPool pool1(1);
  const Vec one = train_and_probe_multihead(&pool1);
  common::ThreadPool pool4(4);
  const Vec four = train_and_probe_multihead(&pool4);
  ASSERT_EQ(serial.size(), one.size());
  ASSERT_EQ(serial.size(), four.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], one[i]) << "serial vs 1-thread, output " << i;
    EXPECT_DOUBLE_EQ(serial[i], four[i]) << "serial vs 4-thread, output " << i;
  }
}

TEST(TrainDeterminism, TrainBatchLossIdenticalAcrossExecutors) {
  MlpConfig cfg;
  cfg.hidden = {6};
  cfg.seed = 29;
  Rng data_rng(31);
  const Mat x = random_batch(17, 3, data_rng);  // 3 shards, ragged tail
  Mat t(17, 1);
  for (std::size_t r = 0; r < t.rows(); ++r) t(r, 0) = x(r, 0) - x(r, 1) * x(r, 2);

  Mlp serial_net(3, 1, cfg);
  const double serial_loss = serial_net.train_batch(x, t);
  common::ThreadPool pool(3);
  cfg.pool = &pool;
  Mlp pooled_net(3, 1, cfg);
  const double pooled_loss = pooled_net.train_batch(x, t);
  EXPECT_DOUBLE_EQ(serial_loss, pooled_loss);
}

}  // namespace
}  // namespace oal::ml
